//! Known-answer tests pinning the primitives to published vectors:
//!
//! * SHA-1 — FIPS 180-4 / RFC 3174 examples;
//! * SHA-256 — FIPS 180-4 examples;
//! * the multi-lane x4/x8 kernels — every lane pinned to the same FIPS
//!   vectors at every scheduling width;
//! * HMAC-SHA1 — RFC 2202;
//! * HMAC-SHA256 — RFC 4231;
//! * RSA SEAL chains and Paillier encryption — fixed keys generated
//!   once (see the inline constants) with every expected value computed
//!   by an independent big-integer implementation and pinned here.
//!
//! A KAT failure means the primitive itself regressed — not a protocol
//! bug — so these run before anything else in CI's test job.

use sies_crypto::biguint::BigUint;
use sies_crypto::hash::HashFunction;
use sies_crypto::hmac::hmac;
use sies_crypto::paillier::PaillierKeyPair;
use sies_crypto::rsa::RsaKeyPair;
use sies_crypto::sha1::Sha1;
use sies_crypto::sha256::Sha256;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd-length hex literal");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

fn big(s: &str) -> BigUint {
    BigUint::from_be_bytes(&unhex(s))
}

// ---------------------------------------------------------------- SHA-1

/// FIPS 180-4 §A / RFC 3174 test cases, plus the empty string.
#[test]
fn sha1_fips_vectors() {
    let cases: &[(&[u8], &str)] = &[
        (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
        (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
              ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "a49b2446a02c645bf419f995b67091253a04a259",
        ),
    ];
    for (msg, want) in cases {
        assert_eq!(hex(&Sha1::digest(msg)), *want);
    }
}

/// FIPS 180-4 one-million-'a' vector, fed through streaming updates to
/// exercise block-boundary handling.
#[test]
fn sha1_million_a() {
    let mut h = Sha1::new();
    let chunk = [b'a'; 997]; // deliberately not a multiple of 64
    let mut fed = 0usize;
    while fed < 1_000_000 {
        let take = chunk.len().min(1_000_000 - fed);
        h.update(&chunk[..take]);
        fed += take;
    }
    assert_eq!(
        hex(&h.finalize()),
        "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    );
}

// -------------------------------------------------------------- SHA-256

/// FIPS 180-4 §B test cases, plus the empty string.
#[test]
fn sha256_fips_vectors() {
    let cases: &[(&[u8], &str)] = &[
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
    ];
    for (msg, want) in cases {
        assert_eq!(hex(&Sha256::digest(msg)), *want);
    }
}

/// FIPS 180-4 one-million-'a' vector, streamed in odd-sized chunks.
#[test]
fn sha256_million_a() {
    let mut h = Sha256::new();
    let chunk = [b'a'; 1013];
    let mut fed = 0usize;
    while fed < 1_000_000 {
        let take = chunk.len().min(1_000_000 - fed);
        h.update(&chunk[..take]);
        fed += take;
    }
    assert_eq!(
        hex(&h.finalize()),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

// ------------------------------------------------- multi-lane kernels

/// FIPS 180-4 Merkle–Damgård padding: `msg` split into 64-byte blocks
/// with the 0x80 marker and the big-endian bit length appended.
fn pad_blocks(msg: &[u8]) -> Vec<[u8; 64]> {
    let mut padded = msg.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&((msg.len() as u64) * 8).to_be_bytes());
    padded
        .chunks_exact(64)
        .map(|b| b.try_into().unwrap())
        .collect()
}

/// The FIPS messages used to pin the lane kernels: the empty string,
/// "abc" (single block after padding) and the 56-byte two-block vector.
const LANE_MSGS: [&[u8]; 3] = [
    b"",
    b"abc",
    b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
];

/// Every lane of the x4 and x8 SHA-256 kernels reproduces the scalar
/// FIPS digests — uniform lanes (all running one vector, including the
/// multi-block one) and mixed lanes (a different vector per lane).
#[test]
fn sha256_lane_kernels_match_fips_vectors() {
    use sies_crypto::sha256xn::{compress_many_with, initial_state};
    for msg in LANE_MSGS {
        let want = Sha256::digest(msg);
        let blocks = pad_blocks(msg);
        for width in [4usize, 8] {
            let mut states = vec![initial_state(); width];
            for block in &blocks {
                let lane_blocks = vec![*block; width];
                compress_many_with(width, &mut states, &lane_blocks);
            }
            for (l, st) in states.iter().enumerate() {
                let got: Vec<u8> = st.iter().flat_map(|w| w.to_be_bytes()).collect();
                assert_eq!(hex(&got), hex(&want), "lane {l} at width {width}");
            }
        }
    }
    // Mixed single-block lanes: lane l runs LANE_MSGS[l % 2] (both fit
    // one padded block), checked at both widths.
    for width in [4usize, 8] {
        let mut states = vec![initial_state(); width];
        let lane_blocks: Vec<[u8; 64]> = (0..width)
            .map(|l| pad_blocks(LANE_MSGS[l % 2])[0])
            .collect();
        compress_many_with(width, &mut states, &lane_blocks);
        for (l, st) in states.iter().enumerate() {
            let got: Vec<u8> = st.iter().flat_map(|w| w.to_be_bytes()).collect();
            assert_eq!(
                hex(&got),
                hex(&Sha256::digest(LANE_MSGS[l % 2])),
                "lane {l}"
            );
        }
    }
}

/// Same pinning for the SHA-1 lane kernels.
#[test]
fn sha1_lane_kernels_match_fips_vectors() {
    use sies_crypto::sha1xn::{compress_many_with, initial_state};
    for msg in LANE_MSGS {
        let want = Sha1::digest(msg);
        let blocks = pad_blocks(msg);
        for width in [4usize, 8] {
            let mut states = vec![initial_state(); width];
            for block in &blocks {
                let lane_blocks = vec![*block; width];
                compress_many_with(width, &mut states, &lane_blocks);
            }
            for (l, st) in states.iter().enumerate() {
                let got: Vec<u8> = st[..5].iter().flat_map(|w| w.to_be_bytes()).collect();
                assert_eq!(hex(&got), hex(&want), "lane {l} at width {width}");
            }
        }
    }
    for width in [4usize, 8] {
        let mut states = vec![initial_state(); width];
        let lane_blocks: Vec<[u8; 64]> = (0..width)
            .map(|l| pad_blocks(LANE_MSGS[l % 2])[0])
            .collect();
        compress_many_with(width, &mut states, &lane_blocks);
        for (l, st) in states.iter().enumerate() {
            let got: Vec<u8> = st[..5].iter().flat_map(|w| w.to_be_bytes()).collect();
            assert_eq!(hex(&got), hex(&Sha1::digest(LANE_MSGS[l % 2])), "lane {l}");
        }
    }
}

// ----------------------------------------------------------- HMAC-SHA1

/// RFC 2202 §3 test cases 1–7 (the full set, including the truncated
/// key-longer-than-block cases).
#[test]
fn hmac_sha1_rfc2202() {
    let cases: &[(Vec<u8>, Vec<u8>, &str)] = &[
        (
            vec![0x0b; 20],
            b"Hi There".to_vec(),
            "b617318655057264e28bc0b6fb378c8ef146be00",
        ),
        (
            b"Jefe".to_vec(),
            b"what do ya want for nothing?".to_vec(),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
        ),
        (
            vec![0xaa; 20],
            vec![0xdd; 50],
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3",
        ),
        (
            unhex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
            vec![0xcd; 50],
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da",
        ),
        (
            vec![0x0c; 20],
            b"Test With Truncation".to_vec(),
            "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04",
        ),
        (
            vec![0xaa; 80],
            b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112",
        ),
        (
            vec![0xaa; 80],
            b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data".to_vec(),
            "e8e99d0f45237d786d6bbaa7965c7808bbff1a91",
        ),
    ];
    for (key, msg, want) in cases {
        assert_eq!(hex(&hmac::<Sha1>(key, msg)), *want);
    }
}

// --------------------------------------------------------- HMAC-SHA256

/// RFC 4231 §4 test cases 1–4, 6, 7 (case 5 is output truncation, which
/// this implementation does not expose).
#[test]
fn hmac_sha256_rfc4231() {
    let cases: &[(Vec<u8>, Vec<u8>, &str)] = &[
        (
            vec![0x0b; 20],
            b"Hi There".to_vec(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        ),
        (
            b"Jefe".to_vec(),
            b"what do ya want for nothing?".to_vec(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        ),
        (
            vec![0xaa; 20],
            vec![0xdd; 50],
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        ),
        (
            unhex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
            vec![0xcd; 50],
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
        ),
        (
            vec![0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        ),
        (
            vec![0xaa; 131],
            b"This is a test using a larger than block-size key and a larger than \
              block-size data. The key needs to be hashed before being used by the \
              HMAC algorithm."
                .to_vec(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
        ),
    ];
    for (key, msg, want) in cases {
        assert_eq!(hex(&hmac::<Sha256>(key, msg)), *want);
    }
}

// ------------------------------------------------------ RSA SEAL chain

// A fixed 256-bit SEAL key: p, q are 128-bit primes ≡ 2 (mod 3), so the
// public exponent e = 3 is valid. Every expected value below was
// computed with an independent arbitrary-precision implementation.
const RSA_P: &str = "c7725524a5900e9017809beb342af359";
const RSA_Q: &str = "9830b76461ac9fe92f6ead8f46cdb3d9";
const RSA_N: &str = "7691d6dea8cbd7fcb5e7c13ebf5b07d273b6fbbab9fc2ff81655387f74d48171";
const RSA_D: &str = "4f0be4947087e55323efd629d4e75a8b62b7f4cbcc7faba9df994a03513d3c2b";
const SEAL_SEED: &str = "5eca0123456789abcdef1337c0debeef";

/// `E^k(seed)` for `k = 1..=5` under the pinned key — the SECOA rolling
/// operation as a known-answer chain.
const SEAL_CHAIN: [&str; 5] = [
    "082a77cc7093ac8cd56a8a8dcd66cfdf3929d0eb3f182083c802aa68a439b990",
    "74f0ba2564efb2eccc0eaa88dc0f29a75486164f5e13c47bac4bafbccc638c5d",
    "4847b4125141432f17c39a8da7b1f15be5dbdf276bd808c6ff41947bc1d554b2",
    "70ccd5b811559d19d72a5d6258b04ce415313cc1d90b03959b750db34a06fea6",
    "51f83fd0381bf9b85003522afc42d745d8d78bc65099930845a8b26f872d871e",
];

#[test]
fn rsa_seal_chain_kat() {
    let kp = RsaKeyPair::from_primes(&big(RSA_P), &big(RSA_Q));
    let pk = kp.public();
    assert_eq!(pk.modulus(), &big(RSA_N), "pinned modulus");
    assert_eq!(pk.exponent().as_u64(), 3);

    let seed = big(SEAL_SEED);
    for (k, want) in SEAL_CHAIN.iter().enumerate() {
        assert_eq!(
            pk.encrypt_repeated(&seed, k as u64 + 1),
            big(want),
            "SEAL chain diverged at step {}",
            k + 1
        );
    }
    // One rolling step from the pinned midpoint reproduces the next link.
    assert_eq!(pk.encrypt(&big(SEAL_CHAIN[2])), big(SEAL_CHAIN[3]));
    // The private exponent walks the chain backwards.
    assert_eq!(kp.decrypt(&big(SEAL_CHAIN[0])), seed);
    assert_eq!(kp.decrypt(&big(SEAL_CHAIN[4])), big(SEAL_CHAIN[3]));
}

/// Fold/roll commutation pinned as data:
/// `E³(31337) · E³(424242) = E³(31337·424242 mod n)`.
#[test]
fn rsa_fold_roll_kat() {
    let kp = RsaKeyPair::from_primes(&big(RSA_P), &big(RSA_Q));
    let pk = kp.public();
    let want = big("14122aeeb0c1c0c9596e62bb9360c540f82ed891f66f94240b508f886b496689");
    let x = BigUint::from_u64(31337);
    let y = BigUint::from_u64(424242);
    let lhs = pk.fold(&pk.encrypt_repeated(&x, 3), &pk.encrypt_repeated(&y, 3));
    let rhs = pk.encrypt_repeated(&x.mul_mod(&y, pk.modulus()), 3);
    assert_eq!(lhs, want);
    assert_eq!(rhs, want);
}

#[test]
fn rsa_private_exponent_matches_pinned_value() {
    // d = e⁻¹ mod φ(n) is reconstructed from the primes; pin it by
    // decrypting a ciphertext formed with the pinned d directly.
    let kp = RsaKeyPair::from_primes(&big(RSA_P), &big(RSA_Q));
    let m = BigUint::from_u64(0xfeed_f00d);
    let c = kp.public().encrypt(&m);
    assert_eq!(c.pow_mod(&big(RSA_D), &big(RSA_N)), m);
    assert_eq!(kp.decrypt(&c), m);
}

// ------------------------------------------------------------ Paillier

// A fixed 256-bit Paillier modulus (128-bit primes). The ciphertexts
// below are `(1 + m·n) · r^n mod n²` with the pinned nonces.
const PAI_P: &str = "d67f4279075aae2b8ea138a50e847373";
const PAI_Q: &str = "df3d7e8d8a3e94d833324e5a8b19b171";
const PAI_N: &str = "bb0c61437ee2f5f9304503eb35f03c5de691c6c99690c8b17f8815f1b38478c3";
const PAI_R1: &str = "0123456789abcdef0123456789abcdef";
const PAI_R2: &str = "feedface00000000deadbeef00000001";
/// `E(1800; r1)` — the paper's domain lower bound as the plaintext.
const PAI_C1: &str = "4243f2cdeb6ef62fb28a45bb827055d76897641a7db559afadb5b76d307b3422\
                      f7713b738c5d13b1a3c33c5f7a72025ad8edf77228fb289db6d9d79cd1204810";
/// `E(5000; r2)` — the domain upper bound.
const PAI_C2: &str = "76843db41b9b8379404491a2f999f3ea573c815c07a30cf7e20c5cfe0f677156\
                      5b29b064dee4c18f58f542302900f670d5bcd161e35d3f47e2c9aefc5759fd50";
/// `E(1800; r1) · E(5000; r2) mod n²` = a ciphertext of 6800.
const PAI_SUM_C: &str = "184b13c8628d1ab80076848005e719795f5f4951b3ac70598eb5635a21dab073\
                         bcfb6f3d056b3e364f8e707ff4f219114dd2f74cf57453f22fd7d5a524c0d371";
/// `E(0; r1)` — the additive identity is *not* the ciphertext 1.
const PAI_ZERO_C: &str = "2d753ef8da474b9834eefd7feeada25ff8ae4741462a90cc61eacc79dda6c8bc\
                          c20c31922c1b0abe015b0753508c6a64acc7ec05185cd767e6da13346968743e";

#[test]
fn paillier_encrypt_kat() {
    let kp = PaillierKeyPair::from_primes(&big(PAI_P), &big(PAI_Q));
    let pk = kp.public();
    assert_eq!(pk.modulus(), &big(PAI_N), "pinned modulus");

    let c1 = pk.encrypt_with_nonce(&BigUint::from_u64(1800), &big(PAI_R1));
    let c2 = pk.encrypt_with_nonce(&BigUint::from_u64(5000), &big(PAI_R2));
    assert_eq!(c1.raw(), &big(PAI_C1));
    assert_eq!(c2.raw(), &big(PAI_C2));

    let sum = pk.add(&c1, &c2);
    assert_eq!(sum.raw(), &big(PAI_SUM_C));
    assert_eq!(kp.decrypt(&sum), BigUint::from_u64(6800));

    let zero = pk.encrypt_with_nonce(&BigUint::zero(), &big(PAI_R1));
    assert_eq!(zero.raw(), &big(PAI_ZERO_C));
    assert_eq!(kp.decrypt(&zero), BigUint::zero());
}

#[test]
fn paillier_nonce_determinism_and_decrypt_round_trip() {
    let kp = PaillierKeyPair::from_primes(&big(PAI_P), &big(PAI_Q));
    let pk = kp.public();
    // Same (m, r) → same ciphertext; different r → different ciphertext.
    let m = BigUint::from_u64(42);
    let a = pk.encrypt_with_nonce(&m, &big(PAI_R1));
    let b = pk.encrypt_with_nonce(&m, &big(PAI_R1));
    let c = pk.encrypt_with_nonce(&m, &big(PAI_R2));
    assert_eq!(a, b);
    assert_ne!(a, c);
    assert_eq!(kp.decrypt(&a), m);
    assert_eq!(kp.decrypt(&c), m);
}
