//! Property-based tests for the arithmetic core of `sies-crypto`.
//!
//! These pin down the ring axioms and division invariants that the SIES
//! homomorphic scheme and the SECOA RSA chains rely on.

use proptest::prelude::*;
use sies_crypto::bigmont::BigMontCtx;
use sies_crypto::biguint::BigUint;
use sies_crypto::mont::MontgomeryCtx;
use sies_crypto::paillier::{PaillierCiphertext, PaillierKeyPair};
use sies_crypto::rsa::RsaKeyPair;
use sies_crypto::u256::U256;
use sies_crypto::DEFAULT_PRIME_256;
use std::sync::OnceLock;

/// Fixed RSA fixture (256-bit modulus, seeded keygen) shared by the CRT
/// differential tests — prime search is too slow per proptest case.
fn rsa_fixture() -> &'static RsaKeyPair {
    static KP: OnceLock<RsaKeyPair> = OnceLock::new();
    KP.get_or_init(|| {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed_0001);
        RsaKeyPair::generate(&mut rng, 256)
    })
}

/// Fixed Paillier fixture (256-bit modulus, seeded keygen).
fn paillier_fixture() -> &'static PaillierKeyPair {
    static KP: OnceLock<PaillierKeyPair> = OnceLock::new();
    KP.get_or_init(|| {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed_0002);
        PaillierKeyPair::generate(&mut rng, 256)
    })
}

/// Strategy: an arbitrary 256-bit value.
fn any_u256() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256::from_limbs)
}

/// Strategy: an arbitrary *odd* modulus ≥ 3 — Montgomery contexts must
/// work over any such modulus, not just the SIES prime.
fn odd_modulus() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(|mut limbs| {
        limbs[0] |= 1;
        let m = U256::from_limbs(limbs);
        if m == U256::ONE {
            U256::from_u64(3)
        } else {
            m
        }
    })
}

/// Strategy: a value within a small distance of 2^256, to hit the
/// carry/borrow edges of the limb arithmetic.
fn near_max_u256() -> impl Strategy<Value = U256> {
    (0u64..4096).prop_map(|d| {
        let (v, _) = U256::MAX.overflowing_sub(&U256::from_u64(d));
        v
    })
}

/// Strategy: an arbitrary BigUint up to ~320 bits.
fn any_biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..=5).prop_map(BigUint::from_limbs)
}

/// Strategy: a non-zero BigUint.
fn nonzero_biguint() -> impl Strategy<Value = BigUint> {
    any_biguint().prop_filter("non-zero", |v| !v.is_zero())
}

/// Strategy: an arbitrary *odd* BigUint modulus ≥ 3, 1–5 limbs wide —
/// exercises every width class of the variable-width Montgomery kernel.
fn odd_big_modulus() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 1..=5).prop_map(|mut limbs| {
        limbs[0] |= 1;
        let m = BigUint::from_limbs(limbs);
        if m == BigUint::one() {
            BigUint::from_u64(3)
        } else {
            m
        }
    })
}

proptest! {
    // ---- BigUint ring axioms -------------------------------------------

    #[test]
    fn add_commutes(a in any_biguint(), b in any_biguint()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associates(a in any_biguint(), b in any_biguint(), c in any_biguint()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn mul_commutes(a in any_biguint(), b in any_biguint()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_associates(a in any_biguint(), b in any_biguint(), c in any_biguint()) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn mul_distributes(a in any_biguint(), b in any_biguint(), c in any_biguint()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn sub_inverts_add(a in any_biguint(), b in any_biguint()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    // ---- Division invariant --------------------------------------------

    #[test]
    fn div_rem_invariant(a in any_biguint(), b in nonzero_biguint()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn shl_shr_round_trip(a in any_biguint(), sh in 0usize..300) {
        prop_assert_eq!(a.shl(sh).shr(sh), a);
    }

    #[test]
    fn byte_round_trip(a in any_biguint()) {
        prop_assert_eq!(BigUint::from_be_bytes(&a.to_be_bytes()), a);
    }

    // ---- Modular arithmetic --------------------------------------------

    #[test]
    fn pow_mod_matches_repeated_mul(base in any_biguint(), e in 0u64..64, m in nonzero_biguint()) {
        let mut naive = if m.bit_len() == 1 { BigUint::zero() } else { BigUint::one() };
        for _ in 0..e {
            naive = naive.mul_mod(&base, &m);
        }
        prop_assert_eq!(base.pow_mod(&BigUint::from_u64(e), &m), naive);
    }

    #[test]
    fn mod_inverse_is_inverse(a in nonzero_biguint(), m in nonzero_biguint()) {
        if let Some(inv) = a.mod_inverse(&m) {
            if m.bit_len() > 1 {
                prop_assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
            }
        } else {
            // No inverse means gcd(a, m) != 1.
            prop_assert!(a.gcd(&m).bit_len() != 1);
        }
    }

    #[test]
    fn gcd_divides_both(a in any_biguint(), b in nonzero_biguint()) {
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    // ---- U256 <-> BigUint agreement ------------------------------------

    #[test]
    fn u256_add_mod_matches_biguint(a in any_u256(), b in any_u256()) {
        let p = DEFAULT_PRIME_256;
        let ar = a.rem(&p);
        let br = b.rem(&p);
        let fixed = ar.add_mod(&br, &p);
        let big = BigUint::from(&ar).add_mod(&BigUint::from(&br), &BigUint::from(&p));
        prop_assert_eq!(BigUint::from(&fixed), big);
    }

    #[test]
    fn u256_mul_mod_matches_biguint(a in any_u256(), b in any_u256()) {
        let p = DEFAULT_PRIME_256;
        let fixed = a.mul_mod(&b, &p);
        let big = BigUint::from(&a).mul_mod(&BigUint::from(&b), &BigUint::from(&p));
        prop_assert_eq!(BigUint::from(&fixed), big);
    }

    #[test]
    fn u256_sub_mod_matches_biguint(a in any_u256(), b in any_u256()) {
        let p = DEFAULT_PRIME_256;
        let pb = BigUint::from(&p);
        let ar = a.rem(&p);
        let br = b.rem(&p);
        let fixed = ar.sub_mod(&br, &p);
        // (a - b) mod p computed as a + (p - b) mod p in BigUint.
        let big = BigUint::from(&ar).add_mod(&pb.sub(&BigUint::from(&br)).rem(&pb), &pb);
        prop_assert_eq!(BigUint::from(&fixed), big);
    }

    #[test]
    fn u256_inverse_round_trip(a in any_u256()) {
        let p = DEFAULT_PRIME_256;
        let ar = a.rem(&p);
        if let Some(inv) = ar.inv_mod_prime(&p) {
            prop_assert_eq!(ar.mul_mod(&inv, &p), U256::ONE);
        } else {
            prop_assert!(ar.is_zero());
        }
    }

    #[test]
    fn u256_byte_round_trip(a in any_u256()) {
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn u256_shifts_consistent_with_biguint(a in any_u256(), sh in 0usize..256) {
        let shifted = a.shr(sh);
        let big = BigUint::from(&a).shr(sh);
        prop_assert_eq!(BigUint::from(&shifted), big);
    }

    // ---- Montgomery vs BigUint over *random odd moduli* -----------------
    //
    // The batched hot paths (EpochCipher, KeyedPrf reduction) assume the
    // Montgomery context agrees with the generic U256 path and the slow
    // BigUint reference for any odd modulus, not just DEFAULT_PRIME_256.

    #[test]
    fn mont_mul_matches_biguint_over_random_odd_moduli(
        a in any_u256(), b in any_u256(), m in odd_modulus()
    ) {
        let ctx = MontgomeryCtx::new(&m);
        let (ar, br) = (a.rem(&m), b.rem(&m));
        let mont = ctx.mul_mod(&ar, &br);
        let generic = ar.mul_mod(&br, &m);
        let reference = BigUint::from(&ar).mul_mod(&BigUint::from(&br), &BigUint::from(&m));
        prop_assert_eq!(mont, generic);
        prop_assert_eq!(BigUint::from(&mont), reference);
    }

    #[test]
    fn mont_pow_matches_biguint_over_random_odd_moduli(
        base in any_u256(), e in 0u64..512, m in odd_modulus()
    ) {
        let ctx = MontgomeryCtx::new(&m);
        let br = base.rem(&m);
        let exp = U256::from_u64(e);
        let mont = ctx.pow_mod(&br, &exp);
        let generic = br.pow_mod(&exp, &m);
        let reference = BigUint::from(&br)
            .pow_mod(&BigUint::from_u64(e), &BigUint::from(&m));
        prop_assert_eq!(mont, generic);
        prop_assert_eq!(BigUint::from(&mont), reference);
    }

    #[test]
    fn inv_mod_euclid_matches_biguint_over_random_odd_moduli(
        a in any_u256(), m in odd_modulus()
    ) {
        let ar = a.rem(&m);
        let fixed = ar.inv_mod_euclid(&m);
        let reference = BigUint::from(&ar).mod_inverse(&BigUint::from(&m));
        match (fixed, reference) {
            (Some(fi), Some(ri)) => {
                prop_assert_eq!(BigUint::from(&fi), ri);
                prop_assert_eq!(ar.mul_mod(&fi, &m), U256::ONE);
            }
            (None, None) => {
                // gcd(a, m) ≠ 1: both sides must agree it is non-invertible.
                prop_assert!(BigUint::from(&ar).gcd(&BigUint::from(&m)).bit_len() != 1);
            }
            (fixed, reference) => {
                prop_assert!(
                    false,
                    "invertibility disagreement: U256 {:?} vs BigUint {:?}",
                    fixed.is_some(),
                    reference.is_some()
                );
            }
        }
    }

    // ---- Carry/borrow edges around 2^256 --------------------------------

    #[test]
    fn add_mod_carry_edges_match_biguint(
        a in near_max_u256(), b in near_max_u256(), m in odd_modulus()
    ) {
        let (ar, br) = (a.rem(&m), b.rem(&m));
        let fixed = ar.add_mod(&br, &m);
        let reference = BigUint::from(&ar).add_mod(&BigUint::from(&br), &BigUint::from(&m));
        prop_assert_eq!(BigUint::from(&fixed), reference);
    }

    #[test]
    fn mul_mod_carry_edges_match_biguint(
        a in near_max_u256(), b in near_max_u256(), m in odd_modulus()
    ) {
        let ctx = MontgomeryCtx::new(&m);
        let (ar, br) = (a.rem(&m), b.rem(&m));
        let mont = ctx.mul_mod(&ar, &br);
        let reference = BigUint::from(&ar).mul_mod(&BigUint::from(&br), &BigUint::from(&m));
        prop_assert_eq!(BigUint::from(&mont), reference);
    }

    #[test]
    fn overflowing_ops_match_biguint_at_the_boundary(
        a in near_max_u256(), b in any_u256()
    ) {
        // Addition: the carry flag is exactly bit 256 of the BigUint sum.
        let (sum, carry) = a.overflowing_add(&b);
        let wide = BigUint::from(&a).add(&BigUint::from(&b));
        prop_assert_eq!(carry, wide.bit_len() > 256);
        let low = BigUint::from_be_bytes(&wide.to_be_bytes())
            .rem(&BigUint::one().shl(256));
        prop_assert_eq!(BigUint::from(&sum), low);

        // Subtraction: borrow iff b > a, and (a - b) wraps mod 2^256.
        let (diff, borrow) = a.overflowing_sub(&b);
        prop_assert_eq!(borrow, BigUint::from(&b) > BigUint::from(&a));
        let rewrapped = if borrow {
            BigUint::from(&diff).add(&BigUint::from(&b)).rem(&BigUint::one().shl(256))
        } else {
            BigUint::from(&diff).add(&BigUint::from(&b))
        };
        prop_assert_eq!(rewrapped, BigUint::from(&a).rem(&BigUint::one().shl(256)));
    }

    #[test]
    fn mont_round_trip_over_random_odd_moduli(a in any_u256(), m in odd_modulus()) {
        let ctx = MontgomeryCtx::new(&m);
        let ar = a.rem(&m);
        prop_assert_eq!(ctx.from_mont(&ctx.to_mont(&ar)), ar);
    }

    // ---- Windowed pow_mod vs the generic oracle -------------------------
    //
    // The fixed-window (w = 4) exponentiation in MontgomeryCtx and
    // BigMontCtx is pinned against the generic square-and-multiply
    // BigUint path: random odd moduli, full-width random exponents, and
    // the classic edge exponents 0, 1, 2^k − 1.

    #[test]
    fn windowed_u256_pow_matches_biguint_full_width(
        base in any_u256(), exp in any_u256(), m in odd_modulus()
    ) {
        let ctx = MontgomeryCtx::new(&m);
        let br = base.rem(&m);
        let mont = ctx.pow_mod(&br, &exp);
        let reference = BigUint::from(&br)
            .pow_mod(&BigUint::from(&exp), &BigUint::from(&m));
        prop_assert_eq!(BigUint::from(&mont), reference);
    }

    #[test]
    fn windowed_u256_pow_edge_exponents(base in any_u256(), k in 1usize..=256, m in odd_modulus()) {
        let ctx = MontgomeryCtx::new(&m);
        let br = base.rem(&m);
        // e ∈ {0, 1, 2^k − 1}: empty, trivial, and all-ones windows.
        for exp in [U256::ZERO, U256::ONE, U256::low_mask(k)] {
            let reference = BigUint::from(&br)
                .pow_mod(&BigUint::from(&exp), &BigUint::from(&m));
            prop_assert_eq!(BigUint::from(&ctx.pow_mod(&br, &exp)), reference);
        }
    }

    #[test]
    fn bigmont_mul_matches_biguint(a in any_biguint(), b in any_biguint(), m in odd_big_modulus()) {
        let ctx = BigMontCtx::new(&m);
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &m));
    }

    #[test]
    fn bigmont_pow_matches_biguint(base in any_biguint(), exp in any_biguint(), m in odd_big_modulus()) {
        let ctx = BigMontCtx::new(&m);
        prop_assert_eq!(ctx.pow_mod(&base, &exp), base.pow_mod(&exp, &m));
    }

    #[test]
    fn bigmont_pow_edge_exponents(base in any_biguint(), k in 1usize..=320, m in odd_big_modulus()) {
        let ctx = BigMontCtx::new(&m);
        let ones = BigUint::one().shl(k).sub(&BigUint::one());
        for exp in [BigUint::zero(), BigUint::one(), ones] {
            prop_assert_eq!(ctx.pow_mod(&base, &exp), base.pow_mod(&exp, &m));
        }
    }

    #[test]
    fn bigmont_chain_matches_repeated_generic_pow(
        base in any_biguint(), e in 2u64..64, k in 0u64..12, m in odd_big_modulus()
    ) {
        let ctx = BigMontCtx::new(&m);
        let e = BigUint::from_u64(e);
        let mut generic = base.rem(&m);
        for _ in 0..k {
            generic = generic.pow_mod(&e, &m);
        }
        prop_assert_eq!(ctx.chain_pow_mod(&base, &e, k), generic);
    }

    #[test]
    fn bigmont_product_matches_generic_fold(
        values in proptest::collection::vec(any_biguint(), 0..=24), m in odd_big_modulus()
    ) {
        let ctx = BigMontCtx::new(&m);
        let mut expect = if m.bit_len() == 1 { BigUint::zero() } else { BigUint::one() };
        for v in &values {
            expect = expect.mul_mod(v, &m);
        }
        prop_assert_eq!(ctx.product_mod(values.iter()), expect);
    }

    // ---- Lane-interleaved batch bignum vs the mapped scalar oracle ------
    //
    // The W-lane CIOS kernels (`bigmontxn`) must be element-wise
    // identical to mapping the scalar `BigMontCtx` ops — for any odd
    // modulus width, any batch size (including ragged tails where
    // n % 4 and n % 8 ≠ 0), edge exponents 0 / 1 / 2^k − 1, and every
    // scheduling width {1, 4, 8, 16}.

    #[test]
    fn batch_pow_matches_mapped_scalar(
        bases in proptest::collection::vec(any_biguint(), 0..=19),
        exp in any_biguint(),
        m in odd_big_modulus(),
        width_sel in 0usize..4,
    ) {
        use sies_crypto::bigmontxn;
        let ctx = BigMontCtx::new(&m);
        let width = [1usize, 4, 8, 16][width_sel];
        let got = bigmontxn::pow_mod_many_with(width, &ctx, &bases, &exp);
        prop_assert_eq!(got.len(), bases.len());
        for (b, g) in bases.iter().zip(&got) {
            prop_assert_eq!(g, &ctx.pow_mod(b, &exp));
        }
    }

    #[test]
    fn batch_pow_edge_exponents(
        bases in proptest::collection::vec(any_biguint(), 1..=9),
        k in 1usize..=320,
        m in odd_big_modulus(),
        width_sel in 0usize..4,
    ) {
        use sies_crypto::bigmontxn;
        let ctx = BigMontCtx::new(&m);
        let width = [1usize, 4, 8, 16][width_sel];
        let ones = BigUint::one().shl(k).sub(&BigUint::one());
        for exp in [BigUint::zero(), BigUint::one(), ones] {
            let got = bigmontxn::pow_mod_many_with(width, &ctx, &bases, &exp);
            for (b, g) in bases.iter().zip(&got) {
                prop_assert_eq!(g, &ctx.pow_mod(b, &exp));
            }
        }
    }

    #[test]
    fn batch_chain_matches_mapped_scalar(
        bases in proptest::collection::vec(any_biguint(), 0..=13),
        e in 2u64..64,
        k in 0u64..8,
        m in odd_big_modulus(),
        width_sel in 0usize..4,
    ) {
        use sies_crypto::bigmontxn;
        let ctx = BigMontCtx::new(&m);
        let width = [1usize, 4, 8, 16][width_sel];
        let e = BigUint::from_u64(e);
        let got = bigmontxn::chain_pow_mod_many_with(width, &ctx, &bases, &e, k);
        prop_assert_eq!(got.len(), bases.len());
        for (b, g) in bases.iter().zip(&got) {
            prop_assert_eq!(g, &ctx.chain_pow_mod(b, &e, k));
        }
    }

    #[test]
    fn batch_fold_matches_mapped_scalar(
        lists in proptest::collection::vec(
            proptest::collection::vec(any_biguint(), 0..=9), 0..=11
        ),
        m in odd_big_modulus(),
        width_sel in 0usize..4,
    ) {
        use sies_crypto::bigmontxn;
        let ctx = BigMontCtx::new(&m);
        let width = [1usize, 4, 8, 16][width_sel];
        let refs: Vec<&[BigUint]> = lists.iter().map(|l| l.as_slice()).collect();
        let got = bigmontxn::fold_many_with(width, &ctx, &refs);
        prop_assert_eq!(got.len(), lists.len());
        for (list, g) in lists.iter().zip(&got) {
            prop_assert_eq!(g, &ctx.product_mod(list.iter()));
        }
    }

    #[test]
    fn wide_product_matches_serial_product(
        values in proptest::collection::vec(any_biguint(), 0..=40),
        m in odd_big_modulus(),
    ) {
        use sies_crypto::bigmontxn;
        let ctx = BigMontCtx::new(&m);
        prop_assert_eq!(
            bigmontxn::product_mod_wide(&ctx, &values),
            ctx.product_mod(values.iter())
        );
    }

    // ---- CRT private-key ops vs the generic oracle ----------------------

    #[test]
    fn crt_rsa_decrypt_matches_generic(seed in any::<u64>()) {
        let kp = rsa_fixture();
        // Derive a ciphertext-range value deterministically from the seed.
        let c = BigUint::from_u64(seed | 1)
            .mul(&BigUint::from_u64(0x9E37_79B9_7F4A_7C15))
            .pow_mod(&BigUint::from_u64(3), kp.public().modulus());
        prop_assert_eq!(kp.decrypt(&c), kp.decrypt_generic(&c));
    }

    #[test]
    fn crt_rsa_round_trips(m in any::<u64>()) {
        let kp = rsa_fixture();
        let m = BigUint::from_u64(m);
        prop_assert_eq!(kp.decrypt(&kp.public().encrypt(&m)), m);
    }

    #[test]
    fn crt_paillier_decrypt_matches_generic(m in any::<u64>(), r_seed in 2u64..u64::MAX) {
        let kp = paillier_fixture();
        let m = BigUint::from_u64(m).rem(kp.public().modulus());
        let r = BigUint::from_u64(r_seed).rem(kp.public().modulus());
        prop_assume!(!r.is_zero());
        let c = kp.public().encrypt_with_nonce(&m, &r);
        prop_assert_eq!(kp.decrypt(&c), m.clone());
        prop_assert_eq!(kp.decrypt_generic(&c), m);
    }

    #[test]
    fn crt_paillier_decrypt_matches_generic_on_raw_group_elements(limbs in any::<[u64; 7]>()) {
        let kp = paillier_fixture();
        let n2 = kp.public().modulus().mul(kp.public().modulus());
        let c = BigUint::from_limbs(limbs.to_vec()).rem(&n2);
        prop_assume!(!c.is_zero());
        let c = PaillierCiphertext::from_raw(c);
        prop_assert_eq!(kp.decrypt(&c), kp.decrypt_generic(&c));
    }

    // ---- Batch inversion vs per-element Euclid --------------------------

    #[test]
    fn batch_inversion_matches_per_element(
        values in proptest::collection::vec(any_u256(), 0..=24), m in odd_modulus()
    ) {
        let batch = U256::batch_inv_mod(&values, &m);
        prop_assert_eq!(batch.len(), values.len());
        for (v, got) in values.iter().zip(&batch) {
            let serial = v.rem(&m).inv_mod_euclid(&m);
            prop_assert_eq!(*got, serial);
            if let Some(inv) = got {
                prop_assert_eq!(v.rem(&m).mul_mod(inv, &m), U256::ONE.rem(&m));
            }
        }
    }

    #[test]
    fn batch_inversion_with_zeros_and_non_units(
        values in proptest::collection::vec(any_u256(), 1..=12),
        zero_at in 0usize..12, m in odd_modulus()
    ) {
        // Force a zero entry (and, for composite m, likely non-units) so
        // the None paths and the non-invertible-product fallback run.
        let mut values = values;
        let idx = zero_at % values.len();
        values[idx] = U256::ZERO;
        let batch = U256::batch_inv_mod(&values, &m);
        prop_assert_eq!(batch[idx], None);
        for (v, got) in values.iter().zip(&batch) {
            prop_assert_eq!(*got, v.rem(&m).inv_mod_euclid(&m));
        }
    }

    // ---- Batched PRFs vs the mapped scalar oracle -----------------------
    //
    // The multi-lane fan-out (hm1_epoch_many / hm256_epoch_many /
    // derive_mod_p_many, plus the generic HMAC batch constructors) must
    // be element-wise identical to the scalar PRFs for any key material,
    // any epoch, and any batch size — including ragged tails where
    // n % 4 and n % 8 ≠ 0 — at every scheduling width.

    #[test]
    fn batched_epoch_prfs_match_scalar(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..=80), 0..=19),
        epoch in any::<u64>(),
        width_sel in 0usize..4,
    ) {
        use sies_crypto::prf::{self, KeyedPrf};
        let width = [1usize, 4, 8, 16][width_sel];
        sies_crypto::lanes::set_lane_width(width);
        let prfs: Vec<KeyedPrf> = keys.iter().map(|k| KeyedPrf::new(k)).collect();
        let hm1s = prf::hm1_epoch_many(&prfs, epoch);
        let hm256s = prf::hm256_epoch_many(&prfs, epoch);
        let derived = prf::derive_mod_p_many(&prfs, epoch, &DEFAULT_PRIME_256);
        sies_crypto::lanes::clear_lane_width();
        prop_assert_eq!(hm1s.len(), keys.len());
        for (i, key) in keys.iter().enumerate() {
            prop_assert_eq!(hm1s[i], prf::hm1_epoch(key, epoch));
            prop_assert_eq!(hm256s[i], prf::hm256_epoch(key, epoch));
            prop_assert_eq!(derived[i], prf::derive_mod(key, epoch, &DEFAULT_PRIME_256));
        }
    }

    #[test]
    fn batched_hmac_matches_scalar(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..=80), 0..=13),
        msg in proptest::collection::vec(any::<u8>(), 0..=120),
        width_sel in 0usize..4,
    ) {
        use sies_crypto::hmac::{hmac, hmac_many};
        use sies_crypto::sha1::Sha1;
        use sies_crypto::sha256::Sha256;
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        sies_crypto::lanes::set_lane_width([1usize, 4, 8, 16][width_sel]);
        let got1 = hmac_many::<Sha1>(&refs, &msg);
        let got256 = hmac_many::<Sha256>(&refs, &msg);
        sies_crypto::lanes::clear_lane_width();
        for (i, key) in keys.iter().enumerate() {
            prop_assert_eq!(&got1[i], &hmac::<Sha1>(key, &msg));
            prop_assert_eq!(&got256[i], &hmac::<Sha256>(key, &msg));
        }
    }

    // ---- The one-time-pad homomorphism (paper §III-D) ------------------

    #[test]
    fn homomorphic_sum_of_two(m1 in any::<u64>(), m2 in any::<u64>(), kt_seed in any::<u64>(), k1 in any_u256(), k2 in any_u256()) {
        let p = DEFAULT_PRIME_256;
        let kt = U256::from_u64(kt_seed | 1); // non-zero
        let k1 = k1.rem(&p);
        let k2 = k2.rem(&p);
        let m1 = U256::from_u64(m1);
        let m2 = U256::from_u64(m2);
        // E(m) = K_t * m + k mod p
        let c1 = kt.mul_mod(&m1, &p).add_mod(&k1, &p);
        let c2 = kt.mul_mod(&m2, &p).add_mod(&k2, &p);
        let c = c1.add_mod(&c2, &p);
        // D(c, K_t, k1+k2)
        let ksum = k1.add_mod(&k2, &p);
        let dec = c.sub_mod(&ksum, &p).mul_mod(&kt.inv_mod_prime(&p).unwrap(), &p);
        let expected = m1.add_mod(&m2, &p);
        prop_assert_eq!(dec, expected);
    }
}
