//! Property-based tests for the arithmetic core of `sies-crypto`.
//!
//! These pin down the ring axioms and division invariants that the SIES
//! homomorphic scheme and the SECOA RSA chains rely on.

use proptest::prelude::*;
use sies_crypto::biguint::BigUint;
use sies_crypto::u256::U256;
use sies_crypto::DEFAULT_PRIME_256;

/// Strategy: an arbitrary 256-bit value.
fn any_u256() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256::from_limbs)
}

/// Strategy: an arbitrary BigUint up to ~320 bits.
fn any_biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..=5).prop_map(BigUint::from_limbs)
}

/// Strategy: a non-zero BigUint.
fn nonzero_biguint() -> impl Strategy<Value = BigUint> {
    any_biguint().prop_filter("non-zero", |v| !v.is_zero())
}

proptest! {
    // ---- BigUint ring axioms -------------------------------------------

    #[test]
    fn add_commutes(a in any_biguint(), b in any_biguint()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associates(a in any_biguint(), b in any_biguint(), c in any_biguint()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn mul_commutes(a in any_biguint(), b in any_biguint()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_associates(a in any_biguint(), b in any_biguint(), c in any_biguint()) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn mul_distributes(a in any_biguint(), b in any_biguint(), c in any_biguint()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn sub_inverts_add(a in any_biguint(), b in any_biguint()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    // ---- Division invariant --------------------------------------------

    #[test]
    fn div_rem_invariant(a in any_biguint(), b in nonzero_biguint()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn shl_shr_round_trip(a in any_biguint(), sh in 0usize..300) {
        prop_assert_eq!(a.shl(sh).shr(sh), a);
    }

    #[test]
    fn byte_round_trip(a in any_biguint()) {
        prop_assert_eq!(BigUint::from_be_bytes(&a.to_be_bytes()), a);
    }

    // ---- Modular arithmetic --------------------------------------------

    #[test]
    fn pow_mod_matches_repeated_mul(base in any_biguint(), e in 0u64..64, m in nonzero_biguint()) {
        let mut naive = if m.bit_len() == 1 { BigUint::zero() } else { BigUint::one() };
        for _ in 0..e {
            naive = naive.mul_mod(&base, &m);
        }
        prop_assert_eq!(base.pow_mod(&BigUint::from_u64(e), &m), naive);
    }

    #[test]
    fn mod_inverse_is_inverse(a in nonzero_biguint(), m in nonzero_biguint()) {
        if let Some(inv) = a.mod_inverse(&m) {
            if m.bit_len() > 1 {
                prop_assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
            }
        } else {
            // No inverse means gcd(a, m) != 1.
            prop_assert!(a.gcd(&m).bit_len() != 1);
        }
    }

    #[test]
    fn gcd_divides_both(a in any_biguint(), b in nonzero_biguint()) {
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    // ---- U256 <-> BigUint agreement ------------------------------------

    #[test]
    fn u256_add_mod_matches_biguint(a in any_u256(), b in any_u256()) {
        let p = DEFAULT_PRIME_256;
        let ar = a.rem(&p);
        let br = b.rem(&p);
        let fixed = ar.add_mod(&br, &p);
        let big = BigUint::from(&ar).add_mod(&BigUint::from(&br), &BigUint::from(&p));
        prop_assert_eq!(BigUint::from(&fixed), big);
    }

    #[test]
    fn u256_mul_mod_matches_biguint(a in any_u256(), b in any_u256()) {
        let p = DEFAULT_PRIME_256;
        let fixed = a.mul_mod(&b, &p);
        let big = BigUint::from(&a).mul_mod(&BigUint::from(&b), &BigUint::from(&p));
        prop_assert_eq!(BigUint::from(&fixed), big);
    }

    #[test]
    fn u256_sub_mod_matches_biguint(a in any_u256(), b in any_u256()) {
        let p = DEFAULT_PRIME_256;
        let pb = BigUint::from(&p);
        let ar = a.rem(&p);
        let br = b.rem(&p);
        let fixed = ar.sub_mod(&br, &p);
        // (a - b) mod p computed as a + (p - b) mod p in BigUint.
        let big = BigUint::from(&ar).add_mod(&pb.sub(&BigUint::from(&br)).rem(&pb), &pb);
        prop_assert_eq!(BigUint::from(&fixed), big);
    }

    #[test]
    fn u256_inverse_round_trip(a in any_u256()) {
        let p = DEFAULT_PRIME_256;
        let ar = a.rem(&p);
        if let Some(inv) = ar.inv_mod_prime(&p) {
            prop_assert_eq!(ar.mul_mod(&inv, &p), U256::ONE);
        } else {
            prop_assert!(ar.is_zero());
        }
    }

    #[test]
    fn u256_byte_round_trip(a in any_u256()) {
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn u256_shifts_consistent_with_biguint(a in any_u256(), sh in 0usize..256) {
        let shifted = a.shr(sh);
        let big = BigUint::from(&a).shr(sh);
        prop_assert_eq!(BigUint::from(&shifted), big);
    }

    // ---- The one-time-pad homomorphism (paper §III-D) ------------------

    #[test]
    fn homomorphic_sum_of_two(m1 in any::<u64>(), m2 in any::<u64>(), kt_seed in any::<u64>(), k1 in any_u256(), k2 in any_u256()) {
        let p = DEFAULT_PRIME_256;
        let kt = U256::from_u64(kt_seed | 1); // non-zero
        let k1 = k1.rem(&p);
        let k2 = k2.rem(&p);
        let m1 = U256::from_u64(m1);
        let m2 = U256::from_u64(m2);
        // E(m) = K_t * m + k mod p
        let c1 = kt.mul_mod(&m1, &p).add_mod(&k1, &p);
        let c2 = kt.mul_mod(&m2, &p).add_mod(&k2, &p);
        let c = c1.add_mod(&c2, &p);
        // D(c, K_t, k1+k2)
        let ksum = k1.add_mod(&k2, &p);
        let dec = c.sub_mod(&ksum, &p).mul_mod(&kt.inv_mod_prime(&p).unwrap(), &p);
        let expected = m1.add_mod(&m2, &p);
        prop_assert_eq!(dec, expected);
    }
}
