//! Low-level multi-precision limb arithmetic shared by [`crate::u256`] and
//! [`crate::biguint`].
//!
//! Numbers are little-endian slices of `u64` limbs. All routines here are
//! allocation-free except [`div_rem`], which returns owned quotient and
//! remainder vectors. The division routine is Knuth's Algorithm D (TAOCP
//! vol. 2, §4.3.1) with the usual normalization and add-back steps.

/// Add with carry: returns `a + b + carry` as `(sum, carry_out)`.
#[inline(always)]
pub fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let wide = (a as u128) + (b as u128) + (carry as u128);
    (wide as u64, (wide >> 64) as u64)
}

/// Subtract with borrow: returns `a - b - borrow` as `(diff, borrow_out)`,
/// where `borrow_out` is 1 when the subtraction wrapped.
#[inline(always)]
pub fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let wide = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (wide as u64, ((wide >> 64) as u64) & 1)
}

/// Multiply-accumulate: computes `acc + a * b + carry`, returning the low
/// limb and the new carry.
#[inline(always)]
pub fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let wide = (acc as u128) + (a as u128) * (b as u128) + (carry as u128);
    (wide as u64, (wide >> 64) as u64)
}

/// Compares two limb slices as little-endian integers. Slices may have
/// different lengths; higher limbs missing from the shorter slice are
/// treated as zero.
pub fn cmp(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    use core::cmp::Ordering;
    let n = a.len().max(b.len());
    for i in (0..n).rev() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        match x.cmp(&y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// Number of significant limbs (index of the highest non-zero limb plus one).
pub fn significant_limbs(a: &[u64]) -> usize {
    let mut n = a.len();
    while n > 0 && a[n - 1] == 0 {
        n -= 1;
    }
    n
}

/// Number of significant bits.
pub fn bit_len(a: &[u64]) -> usize {
    let n = significant_limbs(a);
    if n == 0 {
        0
    } else {
        n * 64 - a[n - 1].leading_zeros() as usize
    }
}

/// In-place addition `a += b`, returning the final carry. `b` may be shorter
/// than `a`; the carry propagates through the remaining limbs of `a`.
pub fn add_assign(a: &mut [u64], b: &[u64]) -> u64 {
    debug_assert!(a.len() >= b.len());
    let mut carry = 0;
    for (i, ai) in a.iter_mut().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        if i >= b.len() && carry == 0 {
            break;
        }
        let (s, c) = adc(*ai, bi, carry);
        *ai = s;
        carry = c;
    }
    carry
}

/// In-place subtraction `a -= b`, returning the final borrow (1 when
/// `b > a`, in which case `a` holds the wrapped value).
pub fn sub_assign(a: &mut [u64], b: &[u64]) -> u64 {
    debug_assert!(a.len() >= b.len());
    let mut borrow = 0;
    for (i, ai) in a.iter_mut().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        if i >= b.len() && borrow == 0 {
            break;
        }
        let (d, br) = sbb(*ai, bi, borrow);
        *ai = d;
        borrow = br;
    }
    borrow
}

/// Schoolbook multiplication: `out = a * b`. `out` must have length at least
/// `a.len() + b.len()` and is fully overwritten.
pub fn mul(out: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert!(out.len() >= a.len() + b.len());
    for limb in out.iter_mut() {
        *limb = 0;
    }
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, c) = mac(out[i + j], ai, bj, carry);
            out[i + j] = lo;
            carry = c;
        }
        out[i + b.len()] = carry;
    }
}

/// Left shift by `sh` bits (`sh < 64`) into `out`, which must have
/// `a.len() + 1` limbs. Returns nothing; the extra top limb receives the
/// shifted-out bits.
fn shl_small(out: &mut [u64], a: &[u64], sh: u32) {
    debug_assert_eq!(out.len(), a.len() + 1);
    if sh == 0 {
        out[..a.len()].copy_from_slice(a);
        out[a.len()] = 0;
        return;
    }
    let mut prev = 0u64;
    for (i, &ai) in a.iter().enumerate() {
        out[i] = (ai << sh) | (prev >> (64 - sh));
        prev = ai;
    }
    out[a.len()] = prev >> (64 - sh);
}

/// Right shift by `sh` bits (`sh < 64`) in place.
fn shr_small(a: &mut [u64], sh: u32) {
    if sh == 0 {
        return;
    }
    let n = a.len();
    for i in 0..n {
        let hi = if i + 1 < n { a[i + 1] } else { 0 };
        a[i] = (a[i] >> sh) | (hi << (64 - sh));
    }
}

/// Divides `u` by `v`, returning `(quotient, remainder)` as little-endian
/// limb vectors trimmed of leading zeros (the zero value is an empty vec).
///
/// # Panics
///
/// Panics if `v` is zero.
pub fn div_rem(u: &[u64], v: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let un = significant_limbs(u);
    let vn = significant_limbs(v);
    assert!(vn > 0, "division by zero");

    if cmp(u, v) == core::cmp::Ordering::Less {
        return (Vec::new(), u[..un].to_vec());
    }

    // Single-limb divisor: simple short division.
    if vn == 1 {
        let d = v[0];
        let mut q = vec![0u64; un];
        let mut rem: u64 = 0;
        for i in (0..un).rev() {
            let cur = ((rem as u128) << 64) | u[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = (cur % d as u128) as u64;
        }
        trim(&mut q);
        let r = if rem == 0 { Vec::new() } else { vec![rem] };
        return (q, r);
    }

    // Knuth Algorithm D. Normalize so the divisor's top limb has its most
    // significant bit set; this guarantees the trial quotient is off by at
    // most 2 and the add-back step runs with probability ~2/2^64.
    let sh = v[vn - 1].leading_zeros();
    let mut vnorm = vec![0u64; vn + 1];
    shl_small(&mut vnorm, &v[..vn], sh);
    vnorm.truncate(vn); // top limb of the shift is zero by construction
    let mut unorm = vec![0u64; un + 1];
    shl_small(&mut unorm, &u[..un], sh);

    let m = un - vn; // quotient has at most m + 1 limbs
    let mut q = vec![0u64; m + 1];
    let vtop = vnorm[vn - 1];
    let vsecond = vnorm[vn - 2];

    for j in (0..=m).rev() {
        // Estimate q̂ from the top two limbs of the current remainder window
        // against the top limb of the divisor.
        let numer = ((unorm[j + vn] as u128) << 64) | unorm[j + vn - 1] as u128;
        let mut qhat = numer / vtop as u128;
        let mut rhat = numer % vtop as u128;
        // Correct q̂ downward using the second divisor limb.
        while qhat >> 64 != 0 || qhat * vsecond as u128 > ((rhat << 64) | unorm[j + vn - 2] as u128)
        {
            qhat -= 1;
            rhat += vtop as u128;
            if rhat >> 64 != 0 {
                break;
            }
        }
        let mut qhat = qhat as u64;

        // Multiply-subtract: window -= q̂ * v.
        let mut borrow: u64 = 0;
        let mut carry: u64 = 0;
        for i in 0..vn {
            let (p_lo, p_hi) = {
                let wide = (qhat as u128) * (vnorm[i] as u128) + carry as u128;
                (wide as u64, (wide >> 64) as u64)
            };
            carry = p_hi;
            let (d, br) = sbb(unorm[j + i], p_lo, borrow);
            unorm[j + i] = d;
            borrow = br;
        }
        let (d, br) = sbb(unorm[j + vn], carry, borrow);
        unorm[j + vn] = d;

        // Add-back: the estimate was one too large.
        if br != 0 {
            qhat -= 1;
            let mut c = 0u64;
            for i in 0..vn {
                let (s, cc) = adc(unorm[j + i], vnorm[i], c);
                unorm[j + i] = s;
                c = cc;
            }
            unorm[j + vn] = unorm[j + vn].wrapping_add(c);
        }
        q[j] = qhat;
    }

    // Denormalize the remainder.
    unorm.truncate(vn);
    shr_small(&mut unorm, sh);
    trim(&mut q);
    trim(&mut unorm);
    (q, unorm)
}

/// Removes leading zero limbs in place.
pub fn trim(a: &mut Vec<u64>) {
    while a.last() == Some(&0) {
        a.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_u128(limbs: &[u64]) -> u128 {
        match limbs.len() {
            0 => 0,
            1 => limbs[0] as u128,
            2 => (limbs[1] as u128) << 64 | limbs[0] as u128,
            _ => panic!("too wide for u128"),
        }
    }

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u64::MAX, 1));
    }

    #[test]
    fn mul_small() {
        let mut out = [0u64; 4];
        mul(&mut out, &[3, 0], &[4, 0]);
        assert_eq!(out, [12, 0, 0, 0]);
    }

    #[test]
    fn mul_carries_across_limbs() {
        let mut out = [0u64; 2];
        mul(&mut out, &[u64::MAX], &[u64::MAX]);
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        assert_eq!(to_u128(&out), (u64::MAX as u128) * (u64::MAX as u128));
    }

    #[test]
    fn div_rem_u128_cases() {
        let cases: &[(u128, u128)] = &[
            (0, 1),
            (1, 1),
            (100, 7),
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128),
            (u128::MAX, (u64::MAX as u128) + 1),
            (1 << 127, (1 << 64) + 12345),
        ];
        for &(a, b) in cases {
            let u = [a as u64, (a >> 64) as u64];
            let v = [b as u64, (b >> 64) as u64];
            let (q, r) = div_rem(&u, &v);
            assert_eq!(to_u128(&q), a / b, "quotient for {a}/{b}");
            assert_eq!(to_u128(&r), a % b, "remainder for {a}/{b}");
        }
    }

    #[test]
    fn div_rem_triggers_addback_region() {
        // A divisor with max top limb and a dividend shaped to stress the
        // qhat correction loop.
        let u = [0, 0, 1, u64::MAX, u64::MAX];
        let v = [u64::MAX, u64::MAX, u64::MAX >> 1];
        let (q, r) = div_rem(&u, &v);
        // Verify u = q*v + r and r < v.
        let mut check = vec![0u64; q.len() + v.len()];
        mul(&mut check, &q, &v);
        let carry = add_assign(&mut check, &r);
        assert_eq!(carry, 0);
        assert_eq!(cmp(&check, &u), core::cmp::Ordering::Equal);
        assert_eq!(cmp(&r, &v), core::cmp::Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div_rem(&[1], &[0]);
    }

    #[test]
    fn bit_len_and_significant() {
        assert_eq!(bit_len(&[0, 0]), 0);
        assert_eq!(bit_len(&[1]), 1);
        assert_eq!(bit_len(&[0, 1]), 65);
        assert_eq!(significant_limbs(&[0, 5, 0]), 2);
    }
}
