//! SHA-1 (FIPS 180-4).
//!
//! SIES uses SHA-1 only inside `HM1(·)`, the HMAC PRF that derives the
//! 20-byte secret shares `ss_{i,t}` (paper §IV-A). Collision attacks on
//! SHA-1 do not affect its use as an HMAC PRF here; we keep it to match the
//! paper's sizes and cost model (`C_HM1`, 20-byte digests) exactly.

use crate::hash::{HashFunction, LaneHash};

pub(crate) const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

/// Incremental SHA-1 state.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffered: usize,
    /// Total message length in bytes.
    length: u64,
}

impl Sha1 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl HashFunction for Sha1 {
    const BLOCK_SIZE: usize = 64;
    const OUTPUT_SIZE: usize = 20;
    const NAME: &'static str = "SHA-1";

    fn new() -> Self {
        Sha1 {
            state: H0,
            buffer: [0; 64],
            buffered: 0,
            length: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        // Fill any partial buffer first.
        if self.buffered > 0 {
            let take = data.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
            if data.is_empty() {
                return; // everything fit in the partial buffer
            }
        }
        // Whole blocks straight from the input.
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            self.compress(chunk.try_into().unwrap());
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Appending the length runs exactly one more compression.
        self.length = 0; // irrelevant from here on
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = Vec::with_capacity(20);
        for word in self.state {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

impl LaneHash for Sha1 {
    const STATE_WORDS: usize = 5;

    fn chain_state(&self) -> [u32; 8] {
        let mut out = [0u32; 8];
        out[..5].copy_from_slice(&self.state);
        out
    }

    fn from_midstate(state: [u32; 8], length: u64) -> Self {
        debug_assert!(
            length.is_multiple_of(64),
            "midstate must sit on a block boundary"
        );
        Sha1 {
            state: state[..5].try_into().unwrap(),
            buffer: [0; 64],
            buffered: 0,
            length,
        }
    }

    fn pending(&self) -> (&[u8], u64) {
        (&self.buffer[..self.buffered], self.length)
    }

    fn compress_lanes(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
        crate::sha1xn::compress_many(states, blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180 / RFC 3174 test vectors.
    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..997u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha1::digest(&data);
        // Feed in awkward chunk sizes that straddle block boundaries.
        for chunk_size in [1, 7, 63, 64, 65, 130] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn output_size_is_20_bytes() {
        assert_eq!(Sha1::digest(b"x").len(), Sha1::OUTPUT_SIZE);
    }
}
