//! W-lane Montgomery batch kernels: lane-interleaved CIOS over W
//! independent operands sharing one modulus (W ∈ {4, 8}).
//!
//! [`crate::bigmont::BigMontCtx`] makes a *single* modular multiply
//! cheap; this module makes *many* of them cheap. A 64×64→128 multiply
//! does not vectorize, so unlike the hash lanes the win here is not SIMD
//! width — it is the carry chain: scalar CIOS is a serial chain of
//! multiply-accumulates, and one chain leaves the multiplier pipeline
//! mostly idle. Interleaving the limbs of W independent operands into a
//! struct-of-lanes block (`limb j of lane l` at index `j·W + l`) gives
//! the out-of-order core W independent carry chains per inner-loop pass,
//! so [`cios_w`] retires close to one multiply per cycle where the
//! scalar kernel retires one per chain-latency.
//!
//! The batch entry points mirror their scalar counterparts bit for bit —
//! same window schedule, same conditional-subtract rule, same canonical
//! output — so callers can batch opportunistically:
//!
//! * [`pow_mod_many`] ≡ mapped [`BigMontCtx::pow_mod`] (one shared
//!   exponent: all lanes walk the same 4-bit window schedule);
//! * [`chain_pow_mod_many`] ≡ mapped [`BigMontCtx::chain_pow_mod`]
//!   (SEAL rolling: whole chains stay in-domain across all lanes);
//! * [`fold_many`] ≡ mapped [`BigMontCtx::product_mod`] over W ragged
//!   value lists (SECOA per-sketch seed products), and
//!   [`product_mod_wide`] lane-splits one big product (the verifier's
//!   N·J seed fold);
//!
//! Ragged lanes are padded with `r1 = R mod m`, which is the exact
//! identity of the CIOS monoid (`acc ∘ r1 = acc·R·R⁻¹ = acc`, already
//! canonical), so padding changes no bytes and costs no fix-up. The
//! residual `R⁻¹` factors of a fold are cancelled per lane with the same
//! `O(log k)` [`BigMontCtx::r_power`] fix-up the scalar accumulator
//! uses.
//!
//! Like the hash kernels ([`crate::sha256xn`]), each chunk body is one
//! safe generic fn compiled twice more under `#[target_feature]` (AVX2,
//! AVX-512F) and dispatched per chunk behind `is_x86_feature_detected!`;
//! the extra registers let the W-wide carry arrays live in registers
//! instead of spilling. The batch width follows the global
//! [`crate::lanes`] knob, capped at [`MAX_BIG_LANES`]: beyond 8 lanes of
//! 64-bit carries the register file is exhausted and wider blocks lose
//! to two x8 passes.

use crate::bigmont::{self, BigMontCtx, SMALL_EXP_BITS, WINDOW_BITS};
use crate::bigmont52;
use crate::biguint::BigUint;
use crate::lanes;
use crate::limbs;
use core::cmp::Ordering;
use sies_telemetry as tel;

/// Widest bignum lane instantiation (the hash kernels go to 16; the
/// bignum carry arrays exhaust the register file beyond 8).
pub const MAX_BIG_LANES: usize = 8;

/// The batch width the bignum schedulers use right now: the global lane
/// knob clamped to [`MAX_BIG_LANES`].
pub fn big_lane_width() -> usize {
    lanes::lane_width().min(MAX_BIG_LANES)
}

/// `out[l] = a[l]·b[l]·R⁻¹ mod m` for W interleaved lanes.
///
/// `m` is the shared `n`-limb modulus; `a`, `b`, `t` (scratch) and `out`
/// are `n·W` interleaved blocks. Row structure is identical to the
/// scalar [`BigMontCtx`] CIOS — fused multiply+reduce, carries in
/// registers (`[u64; W]` arrays), one shift-down store per limb — with
/// the lane loop innermost so the W carry chains interleave.
// Indexed lane loops throughout: `block[j * W + l]` is the interleaved
// layout itself; iterators cannot express the strided taps.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn cios_w<const W: usize>(
    m: &[u64],
    n_prime: u64,
    a: &[u64],
    b: &[u64],
    t: &mut [u64],
    out: &mut [u64],
) {
    let n = m.len();
    debug_assert!(a.len() == n * W && b.len() == n * W);
    debug_assert!(t.len() >= n * W && out.len() == n * W);
    let t = &mut t[..n * W];
    for limb in t.iter_mut() {
        *limb = 0;
    }
    let mut t_hi = [0u64; W];
    for i in 0..n {
        let mut bi = [0u64; W];
        for l in 0..W {
            bi[l] = b[i * W + l];
        }
        let mut carry_a = [0u64; W];
        let mut carry_m = [0u64; W];
        let mut u = [0u64; W];
        for l in 0..W {
            let (t0, ca) = limbs::mac(t[l], a[l], bi[l], 0);
            carry_a[l] = ca;
            u[l] = t0.wrapping_mul(n_prime);
            let (_, cm) = limbs::mac(t0, u[l], m[0], 0);
            carry_m[l] = cm;
        }
        for j in 1..n {
            let mj = m[j];
            for l in 0..W {
                let (tj, ca) = limbs::mac(t[j * W + l], a[j * W + l], bi[l], carry_a[l]);
                carry_a[l] = ca;
                let (lo, cm) = limbs::mac(tj, u[l], mj, carry_m[l]);
                carry_m[l] = cm;
                t[(j - 1) * W + l] = lo;
            }
        }
        for l in 0..W {
            let (s, c) = limbs::adc(t_hi[l], carry_a[l], carry_m[l]);
            t[(n - 1) * W + l] = s;
            t_hi[l] = c;
        }
    }
    out.copy_from_slice(t);
    // Per-lane final conditional subtraction: each lane is in [0, 2m).
    for l in 0..W {
        if t_hi[l] != 0 || lane_cmp::<W>(out, m, l) != Ordering::Less {
            lane_sub::<W>(out, m, l);
        }
    }
}

/// Compares lane `l` of an interleaved block against the scalar `m`.
#[inline(always)]
fn lane_cmp<const W: usize>(block: &[u64], m: &[u64], l: usize) -> Ordering {
    for j in (0..m.len()).rev() {
        match block[j * W + l].cmp(&m[j]) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// `lane l -= m` on an interleaved block (caller guarantees no final
/// borrow, as in the scalar kernel).
#[inline(always)]
fn lane_sub<const W: usize>(block: &mut [u64], m: &[u64], l: usize) {
    let mut borrow = 0u64;
    for (j, &mj) in m.iter().enumerate() {
        let (d, bb) = limbs::sbb(block[j * W + l], mj, borrow);
        block[j * W + l] = d;
        borrow = bb;
    }
}

/// Replicates a scalar `n`-limb value across all W lanes of a block.
fn broadcast<const W: usize>(src: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; src.len() * W];
    for (j, &v) in src.iter().enumerate() {
        for l in 0..W {
            out[j * W + l] = v;
        }
    }
    out
}

/// Writes `src` (exactly `n` limbs) into lane `l` of a block.
#[inline(always)]
fn scatter_lane<const W: usize>(block: &mut [u64], src: &[u64], l: usize) {
    for (j, &v) in src.iter().enumerate() {
        block[j * W + l] = v;
    }
}

/// Reads lane `l` of a block back out as `n` scalar limbs.
#[inline(always)]
fn gather_lane<const W: usize>(block: &[u64], n: usize, l: usize) -> Vec<u64> {
    let mut out = vec![0u64; n];
    for (j, limb) in out.iter_mut().enumerate() {
        *limb = block[j * W + l];
    }
    out
}

/// In-domain W-lane exponentiation by a *shared* exponent: the windowed
/// schedule of [`BigMontCtx::pow_mod`], every step widened to W lanes.
/// `base_m` is interleaved Montgomery-form input; the result stays in
/// the Montgomery domain.
#[inline(always)]
fn pow_block<const W: usize>(
    ctx: &BigMontCtx,
    base_m: &[u64],
    exp: &BigUint,
    t: &mut [u64],
    mults: &mut u64,
) -> Vec<u64> {
    let n = ctx.width();
    let m = ctx.m_limbs();
    let np = ctx.n_prime();
    if exp.is_zero() {
        return broadcast::<W>(ctx.r1_limbs());
    }
    let bits = exp.bit_len();
    let mut acc = vec![0u64; n * W];
    let mut tmp = vec![0u64; n * W];
    if bits <= SMALL_EXP_BITS {
        acc.copy_from_slice(base_m);
        for i in (0..bits - 1).rev() {
            cios_w::<W>(m, np, &acc, &acc, t, &mut tmp);
            core::mem::swap(&mut acc, &mut tmp);
            *mults += W as u64;
            if exp.bit(i) {
                cios_w::<W>(m, np, &acc, base_m, t, &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
                *mults += W as u64;
            }
        }
        return acc;
    }
    // Precompute base^0 .. base^15 per lane, interleaved.
    let mut table = Vec::with_capacity(1 << WINDOW_BITS);
    table.push(broadcast::<W>(ctx.r1_limbs()));
    table.push(base_m.to_vec());
    for i in 2..(1 << WINDOW_BITS) {
        let mut next = vec![0u64; n * W];
        cios_w::<W>(m, np, &table[i - 1], base_m, t, &mut next);
        table.push(next);
    }
    *mults += (((1 << WINDOW_BITS) - 2) * W) as u64;
    let nwindows = bits.div_ceil(WINDOW_BITS);
    acc.copy_from_slice(&table[bigmont::window_of(exp, nwindows - 1)]);
    for w in (0..nwindows - 1).rev() {
        for _ in 0..WINDOW_BITS {
            cios_w::<W>(m, np, &acc, &acc, t, &mut tmp);
            core::mem::swap(&mut acc, &mut tmp);
        }
        *mults += (WINDOW_BITS * W) as u64;
        let nibble = bigmont::window_of(exp, w);
        if nibble != 0 {
            cios_w::<W>(m, np, &acc, &table[nibble], t, &mut tmp);
            core::mem::swap(&mut acc, &mut tmp);
            *mults += W as u64;
        }
    }
    acc
}

/// Interleaves exactly W reduced plain values and converts the block
/// into the Montgomery domain with one broadcast-`r2` multiply.
#[inline(always)]
fn to_mont_block<const W: usize>(
    ctx: &BigMontCtx,
    values: &[BigUint],
    t: &mut [u64],
    mults: &mut u64,
) -> Vec<u64> {
    debug_assert_eq!(values.len(), W);
    let n = ctx.width();
    let mut plain = vec![0u64; n * W];
    for (l, v) in values.iter().enumerate() {
        scatter_lane::<W>(&mut plain, &ctx.reduce(v), l);
    }
    let r2b = broadcast::<W>(ctx.r2_limbs());
    let mut out = vec![0u64; n * W];
    cios_w::<W>(ctx.m_limbs(), ctx.n_prime(), &plain, &r2b, t, &mut out);
    *mults += W as u64;
    out
}

/// Converts an in-domain block back out and gathers each lane into a
/// canonical [`BigUint`].
#[inline(always)]
fn from_mont_block<const W: usize>(
    ctx: &BigMontCtx,
    block: &[u64],
    t: &mut [u64],
    mults: &mut u64,
) -> Vec<BigUint> {
    let n = ctx.width();
    let mut one = vec![0u64; n];
    one[0] = 1;
    let one_b = broadcast::<W>(&one);
    let mut plain = vec![0u64; n * W];
    cios_w::<W>(ctx.m_limbs(), ctx.n_prime(), block, &one_b, t, &mut plain);
    *mults += W as u64;
    (0..W)
        .map(|l| BigUint::from_limbs(gather_lane::<W>(&plain, n, l)))
        .collect()
}

/// One W-wide `pow_mod` chunk: exactly W bases, one shared exponent.
#[inline(always)]
fn pow_chunk_body<const W: usize>(
    ctx: &BigMontCtx,
    bases: &[BigUint],
    exp: &BigUint,
    mults: &mut u64,
) -> Vec<BigUint> {
    let n = ctx.width();
    let mut t = vec![0u64; n * W];
    let base_m = to_mont_block::<W>(ctx, bases, &mut t, mults);
    let acc = pow_block::<W>(ctx, &base_m, exp, &mut t, mults);
    from_mont_block::<W>(ctx, &acc, &mut t, mults)
}

/// One W-wide `chain_pow_mod` chunk: `base^(e^k)` with the whole chain
/// in-domain across all lanes (`k > 0`; the `k = 0` identity is handled
/// by the scheduler).
#[inline(always)]
fn chain_chunk_body<const W: usize>(
    ctx: &BigMontCtx,
    bases: &[BigUint],
    e: &BigUint,
    k: u64,
    mults: &mut u64,
) -> Vec<BigUint> {
    debug_assert!(k > 0);
    let n = ctx.width();
    let mut t = vec![0u64; n * W];
    let mut x = to_mont_block::<W>(ctx, bases, &mut t, mults);
    for _ in 0..k {
        x = pow_block::<W>(ctx, &x, e, &mut t, mults);
    }
    from_mont_block::<W>(ctx, &x, &mut t, mults)
}

/// One W-wide fold chunk: up to W independent ragged products. Shorter
/// lanes are padded with `r1` (the CIOS identity — exact no-op), and
/// each lane's residual `R⁻¹` factors are cancelled with a scalar
/// `r_power` fix-up, matching [`BigMontCtx::product_mod`] bit for bit.
#[inline(always)]
fn fold_chunk_body<const W: usize>(
    ctx: &BigMontCtx,
    lists: &[&[BigUint]],
    mults: &mut u64,
) -> Vec<BigUint> {
    debug_assert!(lists.len() <= W);
    let n = ctx.width();
    let m = ctx.m_limbs();
    let np = ctx.n_prime();
    let r1 = ctx.r1_limbs();
    let rounds = lists.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut acc = broadcast::<W>(r1);
    let mut op = vec![0u64; n * W];
    let mut t = vec![0u64; n * W];
    let mut tmp = vec![0u64; n * W];
    let mut counts = [0u64; W];
    for r in 0..rounds {
        for (l, count) in counts.iter_mut().enumerate() {
            match lists.get(l).and_then(|list| list.get(r)) {
                Some(v) => {
                    scatter_lane::<W>(&mut op, &ctx.reduce(v), l);
                    *count += 1;
                }
                None => scatter_lane::<W>(&mut op, r1, l),
            }
        }
        cios_w::<W>(m, np, &acc, &op, &mut t, &mut tmp);
        core::mem::swap(&mut acc, &mut tmp);
        *mults += W as u64;
    }
    lists
        .iter()
        .enumerate()
        .map(|(l, _)| {
            if counts[l] == 0 {
                return BigUint::one();
            }
            let lane = gather_lane::<W>(&acc, n, l);
            // acc_l = Πv · R^-(count-1); one scalar fix-up cancels it.
            let pending = counts[l] - 1;
            if pending == 0 {
                return BigUint::from_limbs(lane);
            }
            let fix = ctx.r_power(pending);
            let mut ts = vec![0u64; n + 2];
            let mut out = vec![0u64; n];
            ctx.cios(&lane, &fix, &mut ts, &mut out);
            *mults += 1;
            BigUint::from_limbs(out)
        })
        .collect()
}

/// The chunk bodies compiled a second and third time with AVX2 and
/// AVX-512F codegen enabled — identical safe Rust, different register
/// budget for the `[u64; W]` carry arrays. Dispatched per chunk behind
/// `is_x86_feature_detected!`, so results are bit-identical either way.
#[cfg(target_arch = "x86_64")]
macro_rules! isa_chunks {
    ($modname:ident, $feature:literal) => {
        mod $modname {
            use super::*;

            #[target_feature(enable = $feature)]
            pub fn pow_w4(
                ctx: &BigMontCtx,
                bases: &[BigUint],
                exp: &BigUint,
                mults: &mut u64,
            ) -> Vec<BigUint> {
                pow_chunk_body::<4>(ctx, bases, exp, mults)
            }

            #[target_feature(enable = $feature)]
            pub fn pow_w8(
                ctx: &BigMontCtx,
                bases: &[BigUint],
                exp: &BigUint,
                mults: &mut u64,
            ) -> Vec<BigUint> {
                pow_chunk_body::<8>(ctx, bases, exp, mults)
            }

            #[target_feature(enable = $feature)]
            pub fn chain_w4(
                ctx: &BigMontCtx,
                bases: &[BigUint],
                e: &BigUint,
                k: u64,
                mults: &mut u64,
            ) -> Vec<BigUint> {
                chain_chunk_body::<4>(ctx, bases, e, k, mults)
            }

            #[target_feature(enable = $feature)]
            pub fn chain_w8(
                ctx: &BigMontCtx,
                bases: &[BigUint],
                e: &BigUint,
                k: u64,
                mults: &mut u64,
            ) -> Vec<BigUint> {
                chain_chunk_body::<8>(ctx, bases, e, k, mults)
            }

            #[target_feature(enable = $feature)]
            pub fn fold_w4(
                ctx: &BigMontCtx,
                lists: &[&[BigUint]],
                mults: &mut u64,
            ) -> Vec<BigUint> {
                fold_chunk_body::<4>(ctx, lists, mults)
            }

            #[target_feature(enable = $feature)]
            pub fn fold_w8(
                ctx: &BigMontCtx,
                lists: &[&[BigUint]],
                mults: &mut u64,
            ) -> Vec<BigUint> {
                fold_chunk_body::<8>(ctx, lists, mults)
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
isa_chunks!(avx2, "avx2");
#[cfg(target_arch = "x86_64")]
isa_chunks!(avx512, "avx512f");

fn dispatch_pow(
    w: usize,
    ctx: &BigMontCtx,
    bases: &[BigUint],
    exp: &BigUint,
    mults: &mut u64,
) -> Vec<BigUint> {
    debug_assert!(matches!(w, 4 | 8));
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: each ISA requirement is checked at runtime; the bodies
        // are the same safe Rust as `pow_chunk_body`.
        if std::arch::is_x86_feature_detected!("avx512f") {
            return unsafe {
                match w {
                    8 => avx512::pow_w8(ctx, bases, exp, mults),
                    _ => avx512::pow_w4(ctx, bases, exp, mults),
                }
            };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return unsafe {
                match w {
                    8 => avx2::pow_w8(ctx, bases, exp, mults),
                    _ => avx2::pow_w4(ctx, bases, exp, mults),
                }
            };
        }
    }
    match w {
        8 => pow_chunk_body::<8>(ctx, bases, exp, mults),
        _ => pow_chunk_body::<4>(ctx, bases, exp, mults),
    }
}

fn dispatch_chain(
    w: usize,
    ctx: &BigMontCtx,
    bases: &[BigUint],
    e: &BigUint,
    k: u64,
    mults: &mut u64,
) -> Vec<BigUint> {
    debug_assert!(matches!(w, 4 | 8));
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: as in `dispatch_pow`.
        if std::arch::is_x86_feature_detected!("avx512f") {
            return unsafe {
                match w {
                    8 => avx512::chain_w8(ctx, bases, e, k, mults),
                    _ => avx512::chain_w4(ctx, bases, e, k, mults),
                }
            };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return unsafe {
                match w {
                    8 => avx2::chain_w8(ctx, bases, e, k, mults),
                    _ => avx2::chain_w4(ctx, bases, e, k, mults),
                }
            };
        }
    }
    match w {
        8 => chain_chunk_body::<8>(ctx, bases, e, k, mults),
        _ => chain_chunk_body::<4>(ctx, bases, e, k, mults),
    }
}

fn dispatch_fold(
    w: usize,
    ctx: &BigMontCtx,
    lists: &[&[BigUint]],
    mults: &mut u64,
) -> Vec<BigUint> {
    debug_assert!(matches!(w, 4 | 8));
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: as in `dispatch_pow`.
        if std::arch::is_x86_feature_detected!("avx512f") {
            return unsafe {
                match w {
                    8 => avx512::fold_w8(ctx, lists, mults),
                    _ => avx512::fold_w4(ctx, lists, mults),
                }
            };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return unsafe {
                match w {
                    8 => avx2::fold_w8(ctx, lists, mults),
                    _ => avx2::fold_w4(ctx, lists, mults),
                }
            };
        }
    }
    match w {
        8 => fold_chunk_body::<8>(ctx, lists, mults),
        _ => fold_chunk_body::<4>(ctx, lists, mults),
    }
}

/// `bases[i]^exp mod m` for every base, batched W at a time. Exactly
/// [`BigMontCtx::pow_mod`] mapped over `bases` — same schedule, same
/// canonical bytes — with x8/x4 chunks and a scalar ragged tail.
pub fn pow_mod_many(ctx: &BigMontCtx, bases: &[BigUint], exp: &BigUint) -> Vec<BigUint> {
    pow_mod_many_with(big_lane_width(), ctx, bases, exp)
}

/// [`pow_mod_many`] at an explicit width cap (1 disables batching).
pub fn pow_mod_many_with(
    width: usize,
    ctx: &BigMontCtx,
    bases: &[BigUint],
    exp: &BigUint,
) -> Vec<BigUint> {
    if exp.is_zero() {
        return vec![BigUint::one(); bases.len()];
    }
    let width = width.min(MAX_BIG_LANES);
    let mut out = Vec::with_capacity(bases.len());
    let mut mults = 0u64;
    let mut rest = bases;
    // Precompute the radix-2^52 context once per call — only worth it
    // when at least one full x8 chunk will run.
    let ifma = if width >= 8 && rest.len() >= 8 {
        bigmont52::IfmaCtx::new(ctx)
    } else {
        None
    };
    while width >= 8 && rest.len() >= 8 {
        let (chunk, tail) = rest.split_at(8);
        out.extend(match &ifma {
            Some(ictx) => bigmont52::pow_chunk(ictx, chunk, exp, &mut mults),
            None => dispatch_pow(8, ctx, chunk, exp, &mut mults),
        });
        rest = tail;
    }
    while width >= 4 && rest.len() >= 4 {
        let (chunk, tail) = rest.split_at(4);
        out.extend(dispatch_pow(4, ctx, chunk, exp, &mut mults));
        rest = tail;
    }
    for base in rest {
        out.push(ctx.pow_mod(base, exp));
    }
    tel::count!("crypto.mont.batch_pow_calls");
    tel::count!("crypto.mont.cios_mults", mults);
    out
}

/// `bases[i]^(e^k) mod m` for every base (SEAL rolling), batched W at a
/// time. Exactly [`BigMontCtx::chain_pow_mod`] mapped over `bases`.
pub fn chain_pow_mod_many(
    ctx: &BigMontCtx,
    bases: &[BigUint],
    e: &BigUint,
    k: u64,
) -> Vec<BigUint> {
    chain_pow_mod_many_with(big_lane_width(), ctx, bases, e, k)
}

/// [`chain_pow_mod_many`] at an explicit width cap.
pub fn chain_pow_mod_many_with(
    width: usize,
    ctx: &BigMontCtx,
    bases: &[BigUint],
    e: &BigUint,
    k: u64,
) -> Vec<BigUint> {
    if k == 0 {
        return bases.iter().map(|b| ctx.reduce_value(b)).collect();
    }
    let width = width.min(MAX_BIG_LANES);
    let mut out = Vec::with_capacity(bases.len());
    let mut mults = 0u64;
    let mut rest = bases;
    let ifma = if width >= 8 && rest.len() >= 8 {
        bigmont52::IfmaCtx::new(ctx)
    } else {
        None
    };
    while width >= 8 && rest.len() >= 8 {
        let (chunk, tail) = rest.split_at(8);
        out.extend(match &ifma {
            Some(ictx) => bigmont52::chain_chunk(ictx, chunk, e, k, &mut mults),
            None => dispatch_chain(8, ctx, chunk, e, k, &mut mults),
        });
        rest = tail;
    }
    while width >= 4 && rest.len() >= 4 {
        let (chunk, tail) = rest.split_at(4);
        out.extend(dispatch_chain(4, ctx, chunk, e, k, &mut mults));
        rest = tail;
    }
    for base in rest {
        out.push(ctx.chain_pow_mod(base, e, k));
    }
    tel::count!("crypto.mont.batch_chain_calls");
    tel::count!("crypto.mont.cios_mults", mults);
    out
}

/// W independent ragged products: `out[i] = Π lists[i] mod m` (1 for an
/// empty list). Exactly [`BigMontCtx::product_mod`] mapped over `lists`.
pub fn fold_many(ctx: &BigMontCtx, lists: &[&[BigUint]]) -> Vec<BigUint> {
    fold_many_with(big_lane_width(), ctx, lists)
}

/// [`fold_many`] at an explicit width cap.
pub fn fold_many_with(width: usize, ctx: &BigMontCtx, lists: &[&[BigUint]]) -> Vec<BigUint> {
    let width = width.min(MAX_BIG_LANES);
    let mut out = Vec::with_capacity(lists.len());
    let mut mults = 0u64;
    let mut rest = lists;
    let ifma = if width >= 8 && rest.len() >= 8 {
        bigmont52::IfmaCtx::new(ctx)
    } else {
        None
    };
    while width >= 8 && rest.len() >= 8 {
        let (chunk, tail) = rest.split_at(8);
        out.extend(match &ifma {
            Some(ictx) => bigmont52::fold_chunk(ictx, chunk, &mut mults),
            None => dispatch_fold(8, ctx, chunk, &mut mults),
        });
        rest = tail;
    }
    while width >= 4 && rest.len() >= 4 {
        let (chunk, tail) = rest.split_at(4);
        out.extend(dispatch_fold(4, ctx, chunk, &mut mults));
        rest = tail;
    }
    for list in rest {
        out.push(ctx.product_mod(list.iter()));
    }
    tel::count!("crypto.mont.batch_fold_calls");
    tel::count!("crypto.mont.cios_mults", mults);
    out
}

/// One big product `Π values mod m`, lane-split into W partial products
/// folded in parallel lanes and combined with a scalar fold. The result
/// is the canonical residue — identical bytes to
/// [`BigMontCtx::product_mod`] over the same values (modular
/// multiplication is commutative and the representative is unique).
pub fn product_mod_wide(ctx: &BigMontCtx, values: &[BigUint]) -> BigUint {
    let w = big_lane_width();
    // Below ~2 full blocks the split overhead beats the lane win.
    if w < 4 || values.len() < 2 * w {
        return ctx.product_mod(values.iter());
    }
    let chunk = values.len().div_ceil(w);
    let parts: Vec<&[BigUint]> = values.chunks(chunk).collect();
    let partials = fold_many_with(w, ctx, &parts);
    ctx.product_mod(partials.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn odd_modulus(rng: &mut StdRng, bits: usize) -> BigUint {
        let mut m = BigUint::random_bits(rng, bits);
        if m.is_even() {
            m = m.add(&BigUint::one());
        }
        if m.bit_len() <= 1 {
            m = BigUint::from_u64(3);
        }
        m
    }

    #[test]
    fn pow_many_matches_scalar_at_every_width() {
        let mut rng = StdRng::seed_from_u64(21);
        let m = odd_modulus(&mut rng, 256);
        let ctx = BigMontCtx::new(&m);
        let bases: Vec<BigUint> = (0..19)
            .map(|_| BigUint::random_bits(&mut rng, 300))
            .collect();
        for e in [0u64, 1, 2, 3, 65537, u64::MAX] {
            let e = BigUint::from_u64(e);
            let expect: Vec<BigUint> = bases.iter().map(|b| ctx.pow_mod(b, &e)).collect();
            for width in [1usize, 4, 8, 16] {
                for n in 0..=bases.len() {
                    assert_eq!(
                        pow_mod_many_with(width, &ctx, &bases[..n], &e),
                        expect[..n],
                        "width {width}, n {n}, e {e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn chain_many_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(22);
        let m = odd_modulus(&mut rng, 256);
        let ctx = BigMontCtx::new(&m);
        let bases: Vec<BigUint> = (0..11)
            .map(|_| BigUint::random_bits(&mut rng, 256))
            .collect();
        let e = BigUint::from_u64(3);
        for k in [0u64, 1, 5] {
            let expect: Vec<BigUint> = bases.iter().map(|b| ctx.chain_pow_mod(b, &e, k)).collect();
            for width in [1usize, 4, 8] {
                assert_eq!(
                    chain_pow_mod_many_with(width, &ctx, &bases, &e, k),
                    expect,
                    "width {width}, k {k}"
                );
            }
        }
    }

    #[test]
    fn fold_many_matches_scalar_over_ragged_lists() {
        let mut rng = StdRng::seed_from_u64(23);
        let m = odd_modulus(&mut rng, 256);
        let ctx = BigMontCtx::new(&m);
        // 9 lists with lengths 0..=8: exercises empty lanes, the ragged
        // pad, and the scalar tail in one call.
        let lists: Vec<Vec<BigUint>> = (0..9)
            .map(|len| {
                (0..len)
                    .map(|_| BigUint::random_bits(&mut rng, 256))
                    .collect()
            })
            .collect();
        let refs: Vec<&[BigUint]> = lists.iter().map(|l| l.as_slice()).collect();
        let expect: Vec<BigUint> = lists.iter().map(|l| ctx.product_mod(l.iter())).collect();
        for width in [1usize, 4, 8] {
            assert_eq!(fold_many_with(width, &ctx, &refs), expect, "width {width}");
        }
    }

    #[test]
    fn wide_product_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(24);
        let m = odd_modulus(&mut rng, 512);
        let ctx = BigMontCtx::new(&m);
        for count in [0usize, 1, 15, 16, 17, 100] {
            let values: Vec<BigUint> = (0..count)
                .map(|_| BigUint::random_bits(&mut rng, 512))
                .collect();
            assert_eq!(
                product_mod_wide(&ctx, &values),
                ctx.product_mod(values.iter()),
                "count {count}"
            );
        }
    }

    #[test]
    fn small_modulus_widths() {
        // Single-limb modulus through the full batch machinery.
        let mut rng = StdRng::seed_from_u64(25);
        let m = BigUint::from_u64(1_000_000_007);
        let ctx = BigMontCtx::new(&m);
        let bases: Vec<BigUint> = (0..13).map(|_| BigUint::from_u64(rng.next_u64())).collect();
        let e = BigUint::from_u64(0xFFFF_FFFF);
        let expect: Vec<BigUint> = bases.iter().map(|b| ctx.pow_mod(b, &e)).collect();
        assert_eq!(pow_mod_many(&ctx, &bases, &e), expect);
    }
}
