//! Arbitrary-precision unsigned integers.
//!
//! Used by the SECOA baseline's 1024-bit RSA SEAL chains (the paper's
//! Table II prices SEALs at 128 bytes) and by setup-time prime generation.
//! The hot SIES path uses the fixed-width [`crate::u256::U256`] instead.
//!
//! Multiplication switches from schoolbook to Karatsuba above a limb-count
//! threshold; division is Knuth Algorithm D (shared with the fixed-width
//! types through [`crate::limbs`]).

use crate::limbs;
use crate::u256::U256;
use core::cmp::Ordering;
use core::fmt;
use rand::RngCore;

/// Limb count at or above which multiplication uses Karatsuba.
const KARATSUBA_THRESHOLD: usize = 24;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs,
/// normalized so the top limb is non-zero; zero is the empty limb vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Constructs from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut limbs = vec![v as u64, (v >> 64) as u64];
        limbs::trim(&mut limbs);
        BigUint { limbs }
    }

    /// Constructs from little-endian limbs (normalizing).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        limbs::trim(&mut limbs);
        BigUint { limbs }
    }

    /// The little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Constructs from big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        limbs::trim(&mut limbs);
        BigUint { limbs }
    }

    /// Serializes to big-endian bytes without leading zeros (zero encodes
    /// as an empty vector).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let bits = self.bit_len();
        let nbytes = bits.div_ceil(8);
        let mut out = vec![0u8; nbytes];
        for (i, byte) in out.iter_mut().rev().enumerate() {
            let limb = self.limbs[i / 8];
            *byte = (limb >> ((i % 8) * 8)) as u8;
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, zero-padded on the
    /// left. Panics if the value does not fit.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_be_bytes();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len];
        out[len - raw.len()..].copy_from_slice(&raw);
        out
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Whether the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Number of significant bits.
    pub fn bit_len(&self) -> usize {
        limbs::bit_len(&self.limbs)
    }

    /// Value of bit `i`.
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Truncates to the low 64 bits.
    pub fn as_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Addition.
    pub fn add(&self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (&self.limbs, &rhs.limbs)
        } else {
            (&rhs.limbs, &self.limbs)
        };
        let mut out = long.clone();
        let carry = limbs::add_assign(&mut out, short);
        if carry != 0 {
            out.push(carry);
        }
        BigUint { limbs: out }
    }

    /// Checked subtraction; `None` when `rhs > self`.
    pub fn checked_sub(&self, rhs: &BigUint) -> Option<BigUint> {
        if self.cmp(rhs) == Ordering::Less {
            return None;
        }
        let mut out = self.limbs.clone();
        let borrow = limbs::sub_assign(&mut out, &rhs.limbs);
        debug_assert_eq!(borrow, 0);
        limbs::trim(&mut out);
        Some(BigUint { limbs: out })
    }

    /// Subtraction. Panics when `rhs > self`.
    pub fn sub(&self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }

    /// Multiplication (schoolbook below the Karatsuba threshold,
    /// Karatsuba above).
    pub fn mul(&self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let limbs = mul_impl(&self.limbs, &rhs.limbs);
        BigUint::from_limbs(limbs)
    }

    /// Division with remainder; returns `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics when `rhs` is zero.
    pub fn div_rem(&self, rhs: &BigUint) -> (BigUint, BigUint) {
        let (q, r) = limbs::div_rem(&self.limbs, &rhs.limbs);
        (BigUint { limbs: q }, BigUint { limbs: r })
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Left shift by `sh` bits.
    pub fn shl(&self, sh: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_sh = sh / 64;
        let bit_sh = (sh % 64) as u32;
        let mut out = vec![0u64; self.limbs.len() + limb_sh + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_sh] |= l << bit_sh;
            if bit_sh > 0 {
                out[i + limb_sh + 1] |= l >> (64 - bit_sh);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Logical right shift by `sh` bits.
    pub fn shr(&self, sh: usize) -> BigUint {
        let limb_sh = sh / 64;
        if limb_sh >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_sh = (sh % 64) as u32;
        let mut out = self.limbs[limb_sh..].to_vec();
        if bit_sh > 0 {
            let n = out.len();
            for i in 0..n {
                let hi = if i + 1 < n { out[i + 1] } else { 0 };
                out[i] = (out[i] >> bit_sh) | (hi << (64 - bit_sh));
            }
        }
        BigUint::from_limbs(out)
    }

    /// Modular addition with reduced operands.
    pub fn add_mod(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        let s = self.add(rhs);
        if s.cmp(m) == Ordering::Less {
            s
        } else {
            s.sub(m)
        }
    }

    /// Modular multiplication.
    pub fn mul_mod(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        self.mul(rhs).rem(m)
    }

    /// Modular exponentiation with a fixed 4-bit window; this is the RSA
    /// encryption primitive (`C_RSA` in Table II when `e` is small).
    pub fn pow_mod(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus");
        if m.bit_len() == 1 {
            return BigUint::zero(); // mod 1
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        let base = self.rem(m);
        // Short exponents (e.g. RSA's e = 3): plain square-and-multiply —
        // a window table would cost more than the exponentiation itself.
        if exp.bit_len() <= 16 {
            let mut acc = BigUint::one();
            for i in (0..exp.bit_len()).rev() {
                acc = acc.mul_mod(&acc, m);
                if exp.bit(i) {
                    acc = acc.mul_mod(&base, m);
                }
            }
            return acc;
        }
        // Precompute base^0 .. base^15.
        let mut table = Vec::with_capacity(16);
        table.push(BigUint::one());
        for i in 1..16 {
            let prev: &BigUint = &table[i - 1];
            table.push(prev.mul_mod(&base, m));
        }
        let bits = exp.bit_len();
        let nwindows = bits.div_ceil(4);
        let mut acc = BigUint::one();
        for w in (0..nwindows).rev() {
            for _ in 0..4 {
                acc = acc.mul_mod(&acc, m);
            }
            let mut nibble = 0usize;
            for b in 0..4 {
                if exp.bit(w * 4 + (3 - b)) {
                    nibble |= 1 << (3 - b);
                }
            }
            if nibble != 0 {
                acc = acc.mul_mod(&table[nibble], m);
            }
        }
        acc
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, rhs: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = rhs.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let common = az.min(bz);
        a = a.shr(az);
        b = b.shr(bz);
        loop {
            if a.cmp(&b) == Ordering::Greater {
                core::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(common);
            }
            b = b.shr(b.trailing_zeros());
        }
    }

    /// Number of trailing zero bits (undefined for zero; returns 0).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Modular inverse: `self^{-1} mod m` when `gcd(self, m) = 1`, else
    /// `None`. Extended Euclid with signed coefficient tracking; this is
    /// what RSA key generation uses to derive `d` from `e` and `φ(n)`.
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() {
            return None;
        }
        // Invariants: old_r = |old_s|·a ∓ ..., standard extended Euclid on
        // (a mod m, m) keeping only the coefficient of a.
        let a = self.rem(m);
        if a.is_zero() {
            return if m.bit_len() == 1 {
                Some(BigUint::zero())
            } else {
                None
            };
        }
        let (mut old_r, mut r) = (a, m.clone());
        // Coefficients as (magnitude, negative?) pairs.
        let (mut old_s, mut s) = ((BigUint::one(), false), (BigUint::zero(), false));
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = core::mem::replace(&mut r, rem);
            // new_s = old_s - q * s (signed)
            let qs = q.mul(&s.0);
            let new_s = signed_sub(&old_s, &(qs, s.1));
            old_s = core::mem::replace(&mut s, new_s);
        }
        if old_r.bit_len() != 1 {
            return None; // gcd != 1
        }
        // Normalize the coefficient into [0, m).
        let (mag, neg) = old_s;
        let mag = mag.rem(m);
        Some(if neg && !mag.is_zero() {
            m.sub(&mag)
        } else {
            mag
        })
    }

    /// Uniformly random value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    /// Panics when `bound` is zero.
    pub fn random_below(rng: &mut dyn RngCore, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "empty range");
        let bits = bound.bit_len();
        let nlimbs = bits.div_ceil(64);
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        loop {
            let mut limbs = vec![0u64; nlimbs];
            for l in limbs.iter_mut() {
                *l = rng.next_u64();
            }
            *limbs.last_mut().unwrap() &= top_mask;
            let candidate = BigUint::from_limbs(limbs);
            if candidate.cmp(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Random integer with exactly `bits` significant bits (top bit set).
    pub fn random_bits(rng: &mut dyn RngCore, bits: usize) -> BigUint {
        assert!(bits > 0);
        let nlimbs = bits.div_ceil(64);
        let mut limbs = vec![0u64; nlimbs];
        for l in limbs.iter_mut() {
            *l = rng.next_u64();
        }
        let top_bit = (bits - 1) % 64;
        let last = limbs.last_mut().unwrap();
        *last &= if top_bit == 63 {
            u64::MAX
        } else {
            (1u64 << (top_bit + 1)) - 1
        };
        *last |= 1u64 << top_bit;
        BigUint::from_limbs(limbs)
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases
    /// (error probability ≤ 4^-rounds for odd composites).
    pub fn is_probable_prime(&self, rng: &mut dyn RngCore, rounds: usize) -> bool {
        let n = self;
        if n.bit_len() <= 6 {
            // Exhaustive for tiny values.
            let v = n.as_u64();
            if v < 2 {
                return false;
            }
            for p in [
                2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
            ] {
                if v == p {
                    return true;
                }
                if v.is_multiple_of(p) {
                    return false;
                }
            }
            return true;
        }
        if n.is_even() {
            return false;
        }
        // Quick trial division by small primes (n may *be* one of them).
        for p in SMALL_PRIMES {
            let p = BigUint::from_u64(p);
            if n.rem(&p).is_zero() {
                return *n == p;
            }
        }
        let one = BigUint::one();
        let n_minus_1 = n.sub(&one);
        let s = n_minus_1.trailing_zeros();
        let d = n_minus_1.shr(s);
        let two = BigUint::from_u64(2);
        let n_minus_2 = n.sub(&two);
        'witness: for _ in 0..rounds {
            // a in [2, n-2]
            let a = BigUint::random_below(rng, &n_minus_2.sub(&one)).add(&two);
            let mut x = a.pow_mod(&d, n);
            if x == one || x == n_minus_1 {
                continue;
            }
            for _ in 0..s - 1 {
                x = x.mul_mod(&x, n);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generates a random prime with exactly `bits` bits (top bit set,
    /// odd), testing candidates with `rounds` Miller–Rabin rounds.
    pub fn random_prime(rng: &mut dyn RngCore, bits: usize, rounds: usize) -> BigUint {
        assert!(bits >= 2);
        loop {
            let mut candidate = BigUint::random_bits(rng, bits);
            if candidate.is_even() {
                candidate = candidate.add(&BigUint::one());
                if candidate.bit_len() != bits {
                    continue;
                }
            }
            if candidate.is_probable_prime(rng, rounds) {
                return candidate;
            }
        }
    }
}

/// Small primes for trial division inside Miller–Rabin.
const SMALL_PRIMES: [u64; 25] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101,
];

/// Signed subtraction on (magnitude, negative?) pairs: `a - b`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative
        (false, false) => match a.0.cmp(&b.0) {
            Ordering::Less => (b.0.sub(&a.0), true),
            _ => (a.0.sub(&b.0), false),
        },
        // (-a) - (-b) = b - a
        (true, true) => match b.0.cmp(&a.0) {
            Ordering::Less => (a.0.sub(&b.0), true),
            _ => (b.0.sub(&a.0), false),
        },
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
    }
}

/// Multiplication dispatch: schoolbook for small operands, Karatsuba above
/// the threshold.
fn mul_impl(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        let mut out = vec![0u64; a.len() + b.len()];
        limbs::mul(&mut out, a, b);
        out
    } else {
        karatsuba(a, b)
    }
}

/// Karatsuba multiplication: splits at half the shorter operand and
/// recombines with three recursive products.
fn karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let half = a.len().min(b.len()) / 2;
    let (a0, a1) = a.split_at(half);
    let (b0, b1) = b.split_at(half);
    let a0 = BigUint::from_limbs(a0.to_vec());
    let a1 = BigUint::from_limbs(a1.to_vec());
    let b0 = BigUint::from_limbs(b0.to_vec());
    let b1 = BigUint::from_limbs(b1.to_vec());

    let z0 = BigUint::from_limbs(mul_impl(a0.limbs(), b0.limbs()));
    let z2 = BigUint::from_limbs(mul_impl(a1.limbs(), b1.limbs()));
    let sa = a0.add(&a1);
    let sb = b0.add(&b1);
    let z1 = BigUint::from_limbs(mul_impl(sa.limbs(), sb.limbs()))
        .sub(&z0)
        .sub(&z2);

    let result = z2.shl(half * 128).add(&z1.shl(half * 64)).add(&z0);
    result.limbs
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        limbs::cmp(&self.limbs, &other.limbs)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x")?;
        if self.is_zero() {
            write!(f, "0")?;
        }
        for b in self.to_be_bytes() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl From<&U256> for BigUint {
    fn from(v: &U256) -> Self {
        BigUint::from_limbs(v.limbs().to_vec())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl BigUint {
    /// Converts to a [`U256`]. Panics when the value exceeds 256 bits.
    pub fn to_u256(&self) -> U256 {
        assert!(self.bit_len() <= 256, "value exceeds 256 bits");
        let mut limbs = [0u64; 4];
        limbs[..self.limbs.len()].copy_from_slice(&self.limbs);
        U256::from_limbs(limbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn normalization() {
        assert!(BigUint::from_limbs(vec![0, 0, 0]).is_zero());
        assert_eq!(BigUint::from_limbs(vec![5, 0]).limbs(), &[5]);
    }

    #[test]
    fn byte_round_trip() {
        let v = BigUint::from_be_bytes(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(
            v.to_be_bytes(),
            vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]
        );
        assert_eq!(BigUint::zero().to_be_bytes(), Vec::<u8>::new());
        assert_eq!(big(0xabcd).to_be_bytes_padded(4), vec![0, 0, 0xab, 0xcd]);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = big(u128::MAX);
        let b = big(12345);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xdead_beef_u64 as u128;
        let b = 0x1234_5678_9abc_def0_u128;
        assert_eq!(big(a).mul(&big(b)), big(a * b));
        assert_eq!(big(a).mul(&BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn div_rem_matches_u128() {
        let a = u128::MAX - 5;
        let b = 0xffff_ffff_u128;
        let (q, r) = big(a).div_rem(&big(b));
        assert_eq!(q, big(a / b));
        assert_eq!(r, big(a % b));
    }

    #[test]
    fn shifts_round_trip() {
        let a = big(0x1234_5678_9abc_def0_1122_3344);
        assert_eq!(a.shl(77).shr(77), a);
        assert!(big(1).shl(200).bit(200));
        assert_eq!(big(0).shl(10), BigUint::zero());
    }

    #[test]
    fn pow_mod_matches_naive() {
        let m = big(1_000_000_007);
        let base = big(31337);
        let mut naive = BigUint::one();
        for e in 0..40u32 {
            assert_eq!(base.pow_mod(&big(e as u128), &m), naive, "exp {e}");
            naive = naive.mul_mod(&base, &m);
        }
    }

    #[test]
    fn pow_mod_large_exponent() {
        // Fermat's little theorem with a 61-bit prime.
        let p = big(2_305_843_009_213_693_951); // 2^61 - 1, Mersenne prime
        let a = big(123_456_789);
        assert_eq!(a.pow_mod(&p.sub(&BigUint::one()), &p), BigUint::one());
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
        assert_eq!(big(48).gcd(&big(180)), big(12));
    }

    #[test]
    fn mod_inverse_cases() {
        let m = big(97);
        for a in 1..97u128 {
            let inv = big(a).mod_inverse(&m).unwrap();
            assert_eq!(big(a).mul_mod(&inv, &m), BigUint::one(), "a = {a}");
        }
        // Non-invertible.
        assert_eq!(big(6).mod_inverse(&big(12)), None);
    }

    #[test]
    fn miller_rabin_known_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let primes: &[u128] = &[2, 3, 5, 61, 97, 1_000_000_007, 2_305_843_009_213_693_951];
        for &p in primes {
            assert!(
                big(p).is_probable_prime(&mut rng, 20),
                "{p} should be prime"
            );
        }
        let composites: &[u128] = &[
            0,
            1,
            4,
            100,
            561,                   // Carmichael
            1_000_000_007u128 * 3, // semiprime
            6_601,
            8_911, // more Carmichael numbers
        ];
        for &c in composites {
            assert!(
                !big(c).is_probable_prime(&mut rng, 20),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn random_prime_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(99);
        let p = BigUint::random_prime(&mut rng, 128, 16);
        assert_eq!(p.bit_len(), 128);
        assert!(p.is_odd());
    }

    #[test]
    fn random_below_is_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = big(1000);
        for _ in 0..200 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v.cmp(&bound) == Ordering::Less);
        }
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(42);
        // Operands big enough to trigger Karatsuba.
        let a = BigUint::random_bits(&mut rng, KARATSUBA_THRESHOLD * 64 * 2);
        let b = BigUint::random_bits(&mut rng, KARATSUBA_THRESHOLD * 64 * 2 + 13);
        let mut school = vec![0u64; a.limbs().len() + b.limbs().len()];
        limbs::mul(&mut school, a.limbs(), b.limbs());
        assert_eq!(a.mul(&b), BigUint::from_limbs(school));
    }

    #[test]
    fn u256_conversion() {
        let x = U256::from_u128(0xdeadbeef_cafebabe);
        let b = BigUint::from(&x);
        assert_eq!(b.to_u256(), x);
    }
}
