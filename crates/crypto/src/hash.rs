//! The hash-function abstraction shared by SHA-1, SHA-256 and the generic
//! HMAC construction.

/// A Merkle–Damgård hash function with a fixed block and output size.
///
/// Both SIES and the baselines only need incremental hashing over short
/// inputs (keys, epoch counters, sensor values), so the interface is the
/// minimal update/finalize pair.
pub trait HashFunction: Clone {
    /// Internal block size in bytes (64 for both SHA-1 and SHA-256).
    const BLOCK_SIZE: usize;
    /// Digest size in bytes (20 for SHA-1, 32 for SHA-256).
    const OUTPUT_SIZE: usize;
    /// Human-readable algorithm name (for diagnostics).
    const NAME: &'static str;

    /// Fresh hasher state.
    fn new() -> Self;

    /// Absorbs `data`.
    fn update(&mut self, data: &[u8]);

    /// Pads, finishes, and returns the digest (`OUTPUT_SIZE` bytes).
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience digest.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}

/// Merkle–Damgård internals exposed for the multi-lane batch pipeline.
///
/// The batched HMAC layer ([`crate::hmac::HmacState::finalize_many`])
/// needs three things the plain [`HashFunction`] interface hides: the
/// chaining state (to hand W of them to an interleaved kernel), the
/// pending partial block (to build each lane's padded final block), and
/// the lane kernels themselves. Lane registers are uniformly `[u32; 8]`;
/// SHA-1 only uses the first five words.
pub trait LaneHash: HashFunction {
    /// Live chaining words per lane register (5 for SHA-1, 8 for SHA-256).
    const STATE_WORDS: usize;

    /// Snapshot of the chaining state, zero-padded to 8 words.
    fn chain_state(&self) -> [u32; 8];

    /// Rebuilds a hasher from a chaining state sitting at a block
    /// boundary: `length` bytes absorbed, nothing buffered.
    fn from_midstate(state: [u32; 8], length: u64) -> Self;

    /// The buffered partial-block tail (< 64 bytes) and the total
    /// absorbed length in bytes.
    fn pending(&self) -> (&[u8], u64);

    /// Advances `states[l]` by the single 64-byte block `blocks[l]` for
    /// every lane, scheduling x8/x4/scalar kernel passes at the runtime
    /// lane width ([`crate::lanes::lane_width`]).
    fn compress_lanes(states: &mut [[u32; 8]], blocks: &[[u8; 64]]);

    /// Serializes a chaining state to the big-endian digest bytes.
    fn digest_from_state(state: &[u32; 8]) -> Vec<u8> {
        state[..Self::STATE_WORDS]
            .iter()
            .flat_map(|w| w.to_be_bytes())
            .collect()
    }
}
