//! The hash-function abstraction shared by SHA-1, SHA-256 and the generic
//! HMAC construction.

/// A Merkle–Damgård hash function with a fixed block and output size.
///
/// Both SIES and the baselines only need incremental hashing over short
/// inputs (keys, epoch counters, sensor values), so the interface is the
/// minimal update/finalize pair.
pub trait HashFunction: Clone {
    /// Internal block size in bytes (64 for both SHA-1 and SHA-256).
    const BLOCK_SIZE: usize;
    /// Digest size in bytes (20 for SHA-1, 32 for SHA-256).
    const OUTPUT_SIZE: usize;
    /// Human-readable algorithm name (for diagnostics).
    const NAME: &'static str;

    /// Fresh hasher state.
    fn new() -> Self;

    /// Absorbs `data`.
    fn update(&mut self, data: &[u8]);

    /// Pads, finishes, and returns the digest (`OUTPUT_SIZE` bytes).
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience digest.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}
