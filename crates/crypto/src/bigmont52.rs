//! Radix-2^52 AVX-512 IFMA batch Montgomery kernels: 8 lanes per
//! `vpmadd52` instruction.
//!
//! The GPR interleave in [`crate::bigmontxn`] is throughput-bound: a
//! 64×64→128 `mul` plus its carry bookkeeping costs ~8 issue slots per
//! multiply, so eight interleaved carry chains saturate the front end
//! long before the multiplier. AVX-512 IFMA breaks that wall with
//! `vpmadd52luq`/`vpmadd52huq`: one instruction multiplies the low 52
//! bits of eight 64-bit lanes and accumulates the low (resp. high) 52
//! bits of each 104-bit product — eight multiply-accumulates per issue
//! slot instead of a fraction of one.
//!
//! The kernel is the classic multi-buffer *almost Montgomery
//! multiplication* (AMM) at radix 2^52, the layout used by RSAZ-AVX512
//! and Intel's multi-buffer RSA: each operand is split into `n52`
//! 52-bit digits held lazily in 64-bit accumulator lanes, and carries
//! are propagated once at the end of a multiplication instead of per
//! digit. Working in radix 2^52 changes the Montgomery factor from
//! `R = 2^(64·w)` to `R' = 2^(52·n52)` — internal residues differ from
//! the scalar kernel's, but every entry point converts in and out of
//! the `R'` domain itself and canonicalizes the result, and canonical
//! residues are unique, so outputs remain bit-identical to
//! [`crate::bigmont::BigMontCtx`]'s. The correctness envelope is the
//! standard AMM one: with `4m < R'` every in-domain value stays below
//! `2m`, lazy digits stay below 2^60 for `n52 ≤ 40`, and the final
//! conversion needs at most one conditional subtraction.
//!
//! Digit counts are instantiated at 5/10/20/40 (covering moduli up to
//! 256/512/1024/2048 bits; operands pad with zero digits). Wider
//! moduli and hosts without `avx512ifma` fall back to the GPR
//! interleave — [`IfmaCtx::new`] returns `None` and the caller keeps
//! its existing path.

use crate::bigmont::{self, BigMontCtx, SMALL_EXP_BITS, WINDOW_BITS};
use crate::biguint::BigUint;
use crate::limbs;
use core::cmp::Ordering;
use sies_telemetry as tel;

/// Lanes per IFMA block: one zmm register of 64-bit lanes.
pub(crate) const LANES: usize = 8;
/// Digits carry 52 bits; the top 12 accumulate lazy carries.
const MASK52: u64 = (1 << 52) - 1;
/// Instantiated digit counts (monomorphized kernels).
const SIZES: [usize; 4] = [5, 10, 20, 40];

/// Smallest instantiated digit count whose `R' = 2^(52·n52)` exceeds
/// `4m` for a `n64`-limb modulus; `None` when the modulus is too wide.
fn digits_for(n64: usize) -> Option<usize> {
    let need = (64 * n64 + 2).div_ceil(52);
    SIZES.into_iter().find(|&d| d >= need)
}

/// True when this host can run the IFMA kernels.
pub(crate) fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512ifma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Splits little-endian 64-bit limbs into `n52` little-endian 52-bit
/// digits (zero-padded past the source).
fn pack52(src: &[u64], n52: usize) -> Vec<u64> {
    (0..n52)
        .map(|i| {
            let bit = 52 * i;
            let (w, off) = (bit / 64, bit % 64);
            let mut d = src.get(w).copied().unwrap_or(0) >> off;
            if off > 12 {
                d |= src.get(w + 1).copied().unwrap_or(0) << (64 - off);
            }
            d & MASK52
        })
        .collect()
}

/// Reassembles canonical 52-bit digits into `n64` 64-bit limbs (digits
/// beyond the target width must be zero).
fn unpack52(digits: &[u64], n64: usize) -> Vec<u64> {
    let mut out = vec![0u64; n64];
    for (i, &d) in digits.iter().enumerate() {
        let bit = 52 * i;
        let (w, off) = (bit / 64, bit % 64);
        if w < n64 {
            out[w] |= d << off;
        }
        if off > 12 && w + 1 < n64 {
            out[w + 1] |= d >> (64 - off);
        }
    }
    out
}

/// Replicates scalar digits across all 8 lanes of an interleaved block
/// (`block[j·8 + l]` = digit `j` of lane `l`).
fn broadcast_block(digits: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; digits.len() * LANES];
    for (j, &d) in digits.iter().enumerate() {
        for slot in &mut out[j * LANES..(j + 1) * LANES] {
            *slot = d;
        }
    }
    out
}

/// Writes scalar digits into lane `l` of an interleaved block.
fn scatter_lane(block: &mut [u64], digits: &[u64], l: usize) {
    for (j, &d) in digits.iter().enumerate() {
        block[j * LANES + l] = d;
    }
}

/// Reads lane `l` of an interleaved block back as scalar digits.
fn gather_lane(block: &[u64], n52: usize, l: usize) -> Vec<u64> {
    (0..n52).map(|j| block[j * LANES + l]).collect()
}

/// Per-call precomputation for one modulus: packed modulus block, the
/// radix-2^52 Montgomery constant, and the `R'`-domain conversion
/// digits. Construction returns `None` off-x86, without `avx512ifma`,
/// or when the modulus needs more than 40 digits.
pub(crate) struct IfmaCtx<'c> {
    ctx: &'c BigMontCtx,
    n52: usize,
    /// Interleaved broadcast modulus digits (`n52 × 8`).
    m_block: Vec<u64>,
    /// `-m⁻¹ mod 2^52` (the low 52 bits of the 64-bit constant).
    k: u64,
    /// `R' mod m` as digits — the AMM identity and ragged-lane pad.
    r1p: Vec<u64>,
    /// Interleaved broadcast of `R'² mod m` — the to-domain multiplier.
    r2p_block: Vec<u64>,
    /// Interleaved broadcast of 1 — the from-domain multiplier.
    one_block: Vec<u64>,
}

impl<'c> IfmaCtx<'c> {
    pub(crate) fn new(ctx: &'c BigMontCtx) -> Option<Self> {
        if !available() {
            return None;
        }
        let n52 = digits_for(ctx.width())?;
        let m = ctx.modulus();
        let two = BigUint::from_u64(2);
        let r1p_big = two.pow_mod(&BigUint::from_u64(52 * n52 as u64), &m);
        let r2p_big = two.pow_mod(&BigUint::from_u64(104 * n52 as u64), &m);
        let mut one = vec![0u64; n52];
        one[0] = 1;
        Some(IfmaCtx {
            ctx,
            n52,
            m_block: broadcast_block(&pack52(ctx.m_limbs(), n52)),
            k: ctx.n_prime() & MASK52,
            r1p: pack52(r1p_big.limbs(), n52),
            r2p_block: broadcast_block(&pack52(r2p_big.limbs(), n52)),
            one_block: broadcast_block(&one),
        })
    }

    /// Packs one reduced operand into lane `l` of `block`.
    fn load_value(&self, block: &mut [u64], v: &BigUint, l: usize) {
        scatter_lane(block, &pack52(&self.ctx.reduce(v), self.n52), l);
    }

    /// Converts lane `l` of a *plain* (out-of-domain, canonical-digit)
    /// block back into a canonical `BigUint` below the modulus.
    fn unload_value(&self, block: &[u64], l: usize) -> BigUint {
        let mut limbs64 = unpack52(&gather_lane(block, self.n52, l), self.ctx.width());
        if limbs::cmp(&limbs64, self.ctx.m_limbs()) != Ordering::Less {
            limbs::sub_assign(&mut limbs64, self.ctx.m_limbs());
        }
        BigUint::from_limbs(limbs64)
    }
}

#[cfg(target_arch = "x86_64")]
mod kernel {
    use super::*;
    use core::arch::x86_64::*;

    /// 8-lane almost Montgomery multiplication at `N` digits:
    /// `out[l] = a[l]·b[l]·R'⁻¹ (mod m)`, digits canonical, value in
    /// `[0, 2m)`. One `vpmadd52` pair per digit per row; carries stay
    /// lazy in the 64-bit lanes until the final normalization sweep.
    #[target_feature(enable = "avx512f,avx512ifma")]
    fn amm<const N: usize>(m: &[u64], k: __m512i, a: &[u64], b: &[u64], out: &mut [u64]) {
        debug_assert!(m.len() == N * 8 && a.len() == N * 8);
        debug_assert!(b.len() == N * 8 && out.len() == N * 8);
        // SAFETY: all loads/stores are within the checked N×8 blocks;
        // the ISA requirement is carried by `target_feature` and
        // checked by the caller's dispatch.
        unsafe {
            let mask = _mm512_set1_epi64(MASK52 as i64);
            let zero = _mm512_setzero_si512();
            let ld = |p: &[u64], j: usize| _mm512_loadu_si512(p.as_ptr().add(j * 8) as *const _);
            let mut acc = [zero; N];
            for i in 0..N {
                let bi = ld(b, i);
                // Digit 0: accumulate the low products, derive the row
                // quotient y, zero the low 52 bits, keep the carry.
                let a0 = ld(a, 0);
                let m0 = ld(m, 0);
                let t0 = _mm512_madd52lo_epu64(acc[0], a0, bi);
                let y = _mm512_madd52lo_epu64(zero, t0, k);
                let t0 = _mm512_madd52lo_epu64(t0, m0, y);
                let carry = _mm512_srli_epi64(t0, 52);
                // Fused shift-down: the new digit j-1 is the old digit
                // j plus its low products plus digit j-1's high halves.
                let mut prev_a = a0;
                let mut prev_m = m0;
                for j in 1..N {
                    let aj = ld(a, j);
                    let mj = ld(m, j);
                    let mut t = _mm512_madd52lo_epu64(acc[j], aj, bi);
                    t = _mm512_madd52lo_epu64(t, mj, y);
                    t = _mm512_madd52hi_epu64(t, prev_a, bi);
                    t = _mm512_madd52hi_epu64(t, prev_m, y);
                    acc[j - 1] = t;
                    prev_a = aj;
                    prev_m = mj;
                }
                acc[0] = _mm512_add_epi64(acc[0], carry);
                let top = _mm512_madd52hi_epu64(zero, prev_a, bi);
                acc[N - 1] = _mm512_madd52hi_epu64(top, prev_m, y);
            }
            // Normalize the lazy digits to canonical 52-bit form. The
            // value is below 2m < R', so the top digit sheds no carry.
            let mut carry = zero;
            for (j, accj) in acc.iter().enumerate() {
                let t = _mm512_add_epi64(*accj, carry);
                carry = _mm512_srli_epi64(t, 52);
                _mm512_storeu_si512(
                    out.as_mut_ptr().add(j * 8) as *mut _,
                    _mm512_and_si512(t, mask),
                );
            }
        }
    }

    /// In-domain 8-lane exponentiation by a shared exponent — the exact
    /// window schedule of [`bigmont`]'s scalar `pow_mod`, each step one
    /// [`amm`].
    #[target_feature(enable = "avx512f,avx512ifma")]
    fn pow_inner<const N: usize>(
        ictx: &IfmaCtx<'_>,
        base_m: &[u64],
        exp: &BigUint,
        mults: &mut u64,
    ) -> Vec<u64> {
        let m = &ictx.m_block;
        let k = _mm512_set1_epi64(ictx.k as i64);
        if exp.is_zero() {
            return broadcast_block(&ictx.r1p);
        }
        let bits = exp.bit_len();
        let mut acc = vec![0u64; N * 8];
        let mut tmp = vec![0u64; N * 8];
        if bits <= SMALL_EXP_BITS {
            acc.copy_from_slice(base_m);
            for i in (0..bits - 1).rev() {
                amm::<N>(m, k, &acc, &acc, &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
                *mults += LANES as u64;
                if exp.bit(i) {
                    amm::<N>(m, k, &acc, base_m, &mut tmp);
                    core::mem::swap(&mut acc, &mut tmp);
                    *mults += LANES as u64;
                }
            }
            return acc;
        }
        let mut table = Vec::with_capacity(1 << WINDOW_BITS);
        table.push(broadcast_block(&ictx.r1p));
        table.push(base_m.to_vec());
        for i in 2..(1 << WINDOW_BITS) {
            let mut next = vec![0u64; N * 8];
            amm::<N>(m, k, &table[i - 1], base_m, &mut next);
            table.push(next);
        }
        *mults += (((1 << WINDOW_BITS) - 2) * LANES) as u64;
        let nwindows = bits.div_ceil(WINDOW_BITS);
        acc.copy_from_slice(&table[bigmont::window_of(exp, nwindows - 1)]);
        for w in (0..nwindows - 1).rev() {
            for _ in 0..WINDOW_BITS {
                amm::<N>(m, k, &acc, &acc, &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
            }
            *mults += (WINDOW_BITS * LANES) as u64;
            let nibble = bigmont::window_of(exp, w);
            if nibble != 0 {
                amm::<N>(m, k, &acc, &table[nibble], &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
                *mults += LANES as u64;
            }
        }
        acc
    }

    /// One 8-wide `pow_mod` chunk (exactly 8 bases, shared exponent).
    #[target_feature(enable = "avx512f,avx512ifma")]
    pub(super) fn pow_chunk_t<const N: usize>(
        ictx: &IfmaCtx<'_>,
        bases: &[BigUint],
        exp: &BigUint,
        mults: &mut u64,
    ) -> Vec<BigUint> {
        let k = _mm512_set1_epi64(ictx.k as i64);
        let mut plain = vec![0u64; N * 8];
        for (l, v) in bases.iter().enumerate() {
            ictx.load_value(&mut plain, v, l);
        }
        let mut base_m = vec![0u64; N * 8];
        amm::<N>(&ictx.m_block, k, &plain, &ictx.r2p_block, &mut base_m);
        *mults += LANES as u64;
        let acc = pow_inner::<N>(ictx, &base_m, exp, mults);
        amm::<N>(&ictx.m_block, k, &acc, &ictx.one_block, &mut plain);
        *mults += LANES as u64;
        (0..bases.len().min(LANES))
            .map(|l| ictx.unload_value(&plain, l))
            .collect()
    }

    /// One 8-wide `chain_pow_mod` chunk: `base^(e^k)` with the whole
    /// chain in the `R'` domain (`k > 0`).
    #[target_feature(enable = "avx512f,avx512ifma")]
    pub(super) fn chain_chunk_t<const N: usize>(
        ictx: &IfmaCtx<'_>,
        bases: &[BigUint],
        e: &BigUint,
        kpow: u64,
        mults: &mut u64,
    ) -> Vec<BigUint> {
        debug_assert!(kpow > 0);
        let k = _mm512_set1_epi64(ictx.k as i64);
        let mut plain = vec![0u64; N * 8];
        for (l, v) in bases.iter().enumerate() {
            ictx.load_value(&mut plain, v, l);
        }
        let mut x = vec![0u64; N * 8];
        amm::<N>(&ictx.m_block, k, &plain, &ictx.r2p_block, &mut x);
        *mults += LANES as u64;
        for _ in 0..kpow {
            x = pow_inner::<N>(ictx, &x, e, mults);
        }
        amm::<N>(&ictx.m_block, k, &x, &ictx.one_block, &mut plain);
        *mults += LANES as u64;
        (0..bases.len().min(LANES))
            .map(|l| ictx.unload_value(&plain, l))
            .collect()
    }

    /// One 8-wide fold chunk: up to 8 ragged products, shorter lanes
    /// padded with `R' mod m` (the AMM identity), residual `R'` factors
    /// cancelled per distinct lane length with one scalar fix-up.
    #[target_feature(enable = "avx512f,avx512ifma")]
    pub(super) fn fold_chunk_t<const N: usize>(
        ictx: &IfmaCtx<'_>,
        lists: &[&[BigUint]],
        mults: &mut u64,
    ) -> Vec<BigUint> {
        debug_assert!(lists.len() <= LANES);
        let k = _mm512_set1_epi64(ictx.k as i64);
        let rounds = lists.iter().map(|l| l.len()).max().unwrap_or(0);
        let mut acc = broadcast_block(&ictx.r1p);
        let mut op = vec![0u64; N * 8];
        let mut tmp = vec![0u64; N * 8];
        let mut counts = [0u64; LANES];
        for r in 0..rounds {
            for (l, count) in counts.iter_mut().enumerate() {
                match lists.get(l).and_then(|list| list.get(r)) {
                    Some(v) => {
                        ictx.load_value(&mut op, v, l);
                        *count += 1;
                    }
                    None => scatter_lane(&mut op, &ictx.r1p, l),
                }
            }
            amm::<N>(&ictx.m_block, k, &acc, &op, &mut tmp);
            core::mem::swap(&mut acc, &mut tmp);
            *mults += LANES as u64;
        }
        // acc_l = Πv · R'^-(count-1); cancel with R'^(count-1) mod m,
        // memoized per distinct lane length within the chunk.
        let modulus = ictx.ctx.modulus();
        let mut fixes: Vec<(u64, BigUint)> = Vec::new();
        lists
            .iter()
            .enumerate()
            .map(|(l, _)| {
                if counts[l] == 0 {
                    return BigUint::one();
                }
                let lane = ictx.unload_value_in_domain(&acc, l);
                let pending = counts[l] - 1;
                if pending == 0 {
                    return lane;
                }
                let fix = match fixes.iter().find(|(p, _)| *p == pending) {
                    Some((_, f)) => f.clone(),
                    None => {
                        let f = BigUint::from_u64(2)
                            .pow_mod(&BigUint::from_u64(52 * ictx.n52 as u64 * pending), &modulus);
                        fixes.push((pending, f.clone()));
                        f
                    }
                };
                lane.mul_mod(&fix, &modulus)
            })
            .collect()
    }
}

impl<'c> IfmaCtx<'c> {
    /// Converts lane `l` of an *in-domain* block (value in `[0, 2m)`)
    /// to a canonical plain `BigUint`: reduces the extra bit, then the
    /// value itself is the lane's residue times `R'⁻¹`... — used only
    /// by the fold fix-up, which multiplies the factor back in.
    fn unload_value_in_domain(&self, block: &[u64], l: usize) -> BigUint {
        let mut limbs64 = unpack52(&gather_lane(block, self.n52, l), self.width_for_domain());
        while limbs::cmp(&limbs64, self.ctx.m_limbs()) != Ordering::Less {
            limbs::sub_assign(&mut limbs64, self.ctx.m_limbs());
        }
        BigUint::from_limbs(limbs64)
    }

    /// 64-bit limbs needed to hold an in-domain value (< 2m).
    fn width_for_domain(&self) -> usize {
        self.ctx.width() + 1
    }
}

/// Chunk entry points: monomorphized dispatch on the digit count. All
/// panic off-x86 — [`IfmaCtx::new`] cannot return `Some` there.
#[cfg(target_arch = "x86_64")]
pub(crate) fn pow_chunk(
    ictx: &IfmaCtx<'_>,
    bases: &[BigUint],
    exp: &BigUint,
    mults: &mut u64,
) -> Vec<BigUint> {
    tel::count!("crypto.mont.ifma_chunks");
    // SAFETY: IfmaCtx::new verified avx512ifma support at runtime.
    unsafe {
        match ictx.n52 {
            5 => kernel::pow_chunk_t::<5>(ictx, bases, exp, mults),
            10 => kernel::pow_chunk_t::<10>(ictx, bases, exp, mults),
            20 => kernel::pow_chunk_t::<20>(ictx, bases, exp, mults),
            _ => kernel::pow_chunk_t::<40>(ictx, bases, exp, mults),
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) fn chain_chunk(
    ictx: &IfmaCtx<'_>,
    bases: &[BigUint],
    e: &BigUint,
    k: u64,
    mults: &mut u64,
) -> Vec<BigUint> {
    tel::count!("crypto.mont.ifma_chunks");
    // SAFETY: as in `pow_chunk`.
    unsafe {
        match ictx.n52 {
            5 => kernel::chain_chunk_t::<5>(ictx, bases, e, k, mults),
            10 => kernel::chain_chunk_t::<10>(ictx, bases, e, k, mults),
            20 => kernel::chain_chunk_t::<20>(ictx, bases, e, k, mults),
            _ => kernel::chain_chunk_t::<40>(ictx, bases, e, k, mults),
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) fn fold_chunk(
    ictx: &IfmaCtx<'_>,
    lists: &[&[BigUint]],
    mults: &mut u64,
) -> Vec<BigUint> {
    tel::count!("crypto.mont.ifma_chunks");
    // SAFETY: as in `pow_chunk`.
    unsafe {
        match ictx.n52 {
            5 => kernel::fold_chunk_t::<5>(ictx, lists, mults),
            10 => kernel::fold_chunk_t::<10>(ictx, lists, mults),
            20 => kernel::fold_chunk_t::<20>(ictx, lists, mults),
            _ => kernel::fold_chunk_t::<40>(ictx, lists, mults),
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn pow_chunk(
    _ictx: &IfmaCtx<'_>,
    _bases: &[BigUint],
    _exp: &BigUint,
    _mults: &mut u64,
) -> Vec<BigUint> {
    unreachable!("IfmaCtx cannot be constructed without x86_64 IFMA")
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn chain_chunk(
    _ictx: &IfmaCtx<'_>,
    _bases: &[BigUint],
    _e: &BigUint,
    _k: u64,
    _mults: &mut u64,
) -> Vec<BigUint> {
    unreachable!("IfmaCtx cannot be constructed without x86_64 IFMA")
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn fold_chunk(
    _ictx: &IfmaCtx<'_>,
    _lists: &[&[BigUint]],
    _mults: &mut u64,
) -> Vec<BigUint> {
    unreachable!("IfmaCtx cannot be constructed without x86_64 IFMA")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let limbs64 = vec![u64::MAX, 0x1234_5678_9ABC_DEF0, 7, 0];
        for n52 in [5usize, 10] {
            let digits = pack52(&limbs64, n52);
            assert!(digits.iter().all(|&d| d <= MASK52));
            assert_eq!(unpack52(&digits, 4), limbs64);
        }
    }

    #[test]
    fn digit_counts_leave_amm_headroom() {
        // 4m < R' must hold for every mapped width.
        for n64 in 1..=32 {
            let n52 = digits_for(n64).unwrap();
            assert!(52 * n52 >= 64 * n64 + 2, "n64 {n64} mapped to n52 {n52}");
        }
        assert_eq!(digits_for(32), Some(40), "2048-bit moduli use 40 digits");
        assert_eq!(digits_for(33), None, "wider moduli fall back to GPR");
    }

    #[test]
    fn ifma_pow_matches_scalar_when_available() {
        if !available() {
            return;
        }
        let m = BigUint::from_be_bytes(&[0xC3; 96]); // odd 768-bit
        let ctx = BigMontCtx::new(&m);
        let ictx = IfmaCtx::new(&ctx).expect("768-bit fits 20 digits");
        assert_eq!(ictx.n52, 20);
        let bases: Vec<BigUint> = (0..8u64)
            .map(|i| BigUint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1))
            .collect();
        for e in [0u64, 1, 2, 255, 256, 65_537, u64::MAX] {
            let e = BigUint::from_u64(e);
            let mut mults = 0;
            let got = pow_chunk(&ictx, &bases, &e, &mut mults);
            for (b, g) in bases.iter().zip(&got) {
                assert_eq!(*g, ctx.pow_mod(b, &e), "e {e:?}");
            }
        }
    }
}
