//! Multi-lane SHA-1 compression: W independent single-block compressions
//! per round-loop pass (W ∈ {1, 4, 8, 16}).
//!
//! Same design as [`crate::sha256xn`] — plain `[u32; W]` lane arrays the
//! compiler can autovectorize, one independent message per lane, output
//! bit-identical to the scalar [`crate::sha1::Sha1`] compression. Lane
//! registers are `[u32; 8]` with only the first five words live, so the
//! batched HMAC layer can treat both hashes uniformly.

use crate::lanes::effective_lane_width;
use crate::sha1::H0;
use sies_telemetry as tel;

/// The SHA-1 initial chaining state as a lane register (words 5..8 are
/// unused padding).
pub fn initial_state() -> [u32; 8] {
    let mut state = [0u32; 8];
    state[..5].copy_from_slice(&H0);
    state
}

/// One 80-round pass over W interleaved lanes; `states[l]` (words 0..5)
/// advances by `blocks[l]`.
// Indexed lane loops: `w[i][l]` keeps the i-across-l layout explicit for
// the autovectorizer, and the schedule reads four `w[i - k][l]` taps.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn compress_w<const W: usize>(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    // Fixed-size views: every `[l]` access below is bounds-check-free,
    // which is what lets the lane loops vectorize.
    let states: &mut [[u32; 8]; W] = states.try_into().expect("exactly W lane states");
    let blocks: &[[u8; 64]; W] = blocks.try_into().expect("exactly W lane blocks");

    let mut w = [[0u32; W]; 80];
    for i in 0..16 {
        for l in 0..W {
            w[i][l] = u32::from_be_bytes(blocks[l][4 * i..4 * i + 4].try_into().unwrap());
        }
    }
    for i in 16..80 {
        for l in 0..W {
            w[i][l] = (w[i - 3][l] ^ w[i - 8][l] ^ w[i - 14][l] ^ w[i - 16][l]).rotate_left(1);
        }
    }

    let mut a = [0u32; W];
    let mut b = [0u32; W];
    let mut c = [0u32; W];
    let mut d = [0u32; W];
    let mut e = [0u32; W];
    for l in 0..W {
        a[l] = states[l][0];
        b[l] = states[l][1];
        c[l] = states[l][2];
        d[l] = states[l][3];
        e[l] = states[l][4];
    }

    // One round with the state rotation expressed by *renaming*: only
    // the register playing role `e` (which receives the new `a`) and the
    // one playing role `b` (rotated in place into the new `c`) are
    // written, so the lane vectors stay in registers instead of being
    // copied down the a..e chain every round. Callers rotate the
    // argument order right by one per round; five rounds return to the
    // starting names. One argument per state register is the mechanism,
    // not clutter.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn round<const W: usize>(
        a: &[u32; W],
        b: &mut [u32; W],
        c: &[u32; W],
        d: &[u32; W],
        e: &mut [u32; W],
        k: u32,
        wi: &[u32; W],
        f: impl Fn(u32, u32, u32) -> u32,
    ) {
        for l in 0..W {
            let t = a[l]
                .rotate_left(5)
                .wrapping_add(f(b[l], c[l], d[l]))
                .wrapping_add(e[l])
                .wrapping_add(k)
                .wrapping_add(wi[l]);
            b[l] = b[l].rotate_left(30);
            e[l] = t;
        }
    }
    fn ch(b: u32, c: u32, d: u32) -> u32 {
        (b & c) | (!b & d)
    }
    fn parity(b: u32, c: u32, d: u32) -> u32 {
        b ^ c ^ d
    }
    fn maj(b: u32, c: u32, d: u32) -> u32 {
        (b & c) | (b & d) | (c & d)
    }
    macro_rules! five_rounds {
        ($i:expr, $k:expr, $f:expr) => {
            round(&a, &mut b, &c, &d, &mut e, $k, &w[$i], $f);
            round(&e, &mut a, &b, &c, &mut d, $k, &w[$i + 1], $f);
            round(&d, &mut e, &a, &b, &mut c, $k, &w[$i + 2], $f);
            round(&c, &mut d, &e, &a, &mut b, $k, &w[$i + 3], $f);
            round(&b, &mut c, &d, &e, &mut a, $k, &w[$i + 4], $f);
        };
    }
    for i in (0..20).step_by(5) {
        five_rounds!(i, 0x5A827999, ch);
    }
    for i in (20..40).step_by(5) {
        five_rounds!(i, 0x6ED9EBA1, parity);
    }
    for i in (40..60).step_by(5) {
        five_rounds!(i, 0x8F1BBCDC, maj);
    }
    for i in (60..80).step_by(5) {
        five_rounds!(i, 0xCA62C1D6, parity);
    }

    for l in 0..W {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
        states[l][4] = states[l][4].wrapping_add(e[l]);
    }
}

/// The lane kernels compiled a second time with AVX2 codegen enabled
/// and dispatched at runtime — see [`crate::sha256xn`] for why (LLVM's
/// baseline cost model scalarizes the rotates). Identical safe bodies,
/// identical digests.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::compress_w;

    #[target_feature(enable = "avx2")]
    pub fn compress_w4(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
        compress_w::<4>(states, blocks);
    }

    #[target_feature(enable = "avx2")]
    pub fn compress_w8(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
        compress_w::<8>(states, blocks);
    }
}

/// AVX-512F instantiation of the x16 kernel — see [`crate::sha256xn`]
/// for the register-budget rationale.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::compress_w;

    #[target_feature(enable = "avx512f")]
    pub fn compress_w16(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
        compress_w::<16>(states, blocks);
    }
}

/// NEON instantiation of the x4 kernel — see [`crate::sha256xn`].
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::compress_w;

    #[target_feature(enable = "neon")]
    pub fn compress_w4(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
        compress_w::<4>(states, blocks);
    }
}

/// Four interleaved single-block compressions.
pub fn compress_x4(states: &mut [[u32; 8]; 4], blocks: &[[u8; 64]; 4]) {
    dispatch_w4(&mut states[..], &blocks[..]);
}

/// Eight interleaved single-block compressions.
pub fn compress_x8(states: &mut [[u32; 8]; 8], blocks: &[[u8; 64]; 8]) {
    dispatch_w8(&mut states[..], &blocks[..]);
}

/// Sixteen interleaved single-block compressions.
pub fn compress_x16(states: &mut [[u32; 8]; 16], blocks: &[[u8; 64]; 16]) {
    dispatch_w16(&mut states[..], &blocks[..]);
}

fn dispatch_w4(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 requirement is checked at runtime above; the
        // function body is the same safe Rust as `compress_w::<4>`.
        return unsafe { avx2::compress_w4(states, blocks) };
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON availability is checked at runtime above; the
        // function body is the same safe Rust as `compress_w::<4>`.
        return unsafe { neon::compress_w4(states, blocks) };
    }
    compress_w::<4>(states, blocks);
}

fn dispatch_w8(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: as in `dispatch_w4`.
        return unsafe { avx2::compress_w8(states, blocks) };
    }
    compress_w::<8>(states, blocks);
}

fn dispatch_w16(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: as in `dispatch_w4`.
        return unsafe { avx512::compress_w16(states, blocks) };
    }
    compress_w::<16>(states, blocks);
}

/// Compresses any number of independent (state, block) lanes, scheduling
/// x16 / x8 / x4 / scalar kernel passes capped at `width` and handling
/// the ragged tail. Output is independent of `width`.
pub fn compress_many_with(width: usize, states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    assert_eq!(states.len(), blocks.len(), "one block per lane state");
    let total = states.len() as u64;
    // Pass counts accrue locally and flush once per call (no atomics in
    // the lane loop; telemetry off costs one load + branch per call).
    let (mut p16, mut p8, mut p4, mut p1) = (0u64, 0u64, 0u64, 0u64);
    let (mut states, mut blocks) = (states, blocks);
    while !states.is_empty() {
        let n = states.len();
        let take = if width >= 16 && n >= 16 {
            16
        } else if width >= 8 && n >= 8 {
            8
        } else if width >= 4 && n >= 4 {
            4
        } else {
            1
        };
        let (s, rest_s) = states.split_at_mut(take);
        let (b, rest_b) = blocks.split_at(take);
        match take {
            16 => {
                dispatch_w16(s, b);
                p16 += 1;
            }
            8 => {
                dispatch_w8(s, b);
                p8 += 1;
            }
            4 => {
                dispatch_w4(s, b);
                p4 += 1;
            }
            _ => {
                compress_w::<1>(s, b);
                p1 += 1;
            }
        }
        states = rest_s;
        blocks = rest_b;
    }
    tel::count!("crypto.sha1.compressions", total);
    tel::count!("crypto.sha1.passes_x16", p16);
    tel::count!("crypto.sha1.passes_x8", p8);
    tel::count!("crypto.sha1.passes_x4", p4);
    tel::count!("crypto.sha1.passes_x1", p1);
}

/// [`compress_many_with`] at the hardware-clamped runtime width
/// ([`crate::lanes::effective_lane_width`]).
pub fn compress_many(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    compress_many_with(effective_lane_width(), states, blocks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashFunction;
    use crate::sha1::Sha1;

    fn single_block(msg: &[u8]) -> [u8; 64] {
        assert!(msg.len() <= 55);
        let mut block = [0u8; 64];
        block[..msg.len()].copy_from_slice(msg);
        block[msg.len()] = 0x80;
        block[56..].copy_from_slice(&((msg.len() as u64) * 8).to_be_bytes());
        block
    }

    fn digest_of_state(state: &[u32; 8]) -> Vec<u8> {
        state[..5].iter().flat_map(|w| w.to_be_bytes()).collect()
    }

    #[test]
    fn every_lane_matches_scalar_at_every_width() {
        let msgs: Vec<Vec<u8>> = (0..16u8)
            .map(|i| vec![0xA0 | i; (i as usize) * 3])
            .collect();
        let blocks: Vec<[u8; 64]> = msgs.iter().map(|m| single_block(m)).collect();
        for width in [1usize, 4, 8, 16] {
            for n in 0..=16usize {
                let mut states = vec![initial_state(); n];
                compress_many_with(width, &mut states, &blocks[..n]);
                for (l, st) in states.iter().enumerate() {
                    assert_eq!(
                        digest_of_state(st),
                        Sha1::digest(&msgs[l]),
                        "lane {l} of {n} diverged at width {width}"
                    );
                }
            }
        }
    }
}
