//! Montgomery multiplication for 256-bit odd moduli.
//!
//! The generic [`crate::u256::U256::mul_mod`] performs a full widening
//! multiply followed by Knuth-D division. For repeated multiplication
//! under one fixed modulus — modular exponentiation, i.e. the querier's
//! Fermat inverse and the RSA-free SIES hot path — Montgomery (CIOS)
//! reduction avoids the division entirely. The ablation bench compares
//! both paths.

use crate::limbs;
use crate::u256::U256;

/// Precomputed context for a fixed odd 256-bit modulus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontgomeryCtx {
    /// The modulus `p` (odd, > 1).
    p: [u64; 4],
    /// `-p^{-1} mod 2^64`.
    n_prime: u64,
    /// `R² mod p` where `R = 2^256`, used to enter the Montgomery domain.
    r2: U256,
    /// `R mod p` — the Montgomery form of 1, hoisted here so `pow_mod`
    /// does not pay a `to_mont` conversion per call.
    r1: U256,
}

/// Inverse of an odd `x` modulo `2^64` by Newton iteration.
fn inv_mod_2_64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    // 5 iterations double the correct bits from 5 to > 64.
    let mut inv = x; // correct mod 2^5 for odd x? use the classic trick:
    inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

impl MontgomeryCtx {
    /// Builds a context. Panics when `p` is even or < 3.
    pub fn new(p: &U256) -> Self {
        assert!(p.bit(0), "Montgomery requires an odd modulus");
        assert!(p > &U256::ONE, "modulus too small");
        let n_prime = inv_mod_2_64(p.limbs()[0]).wrapping_neg();
        // R mod p, then square it mod p with the generic path (setup-time
        // only).
        let r_mod_p = U256::MAX.rem(p).add_mod(&U256::ONE, p);
        let r2 = r_mod_p.mul_mod(&r_mod_p, p);
        MontgomeryCtx {
            p: p.limbs(),
            n_prime,
            r2,
            r1: r_mod_p,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> U256 {
        U256::from_limbs(self.p)
    }

    /// CIOS Montgomery multiplication: returns `a·b·R⁻¹ mod p` for
    /// Montgomery-domain operands.
    pub fn mont_mul(&self, a: &U256, b: &U256) -> U256 {
        let a = a.limbs();
        let b = b.limbs();
        let p = self.p;
        // t has 6 limbs: 4 + carry space.
        let mut t = [0u64; 6];
        for &bi in &b {
            // t += a * b_i
            let mut carry = 0u64;
            for j in 0..4 {
                let (lo, hi) = limbs::mac(t[j], a[j], bi, carry);
                t[j] = lo;
                carry = hi;
            }
            let (s, c) = limbs::adc(t[4], carry, 0);
            t[4] = s;
            t[5] = c;

            // m = t[0] * n' mod 2^64; t += m * p; t >>= 64.
            let m = t[0].wrapping_mul(self.n_prime);
            let (_, mut carry) = limbs::mac(t[0], m, p[0], 0);
            for j in 1..4 {
                let (lo, hi) = limbs::mac(t[j], m, p[j], carry);
                t[j - 1] = lo;
                carry = hi;
            }
            let (s, c) = limbs::adc(t[4], carry, 0);
            t[3] = s;
            t[4] = t[5].wrapping_add(c);
            t[5] = 0;
        }
        // Final conditional subtraction: t may be in [0, 2p).
        let mut out = [t[0], t[1], t[2], t[3]];
        if t[4] != 0 || limbs::cmp(&out, &p) != core::cmp::Ordering::Less {
            let borrow = limbs::sub_assign(&mut out, &p);
            debug_assert!(t[4] != 0 || borrow == 0);
        }
        U256::from_limbs(out)
    }

    /// Converts into the Montgomery domain: `a·R mod p`.
    pub fn to_mont(&self, a: &U256) -> U256 {
        self.mont_mul(a, &self.r2)
    }

    /// Converts out of the Montgomery domain: `ā·R⁻¹ mod p`.
    pub fn from_mont(&self, a: &U256) -> U256 {
        self.mont_mul(a, &U256::ONE)
    }

    /// Modular multiplication through the Montgomery domain (one-shot;
    /// only faster than [`U256::mul_mod`] when amortized over many
    /// operations — use [`Self::pow_mod`] for that).
    pub fn mul_mod(&self, a: &U256, b: &U256) -> U256 {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation in the Montgomery domain: fixed 4-bit
    /// windows over a precomputed 16-entry power table for long
    /// exponents, plain square-and-multiply for short ones (where the
    /// table build would dominate). The base is only reduced when it is
    /// not already `< p`, and the Montgomery form of 1 comes from the
    /// hoisted `r1` instead of a per-call conversion.
    pub fn pow_mod(&self, base: &U256, exp: &U256) -> U256 {
        let p = self.modulus();
        let base = if base < &p { *base } else { base.rem(&p) };
        if exp.is_zero() {
            return U256::ONE.rem(&p); // p > 1, so this is just 1
        }
        let base_m = self.to_mont(&base);
        let bits = exp.bit_len();
        if bits <= 8 {
            // Short exponents: square-and-multiply seeded from the top
            // bit, no table.
            let mut acc = base_m;
            for i in (0..bits - 1).rev() {
                acc = self.mont_mul(&acc, &acc);
                if exp.bit(i) {
                    acc = self.mont_mul(&acc, &base_m);
                }
            }
            return self.from_mont(&acc);
        }
        // table[i] = base^i in the Montgomery domain.
        let mut table = [self.r1; 16];
        table[1] = base_m;
        for i in 2..16 {
            table[i] = self.mont_mul(&table[i - 1], &base_m);
        }
        let nwindows = bits.div_ceil(4);
        let window = |w: usize| {
            let mut nibble = 0usize;
            for b in 0..4 {
                if exp.bit(w * 4 + b) {
                    nibble |= 1 << b;
                }
            }
            nibble
        };
        let mut acc = table[window(nwindows - 1)];
        for w in (0..nwindows - 1).rev() {
            for _ in 0..4 {
                acc = self.mont_mul(&acc, &acc);
            }
            let nibble = window(w);
            if nibble != 0 {
                acc = self.mont_mul(&acc, &table[nibble]);
            }
        }
        self.from_mont(&acc)
    }

    /// Fermat inverse using Montgomery exponentiation (prime modulus).
    pub fn inv_mod_prime(&self, a: &U256) -> Option<U256> {
        let p = self.modulus();
        let a = a.rem(&p);
        if a.is_zero() {
            return None;
        }
        let exp = p.checked_sub(&U256::from_u64(2)).expect("p >= 3");
        Some(self.pow_mod(&a, &exp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_PRIME_256;

    fn ctx() -> MontgomeryCtx {
        MontgomeryCtx::new(&DEFAULT_PRIME_256)
    }

    #[test]
    fn inv_mod_2_64_small_cases() {
        for x in [1u64, 3, 5, 0xFFFF_FFFF_FFFF_FF43, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv_mod_2_64(x)), 1, "x = {x}");
        }
    }

    #[test]
    fn round_trip_through_domain() {
        let c = ctx();
        for v in [0u64, 1, 2, 12345, u64::MAX] {
            let a = U256::from_u64(v);
            assert_eq!(c.from_mont(&c.to_mont(&a)), a, "v = {v}");
        }
    }

    #[test]
    fn mul_matches_generic_path() {
        let c = ctx();
        let p = DEFAULT_PRIME_256;
        let mut x = U256::from_u64(0x1234_5678_9ABC_DEF0);
        let mut y = U256::from_u64(0x0FED_CBA9_8765_4321);
        for i in 0..200 {
            assert_eq!(c.mul_mod(&x, &y), x.mul_mod(&y, &p), "iteration {i}");
            // Evolve operands pseudo-randomly across the full range.
            x = x.mul_mod(&y, &p).add_mod(&U256::ONE, &p);
            y = y.mul_mod(&x, &p);
        }
    }

    #[test]
    fn pow_matches_generic_path() {
        let c = ctx();
        let p = DEFAULT_PRIME_256;
        let base = U256::from_u64(31337);
        for e in [0u64, 1, 2, 3, 65537, u64::MAX] {
            let exp = U256::from_u64(e);
            assert_eq!(c.pow_mod(&base, &exp), base.pow_mod(&exp, &p), "e = {e}");
        }
        // Full-width exponent (Fermat).
        let exp = p.checked_sub(&U256::from_u64(1)).unwrap();
        assert_eq!(c.pow_mod(&base, &exp), U256::ONE);
    }

    #[test]
    fn inverse_matches_fermat() {
        let c = ctx();
        let p = DEFAULT_PRIME_256;
        let a = U256::from_be_bytes(&[0x5A; 32]).rem(&p);
        assert_eq!(c.inv_mod_prime(&a), a.inv_mod_prime(&p));
        assert_eq!(c.inv_mod_prime(&U256::ZERO), None);
    }

    #[test]
    fn works_with_other_odd_moduli() {
        // A 255-bit odd (non-prime is fine for mul) modulus.
        let m = U256::low_mask(255)
            .checked_sub(&U256::from_u64(18))
            .unwrap();
        assert!(m.bit(0));
        let c = MontgomeryCtx::new(&m);
        let a = U256::from_u64(987_654_321).shl(100).rem(&m);
        let b = U256::from_u64(123_456_789).shl(150).rem(&m);
        assert_eq!(c.mul_mod(&a, &b), a.mul_mod(&b, &m));
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        MontgomeryCtx::new(&U256::from_u64(100));
    }
}
