//! Variable-width Montgomery multiplication for [`crate::biguint::BigUint`].
//!
//! The fixed-width [`crate::mont::MontgomeryCtx`] serves the 256-bit SIES
//! hot path; this module brings the same CIOS reduction to the baselines'
//! big moduli — SECOA's 1024/2048-bit RSA SEAL chains and the Paillier
//! aggregate's `n²` — where the generic `BigUint::mul_mod` pays a full
//! Knuth-D division per product. A context is built once per modulus and
//! shared by every exponentiation, fold, and chain under it.
//!
//! Three kernels on top of the CIOS core:
//!
//! * [`BigMontCtx::pow_mod`] — fixed-window (w = 4) exponentiation over a
//!   16-entry power table, one domain round-trip per call;
//! * [`BigMontCtx::chain_pow_mod`] — `base^(e^k) mod m` for SEAL rolling:
//!   the whole chain stays in the Montgomery domain, so `k` rolling steps
//!   cost `2k` CIOS multiplications instead of `k` cold `pow_mod` calls
//!   with their conversions and divisions;
//! * [`MontAccumulator`] — division-free running products (SEAL folding,
//!   the verifier's seed product). Products are accumulated with plain
//!   CIOS multiplies, each of which leaves a stray `R⁻¹` factor; the
//!   accumulator counts them and cancels them all with a single
//!   `O(log k)` fix-up at the end.
//!
//! None of this is constant-time; see DESIGN.md §"Crypto kernels" for why
//! that is out of scope for this simulation.

use crate::biguint::BigUint;
use crate::limbs;
use core::cmp::Ordering;
use sies_telemetry as tel;

/// Window width for fixed-window exponentiation.
pub(crate) const WINDOW_BITS: usize = 4;
/// Exponents at or below this bit length skip the window table: for tiny
/// exponents (RSA's `e = 3`) the table build costs more than it saves.
pub(crate) const SMALL_EXP_BITS: usize = 2 * WINDOW_BITS;

/// Precomputed Montgomery context for a fixed odd modulus of any width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigMontCtx {
    /// The modulus `m` (odd, > 1), exactly `width` limbs, top limb
    /// non-zero.
    m: Vec<u64>,
    /// `-m^{-1} mod 2^64`.
    n_prime: u64,
    /// `R² mod m` where `R = 2^(64·width)`.
    r2: Vec<u64>,
    /// `R mod m` — the Montgomery form of 1 (hoisted here so `pow_mod`
    /// does not re-derive it per call).
    r1: Vec<u64>,
}

/// Inverse of an odd `x` modulo `2^64` by Newton iteration.
fn inv_mod_2_64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x;
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

impl BigMontCtx {
    /// Builds a context for `m`. Panics when `m` is even or < 3.
    pub fn new(m: &BigUint) -> Self {
        assert!(m.is_odd(), "Montgomery requires an odd modulus");
        assert!(m.bit_len() > 1, "modulus too small");
        let width = m.limbs().len();
        let n_prime = inv_mod_2_64(m.limbs()[0]).wrapping_neg();
        // R mod m and R² mod m via the generic path (setup-time only).
        let r = BigUint::one().shl(64 * width).rem(m);
        let r2 = r.mul_mod(&r, m);
        BigMontCtx {
            m: m.limbs().to_vec(),
            n_prime,
            r2: to_width(&r2, width),
            r1: to_width(&r, width),
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.m.clone())
    }

    /// Limb width of the fixed-size Montgomery representation.
    pub fn width(&self) -> usize {
        self.m.len()
    }

    /// CIOS Montgomery multiplication on `width`-limb operands:
    /// `out = a·b·R⁻¹ mod m`. `t` is scratch of `width + 2` limbs.
    ///
    /// The multiply and reduce passes of each row are fused: `t` is read
    /// and written once per row instead of twice, with the two carry
    /// chains (`a·b_i` and `u·m`) carried in registers. For `a, b < m`
    /// the running value stays below `2m`, so the overflow beyond the
    /// `n` stored limbs is a single bit (`t_hi`).
    pub(crate) fn cios(&self, a: &[u64], b: &[u64], t: &mut [u64], out: &mut [u64]) {
        let n = self.m.len();
        debug_assert!(a.len() == n && b.len() == n && t.len() >= n && out.len() == n);
        let m = &self.m[..n];
        let a = &a[..n];
        let t = &mut t[..n];
        for limb in t.iter_mut() {
            *limb = 0;
        }
        let mut t_hi = 0u64;
        for &bi in b {
            let (t0, mut carry_a) = limbs::mac(t[0], a[0], bi, 0);
            let u = t0.wrapping_mul(self.n_prime);
            let (_, mut carry_m) = limbs::mac(t0, u, m[0], 0);
            for j in 1..n {
                let (tj, ca) = limbs::mac(t[j], a[j], bi, carry_a);
                carry_a = ca;
                let (lo, cm) = limbs::mac(tj, u, m[j], carry_m);
                carry_m = cm;
                t[j - 1] = lo;
            }
            let (s, c) = limbs::adc(t_hi, carry_a, carry_m);
            t[n - 1] = s;
            t_hi = c;
        }
        out.copy_from_slice(t);
        // Final conditional subtraction: the result is in [0, 2m).
        if t_hi != 0 || limbs::cmp(out, m) != Ordering::Less {
            let borrow = limbs::sub_assign(out, m);
            debug_assert!(t_hi != 0 || borrow == 0);
        }
    }

    /// Reduces `a` mod `m` and pads to the fixed width.
    pub(crate) fn reduce(&self, a: &BigUint) -> Vec<u64> {
        let n = self.m.len();
        if limbs::cmp(a.limbs(), &self.m) == Ordering::Less {
            to_width(a, n)
        } else {
            to_width(&a.div_rem(&self.modulus()).1, n)
        }
    }

    /// Converts into the Montgomery domain: `a·R mod m` (reducing first
    /// when `a ≥ m`).
    pub(crate) fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let a = self.reduce(a);
        let n = self.m.len();
        let mut t = vec![0u64; n + 2];
        let mut out = vec![0u64; n];
        self.cios(&a, &self.r2, &mut t, &mut out);
        out
    }

    /// Converts out of the Montgomery domain into a canonical `BigUint`.
    // Named for symmetry with `to_mont` (and `MontgomeryCtx::from_mont`):
    // it converts *out of* a representation, not *from* a source type.
    #[allow(clippy::wrong_self_convention)]
    pub(crate) fn from_mont(&self, a: &[u64]) -> BigUint {
        let n = self.m.len();
        let one = one_limbs(n);
        let mut t = vec![0u64; n + 2];
        let mut out = vec![0u64; n];
        self.cios(a, &one, &mut t, &mut out);
        BigUint::from_limbs(out)
    }

    /// Modular multiplication through the Montgomery domain. One-shot —
    /// only pays off when amortized; use [`Self::pow_mod`] or
    /// [`MontAccumulator`] for repeated work.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        let n = self.m.len();
        let mut t = vec![0u64; n + 2];
        let mut out = vec![0u64; n];
        self.cios(&am, &bm, &mut t, &mut out);
        self.from_mont(&out)
    }

    /// In-domain exponentiation: given `base` in Montgomery form, returns
    /// `base^exp` still in Montgomery form. Fixed 4-bit windows above
    /// [`SMALL_EXP_BITS`], plain square-and-multiply below.
    ///
    /// `mults` accrues the exact CIOS multiply count, flushed to
    /// telemetry once per public call — a local `u64` add per multiply,
    /// never an atomic in the inner loop.
    fn pow_in_domain(&self, base_m: &[u64], exp: &BigUint, mults: &mut u64) -> Vec<u64> {
        let n = self.m.len();
        let mut t = vec![0u64; n + 2];
        if exp.is_zero() {
            return self.r1.clone();
        }
        let bits = exp.bit_len();
        let mut acc = vec![0u64; n];
        let mut tmp = vec![0u64; n];
        if bits <= SMALL_EXP_BITS {
            // Left-to-right square-and-multiply seeded with the top bit.
            acc.copy_from_slice(base_m);
            for i in (0..bits - 1).rev() {
                self.cios(&acc, &acc, &mut t, &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
                *mults += 1;
                if exp.bit(i) {
                    self.cios(&acc, base_m, &mut t, &mut tmp);
                    core::mem::swap(&mut acc, &mut tmp);
                    *mults += 1;
                }
            }
            return acc;
        }
        // Precompute base^0 .. base^15 in the Montgomery domain.
        let mut table = Vec::with_capacity(1 << WINDOW_BITS);
        table.push(self.r1.clone());
        table.push(base_m.to_vec());
        for i in 2..(1 << WINDOW_BITS) {
            let mut next = vec![0u64; n];
            self.cios(&table[i - 1], base_m, &mut t, &mut next);
            table.push(next);
        }
        *mults += (1 << WINDOW_BITS) - 2;
        let nwindows = bits.div_ceil(WINDOW_BITS);
        // Seed with the top window to skip its four leading squarings.
        acc.copy_from_slice(&table[window_of(exp, nwindows - 1)]);
        for w in (0..nwindows - 1).rev() {
            for _ in 0..WINDOW_BITS {
                self.cios(&acc, &acc, &mut t, &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
            }
            *mults += WINDOW_BITS as u64;
            let nibble = window_of(exp, w);
            if nibble != 0 {
                self.cios(&acc, &table[nibble], &mut t, &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
                *mults += 1;
            }
        }
        acc
    }

    /// Modular exponentiation `base^exp mod m` with fixed 4-bit windows.
    /// Bit-identical to [`BigUint::pow_mod`] over this modulus.
    pub fn pow_mod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one(); // m > 1, so 1 is canonical
        }
        let base_m = self.to_mont(base);
        let mut mults = 0u64;
        let acc = self.pow_in_domain(&base_m, exp, &mut mults);
        tel::count!("crypto.mont.pow_calls");
        tel::count!("crypto.mont.cios_mults", mults);
        self.from_mont(&acc)
    }

    /// Chain exponentiation `base^(e^k) mod m`: applies `x ← x^e` `k`
    /// times without ever leaving the Montgomery domain — the SEAL
    /// rolling kernel (`k` raw-RSA encryptions with `e = 3` cost `2k`
    /// CIOS multiplies total).
    pub fn chain_pow_mod(&self, base: &BigUint, e: &BigUint, k: u64) -> BigUint {
        if k == 0 {
            return self.reduce_value(base);
        }
        let mut x = self.to_mont(base);
        let mut mults = 0u64;
        for _ in 0..k {
            x = self.pow_in_domain(&x, e, &mut mults);
        }
        tel::count!("crypto.mont.chain_calls");
        tel::count!("crypto.mont.cios_mults", mults);
        self.from_mont(&x)
    }

    /// `a mod m` (public convenience; uses the fast compare-first path).
    pub fn reduce_value(&self, a: &BigUint) -> BigUint {
        BigUint::from_limbs(self.reduce(a))
    }

    /// Starts a division-free running product under this modulus.
    pub fn accumulator(&self) -> MontAccumulator<'_> {
        MontAccumulator {
            ctx: self,
            acc: None,
            t: vec![0u64; self.m.len() + 2],
            tmp: vec![0u64; self.m.len()],
            pending_r: 0,
        }
    }

    /// Product of a sequence of values mod `m`, via [`MontAccumulator`].
    pub fn product_mod<'a>(&self, values: impl IntoIterator<Item = &'a BigUint>) -> BigUint {
        let mut acc = self.accumulator();
        for v in values {
            acc.mul(v);
        }
        acc.finish()
    }

    /// View of the fixed-width modulus limbs (for the lane-interleaved
    /// batch kernels in [`crate::bigmontxn`]).
    pub(crate) fn m_limbs(&self) -> &[u64] {
        &self.m
    }

    /// `-m^{-1} mod 2^64` (see [`crate::bigmontxn`]).
    pub(crate) fn n_prime(&self) -> u64 {
        self.n_prime
    }

    /// `R mod m` — the Montgomery form of 1 (see [`crate::bigmontxn`]).
    pub(crate) fn r1_limbs(&self) -> &[u64] {
        &self.r1
    }

    /// `R² mod m` (see [`crate::bigmontxn`]).
    pub(crate) fn r2_limbs(&self) -> &[u64] {
        &self.r2
    }

    /// `R^(j+1) mod m` in the sense of the accumulator fix-up: returns
    /// the limb vector `X` with `X = R^(j+1) mod m`, computed with
    /// `O(log j)` CIOS multiplies. `j = 0` gives `R mod m` (= `r1`).
    pub(crate) fn r_power(&self, j: u64) -> Vec<u64> {
        // Under CIOS multiplication, R^a ∘ R^b = R^(a+b-1): exponents
        // shifted by one form a monoid with identity r1 = R^1. Classic
        // square-and-multiply over that monoid computes R^(j+1).
        let n = self.m.len();
        let mut t = vec![0u64; n + 2];
        let mut result = self.r1.clone(); // R^1
        let mut sq = self.r2.clone(); // R^2
        let mut tmp = vec![0u64; n];
        let mut rem = j;
        while rem > 0 {
            if rem & 1 == 1 {
                self.cios(&result, &sq, &mut t, &mut tmp);
                core::mem::swap(&mut result, &mut tmp);
            }
            rem >>= 1;
            if rem > 0 {
                self.cios(&sq, &sq, &mut t, &mut tmp);
                core::mem::swap(&mut sq, &mut tmp);
            }
        }
        result
    }
}

/// Division-free running product mod `m`.
///
/// Each [`MontAccumulator::mul`] is a single CIOS multiply on the *plain*
/// (non-Montgomery) operands, which multiplies a stray `R⁻¹` into the
/// accumulator; [`MontAccumulator::finish`] cancels the accumulated
/// `R^-(k-1)` with one `O(log k)` fix-up. Compared with the generic
/// `mul_mod` fold (full widening multiply + Knuth-D division per element)
/// this is one tight CIOS pass per element.
pub struct MontAccumulator<'a> {
    ctx: &'a BigMontCtx,
    /// Current product, fixed width; `None` until the first `mul`.
    acc: Option<Vec<u64>>,
    t: Vec<u64>,
    tmp: Vec<u64>,
    /// Number of `R⁻¹` factors to cancel at the end.
    pending_r: u64,
}

impl MontAccumulator<'_> {
    /// Multiplies `v` into the running product.
    pub fn mul(&mut self, v: &BigUint) {
        let v = self.ctx.reduce(v);
        match &mut self.acc {
            None => self.acc = Some(v),
            Some(acc) => {
                self.ctx.cios(acc, &v, &mut self.t, &mut self.tmp);
                core::mem::swap(acc, &mut self.tmp);
                self.pending_r += 1;
            }
        }
    }

    /// The product of everything multiplied in so far (1 when empty).
    pub fn finish(self) -> BigUint {
        let Some(acc) = self.acc else {
            return BigUint::one();
        };
        if self.pending_r == 0 {
            return BigUint::from_limbs(acc);
        }
        // acc = Πv · R^-(pending); multiply by R^(pending+1) under CIOS
        // (which eats one more R) to cancel exactly.
        let fix = self.ctx.r_power(self.pending_r);
        let n = self.ctx.m.len();
        let mut t = vec![0u64; n + 2];
        let mut out = vec![0u64; n];
        self.ctx.cios(&acc, &fix, &mut t, &mut out);
        BigUint::from_limbs(out)
    }
}

/// Pads `a`'s limbs to exactly `width` (a must fit).
pub(crate) fn to_width(a: &BigUint, width: usize) -> Vec<u64> {
    let mut out = vec![0u64; width];
    out[..a.limbs().len()].copy_from_slice(a.limbs());
    out
}

/// The value 1 as a `width`-limb vector.
fn one_limbs(width: usize) -> Vec<u64> {
    let mut v = vec![0u64; width];
    v[0] = 1;
    v
}

/// The `w`-th 4-bit window of `exp` (window 0 is least significant).
pub(crate) fn window_of(exp: &BigUint, w: usize) -> usize {
    let mut nibble = 0usize;
    for b in 0..WINDOW_BITS {
        if exp.bit(w * WINDOW_BITS + b) {
            nibble |= 1 << b;
        }
    }
    nibble
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn modulus_1024(rng: &mut StdRng) -> BigUint {
        // Any odd 1024-bit value works for multiplication tests.
        let mut m = BigUint::random_bits(rng, 1024);
        if m.is_even() {
            m = m.add(&BigUint::one());
        }
        m
    }

    #[test]
    fn round_trip_through_domain() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = modulus_1024(&mut rng);
        let ctx = BigMontCtx::new(&m);
        for bits in [1usize, 17, 64, 500, 1023] {
            let a = BigUint::random_bits(&mut rng, bits);
            let am = ctx.to_mont(&a);
            assert_eq!(ctx.from_mont(&am), a.rem(&m), "bits = {bits}");
        }
    }

    #[test]
    fn mul_matches_generic() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = modulus_1024(&mut rng);
        let ctx = BigMontCtx::new(&m);
        for _ in 0..20 {
            let a = BigUint::random_bits(&mut rng, 1400); // unreduced on purpose
            let b = BigUint::random_bits(&mut rng, 900);
            assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &m));
        }
    }

    #[test]
    fn pow_matches_generic() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = modulus_1024(&mut rng);
        let ctx = BigMontCtx::new(&m);
        let base = BigUint::random_bits(&mut rng, 800);
        for e in [0u64, 1, 2, 3, 15, 16, 17, 65537, u64::MAX] {
            let e = BigUint::from_u64(e);
            assert_eq!(ctx.pow_mod(&base, &e), base.pow_mod(&e, &m), "e = {e:?}");
        }
        // Full-width exponent.
        let e = BigUint::random_bits(&mut rng, 1024);
        assert_eq!(ctx.pow_mod(&base, &e), base.pow_mod(&e, &m));
        // Edge exponents 2^k - 1 (all-ones windows).
        for k in [63usize, 64, 127, 129] {
            let e = BigUint::one().shl(k).sub(&BigUint::one());
            assert_eq!(ctx.pow_mod(&base, &e), base.pow_mod(&e, &m), "k = {k}");
        }
    }

    #[test]
    fn chain_matches_repeated_pow() {
        let mut rng = StdRng::seed_from_u64(10);
        let m = modulus_1024(&mut rng);
        let ctx = BigMontCtx::new(&m);
        let base = BigUint::random_bits(&mut rng, 1000);
        let e = BigUint::from_u64(3);
        for k in [0u64, 1, 2, 7, 20] {
            let mut expect = base.rem(&m);
            for _ in 0..k {
                expect = expect.pow_mod(&e, &m);
            }
            assert_eq!(ctx.chain_pow_mod(&base, &e, k), expect, "k = {k}");
        }
    }

    #[test]
    fn accumulator_matches_generic_fold() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = modulus_1024(&mut rng);
        let ctx = BigMontCtx::new(&m);
        for count in [0usize, 1, 2, 3, 17, 64] {
            let values: Vec<BigUint> = (0..count)
                .map(|_| BigUint::random_bits(&mut rng, 1024))
                .collect();
            let mut expect = BigUint::one();
            for v in &values {
                expect = expect.mul_mod(v, &m);
            }
            assert_eq!(ctx.product_mod(values.iter()), expect, "count = {count}");
        }
    }

    #[test]
    fn works_at_small_widths() {
        // Single-limb and two-limb moduli exercise the width edges.
        for m in [3u64, 97, 1_000_000_007, u64::MAX - 58 /* odd */] {
            let m = BigUint::from_u64(m);
            let ctx = BigMontCtx::new(&m);
            let a = BigUint::from_u64(0xdead_beef_1234_5678);
            let e = BigUint::from_u64(31337);
            assert_eq!(ctx.pow_mod(&a, &e), a.pow_mod(&e, &m));
        }
        let m = BigUint::from_u128(u128::MAX - 56); // odd, two limbs
        let ctx = BigMontCtx::new(&m);
        let a = BigUint::from_u128(u128::MAX - 4);
        assert_eq!(ctx.mul_mod(&a, &a), a.mul_mod(&a, &m), "two-limb modulus");
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        BigMontCtx::new(&BigUint::from_u64(100));
    }
}
