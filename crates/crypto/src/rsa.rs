//! Textbook RSA over [`crate::biguint::BigUint`].
//!
//! Used exclusively by the SECOA baseline (paper §II-D): a SEAL is the seed
//! encrypted `v` times with the *raw* RSA permutation, i.e. a one-way
//! chain. No padding is involved — SEALs rely on RSA being a trapdoor
//! permutation on `Z_n`, and on its multiplicative homomorphism
//! (`E(x)·E(y) mod n = E(x·y)`) for the folding step.
//!
//! SIES itself never touches RSA; that is exactly the paper's point about
//! sensor-side cost.
//!
//! ## Kernels
//!
//! Every public key owns a [`BigMontCtx`] for its modulus: encryption,
//! SEAL rolling ([`RsaPublicKey::encrypt_repeated`], which stays in the
//! Montgomery domain for the whole chain) and product folds
//! ([`RsaPublicKey::fold_product`]) all share it. Private-key decryption
//! goes through the Chinese Remainder Theorem — two half-size windowed
//! exponentiations mod `p` and `q` plus Garner recombination — with the
//! straight `c^d mod n` kept as [`RsaKeyPair::decrypt_generic`], the
//! differential-test oracle.

use crate::bigmont::BigMontCtx;
use crate::bigmontxn;
use crate::biguint::BigUint;
use rand::RngCore;

/// Default SECOA modulus size: 1024 bits = 128-byte SEALs (Table II).
pub const DEFAULT_MODULUS_BITS: usize = 1024;

/// Public exponent used for SEAL chains. SECOA picks a small exponent so
/// that one rolling step is cheap; `e = 3` needs `p, q ≢ 1 (mod 3)`.
pub const SEAL_EXPONENT: u64 = 3;

/// An RSA public key `(e, n)` with its shared Montgomery context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    /// Montgomery context for `n`; `None` only for a degenerate even
    /// modulus (never produced by key generation, tolerated so that
    /// hand-built test keys cannot panic here).
    ctx: Option<BigMontCtx>,
}

/// CRT private-key material: half-size exponents and Garner coefficient.
#[derive(Clone, Debug)]
struct RsaCrt {
    q: BigUint,
    /// `d mod (p−1)`.
    d_p: BigUint,
    /// `d mod (q−1)`.
    d_q: BigUint,
    /// `q⁻¹ mod p` (Garner recombination).
    q_inv: BigUint,
    /// Montgomery contexts for the half-size moduli.
    ctx_p: BigMontCtx,
    ctx_q: BigMontCtx,
}

/// An RSA key pair. The private exponent is unused by SEAL chains but kept
/// for completeness and testing.
#[derive(Clone, Debug)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
    crt: RsaCrt,
}

impl RsaPublicKey {
    /// Constructs from raw components.
    pub fn new(n: BigUint, e: BigUint) -> Self {
        let ctx = (n.is_odd() && n.bit_len() > 1).then(|| BigMontCtx::new(&n));
        RsaPublicKey { n, e, ctx }
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// The shared Montgomery context for `n` (absent only for degenerate
    /// even test moduli).
    pub fn mont_ctx(&self) -> Option<&BigMontCtx> {
        self.ctx.as_ref()
    }

    /// Modulus size in bytes (= SEAL wire size).
    pub fn modulus_bytes(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Raw RSA encryption: `m^e mod n`.
    pub fn encrypt(&self, m: &BigUint) -> BigUint {
        match &self.ctx {
            Some(ctx) => ctx.pow_mod(m, &self.e),
            None => m.pow_mod(&self.e, &self.n),
        }
    }

    /// Applies the RSA permutation `times` times — the SECOA *rolling*
    /// operation: `E^times(m)`. The whole chain runs inside the
    /// Montgomery domain: one conversion in, `2·times` CIOS multiplies
    /// (for `e = 3`), one conversion out.
    pub fn encrypt_repeated(&self, m: &BigUint, times: u64) -> BigUint {
        match &self.ctx {
            Some(ctx) => ctx.chain_pow_mod(m, &self.e, times),
            None => {
                let mut acc = m.rem(&self.n);
                for _ in 0..times {
                    acc = acc.pow_mod(&self.e, &self.n);
                }
                acc
            }
        }
    }

    /// Multiplies two ciphertexts mod `n` — the SECOA *folding* operation.
    /// By multiplicative homomorphism, folding commutes with rolling.
    pub fn fold(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.mul_mod(b, &self.n)
    }

    /// Folds a whole sequence of values into one product mod `n` through
    /// the shared Montgomery context — the verifier-side kernel for the
    /// `N·J` seed product (one division-free CIOS multiply per element,
    /// one `O(log k)` fix-up at the end). Identical output to a
    /// [`Self::fold`] loop.
    pub fn fold_product<'a>(&self, values: impl IntoIterator<Item = &'a BigUint>) -> BigUint {
        match &self.ctx {
            Some(ctx) => ctx.product_mod(values),
            None => {
                let mut acc = BigUint::one();
                for v in values {
                    acc = acc.mul_mod(v, &self.n);
                }
                acc
            }
        }
    }

    /// Batch raw RSA encryption: [`Self::encrypt`] mapped over `ms`, W
    /// bases at a time through the lane-interleaved CIOS kernel
    /// ([`crate::bigmontxn::pow_mod_many`]). Identical bytes to the
    /// scalar loop.
    pub fn encrypt_many(&self, ms: &[BigUint]) -> Vec<BigUint> {
        match &self.ctx {
            Some(ctx) => bigmontxn::pow_mod_many(ctx, ms, &self.e),
            None => ms.iter().map(|m| self.encrypt(m)).collect(),
        }
    }

    /// Batch SEAL rolling with one shared roll count:
    /// [`Self::encrypt_repeated`] mapped over `ms`, whole chains
    /// in-domain across W lanes.
    pub fn encrypt_repeated_many(&self, ms: &[BigUint], times: u64) -> Vec<BigUint> {
        match &self.ctx {
            Some(ctx) => bigmontxn::chain_pow_mod_many(ctx, ms, &self.e, times),
            None => ms.iter().map(|m| self.encrypt_repeated(m, times)).collect(),
        }
    }

    /// Batch *ragged* rolling — `(value, times)` pairs with differing
    /// chain lengths, as SECOA's per-sketch positions are. Pairs are
    /// bucketed by chain length and each bucket runs through the W-lane
    /// chain kernel; output order matches input order, bytes identical
    /// to the scalar loop.
    pub fn encrypt_repeated_ragged(&self, items: &[(BigUint, u64)]) -> Vec<BigUint> {
        let Some(ctx) = &self.ctx else {
            return items
                .iter()
                .map(|(m, k)| self.encrypt_repeated(m, *k))
                .collect();
        };
        let mut buckets: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        for (idx, (_, k)) in items.iter().enumerate() {
            buckets.entry(*k).or_default().push(idx);
        }
        let mut out: Vec<Option<BigUint>> = vec![None; items.len()];
        for (k, idxs) in buckets {
            let bases: Vec<BigUint> = idxs.iter().map(|&i| items[i].0.clone()).collect();
            let rolled = bigmontxn::chain_pow_mod_many(ctx, &bases, &self.e, k);
            for (i, v) in idxs.into_iter().zip(rolled) {
                out[i] = Some(v);
            }
        }
        out.into_iter()
            .map(|v| v.expect("every index bucketed exactly once"))
            .collect()
    }

    /// Independent fold products, W product lanes at a time — SECOA's
    /// per-sketch seed products. `out[i] = Π lists[i] mod n` (1 for an
    /// empty list), identical bytes to a [`Self::fold_product`] loop.
    pub fn fold_product_many(&self, lists: &[&[BigUint]]) -> Vec<BigUint> {
        match &self.ctx {
            Some(ctx) => bigmontxn::fold_many(ctx, lists),
            None => lists.iter().map(|l| self.fold_product(l.iter())).collect(),
        }
    }

    /// One big product lane-split into W partial lanes — the verifier's
    /// `N·J` seed product. Identical bytes to [`Self::fold_product`]
    /// over the same values.
    pub fn fold_product_wide(&self, values: &[BigUint]) -> BigUint {
        match &self.ctx {
            Some(ctx) => bigmontxn::product_mod_wide(ctx, values),
            None => self.fold_product(values.iter()),
        }
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with an `bits`-bit modulus and public
    /// exponent [`SEAL_EXPONENT`]. Primes are drawn with `p, q ≡ 2 (mod 3)`
    /// so that `gcd(e, φ(n)) = 1` holds by construction.
    pub fn generate(rng: &mut dyn RngCore, bits: usize) -> Self {
        assert!(bits >= 32, "modulus too small");
        let half = bits / 2;
        loop {
            let p = prime_2_mod_3(rng, half);
            let q = prime_2_mod_3(rng, bits - half);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            if let Some(kp) = Self::try_from_primes(&p, &q) {
                return kp;
            }
        }
    }

    /// Builds a key pair from caller-supplied primes, for known-answer
    /// tests and reproducible fixtures. The primes must be distinct and
    /// `≡ 2 (mod 3)` so that `gcd(e, φ(n)) = 1` with `e = 3`; panics
    /// otherwise — fixed fixtures should fail loudly, not degrade.
    pub fn from_primes(p: &BigUint, q: &BigUint) -> Self {
        assert_ne!(p, q, "primes must be distinct");
        let three = BigUint::from_u64(3);
        assert_eq!(p.rem(&three).as_u64(), 2, "p must be ≡ 2 (mod 3)");
        assert_eq!(q.rem(&three).as_u64(), 2, "q must be ≡ 2 (mod 3)");
        Self::try_from_primes(p, q).expect("gcd(3, phi) = 1 for p, q = 2 (mod 3)")
    }

    /// Shared keygen core: derives `d` and the CRT parameters, or `None`
    /// when `e` is not invertible mod `φ(n)`.
    fn try_from_primes(p: &BigUint, q: &BigUint) -> Option<Self> {
        let one = BigUint::one();
        let p1 = p.sub(&one);
        let q1 = q.sub(&one);
        let phi = p1.mul(&q1);
        let e = BigUint::from_u64(SEAL_EXPONENT);
        let d = e.mod_inverse(&phi)?;
        let n = p.mul(q);
        let crt = RsaCrt {
            q: q.clone(),
            d_p: d.rem(&p1),
            d_q: d.rem(&q1),
            q_inv: q.mod_inverse(p).expect("p, q distinct primes"),
            ctx_p: BigMontCtx::new(p),
            ctx_q: BigMontCtx::new(q),
        };
        Some(RsaKeyPair {
            public: RsaPublicKey::new(n, e),
            d,
            crt,
        })
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// RSA decryption via the CRT: `m_p = c^{d_p} mod p`,
    /// `m_q = c^{d_q} mod q` (half-size moduli and exponents, windowed
    /// Montgomery), then Garner recombination
    /// `m = m_q + q·(q⁻¹·(m_p − m_q) mod p)`.
    pub fn decrypt(&self, c: &BigUint) -> BigUint {
        let crt = &self.crt;
        let m_p = crt.ctx_p.pow_mod(c, &crt.d_p);
        let m_q = crt.ctx_q.pow_mod(c, &crt.d_q);
        let p = crt.ctx_p.modulus();
        // h = q_inv · (m_p − m_q) mod p (lift m_q into [0, p) first).
        let diff = match m_p.checked_sub(&m_q.rem(&p)) {
            Some(d) => d,
            None => m_p.add(&p).sub(&m_q.rem(&p)),
        };
        let h = crt.q_inv.mul_mod(&diff, &p);
        m_q.add(&h.mul(&crt.q))
    }

    /// The pre-CRT decryption path, `c^d mod n` over the generic
    /// `BigUint` kernels — kept as the differential-test oracle for
    /// [`Self::decrypt`].
    pub fn decrypt_generic(&self, c: &BigUint) -> BigUint {
        c.pow_mod(&self.d, &self.public.n)
    }
}

/// Draws a random prime of the requested size with `p ≡ 2 (mod 3)`.
fn prime_2_mod_3(rng: &mut dyn RngCore, bits: usize) -> BigUint {
    let three = BigUint::from_u64(3);
    loop {
        let p = BigUint::random_prime(rng, bits, 24);
        if p.rem(&three).as_u64() == 2 {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_keypair() -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(11);
        RsaKeyPair::generate(&mut rng, 128)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let kp = small_keypair();
        for m in [0u64, 1, 2, 12345, 0xdead_beef] {
            let m = BigUint::from_u64(m);
            let c = kp.public().encrypt(&m);
            assert_eq!(kp.decrypt(&c), m);
        }
    }

    #[test]
    fn crt_decrypt_matches_generic_oracle() {
        let kp = small_keypair();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..32 {
            let c = BigUint::random_below(&mut rng, kp.public().modulus());
            assert_eq!(kp.decrypt(&c), kp.decrypt_generic(&c));
        }
    }

    #[test]
    fn multiplicative_homomorphism() {
        let kp = small_keypair();
        let pk = kp.public();
        let a = BigUint::from_u64(1234);
        let b = BigUint::from_u64(5678);
        let folded = pk.fold(&pk.encrypt(&a), &pk.encrypt(&b));
        let direct = pk.encrypt(&a.mul_mod(&b, pk.modulus()));
        assert_eq!(folded, direct);
    }

    #[test]
    fn fold_product_matches_fold_loop() {
        let kp = small_keypair();
        let pk = kp.public();
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<BigUint> = (0..17)
            .map(|_| BigUint::random_below(&mut rng, pk.modulus()))
            .collect();
        let mut expect = BigUint::one();
        for v in &values {
            expect = pk.fold(&expect, v);
        }
        assert_eq!(pk.fold_product(values.iter()), expect);
        assert_eq!(pk.fold_product([].iter()), BigUint::one());
    }

    #[test]
    fn rolling_then_folding_commutes() {
        // E^k(x) · E^k(y) = E^k(x·y): the identity SECOA verification
        // depends on.
        let kp = small_keypair();
        let pk = kp.public();
        let x = BigUint::from_u64(31337);
        let y = BigUint::from_u64(4242);
        let k = 5;
        let lhs = pk.fold(&pk.encrypt_repeated(&x, k), &pk.encrypt_repeated(&y, k));
        let rhs = pk.encrypt_repeated(&x.mul_mod(&y, pk.modulus()), k);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn chain_is_consistent() {
        // E^{a+b}(x) = E^b(E^a(x)): rolling composes additively.
        let kp = small_keypair();
        let pk = kp.public();
        let x = BigUint::from_u64(999);
        let ea = pk.encrypt_repeated(&x, 3);
        assert_eq!(pk.encrypt_repeated(&ea, 4), pk.encrypt_repeated(&x, 7));
        assert_eq!(pk.encrypt_repeated(&x, 0), x);
    }

    #[test]
    fn chain_matches_generic_pow_loop() {
        // The Montgomery chain must agree with the pre-PR kernel: `times`
        // cold `pow_mod` calls over the generic BigUint path.
        let kp = small_keypair();
        let pk = kp.public();
        let mut rng = StdRng::seed_from_u64(21);
        let x = BigUint::random_below(&mut rng, pk.modulus());
        let mut generic = x.rem(pk.modulus());
        for k in 0..=9u64 {
            assert_eq!(pk.encrypt_repeated(&x, k), generic, "length {k}");
            generic = generic.pow_mod(pk.exponent(), pk.modulus());
        }
    }

    #[test]
    fn generated_modulus_has_requested_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = RsaKeyPair::generate(&mut rng, 192);
        assert_eq!(kp.public().modulus().bit_len(), 192);
        assert_eq!(kp.public().modulus_bytes(), 24);
    }

    #[test]
    fn exponent_is_three() {
        let kp = small_keypair();
        assert_eq!(kp.public().exponent().as_u64(), 3);
    }
}
