//! Textbook RSA over [`crate::biguint::BigUint`].
//!
//! Used exclusively by the SECOA baseline (paper §II-D): a SEAL is the seed
//! encrypted `v` times with the *raw* RSA permutation, i.e. a one-way
//! chain. No padding is involved — SEALs rely on RSA being a trapdoor
//! permutation on `Z_n`, and on its multiplicative homomorphism
//! (`E(x)·E(y) mod n = E(x·y)`) for the folding step.
//!
//! SIES itself never touches RSA; that is exactly the paper's point about
//! sensor-side cost.

use crate::biguint::BigUint;
use rand::RngCore;

/// Default SECOA modulus size: 1024 bits = 128-byte SEALs (Table II).
pub const DEFAULT_MODULUS_BITS: usize = 1024;

/// Public exponent used for SEAL chains. SECOA picks a small exponent so
/// that one rolling step is cheap; `e = 3` needs `p, q ≢ 1 (mod 3)`.
pub const SEAL_EXPONENT: u64 = 3;

/// An RSA public key `(e, n)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA key pair. The private exponent is unused by SEAL chains but kept
/// for completeness and testing.
#[derive(Clone, Debug)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
}

impl RsaPublicKey {
    /// Constructs from raw components.
    pub fn new(n: BigUint, e: BigUint) -> Self {
        RsaPublicKey { n, e }
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus size in bytes (= SEAL wire size).
    pub fn modulus_bytes(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Raw RSA encryption: `m^e mod n`.
    pub fn encrypt(&self, m: &BigUint) -> BigUint {
        m.pow_mod(&self.e, &self.n)
    }

    /// Applies the RSA permutation `times` times — the SECOA *rolling*
    /// operation: `E^times(m)`.
    pub fn encrypt_repeated(&self, m: &BigUint, times: u64) -> BigUint {
        let mut acc = m.rem(&self.n);
        for _ in 0..times {
            acc = self.encrypt(&acc);
        }
        acc
    }

    /// Multiplies two ciphertexts mod `n` — the SECOA *folding* operation.
    /// By multiplicative homomorphism, folding commutes with rolling.
    pub fn fold(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.mul_mod(b, &self.n)
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with an `bits`-bit modulus and public
    /// exponent [`SEAL_EXPONENT`]. Primes are drawn with `p, q ≡ 2 (mod 3)`
    /// so that `gcd(e, φ(n)) = 1` holds by construction.
    pub fn generate(rng: &mut dyn RngCore, bits: usize) -> Self {
        assert!(bits >= 32, "modulus too small");
        let e = BigUint::from_u64(SEAL_EXPONENT);
        let half = bits / 2;
        loop {
            let p = prime_2_mod_3(rng, half);
            let q = prime_2_mod_3(rng, bits - half);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            let Some(d) = e.mod_inverse(&phi) else {
                continue;
            };
            return RsaKeyPair {
                public: RsaPublicKey { n, e },
                d,
            };
        }
    }

    /// Builds a key pair from caller-supplied primes, for known-answer
    /// tests and reproducible fixtures. The primes must be distinct and
    /// `≡ 2 (mod 3)` so that `gcd(e, φ(n)) = 1` with `e = 3`; panics
    /// otherwise — fixed fixtures should fail loudly, not degrade.
    pub fn from_primes(p: &BigUint, q: &BigUint) -> Self {
        assert_ne!(p, q, "primes must be distinct");
        let three = BigUint::from_u64(3);
        assert_eq!(p.rem(&three).as_u64(), 2, "p must be ≡ 2 (mod 3)");
        assert_eq!(q.rem(&three).as_u64(), 2, "q must be ≡ 2 (mod 3)");
        let n = p.mul(q);
        let one = BigUint::one();
        let phi = p.sub(&one).mul(&q.sub(&one));
        let e = BigUint::from_u64(SEAL_EXPONENT);
        let d = e
            .mod_inverse(&phi)
            .expect("gcd(3, phi) = 1 for p, q = 2 (mod 3)");
        RsaKeyPair {
            public: RsaPublicKey { n, e },
            d,
        }
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Raw RSA decryption: `c^d mod n`.
    pub fn decrypt(&self, c: &BigUint) -> BigUint {
        c.pow_mod(&self.d, &self.public.n)
    }
}

/// Draws a random prime of the requested size with `p ≡ 2 (mod 3)`.
fn prime_2_mod_3(rng: &mut dyn RngCore, bits: usize) -> BigUint {
    let three = BigUint::from_u64(3);
    loop {
        let p = BigUint::random_prime(rng, bits, 24);
        if p.rem(&three).as_u64() == 2 {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_keypair() -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(11);
        RsaKeyPair::generate(&mut rng, 128)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let kp = small_keypair();
        for m in [0u64, 1, 2, 12345, 0xdead_beef] {
            let m = BigUint::from_u64(m);
            let c = kp.public().encrypt(&m);
            assert_eq!(kp.decrypt(&c), m);
        }
    }

    #[test]
    fn multiplicative_homomorphism() {
        let kp = small_keypair();
        let pk = kp.public();
        let a = BigUint::from_u64(1234);
        let b = BigUint::from_u64(5678);
        let folded = pk.fold(&pk.encrypt(&a), &pk.encrypt(&b));
        let direct = pk.encrypt(&a.mul_mod(&b, pk.modulus()));
        assert_eq!(folded, direct);
    }

    #[test]
    fn rolling_then_folding_commutes() {
        // E^k(x) · E^k(y) = E^k(x·y): the identity SECOA verification
        // depends on.
        let kp = small_keypair();
        let pk = kp.public();
        let x = BigUint::from_u64(31337);
        let y = BigUint::from_u64(4242);
        let k = 5;
        let lhs = pk.fold(&pk.encrypt_repeated(&x, k), &pk.encrypt_repeated(&y, k));
        let rhs = pk.encrypt_repeated(&x.mul_mod(&y, pk.modulus()), k);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn chain_is_consistent() {
        // E^{a+b}(x) = E^b(E^a(x)): rolling composes additively.
        let kp = small_keypair();
        let pk = kp.public();
        let x = BigUint::from_u64(999);
        let ea = pk.encrypt_repeated(&x, 3);
        assert_eq!(pk.encrypt_repeated(&ea, 4), pk.encrypt_repeated(&x, 7));
        assert_eq!(pk.encrypt_repeated(&x, 0), x);
    }

    #[test]
    fn generated_modulus_has_requested_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = RsaKeyPair::generate(&mut rng, 192);
        assert_eq!(kp.public().modulus().bit_len(), 192);
        assert_eq!(kp.public().modulus_bytes(), 24);
    }

    #[test]
    fn exponent_is_three() {
        let kp = small_keypair();
        assert_eq!(kp.public().exponent().as_u64(), 3);
    }
}
