#![warn(missing_docs)]

//! # sies-crypto
//!
//! From-scratch cryptographic substrate for the SIES reproduction
//! (Papadopoulos, Kiayias, Papadias: *Secure and Efficient In-Network
//! Processing of Exact SUM Queries*, ICDE 2011).
//!
//! The paper's protocols only require a small toolbox, all of which is
//! implemented in this crate without external cryptography dependencies:
//!
//! * [`u256::U256`] — fixed-width 256-bit modular arithmetic for the SIES
//!   homomorphic cipher over a 32-byte prime `p`;
//! * [`biguint::BigUint`] — arbitrary precision arithmetic (Knuth-D
//!   division, windowed modular exponentiation, Miller–Rabin, prime
//!   generation) backing RSA and prime setup;
//! * [`sha1::Sha1`] / [`sha256::Sha256`] — FIPS 180-4 hashes;
//! * [`sha1xn`] / [`sha256xn`] — multi-lane compression kernels (W ∈
//!   {1, 4, 8, 16} interleaved single-block compressions, runtime width
//!   via [`lanes`]) behind the batched HMAC/PRF fan-out;
//! * [`bigmontxn`] — W-lane Montgomery batch kernels (lane-interleaved
//!   CIOS: `pow_mod_many` / `chain_pow_mod_many` / `fold_many`) behind
//!   the RSA/Paillier batch paths and the SECOA seed products;
//! * [`mod@hmac`] — RFC 2104 HMAC generic over the hash, the paper's
//!   `HM1(·)`/`HM256(·)`, with cached-pad states and the lane-batched
//!   [`hmac::HmacState::finalize_many`] / [`hmac::hmac_many`];
//! * [`prf`] — epoch-keyed PRF helpers with derive-to-range rejection
//!   sampling: scalar free functions, the cached [`prf::KeyedPrf`], and
//!   the cross-key batch API ([`prf::hm1_epoch_many`],
//!   [`prf::hm256_epoch_many`], [`prf::derive_mod_p_many`]);
//! * [`rsa`] — textbook RSA for the SECOA baseline's SEAL one-way chains.
//!
//! ## Example
//!
//! ```
//! use sies_crypto::prf::{derive_mod_nonzero, derive_mod};
//! use sies_crypto::u256::U256;
//! use sies_crypto::generate_prime_u256;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let p = generate_prime_u256(&mut rng, 256);
//! // Per-epoch keys as in the paper's initialization phase.
//! let k_t = derive_mod_nonzero(b"global key K", 42, &p);
//! let k_it = derive_mod(b"source key k_i", 42, &p);
//! // Encrypt and decrypt one message homomorphically.
//! let m = U256::from_u64(1234);
//! let c = k_t.mul_mod(&m, &p).add_mod(&k_it, &p);
//! let recovered = c.sub_mod(&k_it, &p).mul_mod(&k_t.inv_mod_prime(&p).unwrap(), &p);
//! assert_eq!(recovered, m);
//! ```

pub mod bigmont;
mod bigmont52;
pub mod bigmontxn;
pub mod biguint;
pub mod hash;
pub mod hmac;
pub mod lanes;
pub mod limbs;
pub mod mont;
pub mod paillier;
pub mod prf;
pub mod rsa;
pub mod sha1;
pub mod sha1xn;
pub mod sha256;
pub mod sha256xn;
pub mod u256;

pub use hash::{HashFunction, LaneHash};
pub use hmac::{ct_eq, hmac, hmac_many};

use biguint::BigUint;
use rand::RngCore;
use u256::U256;

/// A fixed, well-known 256-bit prime: `2^256 - 189` (the largest 256-bit
/// prime of the form `2^256 - k`). Used as the default SIES modulus so that
/// runs are reproducible without a setup-time prime search.
pub const DEFAULT_PRIME_256: U256 = U256::from_limbs([
    0xFFFF_FFFF_FFFF_FF43,
    0xFFFF_FFFF_FFFF_FFFF,
    0xFFFF_FFFF_FFFF_FFFF,
    0xFFFF_FFFF_FFFF_FFFF,
]);

/// Generates a random prime of up to 256 bits as a [`U256`] (the paper's
/// setup phase: "𝒬 also produces an arbitrary prime p").
pub fn generate_prime_u256(rng: &mut dyn RngCore, bits: usize) -> U256 {
    assert!((2..=256).contains(&bits), "bits must be in 2..=256");
    BigUint::random_prime(rng, bits, 40).to_u256()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_prime_is_prime() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = BigUint::from(&DEFAULT_PRIME_256);
        assert_eq!(p.bit_len(), 256);
        assert!(p.is_probable_prime(&mut rng, 40));
        // Spot-check the constant: 2^256 - p = 189.
        let two256 = BigUint::from_u64(1).shl(256);
        assert_eq!(two256.sub(&p), BigUint::from_u64(189));
    }

    #[test]
    fn generated_prime_has_size_and_is_prime() {
        let mut rng = StdRng::seed_from_u64(123);
        let p = generate_prime_u256(&mut rng, 256);
        assert_eq!(p.bit_len(), 256);
        let big = BigUint::from(&p);
        assert!(big.is_probable_prime(&mut rng, 40));
    }
}
