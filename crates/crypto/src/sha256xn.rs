//! Multi-lane SHA-256 compression: W independent single-block
//! compressions per round-loop pass (W ∈ {1, 4, 8, 16}).
//!
//! The kernels operate on plain `[u32; W]` arrays so the compiler can
//! autovectorize the lane dimension (or, failing that, extract
//! instruction-level parallelism from the W independent dependency
//! chains — the scalar round function is a serial chain of ~4 adds, so
//! interleaving lanes keeps the ALUs busy either way). Each lane carries
//! its own chaining state and its own block: the batched HMAC layer uses
//! this to run one sensor per lane.
//!
//! Lane registers are `[u32; 8]` (the full SHA-256 state). Every lane is
//! bit-identical to [`crate::sha256::Sha256`]'s compression — pinned by
//! the KAT suite against the FIPS 180-4 vectors lane by lane.

use crate::lanes::effective_lane_width;
use crate::sha256::{H0, K};
use sies_telemetry as tel;

/// The SHA-256 initial chaining state as a lane register.
pub fn initial_state() -> [u32; 8] {
    H0
}

/// One round-loop pass over W interleaved lanes.
///
/// `states[l]` advances by `blocks[l]`; both slices must hold exactly W
/// entries. Everything is lane-wise integer arithmetic on `[u32; W]`.
// Indexed lane loops throughout: `w[i][l]` mirrors the i-across-l data
// layout the autovectorizer must see, and several loops read multiple
// `w[i - k][l]` taps that iterators cannot express.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn compress_w<const W: usize>(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    // Fixed-size views: every `[l]` access below is bounds-check-free,
    // which is what lets the lane loops vectorize.
    let states: &mut [[u32; 8]; W] = states.try_into().expect("exactly W lane states");
    let blocks: &[[u8; 64]; W] = blocks.try_into().expect("exactly W lane blocks");

    // Message schedule, lane-interleaved: w[i][l] is word i of lane l.
    let mut w = [[0u32; W]; 64];
    for i in 0..16 {
        for l in 0..W {
            w[i][l] = u32::from_be_bytes(blocks[l][4 * i..4 * i + 4].try_into().unwrap());
        }
    }
    for i in 16..64 {
        for l in 0..W {
            let x = w[i - 15][l];
            let s0 = x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3);
            let y = w[i - 2][l];
            let s1 = y.rotate_right(17) ^ y.rotate_right(19) ^ (y >> 10);
            w[i][l] = w[i - 16][l]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7][l])
                .wrapping_add(s1);
        }
    }

    let mut a = [0u32; W];
    let mut b = [0u32; W];
    let mut c = [0u32; W];
    let mut d = [0u32; W];
    let mut e = [0u32; W];
    let mut f = [0u32; W];
    let mut g = [0u32; W];
    let mut h = [0u32; W];
    for l in 0..W {
        [a[l], b[l], c[l], d[l], e[l], f[l], g[l], h[l]] = states[l];
    }

    // One round with the state rotation expressed by *renaming*: only the
    // registers playing roles `d` (which becomes the next `e`) and `h`
    // (which becomes the next `a`) are written, so the eight lane vectors
    // stay in registers instead of being copied down the a..h chain every
    // round. Callers rotate the argument order right by one per round.
    // One argument per state register is the mechanism, not clutter.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn round<const W: usize>(
        a: &[u32; W],
        b: &[u32; W],
        c: &[u32; W],
        d: &mut [u32; W],
        e: &[u32; W],
        f: &[u32; W],
        g: &[u32; W],
        h: &mut [u32; W],
        k: u32,
        wi: &[u32; W],
    ) {
        for l in 0..W {
            let s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ (!e[l] & g[l]);
            let t1 = h[l]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k)
                .wrapping_add(wi[l]);
            let s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            let t2 = s0.wrapping_add(maj);
            d[l] = d[l].wrapping_add(t1);
            h[l] = t1.wrapping_add(t2);
        }
    }

    // Eight rounds bring the role rotation back to the starting names.
    for i in (0..64).step_by(8) {
        round(&a, &b, &c, &mut d, &e, &f, &g, &mut h, K[i], &w[i]);
        round(&h, &a, &b, &mut c, &d, &e, &f, &mut g, K[i + 1], &w[i + 1]);
        round(&g, &h, &a, &mut b, &c, &d, &e, &mut f, K[i + 2], &w[i + 2]);
        round(&f, &g, &h, &mut a, &b, &c, &d, &mut e, K[i + 3], &w[i + 3]);
        round(&e, &f, &g, &mut h, &a, &b, &c, &mut d, K[i + 4], &w[i + 4]);
        round(&d, &e, &f, &mut g, &h, &a, &b, &mut c, K[i + 5], &w[i + 5]);
        round(&c, &d, &e, &mut f, &g, &h, &a, &mut b, K[i + 6], &w[i + 6]);
        round(&b, &c, &d, &mut e, &f, &g, &h, &mut a, K[i + 7], &w[i + 7]);
    }

    for l in 0..W {
        for (s, v) in states[l]
            .iter_mut()
            .zip([a[l], b[l], c[l], d[l], e[l], f[l], g[l], h[l]])
        {
            *s = s.wrapping_add(v);
        }
    }
}

/// The same lane kernels compiled a second time with AVX2 codegen
/// enabled. The bodies are the identical safe Rust — only the compiler
/// backend differs: under the baseline x86-64 target LLVM's cost model
/// refuses to vectorize the rotate-heavy round functions, while with
/// AVX2 it emits 4/8-wide shift/or/add lanes. Dispatched per pass behind
/// `is_x86_feature_detected!`, so digests are bit-identical either way.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::compress_w;

    #[target_feature(enable = "avx2")]
    pub fn compress_w4(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
        compress_w::<4>(states, blocks);
    }

    #[target_feature(enable = "avx2")]
    pub fn compress_w8(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
        compress_w::<8>(states, blocks);
    }
}

/// A third instantiation with AVX-512F codegen for the x16 kernel: with
/// 512-bit registers a 16-lane `[u32; 16]` array is exactly one zmm
/// vector, so the whole round state stays resident. Without AVX-512 an
/// x16 pass spills and loses to two x8 passes, which is why the
/// scheduler only picks width 16 when this module is dispatchable
/// ([`crate::lanes::effective_lane_width`]).
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::compress_w;

    #[target_feature(enable = "avx512f")]
    pub fn compress_w16(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
        compress_w::<16>(states, blocks);
    }
}

/// The x4 kernel compiled for NEON. AArch64 enables NEON in the baseline
/// target, so this is less a recompile than an explicit statement that
/// the 128-bit vector width fits `[u32; 4]` lanes exactly; the dispatch
/// keeps the structure uniform with x86.
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::compress_w;

    #[target_feature(enable = "neon")]
    pub fn compress_w4(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
        compress_w::<4>(states, blocks);
    }
}

/// Four interleaved single-block compressions.
pub fn compress_x4(states: &mut [[u32; 8]; 4], blocks: &[[u8; 64]; 4]) {
    dispatch_w4(&mut states[..], &blocks[..]);
}

/// Eight interleaved single-block compressions.
pub fn compress_x8(states: &mut [[u32; 8]; 8], blocks: &[[u8; 64]; 8]) {
    dispatch_w8(&mut states[..], &blocks[..]);
}

/// Sixteen interleaved single-block compressions.
pub fn compress_x16(states: &mut [[u32; 8]; 16], blocks: &[[u8; 64]; 16]) {
    dispatch_w16(&mut states[..], &blocks[..]);
}

fn dispatch_w4(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 requirement is checked at runtime above; the
        // function body is the same safe Rust as `compress_w::<4>`.
        return unsafe { avx2::compress_w4(states, blocks) };
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON availability is checked at runtime above; the
        // function body is the same safe Rust as `compress_w::<4>`.
        return unsafe { neon::compress_w4(states, blocks) };
    }
    compress_w::<4>(states, blocks);
}

fn dispatch_w8(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: as in `dispatch_w4`.
        return unsafe { avx2::compress_w8(states, blocks) };
    }
    compress_w::<8>(states, blocks);
}

fn dispatch_w16(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: as in `dispatch_w4`.
        return unsafe { avx512::compress_w16(states, blocks) };
    }
    compress_w::<16>(states, blocks);
}

/// Compresses any number of independent (state, block) lanes, scheduling
/// x16 / x8 / x4 / scalar kernel passes capped at `width` and handling
/// the ragged tail. Output is independent of `width`.
pub fn compress_many_with(width: usize, states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    assert_eq!(states.len(), blocks.len(), "one block per lane state");
    let total = states.len() as u64;
    // Pass counts accrue locally and flush once per call, so the hot
    // loop sees no atomics (telemetry off: one load + branch per call).
    let (mut p16, mut p8, mut p4, mut p1) = (0u64, 0u64, 0u64, 0u64);
    let (mut states, mut blocks) = (states, blocks);
    while !states.is_empty() {
        let n = states.len();
        let take = if width >= 16 && n >= 16 {
            16
        } else if width >= 8 && n >= 8 {
            8
        } else if width >= 4 && n >= 4 {
            4
        } else {
            1
        };
        let (s, rest_s) = states.split_at_mut(take);
        let (b, rest_b) = blocks.split_at(take);
        match take {
            16 => {
                dispatch_w16(s, b);
                p16 += 1;
            }
            8 => {
                dispatch_w8(s, b);
                p8 += 1;
            }
            4 => {
                dispatch_w4(s, b);
                p4 += 1;
            }
            _ => {
                compress_w::<1>(s, b);
                p1 += 1;
            }
        }
        states = rest_s;
        blocks = rest_b;
    }
    tel::count!("crypto.sha256.compressions", total);
    tel::count!("crypto.sha256.passes_x16", p16);
    tel::count!("crypto.sha256.passes_x8", p8);
    tel::count!("crypto.sha256.passes_x4", p4);
    tel::count!("crypto.sha256.passes_x1", p1);
}

/// [`compress_many_with`] at the hardware-clamped runtime width
/// ([`crate::lanes::effective_lane_width`]): a 16-lane request without
/// AVX-512 runs as x8 passes, with the fallback counted.
pub fn compress_many(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    compress_many_with(effective_lane_width(), states, blocks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashFunction;
    use crate::sha256::Sha256;

    /// Pads `msg` (≤ 55 bytes) into a single SHA-256 block.
    fn single_block(msg: &[u8]) -> [u8; 64] {
        assert!(msg.len() <= 55);
        let mut block = [0u8; 64];
        block[..msg.len()].copy_from_slice(msg);
        block[msg.len()] = 0x80;
        block[56..].copy_from_slice(&((msg.len() as u64) * 8).to_be_bytes());
        block
    }

    fn digest_of_state(state: &[u32; 8]) -> Vec<u8> {
        state.iter().flat_map(|w| w.to_be_bytes()).collect()
    }

    #[test]
    fn every_lane_matches_scalar_at_every_width() {
        let msgs: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; (i as usize) * 3]).collect();
        let blocks: Vec<[u8; 64]> = msgs.iter().map(|m| single_block(m)).collect();
        for width in [1usize, 4, 8, 16] {
            for n in 0..=16usize {
                let mut states = vec![initial_state(); n];
                compress_many_with(width, &mut states, &blocks[..n]);
                for (l, st) in states.iter().enumerate() {
                    assert_eq!(
                        digest_of_state(st),
                        Sha256::digest(&msgs[l]),
                        "lane {l} of {n} diverged at width {width}"
                    );
                }
            }
        }
    }
}
