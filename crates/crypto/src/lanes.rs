//! Runtime lane-width selection for the multi-lane hash kernels.
//!
//! [`sha1xn`](crate::sha1xn) and [`sha256xn`](crate::sha256xn) interleave
//! W independent single-block compressions per round-loop pass. The width
//! actually used is chosen at runtime so the same binary can be pinned to
//! W ∈ {1, 4, 8} by CI's lane-width determinism matrix:
//!
//! * `SIES_LANES=1|4|8` in the environment selects the width at startup;
//! * [`set_lane_width`] overrides it in-process (benches and the
//!   throughput suite's lane sweep use this);
//! * the default is 8 — on targets without wide vectors the x8 kernel
//!   still wins on instruction-level parallelism alone.
//!
//! Every width produces bit-identical digests (the kernels are plain
//! integer arithmetic, differential-tested lane-by-lane against the
//! scalar FIPS 180-4 implementations), so the width is purely a
//! performance knob: changing it must never change a derived key, share,
//! or ciphertext.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Widest kernel instantiation available.
pub const MAX_LANES: usize = 8;

/// In-process override; 0 means "consult `SIES_LANES` / the default".
static FORCED: AtomicUsize = AtomicUsize::new(0);

fn env_width() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("SIES_LANES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(w @ (1 | 4 | 8)) => w,
            _ => MAX_LANES,
        }
    })
}

/// The lane width the batch schedulers use right now (1, 4, or 8).
pub fn lane_width() -> usize {
    match FORCED.load(Ordering::Relaxed) {
        0 => env_width(),
        w => w,
    }
}

/// Forces the lane width in-process, overriding `SIES_LANES`.
///
/// Only 1, 4, and 8 are kernel widths. The setting is global: it is meant
/// for benches and determinism sweeps, not for concurrent fine-grained
/// toggling (a race can only change scheduling, never output bytes).
pub fn set_lane_width(width: usize) {
    assert!(
        matches!(width, 1 | 4 | 8),
        "lane width must be 1, 4 or 8, got {width}"
    );
    FORCED.store(width, Ordering::Relaxed);
}

/// Drops the in-process override, returning to `SIES_LANES` / default.
pub fn clear_lane_width() {
    FORCED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_round_trip() {
        // Note: other tests in this crate may run concurrently; this test
        // only asserts the override it set itself is observed.
        set_lane_width(4);
        assert_eq!(lane_width(), 4);
        set_lane_width(1);
        assert_eq!(lane_width(), 1);
        set_lane_width(8);
        assert_eq!(lane_width(), 8);
        clear_lane_width();
        assert!(matches!(lane_width(), 1 | 4 | 8));
    }

    #[test]
    #[should_panic(expected = "lane width must be 1, 4 or 8")]
    fn rejects_unsupported_width() {
        set_lane_width(3);
    }
}
