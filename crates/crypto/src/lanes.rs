//! Runtime lane-width selection for the multi-lane hash kernels.
//!
//! [`sha1xn`](crate::sha1xn) and [`sha256xn`](crate::sha256xn) interleave
//! W independent single-block compressions per round-loop pass, and
//! [`bigmontxn`](crate::bigmontxn) does the same for CIOS Montgomery
//! multiplication. The width actually used is chosen at runtime so the
//! same binary can be pinned to W ∈ {1, 4, 8, 16} by CI's lane-width
//! determinism matrix:
//!
//! * `SIES_LANES=1|4|8|16` in the environment selects the width at
//!   startup;
//! * [`set_lane_width`] overrides it in-process (benches and the
//!   throughput suite's lane sweep use this);
//! * the default is 8 — on targets without wide vectors the x8 kernel
//!   still wins on instruction-level parallelism alone.
//!
//! [`lane_width`] reports the *requested* width — that is what the
//! engine's `lane_dispatch` telemetry events and CI's matrix greps pin.
//! Kernels that cannot profit from the requested width clamp it
//! themselves via [`effective_lane_width`]: x16 hash passes only pay off
//! with AVX-512, so on narrower hardware a request for 16 runs as two x8
//! passes (counted in `crypto.lanes.fallbacks`), and the bignum kernels
//! cap at [`bigmontxn`](crate::bigmontxn)'s own widest instantiation.
//! The clamp changes scheduling only, never bytes.
//!
//! Every width produces bit-identical digests (the kernels are plain
//! integer arithmetic, differential-tested lane-by-lane against the
//! scalar FIPS 180-4 implementations), so the width is purely a
//! performance knob: changing it must never change a derived key, share,
//! or ciphertext.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use sies_telemetry as tel;

/// Widest kernel instantiation available.
pub const MAX_LANES: usize = 16;

/// In-process override; 0 means "consult `SIES_LANES` / the default".
static FORCED: AtomicUsize = AtomicUsize::new(0);

/// Default width when `SIES_LANES` is unset or unparsable.
const DEFAULT_LANES: usize = 8;

fn env_width() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("SIES_LANES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(w @ (1 | 4 | 8 | 16)) => w,
            _ => DEFAULT_LANES,
        }
    })
}

/// The lane width the batch schedulers use right now (1, 4, 8, or 16).
pub fn lane_width() -> usize {
    match FORCED.load(Ordering::Relaxed) {
        0 => env_width(),
        w => w,
    }
}

/// The widest hash pass worth running on this hardware: 16 only with
/// AVX-512F (one x16 pass per round-loop iteration), 8 everywhere else —
/// without 512-bit registers an x16 pass spills and loses to two x8
/// passes.
pub fn hw_max_lanes() -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return 16;
        }
    }
    8
}

/// The requested width clamped to what the hardware profits from
/// ([`hw_max_lanes`]). When the clamp bites, the fallback is counted in
/// `crypto.lanes.fallbacks` — the `lane_dispatch` telemetry event the
/// engine emits per epoch carries both the requested and the effective
/// width, so traces show the degradation without the digests changing.
pub fn effective_lane_width() -> usize {
    let requested = lane_width();
    let hw = hw_max_lanes();
    if requested > hw {
        tel::count!("crypto.lanes.fallbacks");
        hw
    } else {
        requested
    }
}

/// Forces the lane width in-process, overriding `SIES_LANES`.
///
/// Only 1, 4, 8, and 16 are kernel widths. The setting is global: it is
/// meant for benches and determinism sweeps, not for concurrent
/// fine-grained toggling (a race can only change scheduling, never
/// output bytes).
pub fn set_lane_width(width: usize) {
    assert!(
        matches!(width, 1 | 4 | 8 | 16),
        "lane width must be 1, 4, 8 or 16, got {width}"
    );
    FORCED.store(width, Ordering::Relaxed);
}

/// Drops the in-process override, returning to `SIES_LANES` / default.
pub fn clear_lane_width() {
    FORCED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_round_trip() {
        // Note: other tests in this crate may run concurrently; this test
        // only asserts the override it set itself is observed.
        set_lane_width(4);
        assert_eq!(lane_width(), 4);
        set_lane_width(1);
        assert_eq!(lane_width(), 1);
        set_lane_width(16);
        assert_eq!(lane_width(), 16);
        set_lane_width(8);
        assert_eq!(lane_width(), 8);
        clear_lane_width();
        assert!(matches!(lane_width(), 1 | 4 | 8 | 16));
    }

    #[test]
    fn effective_width_clamps_to_hardware() {
        set_lane_width(16);
        let eff = effective_lane_width();
        assert_eq!(eff, 16.min(hw_max_lanes()));
        set_lane_width(1);
        assert_eq!(effective_lane_width(), 1);
        clear_lane_width();
    }

    #[test]
    #[should_panic(expected = "lane width must be 1, 4, 8 or 16")]
    fn rejects_unsupported_width() {
        set_lane_width(3);
    }
}
