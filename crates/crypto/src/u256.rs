//! Fixed-width 256-bit unsigned integers and the 512-bit intermediate type.
//!
//! SIES works in `Z_p` for a 256-bit prime `p` (ciphertexts, keys and
//! plaintexts are all 32 bytes, matching the paper's implementation). The
//! hot path — one modular multiplication and one modular addition per source
//! per epoch — runs on this allocation-free type rather than the
//! heap-backed [`crate::biguint::BigUint`].

use crate::limbs;
use core::cmp::Ordering;
use core::fmt;

/// A 256-bit unsigned integer stored as four little-endian `u64` limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    limbs: [u64; 4],
}

/// A 512-bit unsigned integer; the result type of a full 256×256-bit
/// multiplication before modular reduction.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U512 {
    limbs: [u64; 8],
}

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// The value 1.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256 {
        limbs: [u64::MAX; 4],
    };

    /// Constructs from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256 { limbs }
    }

    /// The little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.limbs
    }

    /// Constructs from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Constructs from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        U256 {
            limbs: [v as u64, (v >> 64) as u64, 0, 0],
        }
    }

    /// Interprets 32 big-endian bytes (the wire format used throughout the
    /// paper: keys, ciphertexts and plaintexts are all 32-byte strings).
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[3 - i] = u64::from_be_bytes(chunk.try_into().unwrap());
        }
        U256 { limbs }
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.limbs[3 - i].to_be_bytes());
        }
        out
    }

    /// Truncates to the low 64 bits.
    pub const fn as_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Truncates to the low 128 bits.
    pub const fn as_u128(&self) -> u128 {
        (self.limbs[1] as u128) << 64 | self.limbs[0] as u128
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Number of significant bits.
    pub fn bit_len(&self) -> usize {
        limbs::bit_len(&self.limbs)
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        if i >= 256 {
            return false;
        }
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Wrapping addition with a carry-out flag.
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0;
        for (i, o) in out.iter_mut().enumerate() {
            let (s, c) = limbs::adc(self.limbs[i], rhs.limbs[i], carry);
            *o = s;
            carry = c;
        }
        (U256 { limbs: out }, carry != 0)
    }

    /// Wrapping subtraction with a borrow-out flag.
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0;
        for (i, o) in out.iter_mut().enumerate() {
            let (d, b) = limbs::sbb(self.limbs[i], rhs.limbs[i], borrow);
            *o = d;
            borrow = b;
        }
        (U256 { limbs: out }, borrow != 0)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Full 256×256 → 512-bit multiplication.
    pub fn widening_mul(&self, rhs: &U256) -> U512 {
        let mut out = [0u64; 8];
        limbs::mul(&mut out, &self.limbs, &rhs.limbs);
        U512 { limbs: out }
    }

    /// Left shift by `sh` bits, discarding bits shifted past 2^256.
    pub fn shl(&self, sh: usize) -> U256 {
        if sh >= 256 {
            return U256::ZERO;
        }
        let limb_sh = sh / 64;
        let bit_sh = (sh % 64) as u32;
        let mut out = [0u64; 4];
        for i in (0..4).rev() {
            if i < limb_sh {
                break;
            }
            let src = i - limb_sh;
            let mut v = self.limbs[src] << bit_sh;
            if bit_sh > 0 && src > 0 {
                v |= self.limbs[src - 1] >> (64 - bit_sh);
            }
            out[i] = v;
        }
        U256 { limbs: out }
    }

    /// Logical right shift by `sh` bits.
    pub fn shr(&self, sh: usize) -> U256 {
        if sh >= 256 {
            return U256::ZERO;
        }
        let limb_sh = sh / 64;
        let bit_sh = (sh % 64) as u32;
        let mut out = [0u64; 4];
        for (i, o) in out.iter_mut().enumerate() {
            let src = i + limb_sh;
            if src >= 4 {
                break;
            }
            let mut v = self.limbs[src] >> bit_sh;
            if bit_sh > 0 && src + 1 < 4 {
                v |= self.limbs[src + 1] << (64 - bit_sh);
            }
            *o = v;
        }
        U256 { limbs: out }
    }

    /// Bitwise AND.
    pub fn and(&self, rhs: &U256) -> U256 {
        let mut out = [0u64; 4];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.limbs[i] & rhs.limbs[i];
        }
        U256 { limbs: out }
    }

    /// A mask with the low `bits` bits set.
    pub fn low_mask(bits: usize) -> U256 {
        if bits >= 256 {
            return U256::MAX;
        }
        let mut out = [0u64; 4];
        for (i, limb) in out.iter_mut().enumerate() {
            let lo = i * 64;
            if bits >= lo + 64 {
                *limb = u64::MAX;
            } else if bits > lo {
                *limb = (1u64 << (bits - lo)) - 1;
            }
        }
        U256 { limbs: out }
    }

    /// `self mod m`. Panics if `m` is zero.
    pub fn rem(&self, m: &U256) -> U256 {
        if self < m {
            return *self;
        }
        let (_, r) = limbs::div_rem(&self.limbs, &m.limbs);
        U256::from_limb_slice(&r)
    }

    /// Modular addition `(self + rhs) mod m`. Both operands must already be
    /// reduced (`< m`); this is the aggregator's merge operation.
    pub fn add_mod(&self, rhs: &U256, m: &U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || &sum >= m {
            // At most one subtraction suffices because both inputs are < m.
            let (d, _) = sum.overflowing_sub(m);
            d
        } else {
            sum
        }
    }

    /// Modular subtraction `(self - rhs) mod m` with reduced operands.
    pub fn sub_mod(&self, rhs: &U256, m: &U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (d, borrow) = self.overflowing_sub(rhs);
        if borrow {
            let (fixed, _) = d.overflowing_add(m);
            fixed
        } else {
            d
        }
    }

    /// Modular multiplication `(self * rhs) mod m` via a full widening
    /// multiply and Knuth-D reduction.
    pub fn mul_mod(&self, rhs: &U256, m: &U256) -> U256 {
        let wide = self.widening_mul(rhs);
        wide.rem(m)
    }

    /// Modular exponentiation `self^exp mod m` (square-and-multiply,
    /// most-significant-bit first). For odd moduli and long exponents the
    /// squaring chain runs in the Montgomery domain, avoiding one Knuth-D
    /// division per multiplication (see the `ablation` bench).
    pub fn pow_mod(&self, exp: &U256, m: &U256) -> U256 {
        assert!(!m.is_zero(), "zero modulus");
        if m == &U256::ONE {
            return U256::ZERO;
        }
        // Montgomery pays off once the context setup (one division) is
        // amortized over several multiplications.
        if m.bit(0) && exp.bit_len() > 8 {
            return crate::mont::MontgomeryCtx::new(m).pow_mod(self, exp);
        }
        let base = self.rem(m);
        let mut acc = U256::ONE;
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            acc = acc.mul_mod(&acc, m);
            if exp.bit(i) {
                acc = acc.mul_mod(&base, m);
            }
        }
        acc
    }

    /// Multiplicative inverse modulo a **prime** `p`, via Fermat's little
    /// theorem (`a^{p-2} mod p`). This is the querier's `K_t^{-1}`
    /// computation (cost `C_MI32` in the paper's Table II).
    ///
    /// Returns `None` when `self ≡ 0 (mod p)`.
    pub fn inv_mod_prime(&self, p: &U256) -> Option<U256> {
        let a = self.rem(p);
        if a.is_zero() {
            return None;
        }
        let two = U256::from_u64(2);
        let exp = p.checked_sub(&two).expect("prime modulus >= 2");
        Some(a.pow_mod(&exp, p))
    }

    /// Multiplicative inverse via the extended Euclidean algorithm —
    /// works for any modulus with `gcd(self, m) = 1` (not just primes)
    /// and is roughly an order of magnitude faster than the Fermat path
    /// (see the `ablation` bench). The paper's `C_MI32` constant was
    /// measured with GMP's Euclid-based inverse.
    pub fn inv_mod_euclid(&self, m: &U256) -> Option<U256> {
        let a = crate::biguint::BigUint::from(self);
        let m_big = crate::biguint::BigUint::from(m);
        a.mod_inverse(&m_big).map(|inv| inv.to_u256())
    }

    /// Batch modular inversion via Montgomery's trick: inverts `k`
    /// values with **one** extended-Euclid inversion plus `3(k−1)`
    /// modular multiplications, instead of `k` inversions. Zero entries
    /// (mod `m`) come back as `None` without disturbing the rest.
    ///
    /// This is the querier's per-epoch decode amortization: decoding a
    /// backlog of epochs needs one `K_t⁻¹` per epoch, and the inversion
    /// (`C_MI32`) dominates each decode.
    ///
    /// Falls back to per-element inversion when the aggregate product is
    /// not invertible (possible only for non-prime `m`).
    pub fn batch_inv_mod(values: &[U256], m: &U256) -> Vec<Option<U256>> {
        // Prefix products over the non-zero entries.
        let mut prefix: Vec<U256> = Vec::with_capacity(values.len());
        let mut acc = U256::ONE.rem(m);
        let reduced: Vec<U256> = values.iter().map(|v| v.rem(m)).collect();
        for v in &reduced {
            if !v.is_zero() {
                acc = acc.mul_mod(v, m);
            }
            prefix.push(acc);
        }
        let Some(mut suffix_inv) = acc.inv_mod_euclid(m) else {
            // Some non-zero entry shares a factor with m: do it the slow
            // way so the invertible entries still come out right.
            return reduced.iter().map(|v| v.inv_mod_euclid(m)).collect();
        };
        // Walk backwards: inv_i = (Π_{j<i, j≠zero} v_j) · suffix_inv.
        let mut out = vec![None; values.len()];
        for i in (0..values.len()).rev() {
            if reduced[i].is_zero() {
                continue;
            }
            let before = if i == 0 {
                U256::ONE.rem(m)
            } else {
                prefix[i - 1]
            };
            out[i] = Some(before.mul_mod(&suffix_inv, m));
            suffix_inv = suffix_inv.mul_mod(&reduced[i], m);
        }
        out
    }

    fn from_limb_slice(s: &[u64]) -> U256 {
        let mut limbs = [0u64; 4];
        limbs[..s.len()].copy_from_slice(s);
        U256 { limbs }
    }
}

impl U512 {
    /// The little-endian limbs.
    pub const fn limbs(&self) -> [u64; 8] {
        self.limbs
    }

    /// Constructs from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 8]) -> Self {
        U512 { limbs }
    }

    /// Reduces modulo a 256-bit modulus.
    pub fn rem(&self, m: &U256) -> U256 {
        let (_, r) = limbs::div_rem(&self.limbs, &m.limbs());
        U256::from_limb_slice(&r)
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        limbs::cmp(&self.limbs, &other.limbs)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x")?;
        for b in self.to_be_bytes() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for U256 {
    /// Lower-case hex without leading zeros.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.to_be_bytes();
        let mut started = false;
        for b in bytes {
            if !started {
                if b == 0 {
                    continue;
                }
                started = true;
                write!(f, "{b:x}")?;
            } else {
                write!(f, "{b:02x}")?;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u128) -> U256 {
        U256::from_u128(v)
    }

    #[test]
    fn byte_round_trip() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let x = U256::from_be_bytes(&bytes);
        assert_eq!(x.to_be_bytes(), bytes);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(u(1) < u(2));
        assert!(
            U256::from_limbs([0, 0, 0, 1]) > U256::from_limbs([u64::MAX, u64::MAX, u64::MAX, 0])
        );
    }

    #[test]
    fn add_overflow_detected() {
        let (_, carry) = U256::MAX.overflowing_add(&U256::ONE);
        assert!(carry);
        assert_eq!(U256::MAX.checked_add(&U256::ONE), None);
        assert_eq!(u(3).checked_add(&u(4)), Some(u(7)));
    }

    #[test]
    fn sub_underflow_detected() {
        assert_eq!(U256::ZERO.checked_sub(&U256::ONE), None);
        assert_eq!(u(10).checked_sub(&u(4)), Some(u(6)));
    }

    #[test]
    fn shifts() {
        assert_eq!(u(1).shl(130).shr(130), u(1));
        assert_eq!(u(0xff).shl(8), u(0xff00));
        assert!(U256::ONE.shl(255).bit(255));
        assert_eq!(U256::ONE.shl(256), U256::ZERO);
        assert_eq!(u(0xff00).shr(8), u(0xff));
    }

    #[test]
    fn low_mask_widths() {
        assert_eq!(U256::low_mask(0), U256::ZERO);
        assert_eq!(U256::low_mask(8), u(0xff));
        assert_eq!(U256::low_mask(64), u(u64::MAX as u128));
        assert_eq!(U256::low_mask(65), u((u64::MAX as u128) << 1 | 1));
        assert_eq!(U256::low_mask(256), U256::MAX);
    }

    #[test]
    fn mod_arithmetic_matches_u128() {
        let m = u(1_000_000_007);
        let a = u(123_456_789_123);
        let b = u(987_654_321_987);
        let ar = a.rem(&m);
        let br = b.rem(&m);
        assert_eq!(
            ar.add_mod(&br, &m).as_u128(),
            (123_456_789_123u128 % 1_000_000_007 + 987_654_321_987 % 1_000_000_007) % 1_000_000_007
        );
        assert_eq!(
            ar.mul_mod(&br, &m).as_u128(),
            (123_456_789_123u128 % 1_000_000_007) * (987_654_321_987 % 1_000_000_007)
                % 1_000_000_007
        );
    }

    #[test]
    fn sub_mod_wraps() {
        let m = u(97);
        assert_eq!(u(5).sub_mod(&u(10), &m), u(92));
        assert_eq!(u(10).sub_mod(&u(5), &m), u(5));
    }

    #[test]
    fn pow_mod_small() {
        let m = u(1_000_000_007);
        assert_eq!(u(2).pow_mod(&u(10), &m), u(1024));
        assert_eq!(u(5).pow_mod(&U256::ZERO, &m), U256::ONE);
        // Fermat: a^(p-1) = 1 mod p.
        assert_eq!(u(123_456).pow_mod(&u(1_000_000_006), &m), U256::ONE);
    }

    #[test]
    fn inverse_mod_prime() {
        let p = u(1_000_000_007);
        let a = u(918_273_645);
        let inv = a.inv_mod_prime(&p).unwrap();
        assert_eq!(a.mul_mod(&inv, &p), U256::ONE);
        assert_eq!(U256::ZERO.inv_mod_prime(&p), None);
    }

    #[test]
    fn euclid_inverse_agrees_with_fermat() {
        let p = crate::DEFAULT_PRIME_256;
        for seed in 1u64..50 {
            let a = U256::from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .mul_mod(&U256::from_u64(seed | 1).shl(120), &p);
            assert_eq!(a.inv_mod_euclid(&p), a.inv_mod_prime(&p), "seed {seed}");
        }
    }

    #[test]
    fn euclid_inverse_handles_composite_moduli() {
        let m = u(100); // composite
        assert_eq!(u(3).inv_mod_euclid(&m), Some(u(67))); // 3·67 = 201 ≡ 1
        assert_eq!(u(10).inv_mod_euclid(&m), None); // gcd 10
    }

    #[test]
    fn widening_mul_max() {
        let w = U256::MAX.widening_mul(&U256::MAX);
        // (2^256-1)^2 = 2^512 - 2^257 + 1: bit 0 set, bits 257..511 set.
        let limbs = w.limbs();
        assert_eq!(limbs[0], 1);
        assert_eq!(limbs[1], 0);
        assert_eq!(limbs[3], 0);
        assert_eq!(limbs[4], u64::MAX - 1);
        assert_eq!(limbs[7], u64::MAX);
    }

    #[test]
    fn display_hex() {
        assert_eq!(U256::ZERO.to_string(), "0");
        assert_eq!(u(0xdeadbeef).to_string(), "deadbeef");
    }
}
