//! HMAC (RFC 2104) generic over the hash function.
//!
//! The paper uses two instances: `HM1(K, m)` (HMAC-SHA-1, 20-byte output,
//! cost `C_HM1`) and `HM256(K, m)` (HMAC-SHA-256, 32-byte output, cost
//! `C_HM256`). Both are used as PRFs keyed by long-term secrets and applied
//! to the epoch counter.

use crate::hash::{HashFunction, LaneHash};
use sies_telemetry as tel;

/// Computes `HMAC_H(key, message)`.
///
/// Keys longer than the hash block size are first hashed, per RFC 2104.
pub fn hmac<H: HashFunction>(key: &[u8], message: &[u8]) -> Vec<u8> {
    let mut mac = HmacState::<H>::new(key);
    mac.update(message);
    mac.finalize()
}

/// Batch one-shot HMAC: the same `message` under many `keys` — the shape
/// of μTesla's MAC-key window. All four compressions of every HMAC (the
/// two pad absorptions and the two finishing blocks) run through the
/// multi-lane kernels. Bit-identical to mapping [`hmac`] over `keys`.
pub fn hmac_many<H: LaneHash>(keys: &[&[u8]], message: &[u8]) -> Vec<Vec<u8>> {
    let mut macs = HmacState::<H>::new_many(keys);
    for mac in &mut macs {
        mac.update(message);
    }
    HmacState::finalize_many(macs)
}

/// Incremental HMAC state, for callers that assemble the message from
/// several parts (e.g. `value || epoch` in the SECOA inflation certificate).
///
/// Both pad blocks are absorbed at construction, so a cached, cloned
/// state pays exactly **two** compression calls per short (≤ 55-byte)
/// message: the inner hash's padded final block and the outer hash's
/// digest block. Those two are what [`HmacState::finalize_many`] batches
/// across lanes.
#[derive(Clone)]
pub struct HmacState<H: HashFunction> {
    /// Inner hash with `key ⊕ ipad` already absorbed.
    inner: H,
    /// Outer hash with `key ⊕ opad` already absorbed.
    outer: H,
}

impl<H: HashFunction> HmacState<H> {
    /// Prepares the inner hash with `key ⊕ ipad` and the outer hash with
    /// `key ⊕ opad`.
    pub fn new(key: &[u8]) -> Self {
        let block_size = H::BLOCK_SIZE;
        let mut key_block = vec![0u8; block_size];
        if key.len() > block_size {
            let digest = H::digest(key);
            key_block[..digest.len()].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad_block = key_block.clone();
        let mut opad_block = key_block;
        for b in ipad_block.iter_mut() {
            *b ^= 0x36;
        }
        for b in opad_block.iter_mut() {
            *b ^= 0x5c;
        }

        let mut inner = H::new();
        inner.update(&ipad_block);
        let mut outer = H::new();
        outer.update(&opad_block);
        HmacState { inner, outer }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC: `H(key ⊕ opad || H(key ⊕ ipad || message))`.
    pub fn finalize(self) -> Vec<u8> {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

impl<H: LaneHash> HmacState<H> {
    /// Prepares many HMAC states at once, batching the `key ⊕ ipad` and
    /// `key ⊕ opad` absorptions (2 compressions per key) across lanes.
    /// Bit-identical to mapping [`HmacState::new`] over `keys`.
    pub fn new_many(keys: &[&[u8]]) -> Vec<HmacState<H>> {
        debug_assert_eq!(H::BLOCK_SIZE, 64, "lane kernels assume 64-byte blocks");
        let fresh = H::new().chain_state();
        let mut states = vec![fresh; 2 * keys.len()];
        let mut blocks = Vec::with_capacity(2 * keys.len());
        for key in keys {
            let mut key_block = [0u8; 64];
            if key.len() > 64 {
                let digest = H::digest(key);
                key_block[..digest.len()].copy_from_slice(&digest);
            } else {
                key_block[..key.len()].copy_from_slice(key);
            }
            let mut ipad_block = key_block;
            let mut opad_block = key_block;
            for b in ipad_block.iter_mut() {
                *b ^= 0x36;
            }
            for b in opad_block.iter_mut() {
                *b ^= 0x5c;
            }
            blocks.push(ipad_block);
            blocks.push(opad_block);
        }
        H::compress_lanes(&mut states, &blocks);
        states
            .chunks_exact(2)
            .map(|pair| HmacState {
                inner: H::from_midstate(pair[0], 64),
                outer: H::from_midstate(pair[1], 64),
            })
            .collect()
    }

    /// Finalizes a batch of independent MACs, running the two trailing
    /// compressions of every HMAC through the multi-lane kernels.
    /// Bit-identical to mapping [`HmacState::finalize`] over the batch,
    /// in order.
    ///
    /// Lanes whose buffered message tail does not fit a single padded
    /// block (> 55 bytes — never the case for the 8–13 byte epoch and
    /// certificate messages) fall back to the scalar finalize for the
    /// inner hash; the outer digest block is single-block by construction
    /// and always batches.
    pub fn finalize_many(macs: Vec<HmacState<H>>) -> Vec<Vec<u8>> {
        let n = macs.len();
        tel::observe!("crypto.hmac.batch", n as u64);
        // Stage 1: the padded final block of every inner hash.
        let mut inner_digests: Vec<Vec<u8>> = Vec::with_capacity(n);
        let mut lane_states: Vec<[u32; 8]> = Vec::with_capacity(n);
        let mut lane_blocks: Vec<[u8; 64]> = Vec::with_capacity(n);
        let mut lane_idx: Vec<usize> = Vec::with_capacity(n);
        let mut outers: Vec<H> = Vec::with_capacity(n);
        for (k, mac) in macs.into_iter().enumerate() {
            let HmacState { inner, outer } = mac;
            outers.push(outer);
            let (tail, length) = inner.pending();
            if tail.len() <= 55 {
                let mut block = [0u8; 64];
                block[..tail.len()].copy_from_slice(tail);
                block[tail.len()] = 0x80;
                block[56..].copy_from_slice(&length.wrapping_mul(8).to_be_bytes());
                lane_states.push(inner.chain_state());
                lane_blocks.push(block);
                lane_idx.push(k);
                inner_digests.push(Vec::new()); // patched after the batch pass
            } else {
                inner_digests.push(inner.finalize());
            }
        }
        H::compress_lanes(&mut lane_states, &lane_blocks);
        for (state, &k) in lane_states.iter().zip(&lane_idx) {
            inner_digests[k] = H::digest_from_state(state);
        }

        // Stage 2: the outer hash of every lane has exactly one block
        // left — the opad block was absorbed at construction and
        // digest + padding (≤ 32 + 9 bytes) fits a single block.
        let mut out_states: Vec<[u32; 8]> = Vec::with_capacity(n);
        let mut out_blocks: Vec<[u8; 64]> = Vec::with_capacity(n);
        for (outer, digest) in outers.iter().zip(&inner_digests) {
            let (tail, length) = outer.pending();
            debug_assert!(tail.is_empty(), "outer state must sit at a block boundary");
            let total_bits = (length + digest.len() as u64).wrapping_mul(8);
            let mut block = [0u8; 64];
            block[..digest.len()].copy_from_slice(digest);
            block[digest.len()] = 0x80;
            block[56..].copy_from_slice(&total_bits.to_be_bytes());
            out_states.push(outer.chain_state());
            out_blocks.push(block);
        }
        H::compress_lanes(&mut out_states, &out_blocks);
        out_states.iter().map(H::digest_from_state).collect()
    }
}

/// Constant-time byte-slice equality, for MAC verification.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 2202 HMAC-SHA-1 test vectors.
    #[test]
    fn rfc2202_sha1() {
        assert_eq!(
            hex(&hmac::<Sha1>(&[0x0b; 20], b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
        assert_eq!(
            hex(&hmac::<Sha1>(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
        assert_eq!(
            hex(&hmac::<Sha1>(&[0xaa; 20], &[0xdd; 50])),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
        // Key longer than the block size.
        assert_eq!(
            hex(&hmac::<Sha1>(
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    /// RFC 4231 HMAC-SHA-256 test vectors.
    #[test]
    fn rfc4231_sha256() {
        assert_eq!(
            hex(&hmac::<Sha256>(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&hmac::<Sha256>(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        assert_eq!(
            hex(&hmac::<Sha256>(&[0xaa; 20], &[0xdd; 50])),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // 131-byte key (> block size).
        assert_eq!(
            hex(&hmac::<Sha256>(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"secret key";
        let msg = b"part one | part two | part three";
        let oneshot = hmac::<Sha256>(key, msg);
        let mut mac = HmacState::<Sha256>::new(key);
        mac.update(b"part one | ");
        mac.update(b"part two | ");
        mac.update(b"part three");
        assert_eq!(mac.finalize(), oneshot);
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        let m1 = hmac::<Sha1>(b"key-1", b"message");
        let m2 = hmac::<Sha1>(b"key-2", b"message");
        assert_ne!(m1, m2);
    }

    /// Batched construction + finalize must be bit-identical to the
    /// scalar path for ragged batch sizes, long keys, and messages that
    /// straddle block boundaries (the > 55-byte scalar-fallback lanes).
    #[test]
    fn batch_paths_match_scalar() {
        fn check<H: crate::hash::LaneHash>() {
            for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 17] {
                let keys: Vec<Vec<u8>> = (0..n).map(|i| vec![0x10 + i as u8; 1 + 9 * i]).collect();
                let msgs: Vec<Vec<u8>> = (0..n)
                    .map(|i| vec![0x60 + i as u8; (11 * i) % 71])
                    .collect();
                let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

                let mut macs = HmacState::<H>::new_many(&key_refs);
                assert_eq!(macs.len(), n);
                for (mac, msg) in macs.iter_mut().zip(&msgs) {
                    mac.update(msg);
                }
                let batched = HmacState::finalize_many(macs);
                for (i, got) in batched.iter().enumerate() {
                    assert_eq!(*got, hmac::<H>(&keys[i], &msgs[i]), "lane {i} of {n}");
                }

                // Same message under every key (the hmac_many shape).
                let same = hmac_many::<H>(&key_refs, b"window message");
                for (i, got) in same.iter().enumerate() {
                    assert_eq!(*got, hmac::<H>(&keys[i], b"window message"), "lane {i}");
                }
            }
        }
        check::<Sha1>();
        check::<Sha256>();
    }
}
