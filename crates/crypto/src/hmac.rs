//! HMAC (RFC 2104) generic over the hash function.
//!
//! The paper uses two instances: `HM1(K, m)` (HMAC-SHA-1, 20-byte output,
//! cost `C_HM1`) and `HM256(K, m)` (HMAC-SHA-256, 32-byte output, cost
//! `C_HM256`). Both are used as PRFs keyed by long-term secrets and applied
//! to the epoch counter.

use crate::hash::HashFunction;

/// Computes `HMAC_H(key, message)`.
///
/// Keys longer than the hash block size are first hashed, per RFC 2104.
pub fn hmac<H: HashFunction>(key: &[u8], message: &[u8]) -> Vec<u8> {
    let mut mac = HmacState::<H>::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC state, for callers that assemble the message from
/// several parts (e.g. `value || epoch` in the SECOA inflation certificate).
#[derive(Clone)]
pub struct HmacState<H: HashFunction> {
    inner: H,
    /// Outer-pad key block, kept so `finalize` can run the outer hash.
    opad_block: Vec<u8>,
}

impl<H: HashFunction> HmacState<H> {
    /// Prepares the inner hash with `key ⊕ ipad`.
    pub fn new(key: &[u8]) -> Self {
        let block_size = H::BLOCK_SIZE;
        let mut key_block = vec![0u8; block_size];
        if key.len() > block_size {
            let digest = H::digest(key);
            key_block[..digest.len()].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad_block = key_block.clone();
        let mut opad_block = key_block;
        for b in ipad_block.iter_mut() {
            *b ^= 0x36;
        }
        for b in opad_block.iter_mut() {
            *b ^= 0x5c;
        }

        let mut inner = H::new();
        inner.update(&ipad_block);
        HmacState { inner, opad_block }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC: `H(key ⊕ opad || H(key ⊕ ipad || message))`.
    pub fn finalize(self) -> Vec<u8> {
        let inner_digest = self.inner.finalize();
        let mut outer = H::new();
        outer.update(&self.opad_block);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time byte-slice equality, for MAC verification.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 2202 HMAC-SHA-1 test vectors.
    #[test]
    fn rfc2202_sha1() {
        assert_eq!(
            hex(&hmac::<Sha1>(&[0x0b; 20], b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
        assert_eq!(
            hex(&hmac::<Sha1>(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
        assert_eq!(
            hex(&hmac::<Sha1>(&[0xaa; 20], &[0xdd; 50])),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
        // Key longer than the block size.
        assert_eq!(
            hex(&hmac::<Sha1>(
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    /// RFC 4231 HMAC-SHA-256 test vectors.
    #[test]
    fn rfc4231_sha256() {
        assert_eq!(
            hex(&hmac::<Sha256>(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&hmac::<Sha256>(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        assert_eq!(
            hex(&hmac::<Sha256>(&[0xaa; 20], &[0xdd; 50])),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // 131-byte key (> block size).
        assert_eq!(
            hex(&hmac::<Sha256>(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"secret key";
        let msg = b"part one | part two | part three";
        let oneshot = hmac::<Sha256>(key, msg);
        let mut mac = HmacState::<Sha256>::new(key);
        mac.update(b"part one | ");
        mac.update(b"part two | ");
        mac.update(b"part three");
        assert_eq!(mac.finalize(), oneshot);
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        let m1 = hmac::<Sha1>(b"key-1", b"message");
        let m2 = hmac::<Sha1>(b"key-2", b"message");
        assert_ne!(m1, m2);
    }
}
