//! The paper's two PRF instances and derive-to-range helpers.
//!
//! §II-A: "we assume that the PRFs are implemented as HMACs". `HM1` is
//! HMAC-SHA-1 (20-byte output) and `HM256` is HMAC-SHA-256 (32-byte
//! output). Epoch counters are encoded as 8-byte big-endian integers.

use crate::biguint::BigUint;
use crate::hmac::hmac;
use crate::sha1::Sha1;
use crate::sha256::Sha256;
use crate::u256::U256;

/// `HM1(key, t)`: the 20-byte PRF used for secret shares `ss_{i,t}` and the
/// CMT per-epoch keys.
pub fn hm1_epoch(key: &[u8], epoch: u64) -> [u8; 20] {
    let digest = hmac::<Sha1>(key, &epoch.to_be_bytes());
    digest.try_into().expect("SHA-1 digest is 20 bytes")
}

/// `HM256(key, t)`: the 32-byte PRF used for `K_t` and `k_{i,t}`.
pub fn hm256_epoch(key: &[u8], epoch: u64) -> [u8; 32] {
    let digest = hmac::<Sha256>(key, &epoch.to_be_bytes());
    digest.try_into().expect("SHA-256 digest is 32 bytes")
}

/// `HM1` over an arbitrary message (used for SECOA inflation certificates).
pub fn hm1(key: &[u8], message: &[u8]) -> [u8; 20] {
    hmac::<Sha1>(key, message)
        .try_into()
        .expect("SHA-1 digest is 20 bytes")
}

/// `HM256` over an arbitrary message.
pub fn hm256(key: &[u8], message: &[u8]) -> [u8; 32] {
    hmac::<Sha256>(key, message)
        .try_into()
        .expect("SHA-256 digest is 32 bytes")
}

/// Derives a value in `[0, p)` from `HM256(key, t)`: the 32-byte output is
/// masked down to `p`'s bit length and rejected (re-hashing with a counter
/// suffix) until it lands below `p`. Masking keeps the expected number of
/// draws below 2 for any modulus while preserving uniformity.
pub fn derive_mod(key: &[u8], epoch: u64, p: &U256) -> U256 {
    let mask = U256::low_mask(p.bit_len());
    let mut counter: u32 = 0;
    loop {
        let mut msg = Vec::with_capacity(12);
        msg.extend_from_slice(&epoch.to_be_bytes());
        if counter > 0 {
            msg.extend_from_slice(&counter.to_be_bytes());
        }
        let digest = hmac::<Sha256>(key, &msg);
        let candidate = U256::from_be_bytes(&digest.try_into().expect("32 bytes")).and(&mask);
        if &candidate < p {
            return candidate;
        }
        counter += 1;
    }
}

/// Like [`derive_mod`] but additionally rejects zero — used for the global
/// epoch key `K_t`, which must be invertible mod `p` (paper §III-D requires
/// `K ≠ 0`).
pub fn derive_mod_nonzero(key: &[u8], epoch: u64, p: &U256) -> U256 {
    let mask = U256::low_mask(p.bit_len());
    let mut counter: u32 = 0;
    loop {
        let mut msg = Vec::with_capacity(16);
        msg.extend_from_slice(&epoch.to_be_bytes());
        msg.extend_from_slice(b"nz");
        if counter > 0 {
            msg.extend_from_slice(&counter.to_be_bytes());
        }
        let digest = hmac::<Sha256>(key, &msg);
        let candidate = U256::from_be_bytes(&digest.try_into().expect("32 bytes")).and(&mask);
        if !candidate.is_zero() && &candidate < p {
            return candidate;
        }
        counter += 1;
    }
}

/// Derives a [`BigUint`] below an arbitrary modulus from `HM1(key, t)` with
/// counter-mode extension — used for SECOA seeds, which must lie in `Z_n`
/// for a 1024-bit RSA modulus `n`.
pub fn derive_biguint_mod(key: &[u8], epoch: u64, modulus: &BigUint) -> BigUint {
    let nbytes = modulus.bit_len().div_ceil(8);
    let mut counter: u32 = 0;
    loop {
        // Expand enough HMAC blocks to cover the modulus width.
        let mut material = Vec::with_capacity(nbytes + 20);
        let mut block: u32 = 0;
        while material.len() < nbytes {
            let mut msg = Vec::with_capacity(16);
            msg.extend_from_slice(&epoch.to_be_bytes());
            msg.extend_from_slice(&counter.to_be_bytes());
            msg.extend_from_slice(&block.to_be_bytes());
            material.extend_from_slice(&hm1(key, &msg));
            block += 1;
        }
        material.truncate(nbytes);
        // Mask surplus top bits so the rejection rate stays below 1/2.
        let extra_bits = nbytes * 8 - modulus.bit_len();
        if extra_bits > 0 {
            material[0] &= 0xff >> extra_bits;
        }
        let candidate = BigUint::from_be_bytes(&material);
        if candidate < *modulus {
            return candidate;
        }
        counter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_prfs_are_deterministic_and_epoch_sensitive() {
        let k = b"a 20-byte secret key";
        assert_eq!(hm1_epoch(k, 7), hm1_epoch(k, 7));
        assert_ne!(hm1_epoch(k, 7), hm1_epoch(k, 8));
        assert_eq!(hm256_epoch(k, 7), hm256_epoch(k, 7));
        assert_ne!(hm256_epoch(k, 7), hm256_epoch(k, 8));
    }

    #[test]
    fn key_separation() {
        assert_ne!(hm1_epoch(b"key-a", 1), hm1_epoch(b"key-b", 1));
        assert_ne!(hm256_epoch(b"key-a", 1), hm256_epoch(b"key-b", 1));
    }

    #[test]
    fn derive_mod_is_below_modulus() {
        // A deliberately small 128-bit prime forces many rejections,
        // exercising the counter path.
        let p = U256::from_u128(340_282_366_920_938_463_463_374_607_431_768_211_297);
        for t in 0..50u64 {
            let v = derive_mod(b"key", t, &p);
            assert!(v < p, "epoch {t}");
        }
    }

    #[test]
    fn derive_mod_nonzero_never_zero() {
        let p = U256::from_u64(2); // only {0, 1}; forces rejection of 0s
        for t in 0..20u64 {
            let v = derive_mod_nonzero(b"key", t, &p);
            assert_eq!(v, U256::ONE, "epoch {t}");
        }
    }

    #[test]
    fn derive_mod_differs_from_nonzero_variant() {
        let p = U256::MAX;
        assert_ne!(derive_mod(b"key", 3, &p), derive_mod_nonzero(b"key", 3, &p));
    }

    #[test]
    fn derive_biguint_covers_wide_moduli() {
        let modulus = BigUint::from_u128(1)
            .shl(1023)
            .add(&BigUint::from_u64(12345));
        for t in 0..5u64 {
            let v = derive_biguint_mod(b"seed-key", t, &modulus);
            assert!(v < modulus);
            // With a 1024-bit modulus the value should be wide w.h.p.
            assert!(v.bit_len() > 900, "suspiciously small derived value");
        }
    }
}
