//! The paper's two PRF instances and derive-to-range helpers.
//!
//! §II-A: "we assume that the PRFs are implemented as HMACs". `HM1` is
//! HMAC-SHA-1 (20-byte output) and `HM256` is HMAC-SHA-256 (32-byte
//! output). Epoch counters are encoded as 8-byte big-endian integers.
//!
//! Three tiers of entry points, all bit-identical:
//!
//! * **Scalar free functions** — [`hm1_epoch`], [`hm256_epoch`],
//!   [`derive_mod`], … re-derive the HMAC key schedule on every call;
//!   fine for setup and cold paths.
//! * **[`KeyedPrf`]** — one key's ipad/opad states cached, so each PRF
//!   call costs exactly two compressions; the per-source hot path.
//! * **Cross-key batch functions** — [`hm1_epoch_many`],
//!   [`hm256_epoch_many`], [`derive_mod_p_many`] evaluate one epoch
//!   under *many* cached keys at once, pushing both compressions of
//!   every HMAC through the multi-lane kernels
//!   ([`crate::sha1xn`]/[`crate::sha256xn`]): the shape of the source
//!   fan-out and the querier's Σss recomputation.

use crate::biguint::BigUint;
use crate::hmac::{hmac, HmacState};
use crate::sha1::Sha1;
use crate::sha256::Sha256;
use crate::u256::U256;
use sies_telemetry as tel;

/// `HM1(key, t)`: the 20-byte PRF used for secret shares `ss_{i,t}` and the
/// CMT per-epoch keys.
pub fn hm1_epoch(key: &[u8], epoch: u64) -> [u8; 20] {
    let digest = hmac::<Sha1>(key, &epoch.to_be_bytes());
    digest.try_into().expect("SHA-1 digest is 20 bytes")
}

/// `HM256(key, t)`: the 32-byte PRF used for `K_t` and `k_{i,t}`.
pub fn hm256_epoch(key: &[u8], epoch: u64) -> [u8; 32] {
    let digest = hmac::<Sha256>(key, &epoch.to_be_bytes());
    digest.try_into().expect("SHA-256 digest is 32 bytes")
}

/// `HM1` over an arbitrary message (used for SECOA inflation certificates).
pub fn hm1(key: &[u8], message: &[u8]) -> [u8; 20] {
    hmac::<Sha1>(key, message)
        .try_into()
        .expect("SHA-1 digest is 20 bytes")
}

/// `HM256` over an arbitrary message.
pub fn hm256(key: &[u8], message: &[u8]) -> [u8; 32] {
    hmac::<Sha256>(key, message)
        .try_into()
        .expect("SHA-256 digest is 32 bytes")
}

/// Derives a value in `[0, p)` from `HM256(key, t)`: the 32-byte output is
/// masked down to `p`'s bit length and rejected (re-hashing with a counter
/// suffix) until it lands below `p`. Masking keeps the expected number of
/// draws below 2 for any modulus while preserving uniformity.
pub fn derive_mod(key: &[u8], epoch: u64, p: &U256) -> U256 {
    let mask = U256::low_mask(p.bit_len());
    let mut counter: u32 = 0;
    loop {
        let mut msg = Vec::with_capacity(12);
        msg.extend_from_slice(&epoch.to_be_bytes());
        if counter > 0 {
            msg.extend_from_slice(&counter.to_be_bytes());
        }
        let digest = hmac::<Sha256>(key, &msg);
        let candidate = U256::from_be_bytes(&digest.try_into().expect("32 bytes")).and(&mask);
        if &candidate < p {
            return candidate;
        }
        counter += 1;
    }
}

/// Like [`derive_mod`] but additionally rejects zero — used for the global
/// epoch key `K_t`, which must be invertible mod `p` (paper §III-D requires
/// `K ≠ 0`).
pub fn derive_mod_nonzero(key: &[u8], epoch: u64, p: &U256) -> U256 {
    let mask = U256::low_mask(p.bit_len());
    let mut counter: u32 = 0;
    loop {
        let mut msg = Vec::with_capacity(16);
        msg.extend_from_slice(&epoch.to_be_bytes());
        msg.extend_from_slice(b"nz");
        if counter > 0 {
            msg.extend_from_slice(&counter.to_be_bytes());
        }
        let digest = hmac::<Sha256>(key, &msg);
        let candidate = U256::from_be_bytes(&digest.try_into().expect("32 bytes")).and(&mask);
        if !candidate.is_zero() && &candidate < p {
            return candidate;
        }
        counter += 1;
    }
}

/// Derives a [`BigUint`] below an arbitrary modulus from `HM1(key, t)` with
/// counter-mode extension — used for SECOA seeds, which must lie in `Z_n`
/// for a 1024-bit RSA modulus `n`.
pub fn derive_biguint_mod(key: &[u8], epoch: u64, modulus: &BigUint) -> BigUint {
    let nbytes = modulus.bit_len().div_ceil(8);
    let mut counter: u32 = 0;
    loop {
        // Expand enough HMAC blocks to cover the modulus width.
        let mut material = Vec::with_capacity(nbytes + 20);
        let mut block: u32 = 0;
        while material.len() < nbytes {
            let mut msg = Vec::with_capacity(16);
            msg.extend_from_slice(&epoch.to_be_bytes());
            msg.extend_from_slice(&counter.to_be_bytes());
            msg.extend_from_slice(&block.to_be_bytes());
            material.extend_from_slice(&hm1(key, &msg));
            block += 1;
        }
        material.truncate(nbytes);
        // Mask surplus top bits so the rejection rate stays below 1/2.
        let extra_bits = nbytes * 8 - modulus.bit_len();
        if extra_bits > 0 {
            material[0] &= 0xff >> extra_bits;
        }
        let candidate = BigUint::from_be_bytes(&material);
        if candidate < *modulus {
            return candidate;
        }
        counter += 1;
    }
}

/// A long-term key with its HMAC pads pre-absorbed: the batched hot path
/// for deriving many per-epoch values under one key.
///
/// [`HmacState::new`] hashes the 64-byte `key ⊕ ipad` block on every
/// call; over an epoch pipeline that evaluates thousands of PRFs per key
/// (e.g. the querier recomputing `k_{i,t}` and `ss_{i,t}` for every
/// contributor, or one source across many epochs), caching the
/// ipad-absorbed state and cloning it per message removes one compression
/// function call per PRF invocation and all per-call key-block setup.
///
/// Every method is bit-identical to the corresponding free function —
/// asserted by `batched_prf_matches_oneshot` below — so callers can adopt
/// the batched path without changing any derived key, share, or
/// ciphertext.
#[derive(Clone)]
pub struct KeyedPrf {
    hm1: HmacState<Sha1>,
    hm256: HmacState<Sha256>,
}

impl KeyedPrf {
    /// Absorbs `key` into both HMAC instances.
    pub fn new(key: &[u8]) -> Self {
        KeyedPrf {
            hm1: HmacState::<Sha1>::new(key),
            hm256: HmacState::<Sha256>::new(key),
        }
    }

    /// `HM1(key, msg)` — identical to [`hm1`].
    pub fn hm1(&self, message: &[u8]) -> [u8; 20] {
        let mut mac = self.hm1.clone();
        mac.update(message);
        mac.finalize().try_into().expect("SHA-1 digest is 20 bytes")
    }

    /// `HM1(key, t)` — identical to [`hm1_epoch`].
    pub fn hm1_epoch(&self, epoch: u64) -> [u8; 20] {
        self.hm1(&epoch.to_be_bytes())
    }

    /// `HM256(key, msg)` — identical to [`hm256`].
    fn hm256_raw(&self, message: &[u8]) -> [u8; 32] {
        let mut mac = self.hm256.clone();
        mac.update(message);
        mac.finalize()
            .try_into()
            .expect("SHA-256 digest is 32 bytes")
    }

    /// `HM256(key, t)` — identical to [`hm256_epoch`].
    pub fn hm256_epoch(&self, epoch: u64) -> [u8; 32] {
        self.hm256_raw(&epoch.to_be_bytes())
    }

    /// Derives a value in `[0, p)` — identical to [`derive_mod`].
    pub fn derive_mod(&self, epoch: u64, p: &U256) -> U256 {
        let mask = U256::low_mask(p.bit_len());
        let candidate = U256::from_be_bytes(&self.hm256_epoch(epoch)).and(&mask);
        if &candidate < p {
            candidate
        } else {
            self.derive_mod_rejected(epoch, p, &mask)
        }
    }

    /// The rare rejection tail of [`derive_mod`]: continues the
    /// counter-suffixed draws from `counter = 1` (the counter-0 draw is
    /// the plain epoch message and has already been rejected).
    fn derive_mod_rejected(&self, epoch: u64, p: &U256, mask: &U256) -> U256 {
        let mut counter: u32 = 1;
        loop {
            let mut msg = [0u8; 12];
            msg[..8].copy_from_slice(&epoch.to_be_bytes());
            msg[8..].copy_from_slice(&counter.to_be_bytes());
            let candidate = U256::from_be_bytes(&self.hm256_raw(&msg)).and(mask);
            if &candidate < p {
                return candidate;
            }
            counter += 1;
        }
    }

    /// Derives a non-zero value in `[1, p)` — identical to
    /// [`derive_mod_nonzero`].
    pub fn derive_mod_nonzero(&self, epoch: u64, p: &U256) -> U256 {
        let mask = U256::low_mask(p.bit_len());
        let mut counter: u32 = 0;
        loop {
            let mut msg = Vec::with_capacity(16);
            msg.extend_from_slice(&epoch.to_be_bytes());
            msg.extend_from_slice(b"nz");
            if counter > 0 {
                msg.extend_from_slice(&counter.to_be_bytes());
            }
            let candidate = U256::from_be_bytes(&self.hm256_raw(&msg)).and(&mask);
            if !candidate.is_zero() && &candidate < p {
                return candidate;
            }
            counter += 1;
        }
    }

    /// Multi-epoch keystream: derives `[0, p)` values for every epoch in
    /// `epochs`, equal element-wise to calling [`derive_mod`] in a loop.
    pub fn derive_mod_many(&self, epochs: impl IntoIterator<Item = u64>, p: &U256) -> Vec<U256> {
        epochs.into_iter().map(|t| self.derive_mod(t, p)).collect()
    }
}

/// Batched `HM1(key_i, t)` across many cached keys — one sensor per
/// lane. Element-wise identical to [`KeyedPrf::hm1_epoch`] (and so to
/// [`hm1_epoch`]).
pub fn hm1_epoch_many<'a, I>(prfs: I, epoch: u64) -> Vec<[u8; 20]>
where
    I: IntoIterator<Item = &'a KeyedPrf>,
{
    let msg = epoch.to_be_bytes();
    let macs: Vec<_> = prfs
        .into_iter()
        .map(|p| {
            let mut mac = p.hm1.clone();
            mac.update(&msg);
            mac
        })
        .collect();
    tel::observe!("crypto.prf.hm1_batch", macs.len() as u64);
    HmacState::finalize_many(macs)
        .into_iter()
        .map(|d| d.try_into().expect("SHA-1 digest is 20 bytes"))
        .collect()
}

/// Batched `HM1(key_i, msg_i)` over arbitrary per-lane `(key, message)`
/// pairs — the shape of SECOA's certificate and seed derivations, where
/// both the key (per sensor) and the message (per sketch) vary.
/// Element-wise identical to [`KeyedPrf::hm1`] (and so to [`hm1`]).
pub fn hm1_many<'a, I, M>(pairs: I) -> Vec<[u8; 20]>
where
    I: IntoIterator<Item = (&'a KeyedPrf, M)>,
    M: AsRef<[u8]>,
{
    let macs: Vec<_> = pairs
        .into_iter()
        .map(|(p, msg)| {
            let mut mac = p.hm1.clone();
            mac.update(msg.as_ref());
            mac
        })
        .collect();
    HmacState::finalize_many(macs)
        .into_iter()
        .map(|d| d.try_into().expect("SHA-1 digest is 20 bytes"))
        .collect()
}

/// Batched `HM256(key_i, t)` across many cached keys. Element-wise
/// identical to [`KeyedPrf::hm256_epoch`] (and so to [`hm256_epoch`]).
pub fn hm256_epoch_many<'a, I>(prfs: I, epoch: u64) -> Vec<[u8; 32]>
where
    I: IntoIterator<Item = &'a KeyedPrf>,
{
    let msg = epoch.to_be_bytes();
    let macs: Vec<_> = prfs
        .into_iter()
        .map(|p| {
            let mut mac = p.hm256.clone();
            mac.update(&msg);
            mac
        })
        .collect();
    tel::observe!("crypto.prf.hm256_batch", macs.len() as u64);
    HmacState::finalize_many(macs)
        .into_iter()
        .map(|d| d.try_into().expect("SHA-256 digest is 32 bytes"))
        .collect()
}

/// Batched derive-to-range across many cached keys at one epoch: the
/// counter-0 draw of every key runs through the multi-lane kernels; the
/// (cryptographically rare) rejections retry per-key. Element-wise
/// identical to [`KeyedPrf::derive_mod`] (and so to [`derive_mod`]).
pub fn derive_mod_p_many<'a, I>(prfs: I, epoch: u64, p: &U256) -> Vec<U256>
where
    I: IntoIterator<Item = &'a KeyedPrf>,
{
    let prfs: Vec<&KeyedPrf> = prfs.into_iter().collect();
    tel::observe!("crypto.prf.derive_batch", prfs.len() as u64);
    let mask = U256::low_mask(p.bit_len());
    hm256_epoch_many(prfs.iter().copied(), epoch)
        .into_iter()
        .zip(&prfs)
        .map(|(digest, prf)| {
            let candidate = U256::from_be_bytes(&digest).and(&mask);
            if &candidate < p {
                candidate
            } else {
                prf.derive_mod_rejected(epoch, p, &mask)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_prfs_are_deterministic_and_epoch_sensitive() {
        let k = b"a 20-byte secret key";
        assert_eq!(hm1_epoch(k, 7), hm1_epoch(k, 7));
        assert_ne!(hm1_epoch(k, 7), hm1_epoch(k, 8));
        assert_eq!(hm256_epoch(k, 7), hm256_epoch(k, 7));
        assert_ne!(hm256_epoch(k, 7), hm256_epoch(k, 8));
    }

    #[test]
    fn key_separation() {
        assert_ne!(hm1_epoch(b"key-a", 1), hm1_epoch(b"key-b", 1));
        assert_ne!(hm256_epoch(b"key-a", 1), hm256_epoch(b"key-b", 1));
    }

    #[test]
    fn derive_mod_is_below_modulus() {
        // A deliberately small 128-bit prime forces many rejections,
        // exercising the counter path.
        let p = U256::from_u128(340_282_366_920_938_463_463_374_607_431_768_211_297);
        for t in 0..50u64 {
            let v = derive_mod(b"key", t, &p);
            assert!(v < p, "epoch {t}");
        }
    }

    #[test]
    fn derive_mod_nonzero_never_zero() {
        let p = U256::from_u64(2); // only {0, 1}; forces rejection of 0s
        for t in 0..20u64 {
            let v = derive_mod_nonzero(b"key", t, &p);
            assert_eq!(v, U256::ONE, "epoch {t}");
        }
    }

    #[test]
    fn derive_mod_differs_from_nonzero_variant() {
        let p = U256::MAX;
        assert_ne!(derive_mod(b"key", 3, &p), derive_mod_nonzero(b"key", 3, &p));
    }

    #[test]
    fn batched_prf_matches_oneshot() {
        // The cached-pad path must be bit-identical to the free functions
        // for every derive variant — this equality is what lets the
        // parallel pipeline adopt it without changing a single ciphertext.
        let p_full = crate::DEFAULT_PRIME_256;
        // A small prime exercises the rejection-sampling counter path.
        let p_small = U256::from_u128(340_282_366_920_938_463_463_374_607_431_768_211_297);
        for key in [
            &b"a 20-byte secret key"[..],
            &[0xAB; 64][..],
            &[0x5C; 131][..],
        ] {
            let prf = KeyedPrf::new(key);
            for t in 0..25u64 {
                assert_eq!(prf.hm1_epoch(t), hm1_epoch(key, t));
                assert_eq!(prf.hm256_epoch(t), hm256_epoch(key, t));
                for p in [&p_full, &p_small] {
                    assert_eq!(prf.derive_mod(t, p), derive_mod(key, t, p));
                    assert_eq!(prf.derive_mod_nonzero(t, p), derive_mod_nonzero(key, t, p));
                }
            }
            let many = prf.derive_mod_many(0..25, &p_full);
            for (t, v) in many.iter().enumerate() {
                assert_eq!(*v, derive_mod(key, t as u64, &p_full));
            }
        }
    }

    #[test]
    fn cross_key_batches_match_scalar() {
        // The lane-batched fan-out must equal the per-key scalar PRFs for
        // ragged batch sizes (n % 4, n % 8 ≠ 0) and for moduli small
        // enough to force the rejection-sampling retry path.
        let p_full = crate::DEFAULT_PRIME_256;
        let p_small = U256::from_u128(340_282_366_920_938_463_463_374_607_431_768_211_297);
        for n in [0usize, 1, 3, 4, 5, 8, 13] {
            let keys: Vec<Vec<u8>> = (0..n).map(|i| vec![0x40 + i as u8; 20]).collect();
            let prfs: Vec<KeyedPrf> = keys.iter().map(|k| KeyedPrf::new(k)).collect();
            for t in [0u64, 7, 1_000_003] {
                let hm1s = hm1_epoch_many(&prfs, t);
                let hm256s = hm256_epoch_many(&prfs, t);
                assert_eq!(hm1s.len(), n);
                for i in 0..n {
                    assert_eq!(hm1s[i], hm1_epoch(&keys[i], t), "hm1 lane {i} of {n}");
                    assert_eq!(hm256s[i], hm256_epoch(&keys[i], t), "hm256 lane {i} of {n}");
                }
                for p in [&p_full, &p_small] {
                    let derived = derive_mod_p_many(&prfs, t, p);
                    for i in 0..n {
                        assert_eq!(derived[i], derive_mod(&keys[i], t, p), "lane {i} of {n}");
                    }
                }
            }
            // Per-lane messages of varying lengths (the SECOA shape).
            let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 1 + (i * 7) % 67]).collect();
            let outs = hm1_many(prfs.iter().zip(&msgs));
            for i in 0..n {
                assert_eq!(outs[i], hm1(&keys[i], &msgs[i]), "hm1 lane {i} of {n}");
                assert_eq!(prfs[i].hm1(&msgs[i]), hm1(&keys[i], &msgs[i]));
            }
        }
    }

    #[test]
    fn derive_biguint_covers_wide_moduli() {
        let modulus = BigUint::from_u128(1)
            .shl(1023)
            .add(&BigUint::from_u64(12345));
        for t in 0..5u64 {
            let v = derive_biguint_mod(b"seed-key", t, &modulus);
            assert!(v < modulus);
            // With a 1024-bit modulus the value should be wide w.h.p.
            assert!(v.bit_len() > 900, "suspiciously small derived value");
        }
    }
}
