//! The Paillier cryptosystem (EUROCRYPT 1999): public-key additively
//! homomorphic encryption.
//!
//! The paper's related work (§II-C) discusses Ge–Zdonik's outsourced
//! aggregation, which encrypts a database under Paillier so the provider
//! can answer SUM queries on ciphertexts. We implement it as an extra
//! comparison point for the in-network setting: exact and confidential
//! like SIES, but with no integrity, 2·|n|-bit ciphertexts, and
//! public-key-grade CPU cost per reading — which is precisely why the
//! paper's lightweight symmetric construction matters for sensors.
//!
//! Standard simplifications: `g = n + 1`, so `g^m = 1 + m·n (mod n²)`,
//! and `μ = λ⁻¹ mod n`.

use crate::biguint::BigUint;
use rand::RngCore;

/// A Paillier public key `(n, n²)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaillierPublicKey {
    n: BigUint,
    n_squared: BigUint,
}

/// A Paillier key pair.
#[derive(Clone, Debug)]
pub struct PaillierKeyPair {
    public: PaillierPublicKey,
    /// `λ = lcm(p−1, q−1)`.
    lambda: BigUint,
    /// `μ = λ⁻¹ mod n`.
    mu: BigUint,
}

/// A Paillier ciphertext (an element of `Z*_{n²}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaillierCiphertext(BigUint);

impl PaillierPublicKey {
    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Ciphertext wire size in bytes (`2·|n|`).
    pub fn ciphertext_bytes(&self) -> usize {
        self.n_squared.bit_len().div_ceil(8)
    }

    /// Encrypts `m < n` with fresh randomness from `rng`:
    /// `c = (1 + m·n) · r^n mod n²`.
    pub fn encrypt(&self, rng: &mut dyn RngCore, m: &BigUint) -> PaillierCiphertext {
        // r uniform in [1, n) — gcd(r, n) = 1 w.o.p. for an RSA modulus.
        let r = loop {
            let candidate = BigUint::random_below(rng, &self.n);
            if !candidate.is_zero() {
                break candidate;
            }
        };
        self.encrypt_with_nonce(m, &r)
    }

    /// Deterministic encryption with a caller-supplied nonce
    /// `r ∈ [1, n)`: the known-answer-test hook. Production callers must
    /// use [`Self::encrypt`] — reusing or revealing `r` breaks semantic
    /// security.
    pub fn encrypt_with_nonce(&self, m: &BigUint, r: &BigUint) -> PaillierCiphertext {
        assert!(m < &self.n, "plaintext must be below the modulus");
        assert!(!r.is_zero() && r < &self.n, "nonce must be in [1, n)");
        let g_m = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        let r_n = r.pow_mod(&self.n, &self.n_squared);
        PaillierCiphertext(g_m.mul_mod(&r_n, &self.n_squared))
    }

    /// Homomorphic addition: `E(m₁) ⊕ E(m₂) = E(m₁ + m₂ mod n)`.
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext(a.0.mul_mod(&b.0, &self.n_squared))
    }

    /// Homomorphic scalar multiplication: `E(m)^k = E(k·m mod n)`.
    pub fn scale(&self, c: &PaillierCiphertext, k: &BigUint) -> PaillierCiphertext {
        PaillierCiphertext(c.0.pow_mod(k, &self.n_squared))
    }
}

impl PaillierCiphertext {
    /// The raw group element.
    pub fn raw(&self) -> &BigUint {
        &self.0
    }

    /// Builds from a raw group element (attack simulation / wire decode).
    pub fn from_raw(v: BigUint) -> Self {
        PaillierCiphertext(v)
    }
}

impl PaillierKeyPair {
    /// Generates a key pair with a `bits`-bit modulus.
    pub fn generate(rng: &mut dyn RngCore, bits: usize) -> Self {
        assert!(bits >= 32, "modulus too small");
        let half = bits / 2;
        loop {
            let p = BigUint::random_prime(rng, half, 24);
            let q = BigUint::random_prime(rng, bits - half, 24);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let one = BigUint::one();
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            // λ = lcm(p−1, q−1) = (p−1)(q−1) / gcd(p−1, q−1)
            let gcd = p1.gcd(&q1);
            let lambda = p1.mul(&q1).div_rem(&gcd).0;
            let Some(mu) = lambda.mod_inverse(&n) else {
                continue;
            };
            let n_squared = n.mul(&n);
            return PaillierKeyPair {
                public: PaillierPublicKey { n, n_squared },
                lambda,
                mu,
            };
        }
    }

    /// Builds a key pair from caller-supplied distinct odd primes, for
    /// known-answer tests and reproducible fixtures. Panics if `λ` is not
    /// invertible mod `n` (never the case for a well-formed RSA modulus).
    pub fn from_primes(p: &BigUint, q: &BigUint) -> Self {
        assert_ne!(p, q, "primes must be distinct");
        let n = p.mul(q);
        let one = BigUint::one();
        let p1 = p.sub(&one);
        let q1 = q.sub(&one);
        let gcd = p1.gcd(&q1);
        let lambda = p1.mul(&q1).div_rem(&gcd).0;
        let mu = lambda
            .mod_inverse(&n)
            .expect("lambda invertible mod n for an RSA modulus");
        let n_squared = n.mul(&n);
        PaillierKeyPair {
            public: PaillierPublicKey { n, n_squared },
            lambda,
            mu,
        }
    }

    /// The public half.
    pub fn public(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// Decrypts: `m = L(c^λ mod n²) · μ mod n`, `L(x) = (x − 1)/n`.
    pub fn decrypt(&self, c: &PaillierCiphertext) -> BigUint {
        let n = &self.public.n;
        let x = c.0.pow_mod(&self.lambda, &self.public.n_squared);
        let l = x.sub(&BigUint::one()).div_rem(n).0;
        l.mul_mod(&self.mu, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> (PaillierKeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(2024);
        let kp = PaillierKeyPair::generate(&mut rng, 256);
        (kp, rng)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let (kp, mut rng) = keypair();
        for m in [0u64, 1, 42, 1_000_000, u32::MAX as u64] {
            let m = BigUint::from_u64(m);
            let c = kp.public().encrypt(&mut rng, &m);
            assert_eq!(kp.decrypt(&c), m);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let (kp, mut rng) = keypair();
        let m = BigUint::from_u64(7);
        let c1 = kp.public().encrypt(&mut rng, &m);
        let c2 = kp.public().encrypt(&mut rng, &m);
        assert_ne!(c1, c2, "same plaintext must yield distinct ciphertexts");
        assert_eq!(kp.decrypt(&c1), kp.decrypt(&c2));
    }

    #[test]
    fn additive_homomorphism() {
        let (kp, mut rng) = keypair();
        let pk = kp.public();
        let a = pk.encrypt(&mut rng, &BigUint::from_u64(1234));
        let b = pk.encrypt(&mut rng, &BigUint::from_u64(8766));
        assert_eq!(kp.decrypt(&pk.add(&a, &b)), BigUint::from_u64(10_000));
    }

    #[test]
    fn many_way_sum() {
        let (kp, mut rng) = keypair();
        let pk = kp.public();
        let mut acc = pk.encrypt(&mut rng, &BigUint::zero());
        let mut expected = 0u64;
        for i in 1..=50u64 {
            acc = pk.add(&acc, &pk.encrypt(&mut rng, &BigUint::from_u64(i * 11)));
            expected += i * 11;
        }
        assert_eq!(kp.decrypt(&acc), BigUint::from_u64(expected));
    }

    #[test]
    fn scalar_multiplication() {
        let (kp, mut rng) = keypair();
        let pk = kp.public();
        let c = pk.encrypt(&mut rng, &BigUint::from_u64(30));
        let scaled = pk.scale(&c, &BigUint::from_u64(9));
        assert_eq!(kp.decrypt(&scaled), BigUint::from_u64(270));
    }

    #[test]
    fn ciphertext_size_is_double_modulus() {
        let (kp, _) = keypair();
        assert_eq!(kp.public().ciphertext_bytes(), 64); // 256-bit n → 512-bit n²
    }

    #[test]
    fn malleability_means_no_integrity() {
        // The §II-C caveat: the provider can shift the SUM undetected.
        let (kp, mut rng) = keypair();
        let pk = kp.public();
        let honest = pk.encrypt(&mut rng, &BigUint::from_u64(100));
        let spurious = pk.encrypt(&mut rng, &BigUint::from_u64(999));
        let tampered = pk.add(&honest, &spurious);
        assert_eq!(kp.decrypt(&tampered), BigUint::from_u64(1099));
    }
}
