//! The Paillier cryptosystem (EUROCRYPT 1999): public-key additively
//! homomorphic encryption.
//!
//! The paper's related work (§II-C) discusses Ge–Zdonik's outsourced
//! aggregation, which encrypts a database under Paillier so the provider
//! can answer SUM queries on ciphertexts. We implement it as an extra
//! comparison point for the in-network setting: exact and confidential
//! like SIES, but with no integrity, 2·|n|-bit ciphertexts, and
//! public-key-grade CPU cost per reading — which is precisely why the
//! paper's lightweight symmetric construction matters for sensors.
//!
//! Standard simplifications: `g = n + 1`, so `g^m = 1 + m·n (mod n²)`,
//! and `μ = λ⁻¹ mod n`.
//!
//! ## Kernels
//!
//! The public key owns a [`BigMontCtx`] for `n²`, shared by the `r^n`
//! nonce exponentiation and homomorphic scaling. Decryption runs through
//! the CRT: with `m_p = L_p(c^{p−1} mod p²) · h_p mod p` (and likewise
//! mod `q²`), the two half-size windowed exponentiations plus Garner
//! recombination replace one full-size `c^λ mod n²`. The pre-CRT path is
//! kept as [`PaillierKeyPair::decrypt_generic`], the differential-test
//! oracle; [`PaillierKeyPair::decrypt`] falls back to it for non-unit
//! ciphertexts (where `L_p` is undefined), so the two agree on every
//! input.

use crate::bigmont::BigMontCtx;
use crate::bigmontxn;
use crate::biguint::BigUint;
use rand::RngCore;

/// A Paillier public key `(n, n²)` with its shared Montgomery context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaillierPublicKey {
    n: BigUint,
    n_squared: BigUint,
    /// Montgomery context for `n²` (odd for any product of odd primes).
    ctx: BigMontCtx,
}

/// CRT decryption material: per-prime contexts, half-size exponents, and
/// the precomputed `L`-function inverses.
#[derive(Clone, Debug)]
struct PaillierCrt {
    p: BigUint,
    q: BigUint,
    /// `p − 1` and `q − 1`, the half-size decryption exponents.
    p1: BigUint,
    q1: BigUint,
    /// `h_p = L_p(g^{p−1} mod p²)⁻¹ mod p = ((p−1)·q)⁻¹ mod p`.
    h_p: BigUint,
    /// `h_q = ((q−1)·p)⁻¹ mod q`.
    h_q: BigUint,
    /// `q⁻¹ mod p` (Garner recombination).
    q_inv: BigUint,
    /// Montgomery contexts for `p²` and `q²`.
    ctx_pp: BigMontCtx,
    ctx_qq: BigMontCtx,
}

/// A Paillier key pair.
#[derive(Clone, Debug)]
pub struct PaillierKeyPair {
    public: PaillierPublicKey,
    /// `λ = lcm(p−1, q−1)`.
    lambda: BigUint,
    /// `μ = λ⁻¹ mod n`.
    mu: BigUint,
    crt: PaillierCrt,
}

/// A Paillier ciphertext (an element of `Z*_{n²}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaillierCiphertext(BigUint);

impl PaillierPublicKey {
    fn from_modulus(n: BigUint) -> Self {
        let n_squared = n.mul(&n);
        let ctx = BigMontCtx::new(&n_squared);
        PaillierPublicKey { n, n_squared, ctx }
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The shared Montgomery context for `n²`.
    pub fn mont_ctx(&self) -> &BigMontCtx {
        &self.ctx
    }

    /// Ciphertext wire size in bytes (`2·|n|`).
    pub fn ciphertext_bytes(&self) -> usize {
        self.n_squared.bit_len().div_ceil(8)
    }

    /// Encrypts `m < n` with fresh randomness from `rng`:
    /// `c = (1 + m·n) · r^n mod n²`.
    pub fn encrypt(&self, rng: &mut dyn RngCore, m: &BigUint) -> PaillierCiphertext {
        // r uniform in [1, n) — gcd(r, n) = 1 w.o.p. for an RSA modulus.
        let r = loop {
            let candidate = BigUint::random_below(rng, &self.n);
            if !candidate.is_zero() {
                break candidate;
            }
        };
        self.encrypt_with_nonce(m, &r)
    }

    /// Deterministic encryption with a caller-supplied nonce
    /// `r ∈ [1, n)`: the known-answer-test hook. Production callers must
    /// use [`Self::encrypt`] — reusing or revealing `r` breaks semantic
    /// security.
    pub fn encrypt_with_nonce(&self, m: &BigUint, r: &BigUint) -> PaillierCiphertext {
        assert!(m < &self.n, "plaintext must be below the modulus");
        assert!(!r.is_zero() && r < &self.n, "nonce must be in [1, n)");
        let g_m = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        let r_n = self.ctx.pow_mod(r, &self.n);
        PaillierCiphertext(g_m.mul_mod(&r_n, &self.n_squared))
    }

    /// Batch deterministic encryption: [`Self::encrypt_with_nonce`]
    /// mapped over `(m, r)` pairs. The dominant `r^n mod n²`
    /// exponentiations share the exponent `n`, so they run W nonces at a
    /// time through the lane-interleaved CIOS kernel
    /// ([`crate::bigmontxn::pow_mod_many`]); bytes identical to the
    /// scalar loop.
    pub fn encrypt_with_nonce_many(&self, pairs: &[(BigUint, BigUint)]) -> Vec<PaillierCiphertext> {
        for (m, r) in pairs {
            assert!(m < &self.n, "plaintext must be below the modulus");
            assert!(!r.is_zero() && r < &self.n, "nonce must be in [1, n)");
        }
        let rs: Vec<BigUint> = pairs.iter().map(|(_, r)| r.clone()).collect();
        let r_ns = bigmontxn::pow_mod_many(&self.ctx, &rs, &self.n);
        pairs
            .iter()
            .zip(r_ns)
            .map(|((m, _), r_n)| {
                let g_m = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared);
                PaillierCiphertext(g_m.mul_mod(&r_n, &self.n_squared))
            })
            .collect()
    }

    /// Homomorphic addition: `E(m₁) ⊕ E(m₂) = E(m₁ + m₂ mod n)`.
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext(a.0.mul_mod(&b.0, &self.n_squared))
    }

    /// Homomorphic scalar multiplication: `E(m)^k = E(k·m mod n)`.
    pub fn scale(&self, c: &PaillierCiphertext, k: &BigUint) -> PaillierCiphertext {
        PaillierCiphertext(self.ctx.pow_mod(&c.0, k))
    }
}

impl PaillierCiphertext {
    /// The raw group element.
    pub fn raw(&self) -> &BigUint {
        &self.0
    }

    /// Builds from a raw group element (attack simulation / wire decode).
    pub fn from_raw(v: BigUint) -> Self {
        PaillierCiphertext(v)
    }
}

impl PaillierKeyPair {
    /// Generates a key pair with a `bits`-bit modulus.
    pub fn generate(rng: &mut dyn RngCore, bits: usize) -> Self {
        assert!(bits >= 32, "modulus too small");
        let half = bits / 2;
        loop {
            let p = BigUint::random_prime(rng, half, 24);
            let q = BigUint::random_prime(rng, bits - half, 24);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            if let Some(kp) = Self::try_from_primes(&p, &q) {
                return kp;
            }
        }
    }

    /// Builds a key pair from caller-supplied distinct odd primes, for
    /// known-answer tests and reproducible fixtures. Panics if `λ` is not
    /// invertible mod `n` (never the case for a well-formed RSA modulus).
    pub fn from_primes(p: &BigUint, q: &BigUint) -> Self {
        assert_ne!(p, q, "primes must be distinct");
        assert!(p.is_odd() && q.is_odd(), "primes must be odd");
        Self::try_from_primes(p, q).expect("lambda invertible mod n for an RSA modulus")
    }

    /// Shared keygen core: λ/μ plus the CRT parameters, or `None` when
    /// `λ` is not invertible mod `n`.
    fn try_from_primes(p: &BigUint, q: &BigUint) -> Option<Self> {
        let one = BigUint::one();
        let p1 = p.sub(&one);
        let q1 = q.sub(&one);
        // λ = lcm(p−1, q−1) = (p−1)(q−1) / gcd(p−1, q−1)
        let gcd = p1.gcd(&q1);
        let lambda = p1.mul(&q1).div_rem(&gcd).0;
        let n = p.mul(q);
        let mu = lambda.mod_inverse(&n)?;
        // With g = n + 1: g^{p−1} = 1 + (p−1)·n (mod p²), so
        // L_p(g^{p−1}) = (p−1)·q mod p. Both factors are invertible mod p
        // for distinct primes, hence the expects below cannot fire.
        let h_p = p1
            .mul_mod(&q.rem(p), p)
            .mod_inverse(p)
            .expect("(p-1)q invertible mod p");
        let h_q = q1
            .mul_mod(&p.rem(q), q)
            .mod_inverse(q)
            .expect("(q-1)p invertible mod q");
        let crt = PaillierCrt {
            p: p.clone(),
            q: q.clone(),
            p1,
            q1,
            h_p,
            h_q,
            q_inv: q.mod_inverse(p).expect("p, q distinct primes"),
            ctx_pp: BigMontCtx::new(&p.mul(p)),
            ctx_qq: BigMontCtx::new(&q.mul(q)),
        };
        Some(PaillierKeyPair {
            public: PaillierPublicKey::from_modulus(n),
            lambda,
            mu,
            crt,
        })
    }

    /// The public half.
    pub fn public(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// Decrypts via the CRT: `m_p = L_p(c^{p−1} mod p²) · h_p mod p`
    /// (half-size modulus and exponent), likewise for `q`, then Garner
    /// recombination. Equals [`Self::decrypt_generic`] for every unit
    /// `c ∈ Z*_{n²}` and falls back to it otherwise (a non-unit reveals a
    /// factor of `n`; the generic path at least fails identically).
    pub fn decrypt(&self, c: &PaillierCiphertext) -> BigUint {
        self.decrypt_crt(c)
            .unwrap_or_else(|| self.decrypt_generic(c))
    }

    fn decrypt_crt(&self, c: &PaillierCiphertext) -> Option<BigUint> {
        let crt = &self.crt;
        let m_p = l_residue(&crt.ctx_pp, &crt.p1, &crt.p, &c.0)?.mul_mod(&crt.h_p, &crt.p);
        let m_q = l_residue(&crt.ctx_qq, &crt.q1, &crt.q, &c.0)?.mul_mod(&crt.h_q, &crt.q);
        // Garner: m = m_q + q·(q⁻¹·(m_p − m_q) mod p).
        let m_q_mod_p = m_q.rem(&crt.p);
        let diff = match m_p.checked_sub(&m_q_mod_p) {
            Some(d) => d,
            None => m_p.add(&crt.p).sub(&m_q_mod_p),
        };
        let h = crt.q_inv.mul_mod(&diff, &crt.p);
        Some(m_q.add(&h.mul(&crt.q)))
    }

    /// The pre-CRT decryption path, `m = L(c^λ mod n²) · μ mod n` with
    /// `L(x) = (x − 1)/n` over the generic `BigUint` kernels — kept as
    /// the differential-test oracle for [`Self::decrypt`].
    pub fn decrypt_generic(&self, c: &PaillierCiphertext) -> BigUint {
        let n = &self.public.n;
        let x = c.0.pow_mod(&self.lambda, &self.public.n_squared);
        let l = x.sub(&BigUint::one()).div_rem(n).0;
        l.mul_mod(&self.mu, n)
    }
}

/// `L_s(c^e mod s²)` for a prime `s` (with `ctx` over `s²`): `None` when
/// `c` is not a unit mod `s` (then `c^e ≢ 1 mod s` and the `L` function
/// is undefined).
fn l_residue(ctx: &BigMontCtx, e: &BigUint, s: &BigUint, c: &BigUint) -> Option<BigUint> {
    let x = ctx.pow_mod(c, e);
    let (l, rem) = x.checked_sub(&BigUint::one())?.div_rem(s);
    if !rem.is_zero() {
        return None;
    }
    Some(l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> (PaillierKeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(2024);
        let kp = PaillierKeyPair::generate(&mut rng, 256);
        (kp, rng)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let (kp, mut rng) = keypair();
        for m in [0u64, 1, 42, 1_000_000, u32::MAX as u64] {
            let m = BigUint::from_u64(m);
            let c = kp.public().encrypt(&mut rng, &m);
            assert_eq!(kp.decrypt(&c), m);
        }
    }

    #[test]
    fn crt_decrypt_matches_generic_oracle() {
        let (kp, mut rng) = keypair();
        // Valid ciphertexts.
        for m in [0u64, 1, 7, u64::MAX] {
            let c = kp.public().encrypt(&mut rng, &BigUint::from_u64(m));
            assert_eq!(kp.decrypt(&c), kp.decrypt_generic(&c));
        }
        // Arbitrary group elements, including (w.o.p.) only units.
        for _ in 0..16 {
            let raw = BigUint::random_below(&mut rng, &kp.public().n_squared);
            let c = PaillierCiphertext::from_raw(raw);
            assert_eq!(kp.decrypt(&c), kp.decrypt_generic(&c));
        }
    }

    #[test]
    fn non_unit_ciphertext_falls_back_to_generic() {
        let (kp, _) = keypair();
        // c = p is a non-unit mod p: L_p is undefined, so decrypt must
        // take the generic fallback — and agree with it.
        let c = PaillierCiphertext::from_raw(kp.crt.p.clone());
        assert!(kp.decrypt_crt(&c).is_none());
        assert_eq!(kp.decrypt(&c), kp.decrypt_generic(&c));
        // c = 0 underflows the L function instead of leaving a remainder
        // (the generic oracle panics on it, so only the CRT path is
        // checked here).
        let z = PaillierCiphertext::from_raw(BigUint::zero());
        assert!(kp.decrypt_crt(&z).is_none());
    }

    #[test]
    fn encryption_is_randomized() {
        let (kp, mut rng) = keypair();
        let m = BigUint::from_u64(7);
        let c1 = kp.public().encrypt(&mut rng, &m);
        let c2 = kp.public().encrypt(&mut rng, &m);
        assert_ne!(c1, c2, "same plaintext must yield distinct ciphertexts");
        assert_eq!(kp.decrypt(&c1), kp.decrypt(&c2));
    }

    #[test]
    fn additive_homomorphism() {
        let (kp, mut rng) = keypair();
        let pk = kp.public();
        let a = pk.encrypt(&mut rng, &BigUint::from_u64(1234));
        let b = pk.encrypt(&mut rng, &BigUint::from_u64(8766));
        assert_eq!(kp.decrypt(&pk.add(&a, &b)), BigUint::from_u64(10_000));
    }

    #[test]
    fn many_way_sum() {
        let (kp, mut rng) = keypair();
        let pk = kp.public();
        let mut acc = pk.encrypt(&mut rng, &BigUint::zero());
        let mut expected = 0u64;
        for i in 1..=50u64 {
            acc = pk.add(&acc, &pk.encrypt(&mut rng, &BigUint::from_u64(i * 11)));
            expected += i * 11;
        }
        assert_eq!(kp.decrypt(&acc), BigUint::from_u64(expected));
    }

    #[test]
    fn scalar_multiplication() {
        let (kp, mut rng) = keypair();
        let pk = kp.public();
        let c = pk.encrypt(&mut rng, &BigUint::from_u64(30));
        let scaled = pk.scale(&c, &BigUint::from_u64(9));
        assert_eq!(kp.decrypt(&scaled), BigUint::from_u64(270));
    }

    #[test]
    fn ciphertext_size_is_double_modulus() {
        let (kp, _) = keypair();
        assert_eq!(kp.public().ciphertext_bytes(), 64); // 256-bit n → 512-bit n²
    }

    #[test]
    fn malleability_means_no_integrity() {
        // The §II-C caveat: the provider can shift the SUM undetected.
        let (kp, mut rng) = keypair();
        let pk = kp.public();
        let honest = pk.encrypt(&mut rng, &BigUint::from_u64(100));
        let spurious = pk.encrypt(&mut rng, &BigUint::from_u64(999));
        let tampered = pk.add(&honest, &spurious);
        assert_eq!(kp.decrypt(&tampered), BigUint::from_u64(1099));
    }
}
