//! Quick width-tuning harness for the W-lane Montgomery batch kernels.
//! Not part of the repro suite — `repro micro` is the canonical
//! measurement; this exists to compare chunk widths while tuning.

use sies_crypto::bigmont::BigMontCtx;
use sies_crypto::bigmontxn;
use sies_crypto::biguint::BigUint;
use std::time::Instant;

fn stream_below(m: &BigUint, tag: u64, count: usize) -> Vec<BigUint> {
    let nbytes = m.bit_len().div_ceil(8) + 8;
    (0..count)
        .map(|i| {
            let mut state = tag
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1);
            let mut bytes = Vec::with_capacity(nbytes);
            while bytes.len() < nbytes {
                state = state
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(27)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                bytes.extend_from_slice(&state.to_be_bytes());
            }
            BigUint::from_be_bytes(&bytes).rem(m)
        })
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn time_us(rounds: usize, mut f: impl FnMut()) -> f64 {
    f();
    let samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    median(samples)
}

fn main() {
    let mut mbytes = vec![0xE4u8; 128];
    mbytes[127] |= 1;
    let m = BigUint::from_be_bytes(&mbytes);
    let ctx = BigMontCtx::new(&m);
    let n = 64usize;
    let bases = stream_below(&m, 0xB00, n);
    let exp = BigUint::from_u64(0xD6E8_FEB8_6659_FD93);
    let rounds = 31;

    let scalar = time_us(rounds, || {
        std::hint::black_box(
            bases
                .iter()
                .map(|b| ctx.pow_mod(b, &exp))
                .collect::<Vec<_>>(),
        );
    });
    println!("scalar pow loop  n={n}: {scalar:10.1} us");
    for w in [4usize, 8] {
        let t = time_us(rounds, || {
            std::hint::black_box(bigmontxn::pow_mod_many_with(w, &ctx, &bases, &exp));
        });
        println!(
            "pow_mod_many w={w} n={n}: {t:10.1} us  ({:.2}x)",
            scalar / t
        );
    }
}
