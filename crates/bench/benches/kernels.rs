//! Criterion microbenchmarks for the modular-exponentiation kernels
//! (windowed Montgomery exponentiation, CRT decryption, batch inversion)
//! and the lane-batched epoch PRFs (`hm1_epoch_many`/`hm256_epoch_many`
//! at x4 and x8 lanes), each next to the generic path it replaces.
//! `cargo bench -p sies-bench --bench kernels` is the statistically
//! robust companion to `repro micro`; CI runs it as a smoke test with
//! `--test`.

use criterion::{criterion_group, criterion_main, Criterion};
use sies_bench::micro::{paillier_fixture, prf_keys, rsa_fixture, stream_below};
use sies_crypto::biguint::BigUint;
use sies_crypto::lanes;
use sies_crypto::mont::MontgomeryCtx;
use sies_crypto::prf::{self, KeyedPrf};
use sies_crypto::u256::U256;
use sies_crypto::DEFAULT_PRIME_256;
use std::hint::black_box;

const CHAIN_LEN: u64 = 16;
const FOLD_LEN: usize = 256;
const BATCH_LEN: usize = 64;

fn bench_rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa2048");
    let kp = rsa_fixture();
    let pk = kp.public();
    let n = pk.modulus().clone();
    let e = pk.exponent().clone();
    let msg = stream_below(&n, 0xA0, 1).pop().unwrap();
    let cipher = pk.encrypt(&msg);

    group.bench_function("seal_chain16/generic", |b| {
        b.iter(|| {
            let mut acc = black_box(&msg).rem(&n);
            for _ in 0..CHAIN_LEN {
                acc = acc.pow_mod(&e, &n);
            }
            black_box(acc)
        })
    });
    group.bench_function("seal_chain16/mont", |b| {
        b.iter(|| black_box(pk.encrypt_repeated(black_box(&msg), CHAIN_LEN)))
    });
    group.bench_function("decrypt/generic", |b| {
        b.iter(|| black_box(kp.decrypt_generic(black_box(&cipher))))
    });
    group.bench_function("decrypt/crt", |b| {
        b.iter(|| black_box(kp.decrypt(black_box(&cipher))))
    });

    let factors = stream_below(&n, 0xA1, FOLD_LEN);
    group.bench_function("fold256/generic", |b| {
        b.iter(|| {
            let mut acc = BigUint::one();
            for f in black_box(&factors) {
                acc = acc.mul_mod(f, &n);
            }
            black_box(acc)
        })
    });
    group.bench_function("fold256/mont", |b| {
        b.iter(|| black_box(pk.fold_product(black_box(&factors))))
    });
    group.finish();
}

fn bench_paillier(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier2048");
    // Paillier exponentiations walk full-width 2048-bit exponents; keep
    // the sample count low enough for a CI smoke run.
    group.sample_size(10);
    let kp = paillier_fixture();
    let pk = kp.public();
    let n = pk.modulus().clone();
    let n2 = n.mul(&n);
    let msg = stream_below(&n, 0xB0, 1).pop().unwrap();
    let nonce = stream_below(&n, 0xB1, 1).pop().unwrap();
    let cipher = pk.encrypt_with_nonce(&msg, &nonce);

    group.bench_function("encrypt/generic", |b| {
        b.iter(|| {
            let g_m = BigUint::one().add(&msg.mul(&n)).rem(&n2);
            black_box(g_m.mul_mod(&black_box(&nonce).pow_mod(&n, &n2), &n2))
        })
    });
    group.bench_function("encrypt/mont", |b| {
        b.iter(|| black_box(pk.encrypt_with_nonce(black_box(&msg), &nonce)))
    });
    group.bench_function("decrypt/generic", |b| {
        b.iter(|| black_box(kp.decrypt_generic(black_box(&cipher))))
    });
    group.bench_function("decrypt/crt", |b| {
        b.iter(|| black_box(kp.decrypt(black_box(&cipher))))
    });
    group.finish();
}

fn bench_u256(c: &mut Criterion) {
    let mut group = c.benchmark_group("u256");
    let p = DEFAULT_PRIME_256;
    let ctx = MontgomeryCtx::new(&p);
    let base = U256::from_be_bytes(&[0xA7; 32]).rem(&p);
    // Full-width exponent: p - 2 (the Fermat-inversion exponent).
    let exp = p.sub_mod(&U256::from_u64(2), &p);
    let (pb, pe, pm) = (BigUint::from(&base), BigUint::from(&exp), BigUint::from(&p));

    group.bench_function("pow_mod/generic", |b| {
        b.iter(|| black_box(black_box(&pb).pow_mod(&pe, &pm)))
    });
    group.bench_function("pow_mod/windowed", |b| {
        b.iter(|| black_box(ctx.pow_mod(black_box(&base), &exp)))
    });

    let values: Vec<U256> = (1..=BATCH_LEN as u64)
        .map(|i| U256::from_u64(i).mul_mod(&base, &p).add_mod(&U256::ONE, &p))
        .collect();
    group.bench_function("inv64/euclid_each", |b| {
        b.iter(|| {
            let out: Vec<_> = black_box(&values)
                .iter()
                .map(|v| v.inv_mod_euclid(&p))
                .collect();
            black_box(out)
        })
    });
    group.bench_function("inv64/batch", |b| {
        b.iter(|| black_box(U256::batch_inv_mod(black_box(&values), &p)))
    });
    group.finish();
}

fn bench_prf(c: &mut Criterion) {
    let mut group = c.benchmark_group("prf_batch");
    let epoch = 99u64;
    let keys = prf_keys(1000);
    let prfs: Vec<KeyedPrf> = keys.iter().map(|k| KeyedPrf::new(k)).collect();

    for n in [64usize, 256, 1000] {
        group.bench_function(format!("hm1_epoch_many/scalar/n{n}"), |b| {
            b.iter(|| {
                let out: Vec<[u8; 20]> = black_box(&keys[..n])
                    .iter()
                    .map(|k| prf::hm1_epoch(k, epoch))
                    .collect();
                black_box(out)
            })
        });
        group.bench_function(format!("hm256_epoch_many/scalar/n{n}"), |b| {
            b.iter(|| {
                let out: Vec<[u8; 32]> = black_box(&keys[..n])
                    .iter()
                    .map(|k| prf::hm256_epoch(k, epoch))
                    .collect();
                black_box(out)
            })
        });
        for w in [4usize, 8] {
            group.bench_function(format!("hm1_epoch_many/x{w}/n{n}"), |b| {
                lanes::set_lane_width(w);
                b.iter(|| black_box(prf::hm1_epoch_many(black_box(&prfs[..n]), epoch)))
            });
            group.bench_function(format!("hm256_epoch_many/x{w}/n{n}"), |b| {
                lanes::set_lane_width(w);
                b.iter(|| black_box(prf::hm256_epoch_many(black_box(&prfs[..n]), epoch)))
            });
        }
    }

    let p = DEFAULT_PRIME_256;
    group.bench_function("derive_mod_p_many/scalar/n1000", |b| {
        b.iter(|| {
            let out: Vec<U256> = black_box(&keys)
                .iter()
                .map(|k| prf::derive_mod(k, epoch, &p))
                .collect();
            black_box(out)
        })
    });
    group.bench_function("derive_mod_p_many/x8/n1000", |b| {
        lanes::set_lane_width(8);
        b.iter(|| black_box(prf::derive_mod_p_many(black_box(&prfs), epoch, &p)))
    });
    lanes::clear_lane_width();
    group.finish();
}

criterion_group!(benches, bench_rsa, bench_paillier, bench_u256, bench_prf);
criterion_main!(benches);
