//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * modular inverse: Fermat exponentiation vs extended Euclid (the
//!   querier's `K_t⁻¹`);
//! * multiplication: schoolbook vs Karatsuba across operand sizes;
//! * SIES message-field width: 4-byte vs 8-byte result fields;
//! * SECOA sketch count `J`: the linear cost/accuracy knob;
//! * hash throughput: SHA-1 vs SHA-256 compression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_baselines::secoa::SecoaSum;
use sies_core::{ResultWidth, SystemParams};
use sies_crypto::biguint::BigUint;
use sies_crypto::hash::HashFunction;
use sies_crypto::sha1::Sha1;
use sies_crypto::sha256::Sha256;
use sies_crypto::u256::U256;
use sies_crypto::DEFAULT_PRIME_256;
use sies_net::scheme::AggregationScheme;
use sies_net::SiesDeployment;
use std::hint::black_box;

fn bench_modinv(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_modinv");
    let p = DEFAULT_PRIME_256;
    let a = U256::from_be_bytes(&[0xA7; 32]).rem(&p);
    group.bench_function("fermat (a^(p-2))", |b| {
        b.iter(|| black_box(a.inv_mod_prime(&p)))
    });
    group.bench_function("extended euclid", |b| {
        b.iter(|| black_box(a.inv_mod_euclid(&p)))
    });
    group.finish();
}

fn bench_multiplication(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mul");
    let mut rng = StdRng::seed_from_u64(1);
    for limbs in [8usize, 16, 32, 64] {
        let a = BigUint::random_bits(&mut rng, limbs * 64);
        let b = BigUint::random_bits(&mut rng, limbs * 64);
        group.bench_with_input(
            BenchmarkId::new("dispatching", limbs),
            &limbs,
            |bench, _| bench.iter(|| black_box(a.mul(&b))),
        );
    }
    group.finish();
}

fn bench_result_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_result_width");
    let mut rng = StdRng::seed_from_u64(2);
    let n = 1024;
    let dep32 = SiesDeployment::new(
        &mut rng,
        SystemParams::with_prime(n, DEFAULT_PRIME_256, ResultWidth::U32).unwrap(),
    );
    let dep64 = SiesDeployment::new(
        &mut rng,
        SystemParams::with_prime(n, DEFAULT_PRIME_256, ResultWidth::U64).unwrap(),
    );
    let mut t = 0u64;
    group.bench_function("u32 result field", |b| {
        b.iter(|| {
            t = t.wrapping_add(1);
            black_box(dep32.source_init(0, t, 3400))
        })
    });
    group.bench_function("u64 result field", |b| {
        b.iter(|| {
            t = t.wrapping_add(1);
            black_box(dep64.source_init(0, t, 3400))
        })
    });
    group.finish();
}

fn bench_secoa_j(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_secoa_j");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    for j in [30usize, 100, 300] {
        let dep = SecoaSum::new(&mut rng, 16, j, 512);
        let mut t = 0u64;
        group.bench_with_input(BenchmarkId::new("source_init", j), &j, |b, _| {
            b.iter(|| {
                t = t.wrapping_add(1);
                black_box(dep.source_init(0, t, 3400))
            })
        });
    }
    group.finish();
}

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hash_throughput");
    let data = vec![0xAB_u8; 4096];
    group.bench_function("sha1 4KiB", |b| b.iter(|| black_box(Sha1::digest(&data))));
    group.bench_function("sha256 4KiB", |b| {
        b.iter(|| black_box(Sha256::digest(&data)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_modinv,
    bench_multiplication,
    bench_result_width,
    bench_secoa_j,
    bench_hashes
);
criterion_main!(benches);
