//! Criterion benchmarks of the three schemes' per-party phases at the
//! paper's default parameters (where feasible within a bench budget):
//! source initialization, aggregator merging, and querier evaluation.
//!
//! SECOA runs with a reduced sketch count here (J = 30 instead of 300) so
//! the bench suite completes quickly; the `repro` binary measures the full
//! J = 300 configuration. Costs scale linearly in J, which the harness
//! verifies against the cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_baselines::cmt::CmtDeployment;
use sies_baselines::secoa::SecoaSum;
use sies_core::{SourceId, SystemParams};
use sies_net::scheme::AggregationScheme;
use sies_net::SiesDeployment;
use std::hint::black_box;

const N: u64 = 1024;
const F: usize = 4;
const SECOA_J: usize = 30;
const VALUE: u64 = 3400; // mid-domain reading at x10^2

fn bench_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("source_init");
    let mut rng = StdRng::seed_from_u64(1);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap());
    let cmt = CmtDeployment::new(&mut rng, N);
    let secoa = SecoaSum::new(&mut rng, N, SECOA_J, 1024);

    let mut t = 0u64;
    group.bench_function("SIES", |b| {
        b.iter(|| {
            t = t.wrapping_add(1);
            black_box(sies.source_init(0, t, VALUE))
        })
    });
    group.bench_function("CMT", |b| {
        b.iter(|| {
            t = t.wrapping_add(1);
            black_box(cmt.source_init(0, t, VALUE))
        })
    });
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("SECOAS", format!("J={SECOA_J}")), |b| {
        b.iter(|| {
            t = t.wrapping_add(1);
            black_box(secoa.source_init(0, t, VALUE))
        })
    });
    group.finish();
}

fn bench_aggregator(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregator_merge");
    let mut rng = StdRng::seed_from_u64(2);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap());
    let cmt = CmtDeployment::new(&mut rng, N);
    let secoa = SecoaSum::new(&mut rng, N, SECOA_J, 1024);

    let ids: Vec<SourceId> = (0..F as SourceId).collect();
    let sies_children: Vec<_> = ids.iter().map(|&i| sies.source_init(i, 0, VALUE)).collect();
    let cmt_children: Vec<_> = ids.iter().map(|&i| cmt.source_init(i, 0, VALUE)).collect();
    let secoa_children: Vec<_> = ids
        .iter()
        .map(|&i| secoa.source_init(i, 0, VALUE))
        .collect();

    group.bench_function("SIES", |b| b.iter(|| black_box(sies.merge(&sies_children))));
    group.bench_function("CMT", |b| b.iter(|| black_box(cmt.merge(&cmt_children))));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("SECOAS", format!("J={SECOA_J}")), |b| {
        b.iter(|| black_box(secoa.merge(&secoa_children)))
    });
    group.finish();
}

fn bench_querier(c: &mut Criterion) {
    let mut group = c.benchmark_group("querier_evaluate");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap());
    let cmt = CmtDeployment::new(&mut rng, N);
    let secoa = SecoaSum::new(&mut rng, N, SECOA_J, 1024);
    let contributors: Vec<SourceId> = (0..N as SourceId).collect();

    let sies_final = {
        let psrs: Vec<_> = contributors
            .iter()
            .map(|&i| sies.source_init(i, 0, VALUE))
            .collect();
        sies.merge(&psrs)
    };
    let cmt_final = {
        let psrs: Vec<_> = contributors
            .iter()
            .map(|&i| cmt.source_init(i, 0, VALUE))
            .collect();
        cmt.merge(&psrs)
    };
    let secoa_final = {
        let psr = secoa.synthesize_final_psr(&mut rng, 0, N * VALUE, &contributors);
        secoa.sink_finalize(psr)
    };

    group.bench_function("SIES", |b| {
        b.iter(|| black_box(sies.evaluate(&sies_final, 0, &contributors).unwrap()))
    });
    group.bench_function("CMT", |b| {
        b.iter(|| black_box(cmt.evaluate(&cmt_final, 0, &contributors).unwrap()))
    });
    group.bench_function(BenchmarkId::new("SECOAS", format!("J={SECOA_J}")), |b| {
        b.iter(|| black_box(secoa.evaluate(&secoa_final, 0, &contributors).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_source, bench_aggregator, bench_querier);
criterion_main!(benches);
