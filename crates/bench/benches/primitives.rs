//! Criterion microbenchmarks for the Table II primitives, measured with
//! this repository's implementations. `cargo bench -p sies-bench --bench
//! primitives` prints the statistically robust companion to
//! `repro table2`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_baselines::sketch::FmSketch;
use sies_crypto::biguint::BigUint;
use sies_crypto::prf;
use sies_crypto::rsa::RsaKeyPair;
use sies_crypto::u256::U256;
use sies_crypto::DEFAULT_PRIME_256;
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");

    let key20 = [0x42u8; 20];
    group.bench_function("C_HM1 (HMAC-SHA1)", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(1);
            black_box(prf::hm1_epoch(&key20, t))
        })
    });
    group.bench_function("C_HM256 (HMAC-SHA256)", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(1);
            black_box(prf::hm256_epoch(&key20, t))
        })
    });

    let p256 = DEFAULT_PRIME_256;
    let a32 = U256::from_be_bytes(&[0xA7; 32]).rem(&p256);
    let b32 = U256::from_be_bytes(&[0x5C; 32]).rem(&p256);
    let n160 = U256::ONE.shl(160);
    let a20 = a32.rem(&n160);
    let b20 = b32.rem(&n160);

    group.bench_function("C_A20 (20B modular add)", |b| {
        b.iter(|| black_box(a20.add_mod(&b20, &n160)))
    });
    group.bench_function("C_A32 (32B modular add)", |b| {
        b.iter(|| black_box(a32.add_mod(&b32, &p256)))
    });
    group.bench_function("C_M32 (32B modular mul)", |b| {
        b.iter(|| black_box(a32.mul_mod(&b32, &p256)))
    });
    group.bench_function("C_MI32 (32B modular inverse)", |b| {
        b.iter(|| black_box(a32.inv_mod_prime(&p256)))
    });

    let mut rng = StdRng::seed_from_u64(77);
    let rsa = RsaKeyPair::generate(&mut rng, 1024).public().clone();
    let x128 = BigUint::from_be_bytes(&[0x31; 100]);
    let y128 = BigUint::from_be_bytes(&[0x77; 120]).rem(rsa.modulus());
    group.bench_function("C_M128 (128B modular mul)", |b| {
        b.iter(|| black_box(x128.mul_mod(&y128, rsa.modulus())))
    });
    group.bench_function("C_RSA (1024-bit raw encrypt, e=3)", |b| {
        b.iter(|| black_box(rsa.encrypt(&x128)))
    });

    group.bench_function("C_sk (sketch insertion)", |b| {
        let mut item = 0u64;
        b.iter(|| {
            let mut s = FmSketch::new();
            item = item.wrapping_add(1);
            s.insert(1, 2, black_box(item));
            black_box(s)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
