//! The analytic cost models of paper §V (Equations 1–11), evaluated for
//! arbitrary primitive costs and system parameters. Feeding in the
//! paper's Table II constants regenerates Table III and the model rows of
//! Table V; feeding in calibrated constants gives this host's predictions
//! (used as error bars in Figure 4, like the paper does).

use crate::calibrate::{PrimitiveCosts, WireSizes};
use serde::Serialize;

/// System parameters entering the models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ModelParams {
    /// Number of sources `N`.
    pub n: u64,
    /// Sketch count `J`.
    pub j: u64,
    /// Aggregator fanout `F`.
    pub f: u64,
    /// Value domain `[D_L, D_U]`.
    pub d_l: u64,
    /// Upper domain bound.
    pub d_u: u64,
}

impl ModelParams {
    /// The paper's defaults: `N=1024, J=300, F=4, D=[1800,5000]`.
    pub const DEFAULTS: ModelParams = ModelParams {
        n: 1024,
        j: 300,
        f: 4,
        d_l: 1800,
        d_u: 5000,
    };

    /// The sketch-value bound `⌈log₂(N·D_U)⌉` — `x_i ∈ [0, 23]` for the
    /// defaults (Table II).
    pub fn x_bound(&self) -> u64 {
        let prod = (self.n as f64) * (self.d_u as f64);
        prod.log2().ceil() as u64
    }

    /// The rolling bound `rl_i ∈ [0, x_bound − 1]` (Table II: `[0, 22]`).
    pub fn rl_bound(&self) -> u64 {
        self.x_bound().saturating_sub(1)
    }
}

/// A best/worst-case pair (SECOA's data-dependent costs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Range {
    /// Best case.
    pub min: f64,
    /// Worst case.
    pub max: f64,
}

impl Range {
    fn flat(v: f64) -> Range {
        Range { min: v, max: v }
    }
}

/// The full cost model for one parameterization.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Primitive costs (µs).
    pub costs: PrimitiveCosts,
    /// Wire sizes (bytes).
    pub sizes: WireSizes,
    /// System parameters.
    pub params: ModelParams,
}

impl CostModel {
    /// Model with the paper's constants and defaults.
    pub fn paper_defaults() -> Self {
        CostModel {
            costs: PrimitiveCosts::PAPER,
            sizes: WireSizes::PAPER,
            params: ModelParams::DEFAULTS,
        }
    }

    // ---- Computational cost at a source (µs) ---------------------------

    /// Equation 1: `C^𝒮_CMT = C_HM1 + C_A20`.
    pub fn cmt_source(&self) -> f64 {
        self.costs.c_hm1 + self.costs.c_a20
    }

    /// Equation 2: `C^𝒮_SECOA = J(v·C_sk + 2·C_HM1) + Σ x_i·C_RSA`,
    /// bounded over `v ∈ [D_L, D_U]` and `x_i ∈ [0, x_bound]`.
    pub fn secoa_source(&self) -> Range {
        let ModelParams { j, d_l, d_u, .. } = self.params;
        let fixed = |v: u64, x: u64| {
            (j as f64) * (v as f64 * self.costs.c_sk + 2.0 * self.costs.c_hm1)
                + (j as f64) * (x as f64) * self.costs.c_rsa
        };
        Range {
            min: fixed(d_l, 0),
            max: fixed(d_u, self.params.x_bound()),
        }
    }

    /// Equation 3: `C^𝒮_SIES = 2·C_HM256 + C_HM1 + C_M32 + C_A32`.
    pub fn sies_source(&self) -> f64 {
        2.0 * self.costs.c_hm256 + self.costs.c_hm1 + self.costs.c_m32 + self.costs.c_a32
    }

    // ---- Computational cost at an aggregator (µs) ----------------------

    /// Equation 4: `C^𝒜_CMT = (F−1)·C_A20`.
    pub fn cmt_aggregator(&self) -> f64 {
        (self.params.f - 1) as f64 * self.costs.c_a20
    }

    /// Equation 5: `C^𝒜_SECOA = J(F−1)·C_M128 + Σ rl_i·C_RSA`, with
    /// `Σ rl_i` up to `J·rl_bound` in the worst case.
    pub fn secoa_aggregator(&self) -> Range {
        let ModelParams { j, f, .. } = self.params;
        let fold = (j * (f - 1)) as f64 * self.costs.c_m128;
        Range {
            min: fold,
            max: fold + (j * self.params.rl_bound()) as f64 * self.costs.c_rsa,
        }
    }

    /// Equation 6: `C^𝒜_SIES = (F−1)·C_A32`.
    pub fn sies_aggregator(&self) -> f64 {
        (self.params.f - 1) as f64 * self.costs.c_a32
    }

    // ---- Computational cost at the querier (µs) ------------------------

    /// Equation 7: `C^𝒬_CMT = N(C_HM1 + C_A20)`.
    pub fn cmt_querier(&self) -> f64 {
        self.params.n as f64 * (self.costs.c_hm1 + self.costs.c_a20)
    }

    /// Equation 8: `C^𝒬_SECOA = J·N·C_HM1 + (seals + J·N − 2)·C_M128 +
    /// (Σ rl_i + x_max)·C_RSA + J·C_HM1`.
    ///
    /// Best case: one collected SEAL already at `x_max = 0`. Worst case:
    /// `x_bound` distinct positions each rolled to `x_bound`.
    pub fn secoa_querier(&self) -> Range {
        let ModelParams { j, n, .. } = self.params;
        let jn = (j * n) as f64;
        let base = jn * self.costs.c_hm1 + (j as f64) * self.costs.c_hm1;
        let x_bound = self.params.x_bound() as f64;
        let cost = |seals: f64, rolls: f64, x_max: f64| {
            base + (seals + jn - 2.0) * self.costs.c_m128 + (rolls + x_max) * self.costs.c_rsa
        };
        Range {
            min: cost(1.0, 0.0, 0.0),
            max: cost(x_bound, x_bound, x_bound),
        }
    }

    /// Equation 9: `C^𝒬_SIES = N·C_HM1 + (N+1)·C_HM256 + (2N−1)·C_A32 +
    /// C_MI32 + C_M32`.
    pub fn sies_querier(&self) -> f64 {
        let n = self.params.n as f64;
        n * self.costs.c_hm1
            + (n + 1.0) * self.costs.c_hm256
            + (2.0 * n - 1.0) * self.costs.c_a32
            + self.costs.c_mi32
            + self.costs.c_m32
    }

    // ---- Communication cost (bytes per edge) ---------------------------

    /// CMT: 20-byte ciphertext on every edge.
    pub fn cmt_comm(&self) -> f64 {
        20.0
    }

    /// SIES: 32-byte PSR on every edge.
    pub fn sies_comm(&self) -> f64 {
        32.0
    }

    /// Equation 10: SECOA source→agg / agg→agg:
    /// `J·S_sk + J·S_SEAL + S_inf`.
    pub fn secoa_comm_sa(&self) -> f64 {
        let j = self.params.j as f64;
        j * self.sizes.s_sk as f64 + j * self.sizes.s_seal as f64 + self.sizes.s_inf as f64
    }

    /// Equation 11: SECOA agg→querier:
    /// `J·S_sk + seals·S_SEAL + S_inf`, with `seals ∈ [1, x_bound + 1]`.
    pub fn secoa_comm_aq(&self) -> Range {
        let j = self.params.j as f64;
        let fixed = j * self.sizes.s_sk as f64 + self.sizes.s_inf as f64;
        Range {
            min: fixed + self.sizes.s_seal as f64,
            max: fixed + (self.params.x_bound() + 1) as f64 * self.sizes.s_seal as f64,
        }
    }

    /// All Table III rows: (metric, CMT, SECOA min/max, SIES), times in µs
    /// and communication in bytes.
    pub fn table3(&self) -> Vec<(&'static str, f64, Range, f64)> {
        vec![
            (
                "Comput. cost at S (us)",
                self.cmt_source(),
                self.secoa_source(),
                self.sies_source(),
            ),
            (
                "Comput. cost at A (us)",
                self.cmt_aggregator(),
                self.secoa_aggregator(),
                self.sies_aggregator(),
            ),
            (
                "Comput. cost at Q (us)",
                self.cmt_querier(),
                self.secoa_querier(),
                self.sies_querier(),
            ),
            (
                "Commun. cost S-A (bytes)",
                self.cmt_comm(),
                Range::flat(self.secoa_comm_sa()),
                self.sies_comm(),
            ),
            (
                "Commun. cost A-A (bytes)",
                self.cmt_comm(),
                Range::flat(self.secoa_comm_sa()),
                self.sies_comm(),
            ),
            (
                "Commun. cost A-Q (bytes)",
                self.cmt_comm(),
                self.secoa_comm_aq(),
                self.sies_comm(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::paper_defaults()
    }

    /// The x bound for the defaults is ⌈log2(1024·5000)⌉ = 23, matching
    /// Table II's `x_i ∈ [0, 23]` and `rl_i ∈ [0, 22]`.
    #[test]
    fn bounds_match_table_ii() {
        assert_eq!(ModelParams::DEFAULTS.x_bound(), 23);
        assert_eq!(ModelParams::DEFAULTS.rl_bound(), 22);
    }

    /// Table III, CMT column.
    #[test]
    fn table3_cmt_column() {
        let m = model();
        assert!((m.cmt_source() - 0.61).abs() < 0.01); // 1.17 µs? see note
        assert!((m.cmt_aggregator() - 0.45).abs() < 0.01);
        assert!((m.cmt_querier() / 1000.0 - 0.62).abs() < 0.01); // 0.62 ms
        assert_eq!(m.cmt_comm(), 20.0);
    }

    /// Table III, SIES column.
    #[test]
    fn table3_sies_column() {
        let m = model();
        assert!((m.sies_source() - 3.32).abs() < 0.2); // paper: 3.46 µs
        assert!((m.sies_aggregator() - 1.11).abs() < 0.01);
        assert!((m.sies_querier() / 1000.0 - 2.28).abs() < 0.01); // 2.28 ms
        assert_eq!(m.sies_comm(), 32.0);
    }

    /// Table III, SECOA column (ms).
    #[test]
    fn table3_secoa_column() {
        let m = model();
        let src = m.secoa_source();
        assert!(
            (src.min / 1000.0 - 20.26).abs() < 0.05,
            "min {}",
            src.min / 1000.0
        );
        assert!(
            (src.max / 1000.0 - 92.75).abs() < 0.1,
            "max {}",
            src.max / 1000.0
        );
        let agg = m.secoa_aggregator();
        assert!((agg.min / 1000.0 - 1.25).abs() < 0.01);
        assert!((agg.max / 1000.0 - 36.63).abs() < 0.1);
        let q = m.secoa_querier();
        assert!(
            (q.min / 1000.0 - 568.46).abs() < 0.5,
            "min {}",
            q.min / 1000.0
        );
        assert!(
            (q.max / 1000.0 - 568.63).abs() < 0.5,
            "max {}",
            q.max / 1000.0
        );
    }

    /// Table V model values.
    #[test]
    fn table5_model_values() {
        let m = model();
        // 37.8 KB per S-A/A-A edge.
        assert!((m.secoa_comm_sa() / 1024.0 - 37.8).abs() < 0.1);
        // A-Q: 448 bytes best case.
        let aq = m.secoa_comm_aq();
        assert_eq!(aq.min, 448.0);
        // Worst case ~3.0–3.3 KB (paper rounds to 3.25 KB).
        assert!(
            aq.max / 1024.0 > 2.9 && aq.max / 1024.0 < 3.4,
            "max {}",
            aq.max
        );
    }

    /// The headline claim: SIES beats SECOA's best case by ≥ 2 orders of
    /// magnitude at sources/aggregators and ≥ 1 order at the querier.
    #[test]
    fn sies_dominates_secoa_best_case() {
        let m = model();
        assert!(m.secoa_source().min / m.sies_source() > 100.0);
        assert!(m.secoa_aggregator().min / m.sies_aggregator() > 100.0);
        assert!(m.secoa_querier().min / m.sies_querier() > 10.0);
        assert!(m.secoa_comm_sa() / m.sies_comm() > 1000.0);
    }

    /// SIES is only marginally worse than CMT (same order of magnitude).
    #[test]
    fn sies_close_to_cmt() {
        let m = model();
        assert!(m.sies_source() / m.cmt_source() < 10.0);
        assert!(m.sies_aggregator() / m.cmt_aggregator() < 10.0);
        assert!(m.sies_querier() / m.cmt_querier() < 10.0);
    }

    /// Scaling shapes: source cost flat in N for all; SECOA source grows
    /// with D; querier costs linear in N.
    #[test]
    fn scaling_shapes() {
        let mut big_n = model();
        big_n.params.n = 16384;
        assert_eq!(model().sies_source(), big_n.sies_source());
        assert!((big_n.sies_querier() / model().sies_querier() - 16.0).abs() < 0.5);
        assert!((big_n.cmt_querier() / model().cmt_querier() - 16.0).abs() < 1e-9);

        let mut big_d = model();
        big_d.params.d_l = 180_000;
        big_d.params.d_u = 500_000;
        assert!(big_d.secoa_source().max > 50.0 * model().secoa_source().max / 2.0);
        assert_eq!(model().sies_source(), big_d.sies_source());
    }
}
