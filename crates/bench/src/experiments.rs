//! Experiment runners regenerating every figure and table of paper §VI.
//!
//! Each function measures the per-party cost of the three schemes exactly
//! the way the paper does: SUM queries evaluated over `epochs` epochs with
//! values drawn from the Intel-Lab-like workload, reporting the average
//! cost per epoch. SECOA's data-dependent best/worst-case model bounds
//! accompany the measurements (the paper's error bars in Figure 4).

use crate::calibrate::PrimitiveCosts;
use crate::cost_model::{CostModel, ModelParams, Range};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use sies_baselines::cmt::CmtDeployment;
use sies_baselines::secoa::SecoaSum;
use sies_core::{SourceId, SystemParams};
use sies_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use sies_net::engine::Engine;
use sies_net::scheme::AggregationScheme;
use sies_net::SiesDeployment;
use sies_net::Topology;
use sies_workload::intel_lab::{DomainScale, IntelLabGenerator};
use sies_workload::sweep;
use std::time::Instant;

/// One point of a figure: CPU cost (ms) per scheme, plus SECOA's
/// analytic min/max bounds at that parameterization.
#[derive(Debug, Clone, Serialize)]
pub struct SeriesPoint {
    /// The swept parameter's label (e.g. "x10^2" or "1024").
    pub x: String,
    /// SIES measured cost, ms.
    pub sies_ms: f64,
    /// CMT measured cost, ms.
    pub cmt_ms: f64,
    /// SECOA_S measured cost, ms.
    pub secoa_ms: f64,
    /// SECOA_S model best case, ms.
    pub secoa_model_min_ms: f64,
    /// SECOA_S model worst case, ms.
    pub secoa_model_max_ms: f64,
}

/// Shared experiment options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Epochs to average over (paper: 20).
    pub epochs: u64,
    /// Epoch cap for the expensive SECOA measurements.
    pub secoa_epochs: u64,
    /// SECOA sketch count `J`.
    pub j: usize,
    /// RSA modulus bits for SECOA (paper: 1024).
    pub rsa_bits: usize,
    /// Master seed: every deployment and workload RNG in the experiment
    /// suite derives from it, and it is recorded in every results JSON
    /// so a run can be replayed exactly.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            epochs: sweep::DEFAULT_EPOCHS,
            secoa_epochs: 3,
            j: sweep::DEFAULT_J,
            rsa_bits: 1024,
            seed: 42,
        }
    }
}

impl Options {
    /// A fast configuration for smoke tests: few epochs, few sketches,
    /// small RSA modulus.
    pub fn fast() -> Self {
        Options {
            epochs: 3,
            secoa_epochs: 1,
            j: 20,
            rsa_bits: 256,
            seed: 42,
        }
    }
}

fn model_for(costs: &PrimitiveCosts, n: u64, f: u64, scale: DomainScale, j: usize) -> CostModel {
    let (d_l, d_u) = scale.domain();
    CostModel {
        costs: *costs,
        sizes: crate::calibrate::WireSizes::PAPER,
        params: ModelParams {
            n,
            j: j as u64,
            f,
            d_l,
            d_u,
        },
    }
}

/// Generates one shared RSA key for all SECOA deployments in a run (key
/// generation is setup-time and not part of any measured phase).
pub fn shared_rsa(opts: &Options) -> RsaPublicKey {
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5EC0A);
    RsaKeyPair::generate(&mut rng, opts.rsa_bits)
        .public()
        .clone()
}

/// Measures the mean per-epoch cost in ms of `op(epoch) `over `epochs`.
fn mean_ms_over_epochs<F: FnMut(u64)>(epochs: u64, mut op: F) -> f64 {
    let start = Instant::now();
    for t in 0..epochs {
        op(t);
    }
    start.elapsed().as_secs_f64() * 1e3 / epochs as f64
}

// ---------------------------------------------------------------------
// Figure 4: computational cost at the source vs. the domain
// ---------------------------------------------------------------------

/// Figure 4: source CPU vs domain scale, `N = 1024`, `F = 4`.
pub fn fig4_source_vs_domain(costs: &PrimitiveCosts, opts: &Options) -> Vec<SeriesPoint> {
    let n = sweep::DEFAULT_N;
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 4);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let cmt = CmtDeployment::new(&mut rng, n);
    let rsa = shared_rsa(opts);
    let secoa = SecoaSum::with_rsa(&mut rng, n, opts.j, rsa);

    DomainScale::paper_range()
        .into_iter()
        .map(|scale| {
            let mut generator = IntelLabGenerator::new(opts.seed ^ 7, 1);
            let mut values: Vec<u64> = (0..opts.epochs.max(opts.secoa_epochs))
                .map(|t| generator.epoch_values(t, scale)[0])
                .collect();
            // Guard: all schemes handle the same values.
            values.iter_mut().for_each(|v| *v = (*v).max(1));

            // Warm-up pass: page in code and data before timing.
            std::hint::black_box(sies.source_init(0, 0, values[0]));
            std::hint::black_box(cmt.source_init(0, 0, values[0]));
            let sies_ms = mean_ms_over_epochs(opts.epochs, |t| {
                std::hint::black_box(sies.source_init(0, t, values[t as usize]));
            });
            let cmt_ms = mean_ms_over_epochs(opts.epochs, |t| {
                std::hint::black_box(cmt.source_init(0, t, values[t as usize]));
            });
            let secoa_ms = mean_ms_over_epochs(opts.secoa_epochs, |t| {
                std::hint::black_box(secoa.source_init(0, t, values[t as usize]));
            });
            let model = model_for(costs, n, sweep::DEFAULT_F as u64, scale, opts.j).secoa_source();
            SeriesPoint {
                x: format!("x10^{}", scale.power),
                sies_ms,
                cmt_ms,
                secoa_ms,
                secoa_model_min_ms: model.min / 1000.0,
                secoa_model_max_ms: model.max / 1000.0,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 5: computational cost at the aggregator vs. the fanout
// ---------------------------------------------------------------------

/// Figure 5: aggregator CPU vs fanout, `N = 1024`, `D = [1800, 5000]`.
pub fn fig5_aggregator_vs_fanout(costs: &PrimitiveCosts, opts: &Options) -> Vec<SeriesPoint> {
    let n = sweep::DEFAULT_N;
    let scale = DomainScale::DEFAULT;
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 5);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let cmt = CmtDeployment::new(&mut rng, n);
    let rsa = shared_rsa(opts);
    let secoa = SecoaSum::with_rsa(&mut rng, n, opts.j, rsa);
    let mut generator =
        IntelLabGenerator::new(opts.seed ^ 8, sweep::F_RANGE[sweep::F_RANGE.len() - 1]);

    sweep::F_RANGE
        .into_iter()
        .map(|f| {
            // Pre-build the children PSRs per epoch (their construction is
            // source-side cost, excluded from the aggregator measurement).
            let epochs = opts.epochs.max(opts.secoa_epochs);
            let mut sies_children = Vec::new();
            let mut cmt_children = Vec::new();
            let mut secoa_children = Vec::new();
            let mut sample_rng = StdRng::seed_from_u64(opts.seed ^ 55);
            for t in 0..epochs {
                let values = generator.epoch_values(t, scale);
                let ids: Vec<SourceId> = (0..f as SourceId).collect();
                sies_children.push(
                    ids.iter()
                        .map(|&i| sies.source_init(i, t, values[i as usize]))
                        .collect::<Vec<_>>(),
                );
                cmt_children.push(
                    ids.iter()
                        .map(|&i| cmt.source_init(i, t, values[i as usize]))
                        .collect::<Vec<_>>(),
                );
                secoa_children.push(
                    ids.iter()
                        .map(|&i| {
                            secoa.source_init_sampled(&mut sample_rng, i, t, values[i as usize])
                        })
                        .collect::<Vec<_>>(),
                );
            }

            // Warm-up pass before timing.
            std::hint::black_box(sies.merge(&sies_children[0]));
            std::hint::black_box(cmt.merge(&cmt_children[0]));
            let sies_ms = mean_ms_over_epochs(opts.epochs, |t| {
                std::hint::black_box(sies.merge(&sies_children[t as usize]));
            });
            let cmt_ms = mean_ms_over_epochs(opts.epochs, |t| {
                std::hint::black_box(cmt.merge(&cmt_children[t as usize]));
            });
            let secoa_ms = mean_ms_over_epochs(opts.secoa_epochs, |t| {
                std::hint::black_box(secoa.merge(&secoa_children[t as usize]));
            });
            let model = model_for(costs, n, f as u64, scale, opts.j).secoa_aggregator();
            SeriesPoint {
                x: f.to_string(),
                sies_ms,
                cmt_ms,
                secoa_ms,
                secoa_model_min_ms: model.min / 1000.0,
                secoa_model_max_ms: model.max / 1000.0,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 6: computational cost at the querier
// ---------------------------------------------------------------------

fn querier_point(
    costs: &PrimitiveCosts,
    opts: &Options,
    rsa: &RsaPublicKey,
    n: u64,
    scale: DomainScale,
    label: String,
) -> SeriesPoint {
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 6 ^ n ^ (scale.power as u64) << 32);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let cmt = CmtDeployment::new(&mut rng, n);
    let secoa = SecoaSum::with_rsa(&mut rng, n, opts.j, rsa.clone());
    let contributors: Vec<SourceId> = (0..n as SourceId).collect();
    let mut generator = IntelLabGenerator::new(opts.seed ^ 17, n as usize);

    // Pre-build the final PSRs per epoch (network-side work, not querier).
    let epochs = opts.epochs.max(opts.secoa_epochs);
    let mut sies_finals = Vec::new();
    let mut cmt_finals = Vec::new();
    let mut secoa_finals = Vec::new();
    for t in 0..epochs {
        let values = generator.epoch_values(t, scale);
        let psrs: Vec<_> = contributors
            .iter()
            .map(|&i| sies.source_init(i, t, values[i as usize]))
            .collect();
        sies_finals.push(sies.merge(&psrs));
        let psrs: Vec<_> = contributors
            .iter()
            .map(|&i| cmt.source_init(i, t, values[i as usize]))
            .collect();
        cmt_finals.push(cmt.merge(&psrs));
        if t < opts.secoa_epochs {
            let total: u64 = values.iter().sum();
            let psr = secoa.synthesize_final_psr(&mut rng, t, total, &contributors);
            secoa_finals.push(secoa.sink_finalize(psr));
        }
    }

    // Warm-up pass before timing.
    sies.evaluate(&sies_finals[0], 0, &contributors).unwrap();
    cmt.evaluate(&cmt_finals[0], 0, &contributors).unwrap();
    let sies_ms = mean_ms_over_epochs(opts.epochs, |t| {
        sies.evaluate(&sies_finals[t as usize], t, &contributors)
            .unwrap();
    });
    let cmt_ms = mean_ms_over_epochs(opts.epochs, |t| {
        cmt.evaluate(&cmt_finals[t as usize], t, &contributors)
            .unwrap();
    });
    let secoa_ms = mean_ms_over_epochs(opts.secoa_epochs, |t| {
        secoa
            .evaluate(&secoa_finals[t as usize], t, &contributors)
            .unwrap();
    });
    let model = model_for(costs, n, sweep::DEFAULT_F as u64, scale, opts.j).secoa_querier();
    SeriesPoint {
        x: label,
        sies_ms,
        cmt_ms,
        secoa_ms,
        secoa_model_min_ms: model.min / 1000.0,
        secoa_model_max_ms: model.max / 1000.0,
    }
}

/// Figure 6(a): querier CPU vs `N`, `F = 4`, `D = [1800, 5000]`.
pub fn fig6a_querier_vs_n(costs: &PrimitiveCosts, opts: &Options) -> Vec<SeriesPoint> {
    let rsa = shared_rsa(opts);
    sweep::N_RANGE
        .into_iter()
        .map(|n| querier_point(costs, opts, &rsa, n, DomainScale::DEFAULT, n.to_string()))
        .collect()
}

/// Figure 6(b): querier CPU vs domain, `N = 1024`, `F = 4`.
pub fn fig6b_querier_vs_domain(costs: &PrimitiveCosts, opts: &Options) -> Vec<SeriesPoint> {
    let rsa = shared_rsa(opts);
    DomainScale::paper_range()
        .into_iter()
        .map(|scale| {
            querier_point(
                costs,
                opts,
                &rsa,
                sweep::DEFAULT_N,
                scale,
                format!("x10^{}", scale.power),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table V: communication cost per network edge
// ---------------------------------------------------------------------

/// One Table V row.
#[derive(Debug, Clone, Serialize)]
pub struct CommRow {
    /// Edge class ("S-A", "A-A", "A-Q").
    pub edge: String,
    /// CMT bytes per edge (measured).
    pub cmt: f64,
    /// SECOA bytes per edge (measured "actual").
    pub secoa_actual: f64,
    /// SECOA model minimum.
    pub secoa_min: f64,
    /// SECOA model maximum.
    pub secoa_max: f64,
    /// SIES bytes per edge (measured).
    pub sies: f64,
}

/// Table V: per-edge communication at the defaults
/// (`N = 1024, F = 4, D = [1800, 5000]`).
pub fn table5_communication(costs: &PrimitiveCosts, opts: &Options) -> Vec<CommRow> {
    let n = sweep::DEFAULT_N;
    let f = sweep::DEFAULT_F;
    let scale = DomainScale::DEFAULT;
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x550);
    let topo = Topology::complete_tree(n, f);

    // SIES and CMT: one engine epoch suffices (sizes are constant).
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let cmt = CmtDeployment::new(&mut rng, n);
    let mut generator = IntelLabGenerator::new(opts.seed ^ 23, n as usize);
    let values = generator.epoch_values(0, scale);
    let sies_bytes = {
        let mut engine = Engine::new(&sies, &topo);
        engine.run_epoch(0, &values).stats.bytes
    };
    let cmt_bytes = {
        let mut engine = Engine::new(&cmt, &topo);
        engine.run_epoch(0, &values).stats.bytes
    };

    // SECOA: source/interior sizes are deterministic; the A-Q size
    // depends on how many distinct chain positions survive the sink fold.
    let rsa = shared_rsa(opts);
    let secoa = SecoaSum::with_rsa(&mut rng, n, opts.j, rsa);
    let contributors: Vec<SourceId> = (0..n as SourceId).collect();
    let source_psr = secoa.source_init_sampled(&mut rng, 0, 0, values[0]);
    let sa_bytes = secoa.psr_wire_size(&source_psr) as f64;
    let total: u64 = values.iter().sum();
    let final_psr = secoa.synthesize_final_psr(&mut rng, 0, total, &contributors);
    let folded = secoa.sink_finalize(final_psr);
    let aq_bytes = secoa.psr_wire_size(&folded) as f64;

    let model = model_for(costs, n, f as u64, scale, opts.j);
    let aq_model = model.secoa_comm_aq();
    vec![
        CommRow {
            edge: "S-A".into(),
            cmt: cmt_bytes.per_sa_edge(),
            secoa_actual: sa_bytes,
            secoa_min: model.secoa_comm_sa(),
            secoa_max: model.secoa_comm_sa(),
            sies: sies_bytes.per_sa_edge(),
        },
        CommRow {
            edge: "A-A".into(),
            cmt: cmt_bytes.per_aa_edge(),
            secoa_actual: sa_bytes,
            secoa_min: model.secoa_comm_sa(),
            secoa_max: model.secoa_comm_sa(),
            sies: sies_bytes.per_aa_edge(),
        },
        CommRow {
            edge: "A-Q".into(),
            cmt: cmt_bytes.agg_to_querier as f64,
            secoa_actual: aq_bytes,
            secoa_min: aq_model.min,
            secoa_max: aq_model.max,
            sies: sies_bytes.agg_to_querier as f64,
        },
    ]
}

// ---------------------------------------------------------------------
// Network lifetime (the paper's §I motivation, quantified)
// ---------------------------------------------------------------------

/// One row of the lifetime comparison.
#[derive(Debug, Clone, Serialize)]
pub struct LifetimeRow {
    /// Scheme name.
    pub scheme: String,
    /// Bytes a leaf transmits per epoch.
    pub leaf_bytes: usize,
    /// Radio energy drained per epoch by the hottest node (a first-level
    /// aggregator: receives `F` children, transmits one merged PSR), in
    /// joules.
    pub hottest_drain_j: f64,
    /// Epochs until the hottest node empties a 2 J battery.
    pub lifetime_epochs: f64,
}

/// Quantifies the paper's introduction argument: per-edge bytes decide
/// how fast the nodes nearest the sink die. Uses the default radio model
/// and a 2 J battery budget.
pub fn lifetime_table(opts: &Options) -> Vec<LifetimeRow> {
    use sies_baselines::plain::PLAIN_PSR_BYTES;
    use sies_net::RadioModel;

    let f = sweep::DEFAULT_F;
    let radio = RadioModel::default();
    let battery = 2.0;

    // SECOA's per-edge bytes from a real sampled source PSR.
    let secoa_bytes = {
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 9);
        let rsa = shared_rsa(opts);
        let secoa = SecoaSum::with_rsa(&mut rng, 4, opts.j, rsa);
        let psr = secoa.source_init_sampled(&mut rng, 0, 0, 3400);
        secoa.psr_wire_size(&psr)
    };

    [
        ("TAG", PLAIN_PSR_BYTES),
        ("CMT", 20),
        ("SIES", 32),
        ("SECOAS", secoa_bytes),
    ]
    .into_iter()
    .map(|(scheme, bytes)| {
        let drain = radio.rx_energy(bytes * f) + radio.tx_energy(bytes);
        LifetimeRow {
            scheme: scheme.into(),
            leaf_bytes: bytes,
            hottest_drain_j: drain,
            lifetime_epochs: battery / drain,
        }
    })
    .collect()
}

/// SECOA's analytic bounds exposed for reports.
pub fn secoa_bounds(
    costs: &PrimitiveCosts,
    n: u64,
    f: u64,
    scale: DomainScale,
    j: usize,
) -> (Range, Range, Range) {
    let m = model_for(costs, n, f, scale, j);
    (m.secoa_source(), m.secoa_aggregator(), m.secoa_querier())
}

// ---------------------------------------------------------------------
// Reliability: the chaos harness, measured
// ---------------------------------------------------------------------

/// One chaos scenario's outcome, ready for `BENCH_reliability.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ReliabilityPoint {
    /// Scenario label.
    pub scenario: String,
    /// Seed this scenario ran with (replay: same seed ⇒ same numbers).
    pub seed: u64,
    /// Epochs executed.
    pub epochs: u64,
    /// Per-frame loss probability.
    pub loss_rate: f64,
    /// Per-epoch crash probability.
    pub crash_prob: f64,
    /// Per-epoch covert-attack probability.
    pub attack_prob: f64,
    /// Fraction of epochs returning a verified sum.
    pub availability: f64,
    /// Fraction of actually-corrupted epochs the scheme rejected.
    pub detection_rate: f64,
    /// (data + retransmit + control) / data bytes.
    pub overhead_factor: f64,
    /// Corrupted aggregates accepted — must be 0.
    pub false_accepts: u64,
    /// Clean epochs rejected — must be 0.
    pub false_rejects: u64,
    /// Accepted sums differing from ground truth — must be 0.
    pub sum_mismatches: u64,
    /// Epochs a covert attack actually corrupted.
    pub corrupted_epochs: u64,
    /// Corrupted epochs rejected by SIES verification.
    pub detected_corruptions: u64,
    /// Epochs lost to availability.
    pub unavailable_epochs: u64,
    /// Orphans re-homed by topology repair.
    pub adoptions: u64,
    /// Uplinks delivered under the recovery protocol.
    pub delivered_links: u64,
    /// Uplinks lost after every re-solicitation round.
    pub lost_links: u64,
    /// Uplinks saved by a re-solicited phase.
    pub recovered_by_resolicit: u64,
    /// First-copy data bytes.
    pub data_bytes: u64,
    /// Retransmitted data bytes.
    pub retransmit_bytes: u64,
    /// ACK/NACK/re-solicit/re-attach/failure-report bytes.
    pub control_bytes: u64,
}

/// The fault mixes the reliability experiment sweeps.
pub const RELIABILITY_SCENARIOS: [(&str, f64, f64, f64); 5] = [
    ("calm", 0.0, 0.0, 0.0),
    ("lossy", 0.15, 0.0, 0.0),
    ("churn", 0.10, 0.30, 0.0),
    ("adversarial", 0.10, 0.20, 0.30),
    ("extreme", 0.30, 0.30, 0.30),
];

/// Runs the seeded chaos harness on a SIES deployment (`N = 64, F = 4`)
/// across the scenario sweep, splitting `total_epochs` evenly. Panics if
/// any scenario produces a false accept, false reject, or wrong accepted
/// sum — the experiment doubles as the paper-level soundness check.
pub fn reliability(seed: u64, total_epochs: u64) -> Vec<ReliabilityPoint> {
    reliability_threaded(seed, total_epochs, sies_net::Threads::serial())
}

/// [`reliability`] with an explicit worker-pool size for the sharded
/// source phase. The chaos metrics are thread-count invariant (asserted
/// by `sies-net`'s own tests), so the soundness check is unchanged.
pub fn reliability_threaded(
    seed: u64,
    total_epochs: u64,
    threads: sies_net::Threads,
) -> Vec<ReliabilityPoint> {
    use sies_net::chaos::{run_chaos, ChaosConfig};

    let n = 64u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topo = Topology::complete_tree(n, 4);
    let per_scenario = (total_epochs / RELIABILITY_SCENARIOS.len() as u64).max(1);

    RELIABILITY_SCENARIOS
        .iter()
        .enumerate()
        .map(|(i, &(name, loss_rate, crash_prob, attack_prob))| {
            let cfg = ChaosConfig {
                seed: seed.wrapping_add(i as u64),
                epochs: per_scenario,
                loss_rate,
                crash_prob,
                attack_prob,
                threads,
                ..ChaosConfig::default()
            };
            let m = run_chaos(&dep, &topo, &cfg);
            assert!(
                m.sound(),
                "scenario '{name}' unsound: {} false accepts, {} false rejects, {} mismatches",
                m.false_accepts,
                m.false_rejects,
                m.sum_mismatches
            );
            ReliabilityPoint {
                scenario: name.into(),
                seed: cfg.seed,
                epochs: m.epochs,
                loss_rate,
                crash_prob,
                attack_prob,
                availability: m.availability(),
                detection_rate: m.detection_rate(),
                overhead_factor: m.overhead_factor(),
                false_accepts: m.false_accepts,
                false_rejects: m.false_rejects,
                sum_mismatches: m.sum_mismatches,
                corrupted_epochs: m.corrupted_epochs,
                detected_corruptions: m.detected_corruptions,
                unavailable_epochs: m.unavailable_epochs,
                adoptions: m.adoptions,
                delivered_links: m.delivered_links,
                lost_links: m.lost_links,
                recovered_by_resolicit: m.recovered_by_resolicit,
                data_bytes: m.data_bytes,
                retransmit_bytes: m.retransmit_bytes,
                control_bytes: m.control_bytes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke test of every experiment at tiny scale. The full
    /// parameterization runs from the `repro` binary.
    #[test]
    fn experiments_run_at_fast_settings() {
        let opts = Options::fast();
        let costs = PrimitiveCosts::PAPER;

        let fig4 = fig4_source_vs_domain(&costs, &opts);
        assert_eq!(fig4.len(), 5);
        for p in &fig4 {
            assert!(p.sies_ms >= 0.0 && p.cmt_ms >= 0.0 && p.secoa_ms > 0.0);
            // The headline shape: SECOA well above SIES everywhere.
            assert!(
                p.secoa_ms > p.sies_ms,
                "at {}: secoa {} vs sies {}",
                p.x,
                p.secoa_ms,
                p.sies_ms
            );
        }
        // SECOA source cost grows with the domain.
        assert!(fig4[4].secoa_ms > fig4[0].secoa_ms * 10.0);

        let fig5 = fig5_aggregator_vs_fanout(&costs, &opts);
        assert_eq!(fig5.len(), 5);
        for p in &fig5 {
            assert!(p.secoa_ms > p.sies_ms);
        }

        let t5 = table5_communication(&costs, &opts);
        assert_eq!(t5.len(), 3);
        for row in &t5 {
            assert_eq!(row.sies, 32.0);
            assert_eq!(row.cmt, 20.0);
            assert!(
                row.secoa_actual > row.sies,
                "SECOA must be heavier on {}",
                row.edge
            );
        }
        // A-Q folded message is smaller than the S-A message.
        assert!(t5[2].secoa_actual < t5[0].secoa_actual);
    }

    #[test]
    fn lifetime_table_orders_schemes_by_bytes() {
        let rows = lifetime_table(&Options::fast());
        assert_eq!(rows.len(), 4);
        // TAG < CMT < SIES << SECOA in drain; reversed in lifetime.
        assert!(rows[0].hottest_drain_j < rows[1].hottest_drain_j);
        assert!(rows[1].hottest_drain_j < rows[2].hottest_drain_j);
        assert!(rows[2].hottest_drain_j * 10.0 < rows[3].hottest_drain_j);
        assert!(
            rows[2].lifetime_epochs > 1000.0,
            "SIES lifetime should be long"
        );
        assert!(rows[3].lifetime_epochs < rows[2].lifetime_epochs / 10.0);
    }

    #[test]
    fn reliability_scenarios_are_sound_at_small_scale() {
        // `reliability` asserts soundness internally; 100 epochs across
        // the five scenarios keeps the test quick. The full ≥2000-epoch
        // run happens in `repro reliability`.
        let points = reliability(7, 100);
        assert_eq!(points.len(), RELIABILITY_SCENARIOS.len());
        for p in &points {
            assert_eq!(p.false_accepts, 0);
            assert_eq!(p.false_rejects, 0);
            assert_eq!(p.sum_mismatches, 0);
            assert!(p.availability > 0.0);
        }
        let calm = &points[0];
        assert_eq!(calm.availability, 1.0);
        assert_eq!(calm.overhead_factor, calm.overhead_factor); // not NaN
        let adversarial = &points[3];
        assert!(adversarial.corrupted_epochs > 0, "attack mix never landed");
        assert_eq!(
            adversarial.detected_corruptions,
            adversarial.corrupted_epochs
        );
        // Recovery traffic exists whenever the radio is lossy.
        assert!(points[1].retransmit_bytes > 0);
        assert!(points[1].overhead_factor > 1.0);
    }

    #[test]
    fn querier_experiment_shapes() {
        let mut opts = Options::fast();
        opts.epochs = 2;
        let costs = PrimitiveCosts::PAPER;
        let rsa = shared_rsa(&opts);
        let small = querier_point(&costs, &opts, &rsa, 64, DomainScale::DEFAULT, "64".into());
        let large = querier_point(&costs, &opts, &rsa, 256, DomainScale::DEFAULT, "256".into());
        // Querier cost grows with N for every scheme.
        assert!(large.sies_ms > small.sies_ms);
        assert!(large.cmt_ms > small.cmt_ms);
        assert!(large.secoa_ms > small.secoa_ms);
        // SECOA stays the most expensive.
        assert!(large.secoa_ms > large.sies_ms);
    }
}
