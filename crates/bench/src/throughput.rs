//! Parallel epoch-pipeline throughput: epochs/sec vs thread count, with
//! a built-in determinism oracle.
//!
//! For each population size `N` the suite runs the same seeded epoch
//! sequence through the engine at every requested thread count and
//! reports wall-clock throughput plus the per-phase CPU breakdown. A
//! SHA-256 digest over every epoch's final PSR bytes, verdict, and
//! contributor set is computed per configuration; the suite *asserts*
//! the digests are identical across thread counts, so a throughput run
//! that completes is itself a proof that parallelism changed no byte of
//! the results.
//!
//! The same digest doubles as the lane-width oracle: before the thread
//! sweep the suite replays the smallest population serially at every
//! multi-lane hash width (W ∈ {1, 4, 8, 16}) and asserts the digests
//! agree, so neither worker count nor hash lane width can change a
//! result byte.
//!
//! The prewarm sweep ([`prewarm_suite`]) runs the same seeded epoch
//! sequence through the struct-of-arrays pipeline with the
//! precompute-ahead key pool off and on at 1, 2 and 8 worker threads
//! and asserts every configuration produces the identical digest — the
//! whole-system proof that prewarmed epochs change no result byte.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use sies_core::SystemParams;
use sies_crypto::hash::HashFunction;
use sies_crypto::lanes;
use sies_crypto::sha256::Sha256;
use sies_net::engine::Engine;
use sies_net::pipeline::EpochPipeline;
use sies_net::scheme::SchemeError;
use sies_net::{FlatTopology, PrewarmPolicy, SiesDeployment, Threads, Topology};
use std::time::Instant;

/// The population sizes the throughput sweep covers.
pub const THROUGHPUT_N: [u64; 3] = [100, 500, 1000];

/// Default thread counts to sweep (1 is always measured first as the
/// serial baseline).
pub const DEFAULT_THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The populations of the struct-of-arrays scale sweep (`repro
/// throughput` caps this with `--max-n`).
pub const SCALE_N: [u64; 3] = [10_000, 100_000, 1_000_000];

/// Thread counts the scale sweep digest-asserts at every population.
pub const SCALE_THREADS: [usize; 3] = [1, 2, 8];

/// One measured configuration, ready for `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputPoint {
    /// Source population size.
    pub n: u64,
    /// Worker threads in the sharded source phase.
    pub threads: usize,
    /// Epochs executed.
    pub epochs: u64,
    /// Wall-clock time for the whole run, ms.
    pub wall_ms: f64,
    /// Epochs completed per wall-clock second.
    pub epochs_per_sec: f64,
    /// Summed in-worker CPU time of the source phase, ms.
    pub source_cpu_ms: f64,
    /// Summed aggregator merge CPU, ms.
    pub aggregator_cpu_ms: f64,
    /// Summed querier evaluation CPU, ms.
    pub querier_cpu_ms: f64,
    /// Wall-clock speedup vs the serial (threads = 1) run of the same
    /// `n`; 1.0 for the baseline itself.
    pub speedup_vs_serial: f64,
    /// SHA-256 over every epoch's final PSR, verdict, and contributor
    /// set — equal across thread counts by the determinism oracle.
    pub result_digest: String,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Wall + per-phase CPU + result digest of one measured run; the common
/// output of the legacy-engine and SoA-pipeline runners.
struct RunMeasurement {
    wall_ms: f64,
    source_cpu_ms: f64,
    merge_cpu_ms: f64,
    querier_cpu_ms: f64,
    digest: String,
}

/// Folds one epoch's outcome into the running SHA-256 — the serial
/// equivalence oracle's byte layout, shared by every runner: final PSR
/// bytes (when one exists), verdict, then the contributor set.
fn digest_epoch(
    digest: &mut Sha256,
    final_psr: Option<&sies_core::scheme::Psr>,
    result: &Result<sies_net::EvaluatedSum, SchemeError>,
    contributors: &[u32],
) {
    if let Some(psr) = final_psr {
        digest.update(&psr.to_bytes());
    }
    match result {
        Ok(sum) => {
            digest.update(&[1, u8::from(sum.integrity_checked)]);
            digest.update(&sum.sum.to_bits().to_le_bytes());
        }
        Err(SchemeError::VerificationFailed(m)) => {
            digest.update(&[2]);
            digest.update(m.as_bytes());
        }
        Err(SchemeError::Malformed(m)) => {
            digest.update(&[3]);
            digest.update(m.as_bytes());
        }
    }
    for sid in contributors {
        digest.update(&sid.to_le_bytes());
    }
}

/// Runs `epochs` clean epochs through the legacy [`Engine`] on an
/// existing deployment, timing and digesting every result. Values come
/// from the canonical per-N RNG (`seed ^ n ^ 0xEB0C`) so every runner
/// replays the same readings.
fn run_engine_measured(
    dep: &SiesDeployment,
    topo: &Topology,
    seed: u64,
    n: u64,
    threads: usize,
    epochs: u64,
) -> RunMeasurement {
    let mut engine = Engine::new(dep, topo).with_threads(Threads::fixed(threads));
    let mut values_rng = StdRng::seed_from_u64(seed ^ n ^ 0xEB0C);
    let mut digest = Sha256::new();
    let mut source_cpu = 0.0f64;
    let mut merge_cpu = 0.0f64;
    let mut querier_cpu = 0.0f64;

    let wall_start = Instant::now();
    for epoch in 0..epochs {
        let values: Vec<u64> = (0..n).map(|_| values_rng.random_range(0..5000)).collect();
        let out = engine.run_epoch(epoch, &values);
        source_cpu += out.stats.source_cpu.as_secs_f64() * 1e3;
        merge_cpu += out.stats.aggregator_cpu.as_secs_f64() * 1e3;
        querier_cpu += out.stats.querier_cpu.as_secs_f64() * 1e3;
        digest_epoch(
            &mut digest,
            engine.last_final_psr(),
            &out.result,
            &out.stats.contributors,
        );
    }
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    RunMeasurement {
        wall_ms,
        source_cpu_ms: source_cpu,
        merge_cpu_ms: merge_cpu,
        querier_cpu_ms: querier_cpu,
        digest: hex(&digest.finalize()),
    }
}

/// Runs `epochs` clean epochs through the struct-of-arrays
/// [`EpochPipeline`], timing and digesting identically to
/// [`run_engine_measured`] — the digests must agree bit-for-bit.
fn run_pipeline_measured(
    pipeline: &mut EpochPipeline<'_, SiesDeployment>,
    seed: u64,
    n: u64,
    first_epoch: u64,
    epochs: u64,
) -> RunMeasurement {
    let mut values_rng = StdRng::seed_from_u64(seed ^ n ^ 0xEB0C);
    let mut digest = Sha256::new();
    let mut source_cpu = 0u64;
    let mut merge_cpu = 0u64;
    let mut querier_cpu = 0u64;

    let wall_start = Instant::now();
    pipeline.run(
        first_epoch,
        epochs,
        |_, values| {
            for v in values.iter_mut() {
                *v = values_rng.random_range(0..5000);
            }
        },
        |report, final_psr, result, contributors| {
            source_cpu += report.source_cpu_ns;
            merge_cpu += report.merge_cpu_ns;
            querier_cpu += report.querier_cpu_ns;
            digest_epoch(&mut digest, final_psr, result, contributors);
        },
    );
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    RunMeasurement {
        wall_ms,
        source_cpu_ms: source_cpu as f64 / 1e6,
        merge_cpu_ms: merge_cpu as f64 / 1e6,
        querier_cpu_ms: querier_cpu as f64 / 1e6,
        digest: hex(&digest.finalize()),
    }
}

/// Runs `epochs` clean epochs of a seeded `N`-source SIES deployment at
/// one thread count, digesting every result.
fn run_config(seed: u64, n: u64, threads: usize, epochs: u64) -> ThroughputPoint {
    let mut rng = StdRng::seed_from_u64(seed ^ n);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topo = Topology::complete_tree(n, 4);
    let m = run_engine_measured(&dep, &topo, seed, n, threads, epochs);
    ThroughputPoint {
        n,
        threads,
        epochs,
        wall_ms: m.wall_ms,
        epochs_per_sec: epochs as f64 / (m.wall_ms / 1e3),
        source_cpu_ms: m.source_cpu_ms,
        aggregator_cpu_ms: m.merge_cpu_ms,
        querier_cpu_ms: m.querier_cpu_ms,
        speedup_vs_serial: 1.0, // patched by the suite
        result_digest: m.digest,
    }
}

/// Replays the smallest sweep population serially at each forced hash
/// lane width and asserts the result digests are byte-identical; returns
/// the `(width, digest)` pairs. The in-process counterpart of CI's
/// `SIES_LANES` matrix leg. Clears the width override before returning.
///
/// # Panics
/// Panics when any width's digest diverges from W = 1.
pub fn lane_width_sweep(seed: u64, epochs: u64) -> Vec<(usize, String)> {
    let digests: Vec<(usize, String)> = [1usize, 4, 8, 16]
        .iter()
        .map(|&w| {
            lanes::set_lane_width(w);
            (
                w,
                run_config(seed, THROUGHPUT_N[0], 1, epochs).result_digest,
            )
        })
        .collect();
    lanes::clear_lane_width();
    for (w, digest) in &digests[1..] {
        assert_eq!(
            digest, &digests[0].1,
            "lane-width oracle violated: W={w} diverged from the scalar engine"
        );
    }
    digests
}

/// Runs the throughput sweep: every `n` in [`THROUGHPUT_N`] at every
/// thread count in `thread_sweep` (deduplicated, serial first), each for
/// `epochs` epochs. Runs [`lane_width_sweep`] first.
///
/// Panics if any configuration's result digest differs from the serial
/// baseline's — the determinism oracle.
pub fn throughput_suite(seed: u64, epochs: u64, thread_sweep: &[usize]) -> Vec<ThroughputPoint> {
    lane_width_sweep(seed, epochs);
    let mut sweep: Vec<usize> = thread_sweep.iter().map(|&t| t.max(1)).collect();
    if !sweep.contains(&1) {
        sweep.insert(0, 1);
    }
    sweep.sort_unstable();
    sweep.dedup();

    let mut points = Vec::new();
    for &n in &THROUGHPUT_N {
        let mut serial: Option<ThroughputPoint> = None;
        for &threads in &sweep {
            let mut point = run_config(seed, n, threads, epochs);
            match &serial {
                None => {
                    assert_eq!(point.threads, 1, "serial baseline must run first");
                    serial = Some(point.clone());
                }
                Some(base) => {
                    assert_eq!(
                        point.result_digest, base.result_digest,
                        "determinism oracle violated: N={n}, {threads} threads diverged \
                         from the serial engine"
                    );
                    point.speedup_vs_serial = base.wall_ms / point.wall_ms;
                }
            }
            points.push(point);
        }
    }
    points
}

/// One configuration of the struct-of-arrays scale sweep, ready for the
/// `scale` section of `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// Source population size.
    pub n: u64,
    /// `"legacy"` (pointer-tree engine, the serial reference) or
    /// `"soa"` (flat-arena pipeline).
    pub layout: String,
    /// Worker threads.
    pub threads: usize,
    /// Whether epoch streaming (double-buffered overlap) was on.
    pub streaming: bool,
    /// Epochs executed.
    pub epochs: u64,
    /// Wall-clock time for the whole run, ms.
    pub wall_ms: f64,
    /// Epochs completed per wall-clock second.
    pub epochs_per_sec: f64,
    /// Summed in-worker source-init CPU, ms.
    pub source_cpu_ms: f64,
    /// Summed merge (+ sink) CPU, ms.
    pub merge_cpu_ms: f64,
    /// Summed querier evaluation CPU, ms.
    pub querier_cpu_ms: f64,
    /// Heap bytes of the flat topology arena (SoA points; 0 for legacy).
    pub arena_bytes: u64,
    /// Heap bytes of the pipeline's reusable epoch state, both buffers
    /// (SoA points; 0 for legacy).
    pub state_bytes: u64,
    /// `(arena_bytes + state_bytes) / nodes` — the machine-checked
    /// memory budget (SoA points; 0 for legacy).
    pub bytes_per_node: f64,
    /// Total tree nodes (sources + aggregators).
    pub nodes: u64,
    /// Same serial-equivalence digest as the thread sweep; equal across
    /// every row of the same `n` by assertion.
    pub result_digest: String,
}

/// Runs the struct-of-arrays scale sweep: for each population in `ns`,
/// one legacy-engine serial reference plus the SoA pipeline at every
/// thread count in [`SCALE_THREADS`] with streaming off and on — and
/// asserts every configuration's digest equals the legacy reference's
/// (old vs new layout, every thread count, streaming on/off).
///
/// `epochs_for(n)` lets callers shrink the epoch count as `n` grows.
///
/// # Panics
/// Panics when any configuration's digest diverges from the legacy
/// serial engine's.
pub fn scale_suite(seed: u64, ns: &[u64], epochs_for: impl Fn(u64) -> u64) -> Vec<ScalePoint> {
    let mut points = Vec::new();
    for &n in ns {
        let epochs = epochs_for(n).max(1);
        let mut rng = StdRng::seed_from_u64(seed ^ n);
        let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
        let topo = Topology::complete_tree(n, 4);
        let flat = FlatTopology::from_topology(&topo);
        let nodes = flat.num_nodes() as u64;

        let legacy = run_engine_measured(&dep, &topo, seed, n, 1, epochs);
        let reference = legacy.digest.clone();
        points.push(ScalePoint {
            n,
            layout: "legacy".into(),
            threads: 1,
            streaming: false,
            epochs,
            wall_ms: legacy.wall_ms,
            epochs_per_sec: epochs as f64 / (legacy.wall_ms / 1e3),
            source_cpu_ms: legacy.source_cpu_ms,
            merge_cpu_ms: legacy.merge_cpu_ms,
            querier_cpu_ms: legacy.querier_cpu_ms,
            arena_bytes: 0,
            state_bytes: 0,
            bytes_per_node: 0.0,
            nodes,
            result_digest: reference.clone(),
        });

        for &threads in &SCALE_THREADS {
            for streaming in [false, true] {
                let mut pipeline =
                    EpochPipeline::new(&dep, &flat, Threads::fixed(threads), streaming);
                let m = run_pipeline_measured(&mut pipeline, seed, n, 0, epochs);
                assert_eq!(
                    m.digest, reference,
                    "serial-equivalence oracle violated: N={n} threads={threads} \
                     streaming={streaming} diverged from the legacy engine"
                );
                let arena_bytes = flat.bytes() as u64;
                let state_bytes = pipeline.state_bytes() as u64;
                points.push(ScalePoint {
                    n,
                    layout: "soa".into(),
                    threads,
                    streaming,
                    epochs,
                    wall_ms: m.wall_ms,
                    epochs_per_sec: epochs as f64 / (m.wall_ms / 1e3),
                    source_cpu_ms: m.source_cpu_ms,
                    merge_cpu_ms: m.merge_cpu_ms,
                    querier_cpu_ms: m.querier_cpu_ms,
                    arena_bytes,
                    state_bytes,
                    bytes_per_node: (arena_bytes + state_bytes) as f64 / nodes as f64,
                    nodes,
                    result_digest: m.digest,
                });
            }
        }
    }
    points
}

/// Thread counts the prewarm sweep digest-asserts with the pool off
/// and on (the acceptance matrix of the precompute-ahead layer).
pub const PREWARM_THREADS: [usize; 3] = [1, 2, 8];

/// One configuration of the prewarm on/off digest sweep, ready for the
/// `prewarm` section of `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize)]
pub struct PrewarmPoint {
    /// Worker threads.
    pub threads: usize,
    /// Whether the precompute-ahead key pool was enabled.
    pub prewarmed: bool,
    /// Whether epoch streaming (double-buffered overlap) was on.
    pub streaming: bool,
    /// Epochs executed.
    pub epochs: u64,
    /// Wall-clock time for the whole run, ms.
    pub wall_ms: f64,
    /// Epochs completed per wall-clock second.
    pub epochs_per_sec: f64,
    /// Epoch key-material derivations the warmer ran ahead of time.
    pub derived: u64,
    /// Source-init batches that found their epoch already pooled.
    pub pool_hits: u64,
    /// Same serial-equivalence digest as the thread sweep; equal across
    /// every row by assertion.
    pub result_digest: String,
}

/// Runs the prewarm on/off digest sweep: the same seeded epoch sequence
/// through the struct-of-arrays pipeline at every thread count in
/// [`PREWARM_THREADS`], streaming off and on, with the precompute-ahead
/// pool disabled and then enabled — and asserts every configuration's
/// digest equals the cold serial reference's. A completed sweep is
/// itself the proof that prewarmed epoch crypto changes no result byte.
///
/// # Panics
/// Panics when any warm configuration's digest diverges from the cold
/// serial run, or when a warm run derived nothing ahead of time.
pub fn prewarm_suite(seed: u64, n: u64, epochs: u64) -> Vec<PrewarmPoint> {
    let topo = Topology::complete_tree(n, 4);
    let flat = FlatTopology::from_topology(&topo);
    let mut points = Vec::new();
    let mut reference: Option<String> = None;
    for &threads in &PREWARM_THREADS {
        for streaming in [false, true] {
            for prewarmed in [false, true] {
                // Fresh deployment per configuration: identical seeding
                // keeps the digests comparable while guaranteeing each
                // run starts from an empty pool.
                let mut rng = StdRng::seed_from_u64(seed ^ n);
                let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
                if prewarmed {
                    dep.set_prewarm_policy(PrewarmPolicy::default());
                }
                let mut pipeline =
                    EpochPipeline::new(&dep, &flat, Threads::fixed(threads), streaming);
                let m = run_pipeline_measured(&mut pipeline, seed, n, 0, epochs);
                match &reference {
                    None => reference = Some(m.digest.clone()),
                    Some(r) => assert_eq!(
                        &m.digest, r,
                        "prewarm oracle violated: threads={threads} streaming={streaming} \
                         prewarmed={prewarmed} changed the results"
                    ),
                }
                let stats = dep.prewarm_stats();
                if prewarmed {
                    assert!(
                        stats.derived > 0,
                        "warm run derived nothing ahead of time (threads={threads})"
                    );
                } else {
                    assert_eq!(stats.derived, 0, "cold run must not touch the pool");
                }
                points.push(PrewarmPoint {
                    threads,
                    prewarmed,
                    streaming,
                    epochs,
                    wall_ms: m.wall_ms,
                    epochs_per_sec: epochs as f64 / (m.wall_ms / 1e3),
                    derived: stats.derived,
                    pool_hits: stats.hits,
                    result_digest: m.digest,
                });
            }
        }
    }
    points
}

/// Paired comparison of the committed baseline layout (legacy engine)
/// against the SoA pipeline, ready for `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SoaComparison {
    /// Population compared at.
    pub n: u64,
    /// Epochs per timed round.
    pub epochs_per_round: u64,
    /// Interleaved rounds measured (after one warm-up each).
    pub rounds: usize,
    /// Median per-round wall time of the legacy engine, ms.
    pub legacy_median_ms: f64,
    /// Median per-round wall time of the SoA pipeline, ms.
    pub soa_median_ms: f64,
    /// Median of per-round `legacy / soa` wall-time ratios (the paired
    /// estimator `repro micro` uses); > 1 means the SoA layout is
    /// faster.
    pub speedup: f64,
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    xs[xs.len() / 2]
}

/// Measures legacy-vs-SoA with the paired-ratio-median methodology of
/// `repro micro`: one warm-up run each, then `rounds` interleaved
/// rounds timing the same pregenerated epoch batch through both paths,
/// taking the median of per-round wall-time ratios. Both paths run
/// serially (1 thread, streaming off) so the comparison isolates the
/// data layout, and each round's digests are asserted equal.
pub fn soa_vs_legacy(seed: u64, n: u64, epochs_per_round: u64, rounds: usize) -> SoaComparison {
    assert!(rounds >= 1 && epochs_per_round >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ n);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topo = Topology::complete_tree(n, 4);
    let flat = FlatTopology::from_topology(&topo);
    let mut engine = Engine::new(&dep, &topo).with_threads(Threads::fixed(1));
    let mut pipeline = EpochPipeline::new(&dep, &flat, Threads::fixed(1), false);

    // Values for one round are pregenerated outside the timed region so
    // both paths pay identical input costs.
    let mut values_rng = StdRng::seed_from_u64(seed ^ n ^ 0x50A);
    let mut gen_round = |round: u64| -> Vec<Vec<u64>> {
        let _ = round;
        (0..epochs_per_round)
            .map(|_| (0..n).map(|_| values_rng.random_range(0..5000)).collect())
            .collect()
    };

    let run_legacy = |engine: &mut Engine<'_, SiesDeployment>,
                      base: u64,
                      values: &[Vec<u64>]|
     -> (f64, String) {
        let mut digest = Sha256::new();
        let t0 = Instant::now();
        for (i, vals) in values.iter().enumerate() {
            let out = engine.run_epoch(base + i as u64, vals);
            digest_epoch(
                &mut digest,
                engine.last_final_psr(),
                &out.result,
                &out.stats.contributors,
            );
        }
        (t0.elapsed().as_secs_f64() * 1e3, hex(&digest.finalize()))
    };
    let run_soa = |pipeline: &mut EpochPipeline<'_, SiesDeployment>,
                   base: u64,
                   values: &[Vec<u64>]|
     -> (f64, String) {
        let mut digest = Sha256::new();
        let t0 = Instant::now();
        pipeline.run(
            base,
            values.len() as u64,
            |epoch, out| out.copy_from_slice(&values[(epoch - base) as usize]),
            |_, final_psr, result, contributors| {
                digest_epoch(&mut digest, final_psr, result, contributors);
            },
        );
        (t0.elapsed().as_secs_f64() * 1e3, hex(&digest.finalize()))
    };

    // Warm-up: first touch of caches, buffer growth, page faults.
    let warm = gen_round(0);
    let (_, d_legacy) = run_legacy(&mut engine, 0, &warm);
    let (_, d_soa) = run_soa(&mut pipeline, 0, &warm);
    assert_eq!(d_legacy, d_soa, "warm-up digests diverged at N={n}");

    let mut legacy_ms = Vec::with_capacity(rounds);
    let mut soa_ms = Vec::with_capacity(rounds);
    let mut ratios = Vec::with_capacity(rounds);
    for round in 1..=rounds as u64 {
        let base = round * epochs_per_round;
        let values = gen_round(round);
        let (lt, ld) = run_legacy(&mut engine, base, &values);
        let (st, sd) = run_soa(&mut pipeline, base, &values);
        assert_eq!(ld, sd, "round {round} digests diverged at N={n}");
        legacy_ms.push(lt);
        soa_ms.push(st);
        ratios.push(lt / st.max(f64::MIN_POSITIVE));
    }
    SoaComparison {
        n,
        epochs_per_round,
        rounds,
        legacy_median_ms: median(&mut legacy_ms),
        soa_median_ms: median(&mut soa_ms),
        speedup: median(&mut ratios),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_digests_agree_across_thread_counts() {
        // The suite panics internally if any digest diverges; this run is
        // the small-scale differential oracle. Keep it tiny — larger
        // sweeps run from `repro throughput`.
        let points = throughput_suite(42, 2, &[1, 2, 4]);
        assert_eq!(points.len(), THROUGHPUT_N.len() * 3);
        for chunk in points.chunks(3) {
            assert!(chunk
                .iter()
                .all(|p| p.result_digest == chunk[0].result_digest));
            assert!(chunk.iter().all(|p| p.epochs_per_sec > 0.0));
            assert_eq!(chunk[0].threads, 1);
            assert_eq!(chunk[0].speedup_vs_serial, 1.0);
        }
        // Distinct populations must produce distinct aggregates.
        assert_ne!(points[0].result_digest, points[3].result_digest);
    }

    #[test]
    fn lane_widths_do_not_change_results() {
        let digests = lane_width_sweep(3, 2);
        assert_eq!(digests.len(), 4);
        assert_eq!(digests[3].0, 16, "the AVX-512 request is swept too");
        assert!(digests.iter().all(|(_, d)| d == &digests[0].1));
    }

    #[test]
    fn scale_suite_matches_legacy_at_small_n() {
        // One small population exercises the full legacy-vs-SoA digest
        // assertion matrix (threads × streaming); the internal
        // assert_eq! is the oracle, the shape checks are bookkeeping.
        let points = scale_suite(11, &[200], |_| 3);
        assert_eq!(points.len(), 1 + SCALE_THREADS.len() * 2);
        assert_eq!(points[0].layout, "legacy");
        for p in &points[1..] {
            assert_eq!(p.layout, "soa");
            assert_eq!(p.result_digest, points[0].result_digest);
            assert!(p.arena_bytes > 0 && p.state_bytes > 0);
            assert!(
                p.bytes_per_node > 0.0 && p.bytes_per_node < 4096.0,
                "implausible bytes/node {}",
                p.bytes_per_node
            );
        }
    }

    #[test]
    fn prewarm_suite_digests_agree_on_and_off() {
        // The internal assert_eq! is the oracle; shape checks are
        // bookkeeping. Small n/epochs — the full matrix runs 12 configs.
        let points = prewarm_suite(17, 48, 3);
        assert_eq!(points.len(), PREWARM_THREADS.len() * 2 * 2);
        for p in &points {
            assert_eq!(p.result_digest, points[0].result_digest);
            if p.prewarmed {
                assert!(p.derived > 0, "warm runs must precompute");
            } else {
                assert_eq!(p.derived, 0);
                assert_eq!(p.pool_hits, 0);
            }
        }
    }

    #[test]
    fn soa_comparison_produces_paired_medians() {
        let cmp = soa_vs_legacy(13, 200, 2, 3);
        assert_eq!(cmp.n, 200);
        assert!(cmp.legacy_median_ms > 0.0 && cmp.soa_median_ms > 0.0);
        assert!(cmp.speedup.is_finite() && cmp.speedup > 0.0);
    }

    #[test]
    fn run_config_is_seed_stable() {
        let a = run_config(7, 100, 1, 2);
        let b = run_config(7, 100, 2, 2);
        assert_eq!(a.result_digest, b.result_digest);
        let c = run_config(8, 100, 1, 2);
        assert_ne!(a.result_digest, c.result_digest, "seed must matter");
    }
}
