//! Parallel epoch-pipeline throughput: epochs/sec vs thread count, with
//! a built-in determinism oracle.
//!
//! For each population size `N` the suite runs the same seeded epoch
//! sequence through the engine at every requested thread count and
//! reports wall-clock throughput plus the per-phase CPU breakdown. A
//! SHA-256 digest over every epoch's final PSR bytes, verdict, and
//! contributor set is computed per configuration; the suite *asserts*
//! the digests are identical across thread counts, so a throughput run
//! that completes is itself a proof that parallelism changed no byte of
//! the results.
//!
//! The same digest doubles as the lane-width oracle: before the thread
//! sweep the suite replays the smallest population serially at every
//! multi-lane hash width (W ∈ {1, 4, 8}) and asserts the digests agree,
//! so neither worker count nor hash lane width can change a result byte.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use sies_core::SystemParams;
use sies_crypto::hash::HashFunction;
use sies_crypto::lanes;
use sies_crypto::sha256::Sha256;
use sies_net::engine::Engine;
use sies_net::scheme::SchemeError;
use sies_net::{SiesDeployment, Threads, Topology};
use std::time::Instant;

/// The population sizes the throughput sweep covers.
pub const THROUGHPUT_N: [u64; 3] = [100, 500, 1000];

/// Default thread counts to sweep (1 is always measured first as the
/// serial baseline).
pub const DEFAULT_THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One measured configuration, ready for `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputPoint {
    /// Source population size.
    pub n: u64,
    /// Worker threads in the sharded source phase.
    pub threads: usize,
    /// Epochs executed.
    pub epochs: u64,
    /// Wall-clock time for the whole run, ms.
    pub wall_ms: f64,
    /// Epochs completed per wall-clock second.
    pub epochs_per_sec: f64,
    /// Summed in-worker CPU time of the source phase, ms.
    pub source_cpu_ms: f64,
    /// Summed aggregator merge CPU, ms.
    pub aggregator_cpu_ms: f64,
    /// Summed querier evaluation CPU, ms.
    pub querier_cpu_ms: f64,
    /// Wall-clock speedup vs the serial (threads = 1) run of the same
    /// `n`; 1.0 for the baseline itself.
    pub speedup_vs_serial: f64,
    /// SHA-256 over every epoch's final PSR, verdict, and contributor
    /// set — equal across thread counts by the determinism oracle.
    pub result_digest: String,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Runs `epochs` clean epochs of a seeded `N`-source SIES deployment at
/// one thread count, digesting every result.
fn run_config(seed: u64, n: u64, threads: usize, epochs: u64) -> ThroughputPoint {
    let mut rng = StdRng::seed_from_u64(seed ^ n);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topo = Topology::complete_tree(n, 4);
    let mut engine = Engine::new(&dep, &topo).with_threads(Threads::fixed(threads));

    // Values are drawn from a per-N RNG re-seeded independently of the
    // thread count, so every configuration replays the same readings.
    let mut values_rng = StdRng::seed_from_u64(seed ^ n ^ 0xEB0C);
    let mut digest = Sha256::new();
    let mut source_cpu = 0.0f64;
    let mut aggregator_cpu = 0.0f64;
    let mut querier_cpu = 0.0f64;

    let wall_start = Instant::now();
    for epoch in 0..epochs {
        let values: Vec<u64> = (0..n).map(|_| values_rng.random_range(0..5000)).collect();
        let out = engine.run_epoch(epoch, &values);
        source_cpu += out.stats.source_cpu.as_secs_f64() * 1e3;
        aggregator_cpu += out.stats.aggregator_cpu.as_secs_f64() * 1e3;
        querier_cpu += out.stats.querier_cpu.as_secs_f64() * 1e3;

        // Aggregate bytes: the exact PSR the querier evaluated.
        if let Some(psr) = engine.last_final_psr() {
            digest.update(&psr.to_bytes());
        }
        // Verdict and result value.
        match &out.result {
            Ok(sum) => {
                digest.update(&[1, u8::from(sum.integrity_checked)]);
                digest.update(&sum.sum.to_bits().to_le_bytes());
            }
            Err(SchemeError::VerificationFailed(m)) => {
                digest.update(&[2]);
                digest.update(m.as_bytes());
            }
            Err(SchemeError::Malformed(m)) => {
                digest.update(&[3]);
                digest.update(m.as_bytes());
            }
        }
        // Contributor set, in reported order.
        for sid in &out.stats.contributors {
            digest.update(&sid.to_le_bytes());
        }
    }
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;

    ThroughputPoint {
        n,
        threads,
        epochs,
        wall_ms,
        epochs_per_sec: epochs as f64 / (wall_ms / 1e3),
        source_cpu_ms: source_cpu,
        aggregator_cpu_ms: aggregator_cpu,
        querier_cpu_ms: querier_cpu,
        speedup_vs_serial: 1.0, // patched by the suite
        result_digest: hex(&digest.finalize()),
    }
}

/// Replays the smallest sweep population serially at each forced hash
/// lane width and asserts the result digests are byte-identical; returns
/// the `(width, digest)` pairs. The in-process counterpart of CI's
/// `SIES_LANES` matrix leg. Clears the width override before returning.
///
/// # Panics
/// Panics when any width's digest diverges from W = 1.
pub fn lane_width_sweep(seed: u64, epochs: u64) -> Vec<(usize, String)> {
    let digests: Vec<(usize, String)> = [1usize, 4, 8]
        .iter()
        .map(|&w| {
            lanes::set_lane_width(w);
            (
                w,
                run_config(seed, THROUGHPUT_N[0], 1, epochs).result_digest,
            )
        })
        .collect();
    lanes::clear_lane_width();
    for (w, digest) in &digests[1..] {
        assert_eq!(
            digest, &digests[0].1,
            "lane-width oracle violated: W={w} diverged from the scalar engine"
        );
    }
    digests
}

/// Runs the throughput sweep: every `n` in [`THROUGHPUT_N`] at every
/// thread count in `thread_sweep` (deduplicated, serial first), each for
/// `epochs` epochs. Runs [`lane_width_sweep`] first.
///
/// Panics if any configuration's result digest differs from the serial
/// baseline's — the determinism oracle.
pub fn throughput_suite(seed: u64, epochs: u64, thread_sweep: &[usize]) -> Vec<ThroughputPoint> {
    lane_width_sweep(seed, epochs);
    let mut sweep: Vec<usize> = thread_sweep.iter().map(|&t| t.max(1)).collect();
    if !sweep.contains(&1) {
        sweep.insert(0, 1);
    }
    sweep.sort_unstable();
    sweep.dedup();

    let mut points = Vec::new();
    for &n in &THROUGHPUT_N {
        let mut serial: Option<ThroughputPoint> = None;
        for &threads in &sweep {
            let mut point = run_config(seed, n, threads, epochs);
            match &serial {
                None => {
                    assert_eq!(point.threads, 1, "serial baseline must run first");
                    serial = Some(point.clone());
                }
                Some(base) => {
                    assert_eq!(
                        point.result_digest, base.result_digest,
                        "determinism oracle violated: N={n}, {threads} threads diverged \
                         from the serial engine"
                    );
                    point.speedup_vs_serial = base.wall_ms / point.wall_ms;
                }
            }
            points.push(point);
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_digests_agree_across_thread_counts() {
        // The suite panics internally if any digest diverges; this run is
        // the small-scale differential oracle. Keep it tiny — larger
        // sweeps run from `repro throughput`.
        let points = throughput_suite(42, 2, &[1, 2, 4]);
        assert_eq!(points.len(), THROUGHPUT_N.len() * 3);
        for chunk in points.chunks(3) {
            assert!(chunk
                .iter()
                .all(|p| p.result_digest == chunk[0].result_digest));
            assert!(chunk.iter().all(|p| p.epochs_per_sec > 0.0));
            assert_eq!(chunk[0].threads, 1);
            assert_eq!(chunk[0].speedup_vs_serial, 1.0);
        }
        // Distinct populations must produce distinct aggregates.
        assert_ne!(points[0].result_digest, points[3].result_digest);
    }

    #[test]
    fn lane_widths_do_not_change_results() {
        let digests = lane_width_sweep(3, 2);
        assert_eq!(digests.len(), 3);
        assert!(digests.iter().all(|(_, d)| d == &digests[0].1));
    }

    #[test]
    fn run_config_is_seed_stable() {
        let a = run_config(7, 100, 1, 2);
        let b = run_config(7, 100, 2, 2);
        assert_eq!(a.result_digest, b.result_digest);
        let c = run_config(8, 100, 1, 2);
        assert_ne!(a.result_digest, c.result_digest, "seed must matter");
    }
}
