//! `sim`: command-line sensor-network simulator — run any scheme on any
//! topology with losses, failures and attacks, and read the verdicts.
//!
//! ```text
//! sim [--scheme sies|cmt|secoa|paillier|tag] [--sources N] [--fanout F]
//!     [--epochs E] [--loss P] [--retries R] [--attack tamper|drop|duplicate|replay]
//!     [--attack-epoch E] [--seed S] [--domain-power K] [--threads T] [--json FILE]
//! ```
//!
//! `--json FILE` writes a machine-readable run summary (including the
//! seed, so the run can be replayed exactly).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_baselines::cmt::CmtDeployment;
use sies_baselines::paillier_agg::PaillierDeployment;
use sies_baselines::plain::PlainAggregation;
use sies_baselines::secoa::SecoaSum;
use sies_core::SystemParams;
use sies_net::engine::{Attack, Engine};
use sies_net::radio::LossyRadio;
use sies_net::scheme::AggregationScheme;
use sies_net::{SiesDeployment, Threads, Topology};
use sies_workload::intel_lab::{DomainScale, IntelLabGenerator};
use std::collections::HashSet;

struct Args {
    scheme: String,
    sources: u64,
    fanout: usize,
    epochs: u64,
    loss: f64,
    retries: u32,
    attack: Option<String>,
    attack_epoch: u64,
    seed: u64,
    domain_power: u32,
    threads: Threads,
    json_out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scheme: "sies".into(),
            sources: 64,
            fanout: 4,
            epochs: 10,
            loss: 0.0,
            retries: 3,
            attack: None,
            attack_epoch: 5,
            seed: 42,
            domain_power: 2,
            threads: Threads::serial(),
            json_out: None,
        }
    }
}

const HELP: &str = "sim - run a secure in-network aggregation simulation

usage: sim [--scheme sies|cmt|secoa|paillier|tag] [--sources N] [--fanout F]
           [--epochs E] [--loss P] [--retries R]
           [--attack tamper|drop|duplicate|replay] [--attack-epoch E]
           [--seed S] [--domain-power K] [--threads T] [--json FILE]

--threads T runs the source phase on T worker threads (0 = all cores);
results are byte-identical at every thread count.";

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("error: {name} needs a value\n\n{HELP}");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--scheme" => args.scheme = value("--scheme"),
            "--sources" => args.sources = value("--sources").parse().expect("number"),
            "--fanout" => args.fanout = value("--fanout").parse().expect("number"),
            "--epochs" => args.epochs = value("--epochs").parse().expect("number"),
            "--loss" => args.loss = value("--loss").parse().expect("probability"),
            "--retries" => args.retries = value("--retries").parse().expect("number"),
            "--attack" => args.attack = Some(value("--attack")),
            "--attack-epoch" => {
                args.attack_epoch = value("--attack-epoch").parse().expect("number")
            }
            "--seed" => args.seed = value("--seed").parse().expect("number"),
            "--domain-power" => {
                args.domain_power = value("--domain-power").parse().expect("number")
            }
            "--threads" => {
                args.threads = Threads::fixed(value("--threads").parse().expect("number"))
            }
            "--json" => args.json_out = Some(value("--json")),
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}\n\n{HELP}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn run<S: AggregationScheme>(scheme: &S, args: &Args) {
    let topo = Topology::complete_tree(args.sources, args.fanout);
    let mut engine = Engine::new(scheme, &topo).with_threads(args.threads);
    let mut workload = IntelLabGenerator::new(args.seed, args.sources as usize);
    let scale = DomainScale {
        power: args.domain_power,
    };
    let radio = LossyRadio::new(args.loss, args.retries);
    let mut loss_rng = StdRng::seed_from_u64(args.seed ^ 0xBAD);

    println!(
        "scheme {} | N={} F={} | domain x10^{} | loss {:.0}% (retries {})\n",
        scheme.name(),
        args.sources,
        args.fanout,
        args.domain_power,
        args.loss * 100.0,
        args.retries
    );

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    // Full per-epoch stats for the machine-readable summary: telemetry
    // snapshot diffs rendered through EpochStats' serde impl.
    let mut epoch_stats = Vec::with_capacity(args.epochs as usize);
    for epoch in 0..args.epochs {
        let values = workload.epoch_values(epoch, scale);
        let true_sum: u64 = values.iter().sum();

        let (failed, link_stats) = if args.loss > 0.0 {
            radio.epoch_outcome(&mut loss_rng, &topo)
        } else {
            (HashSet::new(), Default::default())
        };

        let mut attacks = Vec::new();
        if epoch == args.attack_epoch {
            if let Some(kind) = &args.attack {
                let victim = topo.source_node(args.sources as u32 / 2).unwrap();
                attacks.push(match kind.as_str() {
                    "tamper" => Attack::TamperAtNode(victim),
                    "drop" => Attack::DropAtNode(victim),
                    "duplicate" => Attack::DuplicateAtNode(victim),
                    "replay" => Attack::ReplayFinal,
                    other => {
                        eprintln!("error: unknown attack '{other}'\n\n{HELP}");
                        std::process::exit(2);
                    }
                });
            }
        }

        let out = engine.run_epoch_with(epoch, &values, &failed, &attacks);
        if args.json_out.is_some() {
            epoch_stats.push(out.stats.clone());
        }
        let tag = if attacks.is_empty() {
            ""
        } else {
            "  << ATTACK"
        };
        match out.result {
            Ok(res) => {
                accepted += 1;
                let err = if true_sum > 0 {
                    (res.sum - true_sum as f64).abs() / true_sum as f64 * 100.0
                } else {
                    0.0
                };
                println!(
                    "epoch {epoch:>3}: ACCEPTED sum={:>14.1} (true {true_sum}, err {err:.2}%) contributors={} lost_links={} verified={}{tag}",
                    res.sum,
                    out.stats.contributors.len(),
                    link_stats.failed_links,
                    res.integrity_checked,
                );
            }
            Err(e) => {
                rejected += 1;
                println!("epoch {epoch:>3}: REJECTED ({e}){tag}");
            }
        }
        if epoch == 0 {
            println!(
                "           bytes/edge: S-A {:.0}  A-A {:.0}  A-Q {}  | tx energy {:.6} J",
                out.stats.bytes.per_sa_edge(),
                out.stats.bytes.per_aa_edge(),
                out.stats.bytes.agg_to_querier,
                out.stats.energy_tx
            );
        }
    }
    println!(
        "\n{accepted} accepted, {rejected} rejected over {} epochs",
        args.epochs
    );

    if let Some(path) = &args.json_out {
        let summary = serde_json::json!({
            "seed": args.seed,
            "scheme": scheme.name(),
            "sources": args.sources,
            "fanout": args.fanout,
            "epochs": args.epochs,
            "loss": args.loss,
            "retries": args.retries,
            "attack": args.attack.clone().unwrap_or_default(),
            "accepted": accepted,
            "rejected": rejected,
            "epoch_stats": epoch_stats
        });
        let body = serde_json::to_string_pretty(&summary).expect("serializable");
        std::fs::write(path, body + "\n").unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("summary written to {path}");
    }
}

fn main() {
    let args = parse_args();
    let mut rng = StdRng::seed_from_u64(args.seed);
    match args.scheme.as_str() {
        "sies" => {
            let dep = SiesDeployment::new(
                &mut rng,
                SystemParams::new(args.sources).expect("valid parameters"),
            );
            run(&dep, &args);
        }
        "cmt" => run(&CmtDeployment::new(&mut rng, args.sources), &args),
        "secoa" => {
            // Reduced parameters keep interactive runs snappy; `repro`
            // measures the paper-grade configuration.
            run(&SecoaSum::new(&mut rng, args.sources, 60, 512), &args)
        }
        "paillier" => run(&PaillierDeployment::new(&mut rng, args.sources, 512), &args),
        "tag" => run(&PlainAggregation, &args),
        other => {
            eprintln!("error: unknown scheme '{other}'\n\n{HELP}");
            std::process::exit(2);
        }
    }
}
