//! `repro`: regenerates every table and figure of the paper's evaluation
//! (§VI) on the current host.
//!
//! ```text
//! repro [--fast] [--epochs E] [--paper-costs] [--out DIR] <experiment>...
//!
//! experiments:
//!   table2   primitive costs (calibrated vs paper)
//!   table3   cost-model evaluation at the typical values
//!   table5   communication cost per network edge
//!   fig4     source CPU vs domain
//!   fig5     aggregator CPU vs fanout
//!   fig6a    querier CPU vs number of sources
//!   fig6b    querier CPU vs domain
//!   params   system parameter table (Table IV)
//!   security attack-detection matrix (SIES vs CMT vs SECOA)
//!   lifetime network-lifetime comparison (2 J battery, hottest node)
//!   reliability  seeded chaos harness: availability, detection rate,
//!                recovery overhead (also writes BENCH_reliability.json)
//!   throughput   parallel epoch pipeline: epochs/sec vs thread count,
//!                digest-checked against the serial engine and across
//!                hash lane widths W ∈ {1,4,8} (also writes
//!                BENCH_throughput.json)
//!   micro    modexp kernels (windowed Montgomery, CRT, batch inversion)
//!            and lane-batched PRF kernels (hm1/hm256_epoch_many,
//!            derive_mod_p_many at x4/x8) vs their generic oracles;
//!            differential checks at 1/2/8 threads and lane widths
//!            1/4/8 (also writes BENCH_micro.json); `--baseline FILE`
//!            gates on >25% median regression
//!   trace    telemetry: structured per-epoch trace (events + metric
//!            snapshot, written to trace.json) and the telemetry-on vs
//!            -off overhead benchmark on the chaos workload, with
//!            digest-checked determinism across the kill-switch and
//!            across 1/2/8 threads (also writes
//!            BENCH_observability.json); `--forensics` additionally
//!            runs a journaled chaos run and correlates the telemetry
//!            event stream with the replayed signed receipt journal
//!            into per-epoch incident reports (forensics.json)
//!   profile  continuous sampling profiler on the chaos workload:
//!            folded stacks (profile.folded) + Chrome trace-event
//!            timeline (profile_trace.json), the profiler-on vs -off
//!            overhead benchmark (CI gates at 3%), digest-checked
//!            determinism across the profiler switch and 1/2/8
//!            threads, and the SLO alert detection oracle — every
//!            injected fault class must raise its mapped alert, a
//!            clean seeded run must raise zero (also writes
//!            BENCH_profile.json)
//!   recovery durable receipt journal: seeded kill-restart chaos run
//!            recovered from the journal alone, digest-checked against
//!            the uninterrupted run at 1/2/8 threads, plus cold-replay
//!            throughput and journal bytes/epoch (also writes
//!            BENCH_recovery.json)
//!   all      everything above
//! ```
//!
//! `--threads T` sizes the sharded source phase (0 or omitted = all
//! available cores) for the reliability and throughput experiments.

use sies_bench::calibrate::PrimitiveCosts;
use sies_bench::chart;
use sies_bench::cost_model::CostModel;
use sies_bench::experiments::{self, Options};
use sies_bench::report::{fmt_bytes, fmt_ms, fmt_us, render_table, write_json_seeded};
use sies_bench::throughput;
use sies_net::Threads;
use std::collections::HashSet;
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::default();
    let mut out_dir = PathBuf::from("results");
    let mut use_paper_costs = false;
    let mut chaos_epochs = 2_000u64;
    let mut threads = Threads::Auto;
    let mut max_n: u64 = 1_000_000;
    let mut baseline: Option<PathBuf> = None;
    let mut forensics = false;
    let mut requested: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => opts = Options::fast(),
            "--epochs" => {
                opts.epochs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--epochs needs a number"));
            }
            "--secoa-epochs" => {
                opts.secoa_epochs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--secoa-epochs needs a number"));
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--chaos-epochs" => {
                chaos_epochs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--chaos-epochs needs a number"));
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
                threads = Threads::fixed(t); // 0 means Auto
            }
            "--out" => {
                out_dir = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--baseline" => {
                baseline = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| usage("--baseline needs a path")),
                );
            }
            "--max-n" => {
                max_n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--max-n needs a number"));
            }
            "--paper-costs" => use_paper_costs = true,
            "--forensics" => forensics = true,
            "--help" | "-h" => {
                println!("{HELP}");
                return;
            }
            other if !other.starts_with('-') => requested.push(other.to_string()),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if requested.is_empty() {
        println!("{HELP}");
        return;
    }
    if requested.iter().any(|e| e == "all") {
        requested = [
            "table2",
            "table3",
            "params",
            "table5",
            "fig4",
            "fig5",
            "fig6a",
            "fig6b",
            "security",
            "lifetime",
            "reliability",
            "throughput",
            "micro",
            "trace",
            "profile",
            "recovery",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let costs = if use_paper_costs {
        println!("using the paper's Table II primitive costs");
        PrimitiveCosts::PAPER
    } else {
        println!("calibrating primitive costs on this host (Table II)...");
        PrimitiveCosts::calibrate(false)
    };

    for exp in &requested {
        match exp.as_str() {
            "table2" => table2(&costs, &opts, &out_dir),
            "table3" => table3(&costs, &opts, &out_dir),
            "params" => params(),
            "table5" => table5(&costs, &opts, &out_dir),
            "fig4" => fig4(&costs, &opts, &out_dir),
            "fig5" => fig5(&costs, &opts, &out_dir),
            "fig6a" => fig6a(&costs, &opts, &out_dir),
            "fig6b" => fig6b(&costs, &opts, &out_dir),
            "security" => security(),
            "lifetime" => lifetime(&opts, &out_dir),
            "reliability" => reliability(&opts, chaos_epochs, threads, &out_dir),
            "throughput" => throughput_exp(&opts, threads, max_n, &out_dir),
            "micro" => micro(&opts, baseline.as_deref(), &out_dir),
            "trace" => trace(&opts, chaos_epochs, threads, forensics, &out_dir),
            "profile" => profile_exp(&opts, chaos_epochs, threads, &out_dir),
            "recovery" => recovery_exp(&opts, chaos_epochs, threads, &out_dir),
            other => eprintln!("skipping unknown experiment '{other}'"),
        }
    }
}

const HELP: &str = "repro - regenerate the SIES paper's tables and figures

usage: repro [--fast] [--epochs E] [--secoa-epochs E] [--seed S] [--chaos-epochs E]
             [--threads T] [--max-n N] [--paper-costs] [--baseline FILE]
             [--forensics] [--out DIR] <experiment>...

`--max-n N` caps the struct-of-arrays scale sweep of the throughput
experiment (default 1000000). `--forensics` makes the trace experiment
also correlate telemetry events with the replayed signed receipt
journal into per-epoch incident reports (forensics.json).

experiments: table2 table3 table5 fig4 fig5 fig6a fig6b params security lifetime
             reliability throughput micro trace profile recovery all";

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{HELP}");
    std::process::exit(2);
}

fn table2(costs: &PrimitiveCosts, opts: &Options, out: &Path) {
    println!("\n== Table II: primitive costs ==");
    let paper = PrimitiveCosts::PAPER;
    let rows: Vec<Vec<String>> = costs
        .rows()
        .iter()
        .zip(paper.rows())
        .map(|((sym, ours), (_, theirs))| {
            vec![
                sym.to_string(),
                format!("{ours:.4} us"),
                format!("{theirs:.4} us"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["primitive", "this host", "paper (i7 2.66GHz)"], &rows)
    );
    let _ = write_json_seeded(out, "table2", opts.seed, costs);
}

fn table3(costs: &PrimitiveCosts, opts: &Options, out: &Path) {
    println!("\n== Table III: cost-model evaluation at typical values ==");
    for (label, model) in [
        (
            "calibrated costs (this host)",
            CostModel {
                costs: *costs,
                ..CostModel::paper_defaults()
            },
        ),
        ("paper costs", CostModel::paper_defaults()),
    ] {
        println!("-- {label} --");
        let rows: Vec<Vec<String>> = model
            .table3()
            .into_iter()
            .map(|(metric, cmt, secoa, sies)| {
                let is_bytes = metric.contains("bytes");
                let f = |v: f64| if is_bytes { fmt_bytes(v) } else { fmt_us(v) };
                vec![
                    metric.to_string(),
                    f(cmt),
                    format!("{} / {}", f(secoa.min), f(secoa.max)),
                    f(sies),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["metric", "CMT", "SECOAS (min/max)", "SIES"], &rows)
        );
    }
    let model = CostModel {
        costs: *costs,
        ..CostModel::paper_defaults()
    };
    let json_rows: Vec<serde_json::Value> = model
        .table3()
        .iter()
        .map(|(m, c, s, v)| {
            serde_json::json!({
                "metric": m, "cmt": c, "secoa_min": s.min, "secoa_max": s.max, "sies": v
            })
        })
        .collect();
    let _ = write_json_seeded(out, "table3", opts.seed, &json_rows);
}

fn params() {
    println!("\n== Table IV: system parameters ==");
    let rows = vec![
        vec![
            "Number of sources (N)".into(),
            "1024".into(),
            "64, 256, 1024, 4096, 16384".into(),
        ],
        vec!["Fanout (F)".into(), "4".into(), "2, 3, 4, 5, 6".into()],
        vec![
            "Domain (D=[18,50])".into(),
            "x10^2".into(),
            "x1, x10, x10^2, x10^3, x10^4".into(),
        ],
    ];
    println!(
        "{}",
        render_table(&["parameter", "default", "range"], &rows)
    );
}

fn table5(costs: &PrimitiveCosts, opts: &Options, out: &Path) {
    println!("\n== Table V: communication cost per edge (N=1024, F=4, D=[1800,5000]) ==");
    let rows_data = experiments::table5_communication(costs, opts);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.edge.clone(),
                fmt_bytes(r.cmt),
                format!(
                    "{} / {} / {}",
                    fmt_bytes(r.secoa_actual),
                    fmt_bytes(r.secoa_min),
                    fmt_bytes(r.secoa_max)
                ),
                fmt_bytes(r.sies),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["edge", "CMT", "SECOAS (actual/min/max)", "SIES"], &rows)
    );
    let _ = write_json_seeded(out, "table5", opts.seed, &rows_data);
}

fn print_series(title: &str, x_label: &str, points: &[experiments::SeriesPoint]) {
    println!("\n== {title} ==");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.x.clone(),
                fmt_ms(p.sies_ms),
                fmt_ms(p.cmt_ms),
                fmt_ms(p.secoa_ms),
                format!(
                    "{} / {}",
                    fmt_ms(p.secoa_model_min_ms),
                    fmt_ms(p.secoa_model_max_ms)
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[x_label, "SIES", "CMT", "SECOAS", "SECOAS model (min/max)"],
            &rows
        )
    );

    // The paper's figures are log-Y plots; render the same shape.
    let xs: Vec<String> = points.iter().map(|p| p.x.clone()).collect();
    let sies: Vec<f64> = points.iter().map(|p| p.sies_ms).collect();
    let cmt: Vec<f64> = points.iter().map(|p| p.cmt_ms).collect();
    let secoa: Vec<f64> = points.iter().map(|p| p.secoa_ms).collect();
    println!(
        "{}",
        chart::render_log_chart(
            "CPU time (ms, log scale)",
            &xs,
            &[
                chart::Series {
                    marker: 'S',
                    name: "SIES",
                    values: &sies
                },
                chart::Series {
                    marker: 'C',
                    name: "CMT",
                    values: &cmt
                },
                chart::Series {
                    marker: 'X',
                    name: "SECOAS",
                    values: &secoa
                },
            ],
        )
    );
}

fn fig4(costs: &PrimitiveCosts, opts: &Options, out: &Path) {
    let points = experiments::fig4_source_vs_domain(costs, opts);
    print_series(
        "Figure 4: source CPU vs domain (N=1024, F=4)",
        "domain",
        &points,
    );
    let _ = write_json_seeded(out, "fig4", opts.seed, &points);
}

fn fig5(costs: &PrimitiveCosts, opts: &Options, out: &Path) {
    let points = experiments::fig5_aggregator_vs_fanout(costs, opts);
    print_series(
        "Figure 5: aggregator CPU vs fanout (N=1024, D=[1800,5000])",
        "fanout",
        &points,
    );
    let _ = write_json_seeded(out, "fig5", opts.seed, &points);
}

fn fig6a(costs: &PrimitiveCosts, opts: &Options, out: &Path) {
    let points = experiments::fig6a_querier_vs_n(costs, opts);
    print_series(
        "Figure 6(a): querier CPU vs N (F=4, D=[1800,5000])",
        "N",
        &points,
    );
    let _ = write_json_seeded(out, "fig6a", opts.seed, &points);
}

fn fig6b(costs: &PrimitiveCosts, opts: &Options, out: &Path) {
    let points = experiments::fig6b_querier_vs_domain(costs, opts);
    print_series(
        "Figure 6(b): querier CPU vs domain (N=1024, F=4)",
        "domain",
        &points,
    );
    let _ = write_json_seeded(out, "fig6b", opts.seed, &points);
}

fn lifetime(opts: &Options, out: &Path) {
    println!("\n== Network lifetime: hottest first-level aggregator, 2 J battery, F=4 ==");
    let rows_data = experiments::lifetime_table(opts);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                fmt_bytes(r.leaf_bytes as f64),
                format!("{:.3e} J", r.hottest_drain_j),
                format!("{:.0}", r.lifetime_epochs),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["scheme", "bytes/edge", "drain/epoch", "lifetime (epochs)"],
            &rows
        )
    );
    let _ = write_json_seeded(out, "lifetime", opts.seed, &rows_data);
}

fn reliability(opts: &Options, chaos_epochs: u64, threads: Threads, out: &Path) {
    println!(
        "\n== Reliability: seeded chaos harness (SIES, N=64, F=4, seed {}, {} epochs total, {} worker thread(s)) ==",
        opts.seed,
        chaos_epochs,
        threads.resolve()
    );
    let points = experiments::reliability_threaded(opts.seed, chaos_epochs, threads);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.scenario.clone(),
                format!("{:.0}%", p.loss_rate * 100.0),
                format!("{:.0}%", p.crash_prob * 100.0),
                format!("{:.0}%", p.attack_prob * 100.0),
                format!("{:.1}%", p.availability * 100.0),
                format!("{}/{}", p.detected_corruptions, p.corrupted_epochs),
                format!("{:.2}x", p.overhead_factor),
                format!("{}", p.false_accepts + p.false_rejects + p.sum_mismatches),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "loss",
                "crash",
                "attack",
                "availability",
                "detected",
                "overhead",
                "unsound"
            ],
            &rows
        )
    );
    println!("zero false accepts, zero false rejects across every scenario (asserted)");
    let _ = write_json_seeded(out, "reliability", opts.seed, &points);
    // The canonical artifact lives at the repo root for the paper repro.
    let _ = write_json_seeded(Path::new("."), "BENCH_reliability", opts.seed, &points);
}

/// Environment header of `BENCH_throughput.json`: detected cores and
/// peak RSS make a 1.0x speedup on a 1-core container self-explaining
/// and the memory budget machine-checkable.
#[derive(serde::Serialize)]
struct ThroughputHeader {
    /// Detected CPU cores (`std::thread::available_parallelism`); on a
    /// 1-core host every multi-thread speedup is expected to be ~1.0x.
    cpu_cores: usize,
    /// Peak resident set size of this process after the sweep, bytes
    /// (`VmHWM`); `null` when procfs is unavailable.
    peak_rss_bytes: Option<u64>,
    /// Hash lane width the sweep ran at (after the lane oracle).
    lane_width: usize,
    /// Largest population the scale sweep ran (`--max-n` cap applied).
    scale_max_n: u64,
    note: String,
}

/// The full `BENCH_throughput.json` payload.
#[derive(serde::Serialize)]
struct ThroughputArtifact {
    header: ThroughputHeader,
    sweep: Vec<throughput::ThroughputPoint>,
    scale: Vec<throughput::ScalePoint>,
    prewarm: Vec<throughput::PrewarmPoint>,
    soa_vs_legacy: Option<throughput::SoaComparison>,
}

fn throughput_exp(opts: &Options, threads: Threads, max_n: u64, out: &Path) {
    // Sweep 1..=resolved threads in powers of two, always including the
    // requested count, so `--threads 8` on an 8-core host measures
    // 1, 2, 4 and 8 workers.
    let top = threads.resolve().max(1);
    let mut sweep: Vec<usize> = throughput::DEFAULT_THREAD_SWEEP
        .iter()
        .copied()
        .filter(|&t| t <= top)
        .collect();
    if !sweep.contains(&top) {
        sweep.push(top);
    }
    let epochs = opts.epochs.max(1);
    println!(
        "\n== Throughput: parallel epoch pipeline (seed {}, {} epochs/config, threads {:?}) ==",
        opts.seed, epochs, sweep
    );
    let points = throughput::throughput_suite(opts.seed, epochs, &sweep);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                p.threads.to_string(),
                format!("{:.1}", p.epochs_per_sec),
                fmt_ms(p.wall_ms),
                fmt_ms(p.source_cpu_ms),
                fmt_ms(p.aggregator_cpu_ms),
                fmt_ms(p.querier_cpu_ms),
                format!("{:.2}x", p.speedup_vs_serial),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "N",
                "threads",
                "epochs/s",
                "wall",
                "source CPU",
                "agg CPU",
                "querier CPU",
                "speedup"
            ],
            &rows
        )
    );
    println!(
        "result digests identical across all thread counts (asserted per N) \
         and across hash lane widths 1/4/8/16 (asserted at N={})",
        throughput::THROUGHPUT_N[0]
    );

    // Prewarm on/off digest sweep: the precompute-ahead key pool must
    // change no result byte at any thread count or streaming mode.
    println!(
        "\n-- Prewarm: precompute-ahead epoch crypto on/off, N={}, threads {:?} --",
        throughput::THROUGHPUT_N[0],
        throughput::PREWARM_THREADS
    );
    let prewarm = throughput::prewarm_suite(opts.seed, throughput::THROUGHPUT_N[0], epochs);
    let rows: Vec<Vec<String>> = prewarm
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                if p.streaming { "on" } else { "off" }.to_string(),
                if p.prewarmed { "on" } else { "off" }.to_string(),
                format!("{:.1}", p.epochs_per_sec),
                fmt_ms(p.wall_ms),
                p.derived.to_string(),
                p.pool_hits.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "threads",
                "stream",
                "prewarm",
                "epochs/s",
                "wall",
                "derived",
                "pool hits"
            ],
            &rows
        )
    );
    println!(
        "prewarm digest oracle passed: warm and cold runs bit-identical at \
         threads {:?} x streaming off/on",
        throughput::PREWARM_THREADS
    );

    // Struct-of-arrays scale sweep: legacy serial reference vs the flat
    // pipeline at 1/2/8 threads × streaming off/on, digest-asserted.
    let scale_ns: Vec<u64> = throughput::SCALE_N
        .iter()
        .copied()
        .filter(|&n| n <= max_n)
        .collect();
    let mut scale = Vec::new();
    let mut comparison = None;
    if scale_ns.is_empty() {
        println!("scale sweep skipped (--max-n {max_n} below the smallest population)");
    } else {
        println!(
            "\n-- Scale: struct-of-arrays pipeline, N up to {} --",
            scale_ns.last().unwrap()
        );
        // Epoch budget shrinks with N so the 1M point stays minutes, not
        // hours, on a 1-core host; every point still runs >= 2 epochs so
        // the streaming overlap path is exercised.
        let epoch_budget = move |n: u64| epochs.min((200_000 / n).max(2));
        scale = throughput::scale_suite(opts.seed, &scale_ns, epoch_budget);
        let rows: Vec<Vec<String>> = scale
            .iter()
            .map(|p| {
                vec![
                    p.n.to_string(),
                    p.layout.clone(),
                    p.threads.to_string(),
                    if p.streaming { "on" } else { "off" }.to_string(),
                    p.epochs.to_string(),
                    format!("{:.2}", p.epochs_per_sec),
                    fmt_ms(p.wall_ms),
                    if p.layout == "soa" {
                        format!("{:.0}", p.bytes_per_node)
                    } else {
                        "-".to_string()
                    },
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["N", "layout", "threads", "stream", "epochs", "epochs/s", "wall", "B/node"],
                &rows
            )
        );
        println!(
            "serial-equivalence digest asserted: every SoA configuration \
             (threads 1/2/8 x streaming off/on) matches the legacy engine per N"
        );
        // The largest SoA point's footprint feeds the telemetry gauge the
        // CI budget gate reads.
        if let Some(p) = scale.iter().rev().find(|p| p.layout == "soa") {
            sies_telemetry::record_bytes_per_node(
                (p.arena_bytes + p.state_bytes) as usize,
                p.nodes as usize,
            );
        }

        // Paired layout comparison at N=10k, same estimator as `repro micro`.
        if max_n >= 10_000 {
            let cmp = throughput::soa_vs_legacy(opts.seed, 10_000, 4, 5);
            println!(
                "SoA vs legacy layout at N=10000 (serial, paired-ratio median of \
                 {} rounds x {} epochs): legacy {} soa {} -> {:.2}x",
                cmp.rounds,
                cmp.epochs_per_round,
                fmt_ms(cmp.legacy_median_ms),
                fmt_ms(cmp.soa_median_ms),
                cmp.speedup
            );
            comparison = Some(cmp);
        }
    }

    let cpu_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let artifact = ThroughputArtifact {
        header: ThroughputHeader {
            cpu_cores,
            peak_rss_bytes: sies_telemetry::record_peak_rss(),
            lane_width: sies_crypto::lanes::lane_width(),
            scale_max_n: scale_ns.last().copied().unwrap_or(0),
            note: "speedup_vs_serial ~1.0 is expected when cpu_cores is 1; \
                   bytes_per_node covers the flat arena plus both epoch buffers"
                .to_string(),
        },
        sweep: points,
        scale,
        prewarm,
        soa_vs_legacy: comparison,
    };
    println!("detected {cpu_cores} CPU core(s)");
    let _ = write_json_seeded(out, "throughput", opts.seed, &artifact);
    // The canonical artifact lives at the repo root for the paper repro.
    let _ = write_json_seeded(Path::new("."), "BENCH_throughput", opts.seed, &artifact);
}

fn micro(opts: &Options, baseline: Option<&Path>, out: &Path) {
    use sies_bench::micro::{micro_suite, regressions_against, MicroReport, REGRESSION_FACTOR};

    const ORACLE_THREADS: [usize; 3] = [1, 2, 8];
    println!("\n== Micro: modular-exponentiation and batched-PRF kernels vs generic oracles ==");
    println!(
        "running differential oracles at {ORACLE_THREADS:?} thread(s) and \
         lane widths 1/4/8/16, then timing medians..."
    );
    let report = micro_suite(11, &ORACLE_THREADS);
    let rows: Vec<Vec<String>> = report
        .kernels
        .iter()
        .map(|k| {
            vec![
                k.name.clone(),
                fmt_us(k.generic_median_us),
                fmt_us(k.fast_median_us),
                format!("{:.2}x", k.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["kernel", "generic median", "fast median", "speedup"],
            &rows
        )
    );
    println!(
        "differential oracles passed at {:?} worker thread(s); \
         batched PRFs lane-verified at widths {:?}",
        report.oracle_threads, report.lane_widths
    );
    let _ = write_json_seeded(out, "micro", opts.seed, &report);
    // The canonical artifact lives at the repo root for the paper repro.
    let _ = write_json_seeded(Path::new("."), "BENCH_micro", opts.seed, &report);

    if let Some(path) = baseline {
        #[derive(serde::Deserialize)]
        struct Seeded {
            data: MicroReport,
        }
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read baseline {}: {e}", path.display())));
        let base: Seeded = serde_json::from_str(&text)
            .unwrap_or_else(|e| usage(&format!("cannot parse baseline {}: {e}", path.display())));
        let failures = regressions_against(&report, &base.data);
        if failures.is_empty() {
            println!(
                "regression gate PASSED against {} (threshold {REGRESSION_FACTOR}x)",
                path.display()
            );
        } else {
            eprintln!(
                "\nregression gate FAILED against {} — a kernel got more than {:.0}% slower \
                 than the committed baseline AND lost its speedup margin over the generic path:",
                path.display(),
                (REGRESSION_FACTOR - 1.0) * 100.0
            );
            for f in &failures {
                eprintln!("  - {f}");
            }
            eprintln!(
                "if this slowdown is intentional, regenerate the baseline with \
                 `cargo run --release -p sies-bench --bin repro -- micro` and commit \
                 BENCH_micro.json as BENCH_micro_baseline.json"
            );
            std::process::exit(1);
        }
    }
}

fn trace(opts: &Options, chaos_epochs: u64, threads: Threads, forensics: bool, out: &Path) {
    use sies_bench::observability::{capture_trace, overhead_suite};

    // Phase 1: a short traced run — enough epochs to show every event
    // kind without drowning the terminal or the JSON artifact.
    let trace_epochs = chaos_epochs.clamp(1, 200);
    println!(
        "\n== Trace: telemetry event journal + metric snapshot (SIES, N=64, F=4, seed {}, {} epochs) ==",
        opts.seed, trace_epochs
    );
    let trace = capture_trace(opts.seed, trace_epochs, threads);

    let mut kind_counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for ev in &trace.events {
        *kind_counts.entry(ev.kind.name()).or_insert(0) += 1;
    }
    let rows: Vec<Vec<String>> = kind_counts
        .iter()
        .map(|(k, n)| vec![k.to_string(), n.to_string()])
        .collect();
    println!("{}", render_table(&["event", "count"], &rows));

    let last_epoch = trace_epochs - 1;
    println!("last epoch ({last_epoch}) event stream:");
    for ev in trace.epoch_events(last_epoch) {
        println!("  {}", ev.to_json());
    }
    println!(
        "\n{} events captured ({} dropped), result digest {}",
        trace.events.len(),
        trace.dropped,
        trace.result_digest
    );
    let key_counters = [
        "engine.epochs_accepted",
        "engine.epochs_rejected",
        "engine.epochs_lost",
        "engine.sources_run",
        "recovery.nacks",
        "recovery.retransmits",
        "net.bytes.retransmit",
        "crypto.sha256.compressions",
    ];
    for name in key_counters {
        println!("  {name} = {}", trace.metrics.counter(name));
    }

    let _ = std::fs::create_dir_all(out);
    let trace_path = out.join("trace.json");
    match std::fs::write(&trace_path, trace.to_json()) {
        Ok(()) => println!("trace written to {}", trace_path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", trace_path.display()),
    }

    // Phase 2: the overhead benchmark on the full chaos workload.
    println!(
        "\n== Observability overhead: telemetry on vs off (chaos workload, {} epochs/run, {} worker thread(s)) ==",
        chaos_epochs,
        threads.resolve()
    );
    let report = overhead_suite(opts.seed, chaos_epochs, threads, 7);
    let rows = vec![
        vec![
            "telemetry off".to_string(),
            fmt_ms(report.off_min_ms),
            fmt_ms(report.off_median_ms),
            format!(
                "{:?}",
                report.off_ms.iter().map(|v| v.round()).collect::<Vec<_>>()
            ),
        ],
        vec![
            "telemetry on".to_string(),
            fmt_ms(report.on_min_ms),
            fmt_ms(report.on_median_ms),
            format!(
                "{:?}",
                report.on_ms.iter().map(|v| v.round()).collect::<Vec<_>>()
            ),
        ],
    ];
    println!(
        "{}",
        render_table(&["mode", "best", "median", "samples (ms)"], &rows)
    );
    println!(
        "overhead (median of {} paired ratios): {:+.2}% | digest identical across kill-switch: {} | across threads 1/2/8: {}",
        report.runs_per_mode, report.overhead_pct, report.digests_match, report.threads_invariant
    );
    let _ = write_json_seeded(out, "observability", opts.seed, &report);
    // The canonical artifact lives at the repo root for the paper repro.
    let _ = write_json_seeded(Path::new("."), "BENCH_observability", opts.seed, &report);

    // Phase 3 (opt-in): the forensic attack timeline.
    if forensics {
        use sies_bench::forensics::forensic_timeline;
        let fepochs = chaos_epochs.clamp(1, 500);
        println!(
            "\n== Forensics: receipt journal × telemetry event correlation (seed {}, {} epochs) ==",
            opts.seed, fepochs
        );
        let _ = std::fs::create_dir_all(out);
        let journal_path = out.join("forensics.journal");
        let freport = forensic_timeline(opts.seed, fepochs, threads, &journal_path);
        let _ = std::fs::remove_file(&journal_path);
        println!(
            "{} receipts replayed, {} telemetry events correlated, {} incident epoch(s)",
            freport.receipts_replayed,
            freport.events_correlated,
            freport.incidents.len()
        );
        let rows: Vec<Vec<String>> = freport
            .incidents
            .iter()
            .take(12)
            .map(|i| {
                vec![
                    i.epoch.to_string(),
                    i.verdict.clone(),
                    i.crash_injected.to_string(),
                    i.attack_injected.to_string(),
                    i.adoptions.to_string(),
                    i.lost_links.to_string(),
                    i.anomalies.len().to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "epoch",
                    "verdict",
                    "crash",
                    "attack",
                    "adoptions",
                    "lost links",
                    "anomalies"
                ],
                &rows
            )
        );
        println!(
            "digest live == replayed: {} | evidence streams consistent: {}",
            freport.digests_match, freport.consistent
        );
        let _ = write_json_seeded(out, "forensics", opts.seed, &freport);
    }
}

fn profile_exp(opts: &Options, chaos_epochs: u64, threads: Threads, out: &Path) {
    use sies_bench::profile::{detection_oracle, profile_overhead, profiled_run, ProfileReport};

    // Phase 1 oversamples (997 Hz) so even a short run yields a dense
    // flamegraph; the overhead gate runs at the production default rate
    // (97 Hz — what a deployment would leave on continuously), where
    // the sampler's wakeups are an order of magnitude sparser.
    const HZ: u32 = 997;
    const GATE_HZ: u32 = 97;

    // Phase 1: one profiled run → flamegraph + timeline artifacts.
    let prof_epochs = chaos_epochs.clamp(1, 400);
    println!(
        "\n== Profile: sampling profiler on the chaos workload (seed {}, {} epochs, {} Hz, {} worker thread(s)) ==",
        opts.seed,
        prof_epochs,
        HZ,
        threads.resolve()
    );
    let cap = profiled_run(opts.seed, prof_epochs, threads, HZ);
    println!(
        "{} samples ({} idle), {} distinct stacks, {} timeline events ({} dropped)",
        cap.data.samples,
        cap.data.idle_samples,
        cap.data.distinct_stacks(),
        cap.timeline.events.len(),
        cap.timeline.dropped
    );
    let mut top: Vec<(&String, &u64)> = cap.data.stacks.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1));
    let rows: Vec<Vec<String>> = top
        .iter()
        .take(10)
        .map(|(s, n)| vec![s.to_string(), n.to_string()])
        .collect();
    println!("{}", render_table(&["stack", "samples"], &rows));

    let _ = std::fs::create_dir_all(out);
    for (name, body) in [
        ("profile.folded", &cap.folded),
        ("profile_trace.json", &cap.trace_json),
    ] {
        let path = out.join(name);
        match std::fs::write(&path, body) {
            Ok(()) => println!("written: {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }

    // Phase 2: the profiler's own overhead, paired and gated.
    println!(
        "\n== Profiler overhead: sampler on vs off (chaos workload, {} epochs/run, {} Hz) ==",
        chaos_epochs, GATE_HZ
    );
    let overhead = profile_overhead(opts.seed, chaos_epochs, threads, GATE_HZ, 7);
    println!(
        "off median {} | on median {} | overhead (median of {} paired ratios): {:+.2}% | digest identical across profiler: {} | across threads 1/2/8: {}",
        fmt_ms(overhead.off_median_ms),
        fmt_ms(overhead.on_median_ms),
        overhead.runs_per_mode,
        overhead.overhead_pct,
        overhead.digests_match,
        overhead.threads_invariant
    );

    // Phase 3: the alert detection oracle.
    let clean_epochs = chaos_epochs.max(100);
    println!(
        "\n== Alert oracle: every fault class must raise its alert; {} clean epochs must raise none ==",
        clean_epochs
    );
    let oracle = detection_oracle(opts.seed, clean_epochs, threads);
    let rows: Vec<Vec<String>> = oracle
        .scenarios
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                s.expected_alert.clone(),
                format!("{:?}", s.raised),
                if s.detected {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["scenario", "expected alert", "raised", "detected"], &rows)
    );
    println!(
        "clean run: {} epochs, {} alert(s) | oracle passed: {}",
        oracle.clean_epochs, oracle.clean_alerts, oracle.passed
    );
    assert!(
        oracle.passed,
        "alert oracle failed: clean_alerts={} scenarios={:?}",
        oracle.clean_alerts, oracle.scenarios
    );

    let report = ProfileReport {
        samples: cap.data.samples,
        idle_samples: cap.data.idle_samples,
        distinct_stacks: cap.data.distinct_stacks() as u64,
        timeline_events: cap.timeline.events.len() as u64,
        timeline_dropped: cap.timeline.dropped,
        overhead,
        oracle,
    };
    let _ = write_json_seeded(out, "profile", opts.seed, &report);
    // The canonical artifact lives at the repo root for the paper repro.
    let _ = write_json_seeded(Path::new("."), "BENCH_profile", opts.seed, &report);
}

fn recovery_exp(opts: &Options, chaos_epochs: u64, threads: Threads, out: &Path) {
    use sies_bench::recovery::recovery_suite;

    const KILLS: usize = 3;
    println!(
        "\n== Recovery: kill-restart from the signed receipt journal (SIES, N=64, F=4, seed {}, {} epochs, {} kill points, {} worker thread(s)) ==",
        opts.seed,
        chaos_epochs,
        KILLS,
        threads.resolve()
    );
    let journal_copy = out.join("recovery.journal");
    let report = recovery_suite(opts.seed, chaos_epochs, threads, KILLS, Some(&journal_copy));
    let rows = vec![
        vec!["epochs".to_string(), report.epochs.to_string()],
        vec![
            "kill epochs".to_string(),
            format!("{:?}", report.kill_epochs),
        ],
        vec![
            "replayed receipts".to_string(),
            report.replayed_receipts.to_string(),
        ],
        vec![
            "journal size".to_string(),
            format!(
                "{} ({:.1} bytes/epoch)",
                fmt_bytes(report.journal_bytes as f64),
                report.bytes_per_epoch
            ),
        ],
        vec![
            "cold replay".to_string(),
            format!(
                "{} ({:.0} records/s, {:.1} MB/s)",
                fmt_ms(report.replay_ms),
                report.replay_records_per_sec,
                report.replay_mb_per_sec
            ),
        ],
        vec![
            "availability".to_string(),
            format!("{:.1}%", report.availability * 100.0),
        ],
        vec![
            "unsound epochs".to_string(),
            format!(
                "{}",
                report.false_accepts + report.false_rejects + report.sum_mismatches
            ),
        ],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));
    println!(
        "digest identity live == restarted == replayed: {} | thread sweep 1/2/8 invariant: {} (all asserted)",
        report.digests_match, report.threads_invariant
    );
    println!("signed receipt journal kept at {}", journal_copy.display());
    let _ = write_json_seeded(out, "recovery", opts.seed, &report);
    // The canonical artifact lives at the repo root for the paper repro.
    let _ = write_json_seeded(Path::new("."), "BENCH_recovery", opts.seed, &report);
}

/// Attack-detection matrix: which scheme detects which covert attack.
fn security() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sies_baselines::cmt::CmtDeployment;
    use sies_baselines::secoa::SecoaSum;
    use sies_core::SystemParams;
    use sies_net::engine::{Attack, Engine};
    use sies_net::scheme::AggregationScheme;
    use sies_net::{SiesDeployment, Topology};

    println!("\n== Security: covert-attack detection matrix (N=16, F=4) ==");
    let n = 16u64;
    let topo = Topology::complete_tree(n, 4);
    let victim = topo.source_node(5).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let cmt = CmtDeployment::new(&mut rng, n);
    let secoa = SecoaSum::new(&mut rng, n, 32, 512);

    fn run<S: AggregationScheme>(scheme: &S, topo: &Topology, attacks: &[Attack]) -> String {
        let mut engine = Engine::new(scheme, topo);
        let values = vec![100u64; topo.num_sources() as usize];
        // Warm-up epoch so replay has something to replay.
        let _ = engine.run_epoch(0, &values);
        let out = engine.run_epoch_with(1, &values, &HashSet::new(), attacks);
        match out.result {
            Err(_) => "DETECTED".into(),
            Ok(r) if !r.integrity_checked => "undetected (no integrity)".into(),
            Ok(_) => "undetected".into(),
        }
    }

    let attack_list: Vec<(&str, Vec<Attack>)> = vec![
        ("tamper PSR in flight", vec![Attack::TamperAtNode(victim)]),
        ("drop a contribution", vec![Attack::DropAtNode(victim)]),
        ("inject duplicate", vec![Attack::DuplicateAtNode(victim)]),
        ("replay previous epoch", vec![Attack::ReplayFinal]),
    ];
    let rows: Vec<Vec<String>> = attack_list
        .iter()
        .map(|(name, attacks)| {
            vec![
                name.to_string(),
                run(&sies, &topo, attacks),
                run(&cmt, &topo, attacks),
                run(&secoa, &topo, attacks),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["attack", "SIES", "CMT", "SECOAS"], &rows)
    );
}
