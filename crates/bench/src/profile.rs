//! The `repro profile` experiment: the continuous sampling profiler on
//! the chaos workload, its paired on/off overhead benchmark, and the
//! chaos-verified SLO alert detection oracle (`BENCH_profile.json`).
//!
//! Three phases:
//!
//! 1. **Profile** — one chaos run sampled by the in-process profiler
//!    with the trace-event timeline recording; the folded stacks
//!    (flamegraph format) and Chrome `trace_event` JSON become on-disk
//!    artifacts.
//! 2. **Overhead** — the same workload run with the profiler
//!    alternating off/on in short paired segments (the `repro trace`
//!    interleaving idiom); the median paired ratio bounds the sampler's
//!    cost, and the chaos result digest is asserted byte-identical
//!    across the profiler switch and across worker threads 1/2/8.
//! 3. **Oracle** — every injected fault class must raise its mapped
//!    default alert rule, and a long clean seeded run must raise zero
//!    alerts: the alert engine's detection is verified against the
//!    chaos harness's ground truth, not just unit-tested.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use sies_core::SystemParams;
use sies_net::chaos::{run_chaos, ChaosConfig};
use sies_net::journal::{FsyncPolicy, JournalConfig, Receipt, ReceiptJournal};
use sies_net::recovery::RecoveryConfig;
use sies_net::{PrewarmPolicy, SiesDeployment, Threads, Topology};
use sies_telemetry as tel;
use sies_telemetry::{AlertEngine, ProfileData, Profiler, TimelineCapture};
use std::time::Instant;

use crate::observability::workload_config;

fn deployment(seed: u64) -> (SiesDeployment, Topology) {
    let n = 64u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    (dep, Topology::complete_tree(n, 4))
}

// ---------------------------------------------------------------------
// Phase 1: profiled run → folded stacks + trace-event timeline
// ---------------------------------------------------------------------

/// One profiled chaos run's artifacts, ready to write to disk.
pub struct ProfileCapture {
    /// Folded stacks (`outer;inner count` per line) for flamegraph.pl /
    /// inferno / speedscope.
    pub folded: String,
    /// Chrome `trace_event` JSON timeline of every completed span.
    pub trace_json: String,
    /// Raw profile data (sample counts per stack).
    pub data: ProfileData,
    /// Timeline capture stats (event count, overflow drops).
    pub timeline: TimelineCapture,
    /// Chaos result digest of the profiled run.
    pub result_digest: String,
}

/// Runs `epochs` of the chaos workload under the sampling profiler and
/// the trace-event timeline, both at full telemetry.
pub fn profiled_run(seed: u64, epochs: u64, threads: Threads, hz: u32) -> ProfileCapture {
    let (dep, topo) = deployment(seed);
    let cfg = workload_config(seed, epochs, threads);

    tel::set_enabled(true);
    tel::start_recording(tel::DEFAULT_TIMELINE_CAPACITY);
    let profiler = Profiler::start(hz);
    let m = run_chaos(&dep, &topo, &cfg);
    let data = profiler.stop();
    let timeline = tel::stop_recording();
    tel::clear_enabled();

    ProfileCapture {
        folded: data.to_folded(),
        trace_json: tel::to_trace_json(&timeline.events),
        data,
        timeline,
        result_digest: m.result_digest,
    }
}

// ---------------------------------------------------------------------
// Phase 2: profiler overhead + digest transparency
// ---------------------------------------------------------------------

/// Digest of one thread-count determinism run (profiler on).
#[derive(Debug, Clone, Serialize)]
pub struct ThreadDigest {
    /// Worker threads the run used.
    pub threads: u64,
    /// Chaos result digest it produced.
    pub digest: String,
}

/// Profiler-on vs profiler-off cost on the chaos workload plus the
/// determinism evidence.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileOverhead {
    /// Epochs per mode per round (run as interleaved segment pairs).
    pub epochs: u64,
    /// Sampling frequency the profiled segments used.
    pub hz: u32,
    /// Measured rounds per profiler setting.
    pub runs_per_mode: u64,
    /// Wall-clock of each profiler-off round, milliseconds.
    pub off_ms: Vec<f64>,
    /// Wall-clock of each profiler-on round, milliseconds.
    pub on_ms: Vec<f64>,
    /// Median of `off_ms`.
    pub off_median_ms: f64,
    /// Median of `on_ms`.
    pub on_median_ms: f64,
    /// Median of the per-pair ratios `on_i / off_i`, minus one, in
    /// percent (the CI gate asserts ≤ 3.0). Paired alternating segments
    /// cancel host frequency drift out of each quotient.
    pub overhead_pct: f64,
    /// Result digest with the profiler off.
    pub digest_off: String,
    /// Result digest with the profiler on.
    pub digest_on: String,
    /// Whether the digests match (asserted: the sampler only reads).
    pub digests_match: bool,
    /// Digest per worker-thread count, profiler on.
    pub thread_digests: Vec<ThreadDigest>,
    /// Whether every thread count produced the same digest (asserted).
    pub threads_invariant: bool,
}

fn median(samples: &[f64]) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Measures the chaos workload with the profiler alternating off/on in
/// balanced segment pairs, then checks digest identity across the
/// profiler switch and across threads 1/2/8. Telemetry itself stays ON
/// in both modes — only the sampler thread is toggled, so the measured
/// delta is the profiler's own cost.
///
/// Panics if either determinism check fails: the suite doubles as the
/// profiler-transparency oracle.
pub fn profile_overhead(
    seed: u64,
    epochs: u64,
    threads: Threads,
    hz: u32,
    runs_per_mode: u64,
) -> ProfileOverhead {
    let (dep, topo) = deployment(seed);

    const SEGMENTS: u64 = 20;
    let seg_epochs = (epochs / SEGMENTS).max(1);
    let cfg = workload_config(seed, seg_epochs, threads);

    let run_seg = |profiled: bool| -> (f64, String) {
        tel::set_enabled(true);
        let profiler = profiled.then(|| Profiler::start(hz));
        let t0 = Instant::now();
        let m = run_chaos(&dep, &topo, &cfg);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if let Some(p) = profiler {
            let _ = p.stop();
        }
        tel::clear_enabled();
        (ms, m.result_digest)
    };

    let mut off_ms = Vec::new();
    let mut on_ms = Vec::new();
    let mut digest_off = String::new();
    let mut digest_on = String::new();
    for _ in 0..runs_per_mode.max(1) {
        let mut off_t = 0.0;
        let mut on_t = 0.0;
        for seg in 0..SEGMENTS {
            // Balance pair order (off-first on even segments, on-first
            // on odd) so neither mode systematically sits in the same
            // position relative to periodic host-state flips.
            let first_off = seg % 2 == 0;
            let (ms_a, d_a) = run_seg(!first_off);
            let (ms_b, d_b) = run_seg(first_off);
            let (ms_off, d_off, ms_on, d_on) = if first_off {
                (ms_a, d_a, ms_b, d_b)
            } else {
                (ms_b, d_b, ms_a, d_a)
            };
            off_t += ms_off;
            digest_off = d_off;
            on_t += ms_on;
            digest_on = d_on;
        }
        off_ms.push(off_t);
        on_ms.push(on_t);
    }
    let digests_match = digest_off == digest_on;
    assert!(
        digests_match,
        "profiler changed the chaos result digest: off={digest_off} on={digest_on}"
    );

    let thread_digests: Vec<ThreadDigest> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            tel::set_enabled(true);
            let profiler = Profiler::start(hz);
            let cfg = ChaosConfig {
                threads: Threads::fixed(t),
                ..cfg
            };
            let m = run_chaos(&dep, &topo, &cfg);
            let _ = profiler.stop();
            tel::clear_enabled();
            ThreadDigest {
                threads: t as u64,
                digest: m.result_digest,
            }
        })
        .collect();
    let threads_invariant = thread_digests
        .iter()
        .all(|d| d.digest == thread_digests[0].digest && d.digest == digest_on);
    assert!(
        threads_invariant,
        "chaos result digest varied with thread count under the profiler: {thread_digests:?}"
    );

    let ratios: Vec<f64> = off_ms.iter().zip(&on_ms).map(|(o, n)| n / o).collect();
    ProfileOverhead {
        epochs,
        hz,
        runs_per_mode: runs_per_mode.max(1),
        off_median_ms: median(&off_ms),
        on_median_ms: median(&on_ms),
        overhead_pct: (median(&ratios) - 1.0) * 100.0,
        off_ms,
        on_ms,
        digest_off,
        digest_on,
        digests_match,
        thread_digests,
        threads_invariant,
    }
}

// ---------------------------------------------------------------------
// Phase 3: the alert detection oracle
// ---------------------------------------------------------------------

/// One fault-injection scenario's verdict.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// The default rule that must fire.
    pub expected_alert: String,
    /// Every rule that fired in the scenario's window.
    pub raised: Vec<String>,
    /// Whether `expected_alert` is among `raised`.
    pub detected: bool,
}

/// The full oracle outcome: every fault class detected, clean run quiet.
#[derive(Debug, Clone, Serialize)]
pub struct OracleReport {
    /// Per-fault-class scenario verdicts.
    pub scenarios: Vec<ScenarioResult>,
    /// Epochs of the clean seeded run.
    pub clean_epochs: u64,
    /// Alerts the clean run raised (must be 0).
    pub clean_alerts: u64,
    /// Rules that fired during the clean run (must be empty).
    pub clean_raised: Vec<String>,
    /// All scenarios detected and the clean run stayed quiet.
    pub passed: bool,
}

/// Evaluates the default rules over the global-registry diff produced
/// by `work`, returning the names of every rule that fired.
fn alert_window<F: FnOnce()>(engine: &AlertEngine, epoch: u64, work: F) -> Vec<String> {
    let before = tel::global().snapshot();
    work();
    let diff = tel::global().snapshot().diff(&before);
    engine
        .evaluate(&diff, epoch)
        .into_iter()
        .map(|a| a.rule)
        .collect()
}

/// Runs the detection oracle: a long clean seeded run first (its window
/// must raise zero alerts), then one scenario per fault class, each of
/// which must raise its mapped rule. Extra alerts inside a fault
/// scenario are legitimate (a crash epoch can also lose an epoch); a
/// missing expected alert is not.
pub fn detection_oracle(seed: u64, clean_epochs: u64, threads: Threads) -> OracleReport {
    let engine = AlertEngine::with_default_rules();
    let (dep, topo) = deployment(seed);

    tel::set_enabled(true);
    // Size the event ring for the largest window so a full ring never
    // bleeds `telemetry.events_dropped` into a clean window.
    let cap = (clean_epochs as usize)
        .saturating_mul(96)
        .clamp(4096, 1 << 20);
    tel::journal().set_capacity(cap);
    let _ = tel::journal().drain();

    let clean_cfg = ChaosConfig {
        seed,
        epochs: clean_epochs,
        loss_rate: 0.0,
        max_retries: 3,
        crash_prob: 0.0,
        attack_prob: 0.0,
        max_value: 1000,
        recovery: RecoveryConfig::default(),
        threads,
    };
    // Evaluate the clean run in chunks: each window must stay silent,
    // exactly the cadence a live alerting loop would use.
    let chunks = 8u64.min(clean_epochs.max(1));
    let chunk_epochs = (clean_epochs / chunks).max(1);
    let mut clean_raised: Vec<String> = Vec::new();
    for c in 0..chunks {
        let cfg = ChaosConfig {
            seed: seed.wrapping_add(c),
            epochs: chunk_epochs,
            ..clean_cfg
        };
        let mut raised = alert_window(&engine, c, || {
            let _ = run_chaos(&dep, &topo, &cfg);
        });
        clean_raised.append(&mut raised);
        let _ = tel::journal().drain();
    }
    let clean_alerts = clean_raised.len() as u64;

    let mut scenarios = Vec::new();
    let mut scenario = |name: &str, expected: &str, work: &mut dyn FnMut()| {
        let raised = alert_window(&engine, 0, work);
        let _ = tel::journal().drain();
        scenarios.push(ScenarioResult {
            name: name.to_string(),
            expected_alert: expected.to_string(),
            detected: raised.iter().any(|r| r == expected),
            raised,
        });
    };

    // Covert attacks every epoch → the scheme rejects at least one.
    scenario("attack_storm", "integrity_reject", &mut || {
        let cfg = ChaosConfig {
            attack_prob: 1.0,
            epochs: 40,
            ..clean_cfg
        };
        let _ = run_chaos(&dep, &topo, &cfg);
    });

    // Node crashes every epoch → orphans re-home to backup parents.
    scenario("crash_storm", "crash_churn", &mut || {
        let cfg = ChaosConfig {
            crash_prob: 1.0,
            epochs: 40,
            ..clean_cfg
        };
        let _ = run_chaos(&dep, &topo, &cfg);
    });

    // Heavy frame loss → the recovery protocol retransmits.
    scenario("lossy_links", "loss_retransmit", &mut || {
        let cfg = ChaosConfig {
            loss_rate: 0.5,
            epochs: 40,
            ..clean_cfg
        };
        let _ = run_chaos(&dep, &topo, &cfg);
    });

    // A starved event ring evicts events → the overflow counter climbs.
    scenario("event_ring_overflow", "events_dropped", &mut || {
        tel::journal().set_capacity(64);
        let cfg = ChaosConfig {
            epochs: 20,
            ..clean_cfg
        };
        let _ = run_chaos(&dep, &topo, &cfg);
        tel::journal().set_capacity(cap);
    });

    // A receipt journal that never fsyncs accumulates unsynced records
    // past the rule's 64-record durability budget.
    scenario("lazy_fsync", "fsync_lag", &mut || {
        let dir = std::env::temp_dir().join(format!("sies-profile-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("fsync-lag-{seed}.journal"));
        let jcfg = JournalConfig {
            fsync: FsyncPolicy::Never,
            ..JournalConfig::default()
        };
        let mut journal = ReceiptJournal::create(&path, &jcfg).expect("journal create");
        for epoch in 0..100u64 {
            let mut receipt = Receipt {
                epoch,
                ..Receipt::default()
            };
            journal.record(&mut receipt);
        }
        let _ = std::fs::remove_file(&path);
    });
    // The lag gauge is absolute (diff keeps the latest value): park it
    // back at zero so later windows aren't haunted by this scenario.
    tel::set_gauge!("journal.fsync_lag", 0);

    // A cold, enabled prewarm pool misses every lookup.
    scenario("cold_prewarm", "prewarm_miss_rate", &mut || {
        dep.set_prewarm_policy(PrewarmPolicy::default());
        let cfg = ChaosConfig {
            epochs: 32,
            ..clean_cfg
        };
        let _ = run_chaos(&dep, &topo, &cfg);
        dep.set_prewarm_policy(PrewarmPolicy::disabled());
    });

    tel::clear_enabled();

    let passed = clean_alerts == 0 && scenarios.iter().all(|s| s.detected);
    OracleReport {
        scenarios,
        clean_epochs,
        clean_alerts,
        clean_raised,
        passed,
    }
}

// ---------------------------------------------------------------------
// The combined report (BENCH_profile.json)
// ---------------------------------------------------------------------

/// Everything `repro profile` measured, ready for `BENCH_profile.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileReport {
    /// Profiler samples captured in the profiled run.
    pub samples: u64,
    /// Samples where no instrumented span was live anywhere.
    pub idle_samples: u64,
    /// Distinct folded stacks observed.
    pub distinct_stacks: u64,
    /// Trace-event timeline entries captured.
    pub timeline_events: u64,
    /// Timeline entries lost to ring overflow.
    pub timeline_dropped: u64,
    /// The overhead + determinism phase.
    pub overhead: ProfileOverhead,
    /// The alert detection oracle.
    pub oracle: OracleReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// These tests flip the process-global kill-switch and journal
    /// capacity; serialize them (shared with nothing else — bench unit
    /// tests run in this binary only).
    fn switch_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn profiled_run_captures_stacks_and_timeline() {
        let _guard = switch_lock();
        // 2 kHz sampling over a short run still lands samples: each
        // epoch holds the engine.epoch span for the whole epoch body.
        let cap = profiled_run(11, 30, Threads::serial(), 2000);
        assert_eq!(cap.result_digest.len(), 64);
        assert!(cap.data.samples + cap.data.idle_samples > 0, "no samples");
        assert!(
            cap.folded.contains("engine.epoch"),
            "profiled run should observe the epoch span, folded:\n{}",
            cap.folded
        );
        assert!(cap.trace_json.starts_with("{\"traceEvents\":["));
        assert!(
            cap.timeline.events.iter().any(|e| e.name == "engine.epoch"),
            "timeline should record completed epoch spans"
        );
    }

    #[test]
    fn profile_overhead_is_digest_transparent() {
        let _guard = switch_lock();
        let report = profile_overhead(7, 12, Threads::serial(), 499, 1);
        assert!(report.digests_match);
        assert!(report.threads_invariant);
        assert_eq!(report.thread_digests.len(), 3);
        assert!(report.off_median_ms > 0.0 && report.on_median_ms > 0.0);
    }

    #[test]
    fn oracle_detects_every_fault_class_and_stays_quiet_when_clean() {
        let _guard = switch_lock();
        let report = detection_oracle(13, 200, Threads::serial());
        assert_eq!(
            report.clean_alerts, 0,
            "clean run raised alerts: {:?}",
            report.clean_raised
        );
        for s in &report.scenarios {
            assert!(
                s.detected,
                "scenario {} failed to raise {} (raised: {:?})",
                s.name, s.expected_alert, s.raised
            );
        }
        assert!(report.passed);
    }
}
