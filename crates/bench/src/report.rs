//! Plain-text table rendering and JSON export for the `repro` binary.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Formats a microsecond cost with adaptive units (µs/ms/s).
pub fn fmt_us(us: f64) -> String {
    if us < 1_000.0 {
        format!("{us:.2} us")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1_000.0)
    } else {
        format!("{:.2} s", us / 1_000_000.0)
    }
}

/// Formats a millisecond cost with adaptive units.
pub fn fmt_ms(ms: f64) -> String {
    fmt_us(ms * 1_000.0)
}

/// Formats a byte count with adaptive units (B/KB).
pub fn fmt_bytes(b: f64) -> String {
    if b < 1024.0 {
        format!("{b:.0} B")
    } else {
        format!("{:.2} KB", b / 1024.0)
    }
}

/// Renders an ASCII table: a header row plus data rows, padded per column.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep: String = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(&widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line
    };
    let mut out = String::new();
    out.push_str(&sep);
    out.push('\n');
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Writes a serializable result as pretty JSON under `results/<name>.json`
/// (creating the directory), so EXPERIMENTS.md entries are diffable.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    let json = serde_json::to_string_pretty(value).expect("serializable");
    file.write_all(json.as_bytes())?;
    file.write_all(b"\n")?;
    Ok(())
}

/// Like [`write_json`], but wraps the data with the seed that produced
/// it (`{"seed": ..., "data": ...}`), so every results JSON is
/// replayable.
pub fn write_json_seeded<T: Serialize>(
    dir: &Path,
    name: &str,
    seed: u64,
    value: &T,
) -> std::io::Result<()> {
    write_json(
        dir,
        name,
        &serde_json::json!({ "seed": seed, "data": value }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_us(0.45), "0.45 us");
        assert_eq!(fmt_us(2280.0), "2.28 ms");
        assert_eq!(fmt_us(568_460.0), "568.46 ms");
        assert_eq!(fmt_us(5_360_000.0), "5.36 s");
        assert_eq!(fmt_bytes(32.0), "32 B");
        assert_eq!(fmt_bytes(38_720.0), "37.81 KB");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["metric", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["bb".into(), "22222".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        let len = lines[0].len();
        assert!(
            lines.iter().all(|l| l.len() == len),
            "misaligned table:\n{t}"
        );
        assert!(t.contains("alpha"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("sies-report-test");
        write_json(&dir, "probe", &vec![1, 2, 3]).unwrap();
        let content = std::fs::read_to_string(dir.join("probe.json")).unwrap();
        assert_eq!(
            serde_json::from_str::<Vec<i32>>(&content).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn seeded_json_records_the_seed() {
        let dir = std::env::temp_dir().join("sies-report-test");
        write_json_seeded(&dir, "seeded-probe", 1234, &vec![7, 8]).unwrap();
        let content = std::fs::read_to_string(dir.join("seeded-probe.json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&content).unwrap();
        assert!(content.contains("\"seed\""));
        assert!(content.contains("1234"));
        let rendered = serde_json::to_string(&v).unwrap();
        assert!(rendered.contains("1234") && rendered.contains('7'));
    }
}
