//! `repro micro`: the modular-exponentiation kernel suite.
//!
//! Measures each optimized kernel of the crypto layer against the generic
//! `BigUint`/Euclid path it replaced — the pre-PR implementation, which is
//! kept in-tree as the differential-test oracle:
//!
//! * 2048-bit RSA SEAL chain evaluation (windowed Montgomery chain vs
//!   repeated generic `pow_mod`);
//! * 2048-bit RSA and Paillier decryption (CRT + Garner vs full-size
//!   exponentiation);
//! * 256-bit windowed Montgomery exponentiation vs the generic path;
//! * the SECOA verifier's seed-product fold (division-free CIOS
//!   accumulator vs mul-then-divide);
//! * batch modular inversion (Montgomery's trick vs per-element Euclid);
//! * the lane-batched epoch PRFs (`hm1_epoch_many`, `hm256_epoch_many`,
//!   `derive_mod_p_many` at x4/x8 lanes with cached HMAC pads) vs the
//!   scalar free-function loop that re-derives the pad blocks per call;
//! * the W-lane Montgomery batch kernels (`pow_mod_many`,
//!   `chain_pow_mod_many`, `fold_many` over the 1024-bit fixture
//!   modulus, lane-interleaved CIOS) vs the scalar `BigMontCtx` loop;
//! * the prewarmed source-init path (`batch_source_init` hitting a
//!   pre-filled epoch-key pool) vs the derive-on-demand deployment.
//!
//! Keys are built from fixed 1024-bit prime fixtures (`p, q ≡ 2 (mod 3)`,
//! generated once with the in-tree Miller–Rabin) so runs are reproducible
//! and start instantly. Before timing anything the differential oracles
//! run at 1, 2 and 8 worker threads, and the lane oracles replay every
//! batched PRF and Montgomery batch kernel at widths 1, 4, 8 and 16
//! against the scalar path; a mismatch aborts the suite.

use crate::timing::time_median_us;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sies_core::{parallel, SystemParams};
use sies_crypto::bigmont::BigMontCtx;
use sies_crypto::bigmontxn;
use sies_crypto::biguint::BigUint;
use sies_crypto::lanes;
use sies_crypto::mont::MontgomeryCtx;
use sies_crypto::paillier::PaillierKeyPair;
use sies_crypto::prf::{self, KeyedPrf};
use sies_crypto::rsa::RsaKeyPair;
use sies_crypto::u256::U256;
use sies_crypto::DEFAULT_PRIME_256;
use sies_net::scheme::AggregationScheme;
use sies_net::{PrewarmPolicy, SiesDeployment};

/// Fixed 1024-bit primes, `≡ 2 (mod 3)`, found by seeded search with the
/// in-tree prime generator. P0·P1 is the RSA-2048 fixture modulus, P2·P3
/// the Paillier-2048 one.
const P0: &str = "e46f7c7cdbf540f26e0f1ce9064f372ca29a589ccda50147eeec49b5e6b306a6cba8c9fefdea1d6ab50dd6c37823e194d8a611814fc37ef05ca6cb4d80eba60ce4bb25e65af79481d44f138922e3db84364effd6c1aa0277c67d94620f877dd067da72181426b973822a6133f36f16e90f4f60f2310f2ad7c6f4e80308547b65";
const P1: &str = "d5647120f7ef5c69488616383559f564584057a161d4618503ebb2d2d2ff471009027337a62a394c63f863f60459acc55983b2aad1d2941641d92c9c4dc62c60389bd522d1cb51917618c971623911c7cd15471a35b59b1955c4322eeb96eb5ef107dab0da4cc9be6c1779fad7a1ff30a2121d1c78d1bc2d8e539011067b8f67";
const P2: &str = "d174474a0cc5c6087ea00509a1e7dbf842e39cd7107e0f25724f9945d9908968301b33a7c9100daaacebc1ddd1e0f21cb85ca3c84ba2a24a99f59e44bbf2e54478ec684b4ae37e9266ac2056e3a1f4d7fefb5807bfed8f8a240fff8aad04b91e975ff30e39029ee0ad41276a887a3cb7b70341d1d185ed4373c4a412feeff815";
const P3: &str = "da56ed8b6e62b8e096179354b7bb3a92164cbb445de5aa3ad2e0353bb59a8e9be7d0935a84a9b70c3b120eb40057c0587f779fe2adc801eec55ce159b1d26263da18913d69cb28cc6224b76413415f8c5e0e5f206091289679c6b716eed2f29aa9fcd02d50b750194f330df63413b1e36c1bd94bcb29a3e0fa63f8d201afee8d";

/// SEAL chain length timed by the headline kernel (a rolling distance of
/// 16 positions, well inside SECOA's typical per-merge roll).
const CHAIN_LEN: u64 = 16;
/// Elements in the fold / batch-inversion kernels.
const FOLD_LEN: usize = 256;
const BATCH_LEN: usize = 64;
/// Batch sizes for the lane-parallel PRF, Montgomery-batch, and prewarm
/// kernels (the largest matches the paper's default source population).
const PRF_BATCH: [usize; 3] = [64, 256, 1000];
/// Lane widths the PRF and Montgomery-batch oracles verify (every
/// kernel instantiation, including the AVX-512 x16 request that falls
/// back gracefully on narrower hardware).
const LANE_WIDTHS: [usize; 4] = [1, 4, 8, 16];
/// Rolling-chain depth of the `chain_pow_mod_many` kernel (SEAL's
/// per-merge roll shape at a batch scale).
const MONT_CHAIN_K: u64 = 4;

/// One kernel's generic-vs-fast medians.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelResult {
    /// Kernel identifier (stable across runs; the baseline gate joins on
    /// it).
    pub name: String,
    /// Median wall time of the pre-PR generic path, microseconds.
    pub generic_median_us: f64,
    /// Median wall time of the optimized kernel, microseconds.
    pub fast_median_us: f64,
    /// `generic_median_us / fast_median_us`.
    pub speedup: f64,
}

/// The full suite result: kernel timings plus the thread counts at which
/// the differential oracles passed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicroReport {
    /// Per-kernel medians, in suite order.
    pub kernels: Vec<KernelResult>,
    /// Worker-thread counts the differential oracles were verified at.
    pub oracle_threads: Vec<usize>,
    /// Hash lane widths the batched-PRF oracle was verified at.
    pub lane_widths: Vec<usize>,
}

fn from_hex(s: &str) -> BigUint {
    let bytes: Vec<u8> = s
        .as_bytes()
        .chunks(2)
        .map(|c| u8::from_str_radix(std::str::from_utf8(c).unwrap(), 16).unwrap())
        .collect();
    BigUint::from_be_bytes(&bytes)
}

/// The fixed 2048-bit RSA key used by every kernel measurement
/// (reproducible: derived from pinned 1024-bit primes, seed 0xF17E).
pub fn rsa_fixture() -> RsaKeyPair {
    RsaKeyPair::from_primes(&from_hex(P0), &from_hex(P1))
}

/// The fixed 2048-bit Paillier key used by every kernel measurement.
pub fn paillier_fixture() -> PaillierKeyPair {
    PaillierKeyPair::from_primes(&from_hex(P2), &from_hex(P3))
}

/// A deterministic value stream below `m`, wide enough to exercise every
/// limb (splitmix64-filled, reduced mod `m`).
pub fn stream_below(m: &BigUint, tag: u64, count: usize) -> Vec<BigUint> {
    let nbytes = m.bit_len().div_ceil(8) + 8;
    (0..count)
        .map(|i| {
            let mut state = tag
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1);
            let mut bytes = Vec::with_capacity(nbytes);
            while bytes.len() < nbytes {
                state = state
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(27)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                bytes.extend_from_slice(&state.to_be_bytes());
            }
            BigUint::from_be_bytes(&bytes).rem(m)
        })
        .collect()
}

/// The generic SEAL chain: `times` cold `pow_mod` calls over the plain
/// `BigUint` kernels — exactly the pre-PR rolling loop.
fn generic_chain(base: &BigUint, e: &BigUint, times: u64, n: &BigUint) -> BigUint {
    let mut acc = base.rem(n);
    for _ in 0..times {
        acc = acc.pow_mod(e, n);
    }
    acc
}

/// The generic Paillier encryption body (pre-PR `encrypt_with_nonce`).
fn generic_paillier_encrypt(m: &BigUint, r: &BigUint, n: &BigUint, n2: &BigUint) -> BigUint {
    let g_m = BigUint::one().add(&m.mul(n)).rem(n2);
    g_m.mul_mod(&r.pow_mod(n, n2), n2)
}

/// Deterministic 32-byte keys for the batched-PRF kernels (one per
/// simulated sensor; splitmix64-filled).
pub fn prf_keys(count: usize) -> Vec<[u8; 32]> {
    (0..count)
        .map(|i| {
            let mut key = [0u8; 32];
            let mut state = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED;
            for chunk in key.chunks_mut(8) {
                state = state
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(31)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                chunk.copy_from_slice(&state.to_be_bytes());
            }
            key
        })
        .collect()
}

/// Differential oracle for the lane-batched PRFs: every kernel width must
/// reproduce the scalar free-function results byte for byte.
///
/// Runs serially by design — the width override is process-global, so
/// sharding this across workers would race the knob it is testing (the
/// race could only change which width a call uses, never its output, but
/// then widths 1 and 4 would not be exercised reliably).
pub fn run_lane_oracle() -> Result<(), String> {
    let keys = prf_keys(21);
    let prfs: Vec<KeyedPrf> = keys.iter().map(|k| KeyedPrf::new(k)).collect();
    let p = DEFAULT_PRIME_256;
    // Ragged cert-style messages for the cross-message batch entry point.
    let msgs: Vec<Vec<u8>> = (0..keys.len())
        .map(|i| vec![i as u8; 1 + (i * 11) % 80])
        .collect();
    for width in LANE_WIDTHS {
        lanes::set_lane_width(width);
        for epoch in [0u64, 7, u64::MAX] {
            let hm1 = prf::hm1_epoch_many(&prfs, epoch);
            let hm256 = prf::hm256_epoch_many(&prfs, epoch);
            let derived = prf::derive_mod_p_many(&prfs, epoch, &p);
            let certs = prf::hm1_many(prfs.iter().zip(&msgs));
            for (i, key) in keys.iter().enumerate() {
                if hm1[i] != prf::hm1_epoch(key, epoch) {
                    return Err(format!("hm1_epoch_many mismatch (W={width}, lane {i})"));
                }
                if hm256[i] != prf::hm256_epoch(key, epoch) {
                    return Err(format!("hm256_epoch_many mismatch (W={width}, lane {i})"));
                }
                if derived[i] != prf::derive_mod(key, epoch, &p) {
                    return Err(format!("derive_mod_p_many mismatch (W={width}, lane {i})"));
                }
                if certs[i] != prf::hm1(key, &msgs[i]) {
                    return Err(format!("hm1_many mismatch (W={width}, lane {i})"));
                }
            }
        }
    }
    lanes::clear_lane_width();
    Ok(())
}

/// Differential oracle for the W-lane Montgomery batch kernels: every
/// explicit width (including the x16 request that clamps to the widest
/// compiled kernel) must reproduce the scalar `BigMontCtx` loop exactly
/// over the 1024-bit fixture modulus.
pub fn run_mont_batch_oracle() -> Result<(), String> {
    let m = from_hex(P0);
    let ctx = BigMontCtx::new(&m);
    let bases = stream_below(&m, 0xB16, 21);
    let exp = BigUint::from_u64(0xD6E8_FEB8_6659_FD93);
    let e3 = BigUint::from_u64(3);
    // Ragged per-lane lists for the fold entry point.
    let lists: Vec<Vec<BigUint>> = (0..9)
        .map(|i| stream_below(&m, 0xF0_1D ^ i as u64, 1 + (i * 3) % 7))
        .collect();
    let list_refs: Vec<&[BigUint]> = lists.iter().map(|l| l.as_slice()).collect();
    for width in LANE_WIDTHS {
        let pows = bigmontxn::pow_mod_many_with(width, &ctx, &bases, &exp);
        let chains = bigmontxn::chain_pow_mod_many_with(width, &ctx, &bases, &e3, MONT_CHAIN_K);
        let folds = bigmontxn::fold_many_with(width, &ctx, &list_refs);
        for (i, base) in bases.iter().enumerate() {
            if pows[i] != ctx.pow_mod(base, &exp) {
                return Err(format!("pow_mod_many mismatch (W={width}, lane {i})"));
            }
            if chains[i] != ctx.chain_pow_mod(base, &e3, MONT_CHAIN_K) {
                return Err(format!("chain_pow_mod_many mismatch (W={width}, lane {i})"));
            }
        }
        for (i, list) in lists.iter().enumerate() {
            if folds[i] != ctx.product_mod(list.iter()) {
                return Err(format!("fold_many mismatch (W={width}, lane {i})"));
            }
        }
    }
    Ok(())
}

/// Runs every differential oracle sharded over `threads` workers;
/// returns the first mismatch description, if any.
pub fn run_oracles(threads: usize) -> Result<(), String> {
    let rsa = rsa_fixture();
    let paillier = paillier_fixture();
    let n = rsa.public().modulus().clone();
    let e3 = BigUint::from_u64(3);
    let cases: Vec<u64> = (0..16).collect();
    let results = parallel::map_chunks(threads, &cases, |chunk| {
        for &i in chunk {
            // 256-bit windowed Montgomery vs generic BigUint.
            let p256 = DEFAULT_PRIME_256;
            let ctx256 = MontgomeryCtx::new(&p256);
            let base = U256::from_u64(i.wrapping_mul(0xD6E8_FEB8_6659_FD93) | 1);
            let exp = U256::from_u64(u64::MAX - i).shl((i % 4) as usize * 48);
            let fast = ctx256.pow_mod(&base, &exp);
            let oracle = BigUint::from(&base)
                .pow_mod(&BigUint::from(&exp), &BigUint::from(&p256))
                .to_u256();
            if fast != oracle {
                return Err(format!("u256 windowed pow mismatch (case {i})"));
            }

            // 2048-bit SEAL chain vs repeated generic pow.
            let seed = stream_below(&n, i, 1).remove(0);
            let k = i % 6;
            let fast = rsa.public().encrypt_repeated(&seed, k);
            let oracle = generic_chain(&seed, &e3, k, &n);
            if fast != oracle {
                return Err(format!("SEAL chain mismatch (case {i}, k = {k})"));
            }

            // CRT RSA decryption vs the generic oracle.
            let c = rsa.public().encrypt(&seed);
            if rsa.decrypt(&c) != rsa.decrypt_generic(&c) {
                return Err(format!("CRT RSA decrypt mismatch (case {i})"));
            }

            // CRT Paillier decryption vs the generic oracle.
            let pn = paillier.public().modulus().clone();
            let m = stream_below(&pn, i ^ 0xAA, 1).remove(0);
            let r = stream_below(&pn, i ^ 0x55, 1).remove(0);
            if r.is_zero() {
                continue;
            }
            let c = paillier.public().encrypt_with_nonce(&m, &r);
            let (crt, generic) = (paillier.decrypt(&c), paillier.decrypt_generic(&c));
            if crt != generic || crt != m {
                return Err(format!("CRT Paillier decrypt mismatch (case {i})"));
            }

            // Fold accumulator vs generic mul_mod loop.
            let values = stream_below(&n, i ^ 0x77, 24);
            let fast = rsa.public().fold_product(values.iter());
            let mut oracle = BigUint::one();
            for v in &values {
                oracle = v.mul_mod(&oracle, &n);
            }
            if fast != oracle {
                return Err(format!("fold product mismatch (case {i})"));
            }

            // Batch inversion vs per-element Euclid.
            let vals: Vec<U256> = (0..24)
                .map(|j| U256::from_u64(i.wrapping_mul(31).wrapping_add(j) % 97))
                .collect();
            let batch = U256::batch_inv_mod(&vals, &p256);
            for (v, got) in vals.iter().zip(&batch) {
                if *got != v.rem(&p256).inv_mod_euclid(&p256) {
                    return Err(format!("batch inversion mismatch (case {i})"));
                }
            }
        }
        Ok(())
    });
    for r in results {
        r?;
    }
    Ok(())
}

/// Runs the whole suite: differential oracles at every count in
/// `oracle_threads`, then the kernel medians over `runs` repetitions.
///
/// # Panics
/// Panics when an oracle finds a fast/generic mismatch — timings of a
/// wrong kernel are meaningless.
pub fn micro_suite(runs: usize, oracle_threads: &[usize]) -> MicroReport {
    assert!(runs > 0);
    for &t in oracle_threads {
        if let Err(e) = run_oracles(t) {
            panic!("differential oracle failed at {t} thread(s): {e}");
        }
    }
    if let Err(e) = run_lane_oracle() {
        panic!("lane-width PRF oracle failed: {e}");
    }
    if let Err(e) = run_mont_batch_oracle() {
        panic!("Montgomery batch oracle failed: {e}");
    }

    let rsa = rsa_fixture();
    let paillier = paillier_fixture();
    let n = rsa.public().modulus().clone();
    let e3 = BigUint::from_u64(3);
    let mut kernels = Vec::new();

    // 2048-bit SEAL chain: the headline rolling kernel.
    let seed = stream_below(&n, 1, 1).remove(0);
    kernels.push(KernelResult::measure(
        "rsa2048_seal_chain16",
        runs,
        || generic_chain(&seed, &e3, CHAIN_LEN, &n),
        || rsa.public().encrypt_repeated(&seed, CHAIN_LEN),
    ));

    // 2048-bit RSA decryption: CRT + Garner vs c^d mod n.
    let c = rsa.public().encrypt(&seed);
    kernels.push(KernelResult::measure(
        "rsa2048_decrypt",
        runs,
        || rsa.decrypt_generic(&c),
        || rsa.decrypt(&c),
    ));

    // 2048-bit Paillier decryption: CRT + Garner vs c^λ mod n².
    let pn = paillier.public().modulus().clone();
    let m = stream_below(&pn, 2, 1).remove(0);
    let r = stream_below(&pn, 3, 1).remove(0);
    let pc = paillier.public().encrypt_with_nonce(&m, &r);
    kernels.push(KernelResult::measure(
        "paillier2048_decrypt",
        runs,
        || paillier.decrypt_generic(&pc),
        || paillier.decrypt(&pc),
    ));

    // 2048-bit Paillier encryption: windowed Montgomery r^n vs generic.
    let n2 = pn.mul(&pn);
    kernels.push(KernelResult::measure(
        "paillier2048_encrypt",
        runs,
        || generic_paillier_encrypt(&m, &r, &pn, &n2),
        || paillier.public().encrypt_with_nonce(&m, &r),
    ));

    // 256-bit exponentiation: windowed Montgomery vs generic BigUint.
    let p256 = DEFAULT_PRIME_256;
    let ctx256 = MontgomeryCtx::new(&p256);
    let base = U256::from_be_bytes(&[0xA7; 32]).rem(&p256);
    let exp = p256.checked_sub(&U256::from_u64(2)).unwrap();
    let (pb, pe, pm) = (
        BigUint::from(&base),
        BigUint::from(&exp),
        BigUint::from(&p256),
    );
    kernels.push(KernelResult::measure(
        "mont256_pow",
        runs,
        || pb.pow_mod(&pe, &pm),
        || ctx256.pow_mod(&base, &exp),
    ));

    // SECOA verifier fold: division-free accumulator vs mul_mod loop.
    let fold_values = stream_below(&n, 4, FOLD_LEN);
    kernels.push(KernelResult::measure(
        "seal_fold256",
        runs,
        || {
            let mut acc = BigUint::one();
            for v in &fold_values {
                acc = acc.mul_mod(v, &n);
            }
            acc
        },
        || rsa.public().fold_product(fold_values.iter()),
    ));

    // Batch inversion: Montgomery's trick vs per-element Euclid.
    let inv_values: Vec<U256> = (0..BATCH_LEN as u64)
        .map(|j| {
            U256::from_u64(j.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
                .shl((j % 3) as usize * 64)
                .rem(&p256)
        })
        .collect();
    kernels.push(KernelResult::measure(
        "batch_inv64",
        runs,
        || {
            inv_values
                .iter()
                .map(|v| v.inv_mod_euclid(&p256))
                .collect::<Vec<_>>()
        },
        || U256::batch_inv_mod(&inv_values, &p256),
    ));

    // Lane-batched epoch PRFs: cached-pad HMAC at W lanes (exactly two
    // batchable compressions per MAC) vs the scalar free-function loop
    // that re-derives both pad blocks on every call — the pre-PR querier
    // recomputation path. The width override is explicit per kernel so
    // the names stay honest regardless of `SIES_LANES`.
    let prf_epoch = 12_345u64;
    let lane_keys = prf_keys(*PRF_BATCH.iter().max().unwrap());
    let lane_prfs: Vec<KeyedPrf> = lane_keys.iter().map(|k| KeyedPrf::new(k)).collect();
    for &n in &PRF_BATCH {
        lanes::set_lane_width(8);
        kernels.push(KernelResult::measure(
            &format!("hm1_epoch_many_n{n}"),
            runs,
            || {
                lane_keys[..n]
                    .iter()
                    .map(|k| prf::hm1_epoch(k, prf_epoch))
                    .collect::<Vec<_>>()
            },
            || prf::hm1_epoch_many(&lane_prfs[..n], prf_epoch),
        ));
        kernels.push(KernelResult::measure(
            &format!("hm256_epoch_many_n{n}"),
            runs,
            || {
                lane_keys[..n]
                    .iter()
                    .map(|k| prf::hm256_epoch(k, prf_epoch))
                    .collect::<Vec<_>>()
            },
            || prf::hm256_epoch_many(&lane_prfs[..n], prf_epoch),
        ));
    }
    let nmax = *PRF_BATCH.iter().max().unwrap();
    lanes::set_lane_width(4);
    kernels.push(KernelResult::measure(
        &format!("hm1_epoch_many_x4_n{nmax}"),
        runs,
        || {
            lane_keys
                .iter()
                .map(|k| prf::hm1_epoch(k, prf_epoch))
                .collect::<Vec<_>>()
        },
        || prf::hm1_epoch_many(&lane_prfs, prf_epoch),
    ));
    kernels.push(KernelResult::measure(
        &format!("hm256_epoch_many_x4_n{nmax}"),
        runs,
        || {
            lane_keys
                .iter()
                .map(|k| prf::hm256_epoch(k, prf_epoch))
                .collect::<Vec<_>>()
        },
        || prf::hm256_epoch_many(&lane_prfs, prf_epoch),
    ));
    // The querier's Σss recomputation shape: rejection-sampled residues.
    lanes::set_lane_width(8);
    kernels.push(KernelResult::measure(
        &format!("derive_mod_p_many_n{nmax}"),
        runs,
        || {
            lane_keys
                .iter()
                .map(|k| prf::derive_mod(k, prf_epoch, &p256))
                .collect::<Vec<_>>()
        },
        || prf::derive_mod_p_many(&lane_prfs, prf_epoch, &p256),
    ));
    lanes::clear_lane_width();

    // W-lane Montgomery batch kernels over the 1024-bit fixture modulus:
    // lane-interleaved CIOS (one limb pass drives W independent carry
    // chains) vs the scalar `BigMontCtx` loop over the same bases. The
    // exponent is a shared 64-bit word — the SEAL/SECOA shape where
    // every lane walks the same square-and-multiply schedule.
    let bm = from_hex(P0);
    let bctx = BigMontCtx::new(&bm);
    let bexp = BigUint::from_u64(0xD6E8_FEB8_6659_FD93);
    let be3 = BigUint::from_u64(3);
    let bbases = stream_below(&bm, 0xB00, nmax);
    for &n in &PRF_BATCH {
        kernels.push(KernelResult::measure(
            &format!("mont_batch_pow_n{n}"),
            runs,
            || {
                bbases[..n]
                    .iter()
                    .map(|b| bctx.pow_mod(b, &bexp))
                    .collect::<Vec<_>>()
            },
            || bigmontxn::pow_mod_many(&bctx, &bbases[..n], &bexp),
        ));
        kernels.push(KernelResult::measure(
            &format!("mont_batch_chain_n{n}"),
            runs,
            || {
                bbases[..n]
                    .iter()
                    .map(|b| bctx.chain_pow_mod(b, &be3, MONT_CHAIN_K))
                    .collect::<Vec<_>>()
            },
            || bigmontxn::chain_pow_mod_many(&bctx, &bbases[..n], &be3, MONT_CHAIN_K),
        ));
    }
    // Per-lane fold: 8-element products per lane (the SECOA verifier's
    // seed-product shape fanned out across sources).
    let fold_lists: Vec<Vec<BigUint>> = (0..nmax)
        .map(|i| stream_below(&bm, 0xF0_1D ^ i as u64, 8))
        .collect();
    for &n in &PRF_BATCH {
        let refs: Vec<&[BigUint]> = fold_lists[..n].iter().map(|l| l.as_slice()).collect();
        kernels.push(KernelResult::measure(
            &format!("mont_batch_fold_n{n}"),
            runs,
            || {
                refs.iter()
                    .map(|l| bctx.product_mod(l.iter()))
                    .collect::<Vec<_>>()
            },
            || bigmontxn::fold_many(&bctx, &refs),
        ));
    }

    // Prewarmed source init: `batch_source_init` hitting a pool that
    // already holds the epoch's key material (table lookup + encode +
    // one CIOS multiply per job) vs the derive-on-demand batched path
    // on a pool-disabled deployment. The ciphertexts are identical
    // either way — the prewarm digest-identity contract — so the delta
    // is exactly the PRF work moved off the critical path.
    let mut rng = StdRng::seed_from_u64(0x51E5);
    let cold_dep = SiesDeployment::new(&mut rng, SystemParams::new(nmax as u64).unwrap());
    let mut rng = StdRng::seed_from_u64(0x51E5);
    let warm_dep = SiesDeployment::new(&mut rng, SystemParams::new(nmax as u64).unwrap())
        .with_prewarm(PrewarmPolicy::default());
    let prewarm_epoch = 41u64;
    assert!(
        warm_dep.prewarm_derive(prewarm_epoch),
        "prewarm pool must hold the measured epoch"
    );
    let jobs: Vec<(u32, u64)> = (0..nmax as u32).map(|i| (i, 1000 + i as u64)).collect();
    // Pre-flight identity check: every pooled ciphertext must equal the
    // on-demand one before the timings mean anything.
    for (cold, warm) in cold_dep
        .batch_source_init(prewarm_epoch, &jobs)
        .iter()
        .zip(&warm_dep.batch_source_init(prewarm_epoch, &jobs))
    {
        match (cold, warm) {
            (Ok(a), Ok(b)) if a.to_bytes() == b.to_bytes() => {}
            _ => panic!("prewarmed source init diverged from the on-demand path"),
        }
    }
    for &n in &PRF_BATCH {
        kernels.push(KernelResult::measure(
            &format!("prewarm_source_init_n{n}"),
            runs,
            || cold_dep.batch_source_init(prewarm_epoch, &jobs[..n]),
            || warm_dep.batch_source_init(prewarm_epoch, &jobs[..n]),
        ));
    }

    MicroReport {
        kernels,
        oracle_threads: oracle_threads.to_vec(),
        lane_widths: LANE_WIDTHS.to_vec(),
    }
}

impl KernelResult {
    fn measure<A, B>(
        name: &str,
        runs: usize,
        mut generic: impl FnMut() -> A,
        mut fast: impl FnMut() -> B,
    ) -> Self {
        // One warm-up call each, then interleaved sampling: alternating
        // generic/fast rounds see the same CPU-frequency drift, so the
        // speedup ratio stays stable even when absolute times wander.
        std::hint::black_box(generic());
        std::hint::black_box(fast());
        let mut generic_samples = Vec::with_capacity(runs);
        let mut fast_samples = Vec::with_capacity(runs);
        let mut ratios = Vec::with_capacity(runs);
        for _ in 0..runs {
            let g = time_median_us(1, &mut generic);
            let f = time_median_us(1, &mut fast);
            ratios.push(g / f.max(f64::MIN_POSITIVE));
            generic_samples.push(g);
            fast_samples.push(f);
        }
        let median = |samples: &mut Vec<f64>| {
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            samples[samples.len() / 2]
        };
        KernelResult {
            name: name.to_string(),
            generic_median_us: median(&mut generic_samples),
            fast_median_us: median(&mut fast_samples),
            // Median of the per-round ratios, not the ratio of medians:
            // each round's generic/fast pair is adjacent in time, so CPU
            // frequency drift cancels out of the quotient.
            speedup: median(&mut ratios),
        }
    }
}

/// Regression threshold: a kernel fails the gate when its optimized
/// median exceeds the baseline's by more than this factor **and** its
/// speedup over the generic path has shrunk by more than the same factor.
/// The double condition keeps the gate meaningful on CI machines that are
/// uniformly slower than the one that produced the baseline.
pub const REGRESSION_FACTOR: f64 = 1.25;

/// Compares a fresh report against the committed baseline. Returns the
/// list of regressions (empty = gate passes). Kernels present in only one
/// of the two reports are ignored (renames don't fail the gate; adding a
/// kernel does not require regenerating the baseline immediately).
pub fn regressions_against(current: &MicroReport, baseline: &MicroReport) -> Vec<String> {
    let mut failures = Vec::new();
    for base in &baseline.kernels {
        let Some(cur) = current.kernels.iter().find(|k| k.name == base.name) else {
            continue;
        };
        let time_regressed = cur.fast_median_us > base.fast_median_us * REGRESSION_FACTOR;
        let ratio_regressed = cur.speedup < base.speedup / REGRESSION_FACTOR;
        if time_regressed && ratio_regressed {
            failures.push(format!(
                "{}: median {:.1} us vs baseline {:.1} us (> {REGRESSION_FACTOR}x) \
                 and speedup {:.2}x vs baseline {:.2}x (< 1/{REGRESSION_FACTOR})",
                base.name, cur.fast_median_us, base.fast_median_us, cur.speedup, base.speedup
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_valid_keys() {
        let rsa = rsa_fixture();
        assert_eq!(rsa.public().modulus().bit_len(), 2048);
        let paillier = paillier_fixture();
        assert_eq!(paillier.public().modulus().bit_len(), 2048);
    }

    #[test]
    fn oracles_pass_at_1_2_8_threads() {
        for t in [1, 2, 8] {
            run_oracles(t).unwrap_or_else(|e| panic!("{t} thread(s): {e}"));
        }
    }

    #[test]
    fn lane_oracle_passes() {
        run_lane_oracle().unwrap();
    }

    #[test]
    fn mont_batch_oracle_passes() {
        run_mont_batch_oracle().unwrap();
    }

    #[test]
    fn regression_gate_logic() {
        let k = |name: &str, fast: f64, speedup: f64| KernelResult {
            name: name.into(),
            generic_median_us: fast * speedup,
            fast_median_us: fast,
            speedup,
        };
        let baseline = MicroReport {
            kernels: vec![k("a", 100.0, 4.0), k("b", 10.0, 2.0)],
            oracle_threads: vec![1],
            lane_widths: vec![],
        };
        // Faster than baseline: passes.
        let good = MicroReport {
            kernels: vec![k("a", 90.0, 4.2), k("b", 11.0, 2.0)],
            oracle_threads: vec![1],
            lane_widths: vec![],
        };
        assert!(regressions_against(&good, &baseline).is_empty());
        // Uniformly slower machine (times up, ratios intact): passes.
        let slow_host = MicroReport {
            kernels: vec![k("a", 200.0, 3.9), k("b", 20.0, 2.1)],
            oracle_threads: vec![1],
            lane_widths: vec![],
        };
        assert!(regressions_against(&slow_host, &baseline).is_empty());
        // Genuine regression (slower AND ratio collapsed): fails.
        let regressed = MicroReport {
            kernels: vec![k("a", 300.0, 1.1), k("b", 10.0, 2.0)],
            oracle_threads: vec![1],
            lane_widths: vec![],
        };
        let fails = regressions_against(&regressed, &baseline);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains('a'));
        // Unknown kernels are ignored.
        let renamed = MicroReport {
            kernels: vec![k("z", 9999.0, 1.0)],
            oracle_threads: vec![1],
            lane_widths: vec![],
        };
        assert!(regressions_against(&renamed, &baseline).is_empty());
    }
}
