#![warn(missing_docs)]

//! # sies-bench
//!
//! The benchmark harness for the SIES reproduction:
//!
//! * [`calibrate`] — measures the paper's Table II primitive costs on the
//!   current host with this repository's own implementations;
//! * [`cost_model`] — the analytic models of paper §V (Equations 1–11),
//!   regenerating Table III and the model rows of Table V;
//! * [`experiments`] — measured per-party costs regenerating Figures 4,
//!   5, 6(a), 6(b) and Table V;
//! * [`throughput`] — parallel epoch-pipeline throughput vs thread
//!   count, with a digest-based determinism oracle;
//! * [`micro`] — the modular-exponentiation kernel suite (windowed
//!   Montgomery, CRT, batch inversion) measured against the generic
//!   oracles, with a CI regression gate;
//! * [`observability`] — structured per-epoch traces from the telemetry
//!   stack and the telemetry-on vs -off overhead benchmark, with a CI
//!   regression gate;
//! * [`profile`] — the continuous sampling profiler on the chaos
//!   workload (folded stacks + Chrome trace-event timeline), its paired
//!   on/off overhead gate, and the chaos-verified SLO alert detection
//!   oracle;
//! * [`forensics`] — per-epoch incident reports correlating the
//!   telemetry event journal with the replayed signed receipt journal;
//! * [`recovery`] — crash-restart recovery from the durable receipt
//!   journal: kill-restart digest identity at 1/2/8 threads plus cold
//!   replay throughput;
//! * [`report`] — ASCII tables and JSON export;
//! * the `repro` binary ties it all together (`repro --help`).

pub mod calibrate;
pub mod chart;
pub mod cost_model;
pub mod experiments;
pub mod forensics;
pub mod micro;
pub mod observability;
pub mod profile;
pub mod recovery;
pub mod report;
pub mod throughput;
pub mod timing;

pub use calibrate::{PrimitiveCosts, WireSizes};
pub use cost_model::{CostModel, ModelParams, Range};
pub use experiments::{Options, SeriesPoint};
pub use forensics::{forensic_timeline, ForensicsReport};
pub use micro::{micro_suite, MicroReport};
pub use observability::{capture_trace, overhead_suite, ObservabilityReport};
pub use profile::{detection_oracle, profile_overhead, profiled_run, ProfileReport};
pub use recovery::{recovery_suite, RecoveryReport};
pub use throughput::{throughput_suite, ThroughputPoint};
