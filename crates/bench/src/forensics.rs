//! Forensic attack timelines (`repro trace --forensics`): one journaled
//! chaos run is dissected into per-epoch incident reports by
//! correlating two independent evidence streams — the telemetry event
//! journal (what the live instrumentation saw) and the signed receipt
//! journal replayed from disk (what the querier durably committed).
//!
//! The correlation is itself an oracle: for every incident epoch the
//! receipt's ground-truth flags must agree with the telemetry events
//! (an injected attack shows an `attack_injected` event, a rejected
//! verdict shows an `epoch_rejected` event, each adoption shows its
//! `reattach`), and the replayed digest must match the live one. A
//! forensic pipeline that can't reconcile its own evidence streams
//! can't be trusted on a real incident.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use sies_core::SystemParams;
use sies_net::chaos::{run_chaos_with_restarts, RestartConfig};
use sies_net::journal::{replay, JournalConfig};
use sies_net::{SiesDeployment, Threads, Topology};
use sies_telemetry as tel;
use sies_telemetry::{Event, EventKind};
use std::collections::BTreeMap;
use std::path::Path;

use crate::observability::workload_config;

fn hex_of(digest: sies_crypto::sha256::Sha256) -> String {
    use sies_crypto::HashFunction;
    digest
        .finalize()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

/// One event kind's tally within an incident epoch.
#[derive(Debug, Clone, Serialize)]
pub struct EventCount {
    /// Event kind name (journal vocabulary, e.g. `reattach`).
    pub kind: String,
    /// Occurrences within the epoch.
    pub count: u64,
}

/// One epoch's reconstructed incident: receipt ground truth, the
/// telemetry events that corroborate it, and the cross-checks.
#[derive(Debug, Clone, Serialize)]
pub struct EpochIncident {
    /// The epoch.
    pub epoch: u64,
    /// The querier's durable verdict (`accepted`/`rejected`/`lost`).
    pub verdict: String,
    /// Receipt flag: the harness injected node crashes this epoch.
    pub crash_injected: bool,
    /// Receipt flag: the harness injected a covert attack this epoch.
    pub attack_injected: bool,
    /// Receipt flag: the attack actually corrupted the aggregate.
    pub corrupted: bool,
    /// Orphans re-homed to backup parents (from the receipt).
    pub adoptions: u64,
    /// Uplinks lost after all re-solicitation rounds (from the receipt).
    pub lost_links: u64,
    /// Telemetry event counts for this epoch, by kind name.
    pub events: Vec<EventCount>,
    /// Cross-check failures between the two evidence streams (empty for
    /// a consistent epoch).
    pub anomalies: Vec<String>,
}

/// The full forensic timeline of one journaled chaos run.
#[derive(Debug, Clone, Serialize)]
pub struct ForensicsReport {
    /// Epochs executed.
    pub epochs: u64,
    /// Telemetry events correlated.
    pub events_correlated: u64,
    /// Receipts replayed from the signed journal.
    pub receipts_replayed: u64,
    /// Result digest the live run folded.
    pub live_digest: String,
    /// Result digest the cold journal replay rebuilt.
    pub replayed_digest: String,
    /// Whether the two digests are byte-identical (asserted).
    pub digests_match: bool,
    /// Epochs where something happened: a non-accepted verdict, an
    /// injected fault, churn, or link loss.
    pub incidents: Vec<EpochIncident>,
    /// Epochs with zero anomalies across all incidents.
    pub consistent: bool,
}

/// Cross-checks one epoch's receipt against its telemetry events.
fn cross_check(
    inc: &EpochIncident,
    count: impl Fn(EventKind) -> u64,
    journal_saw_epoch: bool,
) -> Vec<String> {
    let mut anomalies = Vec::new();
    // The telemetry ring is bounded; only audit epochs it still holds.
    if !journal_saw_epoch {
        return anomalies;
    }
    if inc.attack_injected && count(EventKind::AttackInjected) == 0 {
        anomalies.push("receipt says attack injected; no attack_injected event".into());
    }
    if inc.crash_injected && count(EventKind::CrashInjected) == 0 {
        anomalies.push("receipt says crash injected; no crash_injected event".into());
    }
    if inc.adoptions != count(EventKind::Reattach) {
        anomalies.push(format!(
            "receipt counts {} adoptions; journal holds {} reattach events",
            inc.adoptions,
            count(EventKind::Reattach)
        ));
    }
    let verdict_kind = match inc.verdict.as_str() {
        "accepted" => EventKind::EpochAccepted,
        "rejected" => EventKind::EpochRejected,
        _ => EventKind::EpochLost,
    };
    if count(verdict_kind) == 0 {
        anomalies.push(format!(
            "receipt verdict {} has no matching verdict event",
            inc.verdict
        ));
    }
    anomalies
}

/// Runs the adversarial chaos workload with every receipt journaled,
/// captures the telemetry event stream alongside, replays the signed
/// journal cold, and correlates the two into per-epoch incidents.
pub fn forensic_timeline(
    seed: u64,
    epochs: u64,
    threads: Threads,
    journal_path: &Path,
) -> ForensicsReport {
    let n = 64u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topo = Topology::complete_tree(n, 4);
    let cfg = workload_config(seed, epochs, threads);
    let jcfg = JournalConfig {
        session: seed.wrapping_mul(2).wrapping_add(1),
        capacity: epochs.max(1),
        ..JournalConfig::default()
    };
    let rcfg = RestartConfig {
        journal_path: journal_path.to_path_buf(),
        journal: jcfg.clone(),
        kill_epochs: Vec::new(),
    };

    tel::set_enabled(true);
    let cap = (epochs as usize).saturating_mul(96).clamp(4096, 1 << 20);
    tel::journal().set_capacity(cap);
    let _ = tel::journal().drain();

    let outcome = run_chaos_with_restarts(&dep, &topo, &cfg, &rcfg).expect("journal I/O failed");
    let events = tel::journal().drain();
    tel::clear_enabled();

    // Independent evidence stream 2: the signed journal, replayed cold.
    let state = replay(journal_path, &jcfg).expect("forensic replay failed");
    let replayed_digest = hex_of(state.digest.clone());
    let live_digest = outcome.metrics.result_digest.clone();
    let digests_match = live_digest == replayed_digest;
    assert!(
        digests_match,
        "replayed journal digest diverged from the live run: live={live_digest} replayed={replayed_digest}"
    );

    // Index the telemetry stream by epoch.
    let mut by_epoch: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for ev in &events {
        by_epoch.entry(ev.epoch).or_default().push(ev);
    }

    let mut incidents = Vec::new();
    for receipt in &state.summary.receipts {
        let quiet = receipt.verdict == sies_receipts::Verdict::Accepted
            && !receipt.crash_injected
            && !receipt.attack_injected
            && receipt.adoptions == 0
            && receipt.lost_links == 0;
        if quiet {
            continue;
        }
        let epoch_events = by_epoch.get(&receipt.epoch);
        let mut tallies: BTreeMap<String, u64> = BTreeMap::new();
        if let Some(evs) = epoch_events {
            for ev in evs {
                *tallies.entry(ev.kind.name().to_string()).or_insert(0) += 1;
            }
        }
        let counts: Vec<EventCount> = tallies
            .into_iter()
            .map(|(kind, count)| EventCount { kind, count })
            .collect();
        let count = |k: EventKind| {
            epoch_events
                .map(|evs| evs.iter().filter(|e| e.kind == k).count() as u64)
                .unwrap_or(0)
        };
        let mut inc = EpochIncident {
            epoch: receipt.epoch,
            verdict: match receipt.verdict {
                sies_receipts::Verdict::Accepted => "accepted".into(),
                sies_receipts::Verdict::Rejected => "rejected".into(),
                sies_receipts::Verdict::Lost => "lost".into(),
            },
            crash_injected: receipt.crash_injected,
            attack_injected: receipt.attack_injected,
            corrupted: receipt.corrupted,
            adoptions: receipt.adoptions,
            lost_links: receipt.lost_links,
            events: counts,
            anomalies: Vec::new(),
        };
        inc.anomalies = cross_check(&inc, count, epoch_events.is_some());
        incidents.push(inc);
    }

    let consistent = incidents.iter().all(|i| i.anomalies.is_empty());
    ForensicsReport {
        epochs,
        events_correlated: events.len() as u64,
        receipts_replayed: state.summary.receipts.len() as u64,
        live_digest,
        replayed_digest,
        digests_match,
        incidents,
        consistent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    fn switch_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn forensic_timeline_reconciles_receipts_with_events() {
        let _guard = switch_lock();
        let dir = std::env::temp_dir().join(format!("sies-forensics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timeline.journal");
        let report = forensic_timeline(17, 60, Threads::serial(), &path);
        let _ = std::fs::remove_file(&path);

        assert!(report.digests_match);
        assert_eq!(report.receipts_replayed, 60);
        assert!(report.events_correlated > 0);
        // The adversarial mix (20% crash, 30% attack epochs) produces
        // incidents in 60 epochs with overwhelming probability.
        assert!(
            !report.incidents.is_empty(),
            "adversarial run produced no incidents"
        );
        assert!(
            report.consistent,
            "evidence streams disagree: {:?}",
            report
                .incidents
                .iter()
                .filter(|i| !i.anomalies.is_empty())
                .collect::<Vec<_>>()
        );
    }
}
