//! The `repro trace` experiment: structured per-epoch traces from the
//! telemetry stack and the telemetry-overhead benchmark
//! (`BENCH_observability.json`).
//!
//! Two phases:
//!
//! 1. **Trace** — a short chaos run with telemetry enabled and a journal
//!    sized to hold every event; the drained journal plus the global
//!    metric snapshot diff become one structured JSON document.
//! 2. **Overhead** — the reliability workload (the `adversarial` chaos
//!    mix) run repeatedly with the kill-switch alternating off/on;
//!    medians bound the record-site cost, and the chaos result digest is
//!    asserted byte-identical across the switch and across worker
//!    thread counts 1/2/8.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use sies_core::SystemParams;
use sies_net::chaos::{run_chaos, ChaosConfig};
use sies_net::recovery::RecoveryConfig;
use sies_net::{SiesDeployment, Threads, Topology};
use sies_telemetry as tel;
use sies_telemetry::{Event, Snapshot};
use std::time::Instant;

/// The chaos mix the overhead benchmark and the trace both run: the
/// reliability experiment's `adversarial` scenario (10% frame loss, 20%
/// crash epochs, 30% attack epochs) at `N = 64, F = 4`.
pub fn workload_config(seed: u64, epochs: u64, threads: Threads) -> ChaosConfig {
    ChaosConfig {
        seed,
        epochs,
        loss_rate: 0.10,
        max_retries: 3,
        crash_prob: 0.20,
        attack_prob: 0.30,
        max_value: 1000,
        recovery: RecoveryConfig::default(),
        threads,
    }
}

fn deployment(seed: u64) -> (SiesDeployment, Topology) {
    let n = 64u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    (dep, Topology::complete_tree(n, 4))
}

// ---------------------------------------------------------------------
// Phase 1: structured per-epoch trace
// ---------------------------------------------------------------------

/// A captured trace: the journal's typed events, the metric snapshot
/// diff the run produced, and the run's result fingerprint.
pub struct Trace {
    /// Epochs traced.
    pub epochs: u64,
    /// Chaos result digest of the traced run.
    pub result_digest: String,
    /// Every journal event the run recorded, in order.
    pub events: Vec<Event>,
    /// Events evicted because the ring filled (0 when the journal was
    /// sized for the run).
    pub dropped: u64,
    /// Global metric diff attributable to the traced run.
    pub metrics: Snapshot,
}

impl Trace {
    /// Renders the trace as one JSON document: run metadata, the event
    /// stream, and the metric snapshot.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 4096);
        out.push_str("{\n  \"epochs\": ");
        out.push_str(&self.epochs.to_string());
        out.push_str(",\n  \"result_digest\": \"");
        out.push_str(&self.result_digest);
        out.push_str("\",\n  \"dropped_events\": ");
        out.push_str(&self.dropped.to_string());
        out.push_str(",\n  \"events\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&ev.to_json());
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"metrics\": ");
        out.push_str(&self.metrics.to_json());
        out.push_str("\n}\n");
        out
    }

    /// Events recorded for one epoch, in journal order.
    pub fn epoch_events(&self, epoch: u64) -> Vec<&Event> {
        self.events.iter().filter(|e| e.epoch == epoch).collect()
    }
}

/// Runs `epochs` of the trace workload with telemetry enabled and a
/// journal sized to hold every event, then drains journal and metrics.
pub fn capture_trace(seed: u64, epochs: u64, threads: Threads) -> Trace {
    let (dep, topo) = deployment(seed);
    let cfg = workload_config(seed, epochs, threads);

    tel::set_enabled(true);
    // ~96 events/epoch bounds the adversarial mix at N=64 comfortably.
    let cap = (epochs as usize).saturating_mul(96).clamp(4096, 1 << 20);
    tel::journal().set_capacity(cap);
    let _ = tel::journal().drain();
    let dropped_before = tel::journal().dropped();
    let before = tel::global().snapshot();

    let m = run_chaos(&dep, &topo, &cfg);

    let after = tel::global().snapshot();
    let events = tel::journal().drain();
    let dropped = tel::journal().dropped() - dropped_before;
    tel::clear_enabled();

    Trace {
        epochs,
        result_digest: m.result_digest,
        events,
        dropped,
        metrics: after.diff(&before),
    }
}

// ---------------------------------------------------------------------
// Phase 2: overhead benchmark
// ---------------------------------------------------------------------

/// Digest of one thread-count determinism run.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadDigest {
    /// Worker threads the run used.
    pub threads: u64,
    /// Chaos result digest it produced.
    pub digest: String,
}

/// Telemetry-on vs telemetry-off cost on the reliability workload, plus
/// the determinism evidence, ready for `BENCH_observability.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ObservabilityReport {
    /// Epochs measured per mode per round (run as ten interleaved
    /// segments of `epochs / 10`).
    pub epochs: u64,
    /// Measured rounds per kill-switch setting.
    pub runs_per_mode: u64,
    /// Wall-clock of each telemetry-off round, milliseconds.
    pub off_ms: Vec<f64>,
    /// Wall-clock of each telemetry-on round, milliseconds.
    pub on_ms: Vec<f64>,
    /// Median of `off_ms`.
    pub off_median_ms: f64,
    /// Median of `on_ms`.
    pub on_median_ms: f64,
    /// Best (minimum) of `off_ms`.
    pub off_min_ms: f64,
    /// Best (minimum) of `on_ms`.
    pub on_min_ms: f64,
    /// Median of the per-pair ratios `on_i / off_i`, minus one, in
    /// percent; negative means noise favoured on. The runs alternate
    /// off/on, so each ratio compares two back-to-back runs and host
    /// frequency drift cancels out of the quotient (the same
    /// interleaved-sampling idiom `repro micro` uses); the median then
    /// sheds pairs hit by a scheduling burst. Medians, minima and raw
    /// samples are reported alongside for context.
    pub overhead_pct: f64,
    /// Result digest with telemetry off.
    pub digest_off: String,
    /// Result digest with telemetry on.
    pub digest_on: String,
    /// Whether the digests match (asserted: they must).
    pub digests_match: bool,
    /// Digest per worker-thread count, telemetry on.
    pub thread_digests: Vec<ThreadDigest>,
    /// Whether every thread count produced the same digest.
    pub threads_invariant: bool,
}

fn median(samples: &[f64]) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Measures the chaos workload `runs_per_mode` rounds per kill-switch
/// setting — each round interleaves ten short off/on segment pairs so
/// host drift hits both modes equally — then checks digest identity
/// across the switch and across threads 1/2/8.
///
/// Panics if either determinism check fails — the benchmark doubles as
/// the telemetry-transparency oracle.
pub fn overhead_suite(
    seed: u64,
    epochs: u64,
    threads: Threads,
    runs_per_mode: u64,
) -> ObservabilityReport {
    let (dep, topo) = deployment(seed);

    // Hosts (especially shared or thermally-throttled single-core ones)
    // flip between CPU frequency states on a ~100 ms timescale, which
    // makes whole-run wall-clocks bimodal. Chopping each measured round
    // into short alternating off/on segment pairs keeps both modes
    // inside the same host state, so the per-round ratio compares like
    // with like; the identical segment workload also means every
    // segment's digest is directly comparable across modes.
    const SEGMENTS: u64 = 20;
    let seg_epochs = (epochs / SEGMENTS).max(1);
    let cfg = workload_config(seed, seg_epochs, threads);

    let run_seg = |enabled: bool| -> (f64, String) {
        tel::set_enabled(enabled);
        let t0 = Instant::now();
        let m = run_chaos(&dep, &topo, &cfg);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        tel::clear_enabled();
        (ms, m.result_digest)
    };

    let mut off_ms = Vec::new();
    let mut on_ms = Vec::new();
    let mut digest_off = String::new();
    let mut digest_on = String::new();
    for _ in 0..runs_per_mode.max(1) {
        let mut off_t = 0.0;
        let mut on_t = 0.0;
        for seg in 0..SEGMENTS {
            // Balance pair order (off-first on even segments, on-first
            // on odd) so neither mode systematically occupies the same
            // position relative to periodic host-state flips.
            let first_off = seg % 2 == 0;
            let (ms_a, d_a) = run_seg(!first_off);
            let (ms_b, d_b) = run_seg(first_off);
            let (ms_off, d_off, ms_on, d_on) = if first_off {
                (ms_a, d_a, ms_b, d_b)
            } else {
                (ms_b, d_b, ms_a, d_a)
            };
            off_t += ms_off;
            digest_off = d_off;
            on_t += ms_on;
            digest_on = d_on;
        }
        off_ms.push(off_t);
        on_ms.push(on_t);
    }
    let digests_match = digest_off == digest_on;
    assert!(
        digests_match,
        "telemetry changed the chaos result digest: off={digest_off} on={digest_on}"
    );

    let thread_digests: Vec<ThreadDigest> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            tel::set_enabled(true);
            let cfg = ChaosConfig {
                threads: Threads::fixed(t),
                ..cfg
            };
            let m = run_chaos(&dep, &topo, &cfg);
            tel::clear_enabled();
            ThreadDigest {
                threads: t as u64,
                digest: m.result_digest,
            }
        })
        .collect();
    let threads_invariant = thread_digests
        .iter()
        .all(|d| d.digest == thread_digests[0].digest && d.digest == digest_on);
    assert!(
        threads_invariant,
        "chaos result digest varied with thread count: {thread_digests:?}"
    );

    let off_median_ms = median(&off_ms);
    let on_median_ms = median(&on_ms);
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let off_min_ms = min(&off_ms);
    let on_min_ms = min(&on_ms);
    let ratios: Vec<f64> = off_ms.iter().zip(&on_ms).map(|(o, n)| n / o).collect();
    let overhead_pct = (median(&ratios) - 1.0) * 100.0;

    ObservabilityReport {
        epochs,
        runs_per_mode: runs_per_mode.max(1),
        off_ms,
        on_ms,
        off_median_ms,
        on_median_ms,
        off_min_ms,
        on_min_ms,
        overhead_pct,
        digest_off,
        digest_on,
        digests_match,
        thread_digests,
        threads_invariant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Tests here flip the process-global kill-switch; serialize them.
    fn switch_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn trace_captures_events_and_metrics() {
        let _guard = switch_lock();
        // The journal and kill-switch are process-global and the switch
        // defaults ON, so unrelated tests running concurrently in this
        // binary can push events into the shared ring and evict ours.
        // Capturing is deterministic: re-capture if a concurrent burst
        // polluted the window (drops are all but impossible thrice).
        let mut trace = capture_trace(5, 8, Threads::serial());
        for _ in 0..2 {
            if trace.dropped == 0 {
                break;
            }
            trace = capture_trace(5, 8, Threads::serial());
        }
        assert_eq!(trace.epochs, 8);
        assert_eq!(trace.result_digest.len(), 64);
        assert_eq!(trace.dropped, 0);
        assert!(
            trace.events.len() >= 8 * 3,
            "expected at least dissemination/source-init/verdict per epoch, got {}",
            trace.events.len()
        );
        // Every epoch shows up, and the per-epoch view agrees.
        for epoch in 0..8 {
            assert!(
                !trace.epoch_events(epoch).is_empty(),
                "epoch {epoch} recorded no events"
            );
        }
        assert!(trace.metrics.counter("engine.sources_run") >= 8);
        let json = trace.to_json();
        assert!(json.contains("\"result_digest\""));
        assert!(json.contains("query_disseminated"));
    }

    #[test]
    fn overhead_suite_is_deterministic_across_modes() {
        let _guard = switch_lock();
        let report = overhead_suite(7, 12, Threads::serial(), 1);
        assert!(report.digests_match);
        assert!(report.threads_invariant);
        assert_eq!(report.thread_digests.len(), 3);
        assert!(report.off_median_ms > 0.0 && report.on_median_ms > 0.0);
    }
}
