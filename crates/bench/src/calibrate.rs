//! Primitive-cost calibration: the reproduction's Table II.
//!
//! The paper's cost models (§V) are parameterized by the costs of nine
//! primitive operations measured on the authors' 2.66 GHz Core i7. We
//! measure the same nine primitives on the current host with our own
//! implementations, then feed either set into the same equations.

use crate::timing::time_mean_us;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use sies_baselines::sketch::FmSketch;
use sies_crypto::biguint::BigUint;
use sies_crypto::prf;
use sies_crypto::rsa::RsaKeyPair;
use sies_crypto::u256::U256;
use sies_crypto::DEFAULT_PRIME_256;

/// The nine primitive costs of Table II, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PrimitiveCosts {
    /// `C_sk`: one sketch insertion.
    pub c_sk: f64,
    /// `C_RSA`: one 1024-bit raw RSA encryption (e = 3).
    pub c_rsa: f64,
    /// `C_HM1`: one HMAC-SHA-1.
    pub c_hm1: f64,
    /// `C_HM256`: one HMAC-SHA-256.
    pub c_hm256: f64,
    /// `C_A20`: 20-byte modular addition.
    pub c_a20: f64,
    /// `C_A32`: 32-byte modular addition.
    pub c_a32: f64,
    /// `C_M32`: 32-byte modular multiplication.
    pub c_m32: f64,
    /// `C_M128`: 128-byte modular multiplication.
    pub c_m128: f64,
    /// `C_MI32`: 32-byte modular multiplicative inverse.
    pub c_mi32: f64,
}

/// Wire sizes of Table II, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WireSizes {
    /// `S_sk`: one sketch value.
    pub s_sk: usize,
    /// `S_inf`: one inflation certificate.
    pub s_inf: usize,
    /// `S_SEAL`: one SEAL (RSA modulus width).
    pub s_seal: usize,
}

impl WireSizes {
    /// The paper's sizes: 1 B sketches, 20 B certificates, 128 B SEALs.
    pub const PAPER: WireSizes = WireSizes {
        s_sk: 1,
        s_inf: 20,
        s_seal: 128,
    };
}

impl PrimitiveCosts {
    /// The paper's Table II typical values (µs, 2.66 GHz Core i7,
    /// GNU MP + OpenSSL).
    pub const PAPER: PrimitiveCosts = PrimitiveCosts {
        c_sk: 0.037,
        c_rsa: 5.36,
        c_hm1: 0.46,
        c_hm256: 1.02,
        c_a20: 0.15,
        c_a32: 0.37,
        c_m32: 0.45,
        c_m128: 1.39,
        c_mi32: 3.2,
    };

    /// Measures all nine primitives on this host using this repository's
    /// implementations. `quick` trades some precision for speed (used by
    /// tests).
    pub fn calibrate(quick: bool) -> PrimitiveCosts {
        let iters = if quick { 2_000 } else { 50_000 };
        let mut rng = StdRng::seed_from_u64(0xCA11_B8A7E);

        // Operands representative of protocol state.
        let p256 = DEFAULT_PRIME_256;
        let a32 = U256::from_be_bytes(&[0xA7; 32]).rem(&p256);
        let b32 = U256::from_be_bytes(&[0x5C; 32]).rem(&p256);
        let n160 = U256::ONE.shl(160);
        let a20 = a32.rem(&n160);
        let b20 = b32.rem(&n160);
        let key20 = [0x42u8; 20];

        // RSA with the paper's 1024-bit modulus.
        let rsa = RsaKeyPair::generate(&mut rng, 1024).public().clone();
        let msg = BigUint::from_be_bytes(&[0x31; 100]);
        let n128 = rsa.modulus().clone();
        let x128 = msg.rem(&n128);
        let y128 = BigUint::from_be_bytes(&[0x77; 120]).rem(&n128);

        // C_sk measured as amortized per-item insertion cost (SECOA's
        // J·v term inserts items in bulk, so the loop is what matters).
        let c_sk = {
            let batch = 10_000u64;
            time_mean_us(iters / 100 + 1, || {
                let mut s = FmSketch::new();
                s.insert_value(1, 2, std::hint::black_box(batch));
                s
            }) / batch as f64
        };
        let c_rsa = time_mean_us(iters / 4 + 1, || rsa.encrypt(std::hint::black_box(&x128)));
        let mut t = 0u64;
        let c_hm1 = time_mean_us(iters, || {
            t = t.wrapping_add(1);
            prf::hm1_epoch(&key20, t)
        });
        let c_hm256 = time_mean_us(iters, || {
            t = t.wrapping_add(1);
            prf::hm256_epoch(&key20, t)
        });
        // black_box the operands (not just the result) so LLVM cannot
        // hoist the loop-invariant computation out of the timing loop.
        use std::hint::black_box;
        let c_a20 = time_mean_us(iters * 4, || {
            black_box(&a20).add_mod(black_box(&b20), &n160)
        });
        let c_a32 = time_mean_us(iters * 4, || {
            black_box(&a32).add_mod(black_box(&b32), &p256)
        });
        let c_m32 = time_mean_us(iters * 2, || {
            black_box(&a32).mul_mod(black_box(&b32), &p256)
        });
        let c_m128 = time_mean_us(iters, || black_box(&x128).mul_mod(black_box(&y128), &n128));
        // Euclid-based inverse, matching how the paper's C_MI32 was
        // measured (GMP mpz_invert); the Fermat path is benchmarked
        // separately in the ablation suite.
        let c_mi32 = time_mean_us(iters / 10 + 1, || black_box(&a32).inv_mod_euclid(&p256));

        PrimitiveCosts {
            c_sk,
            c_rsa,
            c_hm1,
            c_hm256,
            c_a20,
            c_a32,
            c_m32,
            c_m128,
            c_mi32,
        }
    }

    /// All costs as (symbol, value) pairs for reporting.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("C_sk", self.c_sk),
            ("C_RSA", self.c_rsa),
            ("C_HM1", self.c_hm1),
            ("C_HM256", self.c_hm256),
            ("C_A20", self.c_a20),
            ("C_A32", self.c_a32),
            ("C_M32", self.c_m32),
            ("C_M128", self.c_m128),
            ("C_MI32", self.c_mi32),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_positive_ordered_costs() {
        let c = PrimitiveCosts::calibrate(true);
        for (name, v) in c.rows() {
            assert!(v > 0.0, "{name} non-positive: {v}");
            assert!(v < 10_000.0, "{name} implausibly slow: {v} µs");
        }
        // Structural orderings that must hold on any host:
        assert!(
            c.c_rsa > c.c_m128,
            "RSA(e=3) is at least two 128-byte modmuls"
        );
        assert!(c.c_m128 > c.c_m32, "1024-bit modmul slower than 256-bit");
        assert!(c.c_mi32 > c.c_m32, "inverse slower than one multiplication");
        assert!(c.c_sk < c.c_hm1, "sketch insertion cheaper than an HMAC");
        assert!(
            c.c_a32 < c.c_m32,
            "modular addition cheaper than multiplication"
        );
    }

    #[test]
    fn paper_constants_match_table_ii() {
        let p = PrimitiveCosts::PAPER;
        assert_eq!(p.c_rsa, 5.36);
        assert_eq!(p.c_hm1, 0.46);
        assert_eq!(WireSizes::PAPER.s_seal, 128);
    }
}
