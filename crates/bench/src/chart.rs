//! ASCII log-scale charts: the paper's figures are log-Y plots, and the
//! `repro` binary renders the same visual next to each numeric table so
//! the crossover structure is visible at a glance.

/// One plotted series: a marker character and its Y values (one per X
/// position). Non-positive values are skipped.
pub struct Series<'a> {
    /// Single-character marker used on the canvas.
    pub marker: char,
    /// Human-readable name for the legend.
    pub name: &'a str,
    /// Y values, one per X tick.
    pub values: &'a [f64],
}

/// Renders a log₁₀-Y ASCII chart with one column per X tick.
///
/// The Y axis spans the decades covering every finite positive value.
/// Returns a multi-line string ending in a newline. Panics when series
/// lengths disagree with the tick count.
pub fn render_log_chart(title: &str, x_labels: &[String], series: &[Series<'_>]) -> String {
    assert!(!x_labels.is_empty(), "need at least one X tick");
    for s in series {
        assert_eq!(
            s.values.len(),
            x_labels.len(),
            "series '{}' length mismatch",
            s.name
        );
    }

    let positives: Vec<f64> = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if positives.is_empty() {
        return format!("{title}\n(no positive data)\n");
    }
    let lo_decade = positives
        .iter()
        .fold(f64::INFINITY, |a, &b| a.min(b))
        .log10()
        .floor() as i32;
    let hi_decade = positives
        .iter()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        .log10()
        .ceil() as i32;
    let hi_decade = hi_decade.max(lo_decade + 1);

    // 2 rows per decade for readability.
    let rows_per_decade = 2;
    let n_rows = ((hi_decade - lo_decade) * rows_per_decade + 1) as usize;
    let col_width = x_labels.iter().map(|l| l.len()).max().unwrap_or(1).max(3) + 2;
    let y_label_width = 8;

    let mut canvas = vec![vec![' '; x_labels.len() * col_width]; n_rows];
    for s in series {
        for (x, &v) in s.values.iter().enumerate() {
            if !(v.is_finite() && v > 0.0) {
                continue;
            }
            let frac = (v.log10() - lo_decade as f64) / (hi_decade - lo_decade) as f64;
            let row_from_bottom = (frac * (n_rows - 1) as f64).round() as usize;
            let row = n_rows - 1 - row_from_bottom.min(n_rows - 1);
            let col = x * col_width + col_width / 2;
            // Collisions: later series overwrite with a shared marker.
            canvas[row][col] = if canvas[row][col] == ' ' {
                s.marker
            } else {
                '*'
            };
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in canvas.iter().enumerate() {
        let row_from_bottom = n_rows - 1 - i;
        let label = if row_from_bottom.is_multiple_of(rows_per_decade as usize) {
            let decade = lo_decade + (row_from_bottom / rows_per_decade as usize) as i32;
            format!("{:>width$} |", format!("1e{decade}"), width = y_label_width)
        } else {
            format!("{:>width$} |", "", width = y_label_width)
        };
        out.push_str(&label);
        let line: String = row.iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    // X axis.
    out.push_str(&format!(
        "{:>width$} +{}\n",
        "",
        "-".repeat(x_labels.len() * col_width),
        width = y_label_width
    ));
    out.push_str(&format!("{:>width$}  ", "", width = y_label_width));
    for l in x_labels {
        out.push_str(&format!("{l:^col_width$}"));
    }
    out.push('\n');
    // Legend.
    out.push_str(&format!("{:>width$}  ", "", width = y_label_width));
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} = {}", s.marker, s.name))
        .collect();
    out.push_str(&legend.join(", "));
    out.push_str(" (* = overlap)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn renders_monotone_series() {
        let xs = labels(4);
        let chart = render_log_chart(
            "test",
            &xs,
            &[Series {
                marker: 'S',
                name: "sies",
                values: &[1.0, 10.0, 100.0, 1000.0],
            }],
        );
        assert!(chart.contains("1e0"));
        assert!(chart.contains("1e3"));
        assert_eq!(chart.matches('S').count(), 5, "4 points + legend:\n{chart}");
    }

    #[test]
    fn separated_series_get_distinct_rows() {
        let xs = labels(2);
        let chart = render_log_chart(
            "t",
            &xs,
            &[
                Series {
                    marker: 'a',
                    name: "low",
                    values: &[1.0, 1.0],
                },
                Series {
                    marker: 'b',
                    name: "high",
                    values: &[1e6, 1e6],
                },
            ],
        );
        // Find rows containing markers; they must differ.
        let a_row = chart
            .lines()
            .position(|l| l.contains('a') && l.contains('|'));
        let b_row = chart
            .lines()
            .position(|l| l.contains('b') && l.contains('|'));
        assert_ne!(a_row, b_row, "{chart}");
        // The high series must appear above the low one.
        assert!(b_row < a_row, "{chart}");
    }

    #[test]
    fn overlapping_points_become_stars() {
        let xs = labels(1);
        let chart = render_log_chart(
            "t",
            &xs,
            &[
                Series {
                    marker: 'a',
                    name: "one",
                    values: &[5.0],
                },
                Series {
                    marker: 'b',
                    name: "two",
                    values: &[5.0],
                },
            ],
        );
        assert!(chart.contains('*'), "{chart}");
    }

    #[test]
    fn non_positive_values_skipped() {
        let xs = labels(3);
        let chart = render_log_chart(
            "t",
            &xs,
            &[Series {
                marker: 'z',
                name: "skipped",
                values: &[0.0, -1.0, 10.0],
            }],
        );
        // Only the positive point plus the legend marker.
        assert_eq!(chart.matches('z').count(), 2, "{chart}");
    }

    #[test]
    fn empty_data_is_graceful() {
        let chart = render_log_chart(
            "t",
            &labels(2),
            &[Series {
                marker: 'q',
                name: "none",
                values: &[0.0, 0.0],
            }],
        );
        assert!(chart.contains("no positive data"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        render_log_chart(
            "t",
            &labels(3),
            &[Series {
                marker: 'x',
                name: "bad",
                values: &[1.0],
            }],
        );
    }
}
