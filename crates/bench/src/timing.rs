//! Small timing helpers for the calibration pass and the experiment
//! harness (wall-clock medians over repeated runs; Criterion handles the
//! statistically rigorous microbenchmarks separately).
//!
//! Every measured section also runs inside a telemetry span, so `repro
//! micro` and `repro trace` report bench wall-clock from the same clock
//! and the span histograms (`bench.mean_batch`, `bench.median_run`,
//! `bench.probe`) show up in trace snapshots.

use sies_telemetry as tel;
use std::time::Instant;

/// Times `op` executed `iters` times and returns the mean cost of one
/// execution in microseconds. `op` should return a value that depends on
/// its work; it is passed through [`std::hint::black_box`].
pub fn time_mean_us<T, F: FnMut() -> T>(iters: usize, mut op: F) -> f64 {
    assert!(iters > 0);
    let _section = tel::span!("bench.mean_batch");
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(op());
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Runs `op` `runs` times, timing each run once, and returns the median in
/// microseconds — robust against scheduler noise for operations too slow
/// to loop thousands of times.
pub fn time_median_us<T, F: FnMut() -> T>(runs: usize, mut op: F) -> f64 {
    assert!(runs > 0);
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let _run = tel::span!("bench.median_run");
            let start = Instant::now();
            std::hint::black_box(op());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Picks an iteration count so one measurement batch takes roughly
/// `target_ms`, based on a best-of-3 probe of `op`: the fastest probe
/// estimates steady-state cost, so a cold first call (page faults,
/// allocator warm-up, lazy statics) can no longer undersize the batch.
pub fn auto_iters<T, F: FnMut() -> T>(op: &mut F, target_ms: f64) -> usize {
    let mut probe = f64::INFINITY;
    for _ in 0..3 {
        let _p = tel::span!("bench.probe");
        let start = Instant::now();
        std::hint::black_box(op());
        probe = probe.min(start.elapsed().as_secs_f64() * 1e3);
    }
    if !probe.is_finite() || probe <= 0.0 {
        return 10_000;
    }
    ((target_ms / probe).ceil() as usize).clamp(1, 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_positive_and_sane() {
        let mut x = 0u64;
        let us = time_mean_us(1000, || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(us > 0.0);
        assert!(us < 1000.0, "a multiply took {us} µs?");
    }

    #[test]
    fn median_is_positive() {
        let us = time_median_us(5, || std::hint::black_box((0..1000).sum::<u64>()));
        assert!(us > 0.0);
    }

    #[test]
    fn auto_iters_bounded() {
        let mut f = || 1u64;
        let iters = auto_iters(&mut f, 1.0);
        assert!((1..=1_000_000).contains(&iters));
    }
}
