//! The `repro recovery` experiment: crash-restart recovery from the
//! durable signed receipt journal (`BENCH_recovery.json`).
//!
//! Three claims, all asserted (the benchmark doubles as the recovery
//! oracle):
//!
//! 1. **Digest identity across restarts** — a chaos run whose querier is
//!    killed at seeded epochs and rebuilt *only* from the journal ends
//!    with metrics and a result digest byte-identical to the same
//!    seed's uninterrupted run, at worker threads 1/2/8.
//! 2. **Soundness across restarts** — zero false accepts, zero false
//!    rejects, zero sum mismatches, restarts included.
//! 3. **Replay equals live** — a cold [`replay`] of the finished
//!    journal reproduces the live digest, and its throughput
//!    (records/sec, MB/sec) plus the journal's bytes/epoch are the
//!    numbers a deployment would size its recovery window with.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use sies_core::SystemParams;
use sies_net::chaos::{
    run_chaos, run_chaos_with_restarts, ChaosConfig, ChaosMetrics, RestartConfig,
};
use sies_net::journal::{replay, JournalConfig};
use sies_net::recovery::RecoveryConfig;
use sies_net::{SiesDeployment, Threads, Topology};
use std::path::PathBuf;
use std::time::Instant;

/// The chaos mix the recovery benchmark runs: the reliability
/// experiment's `adversarial` scenario (10% frame loss, 20% crash
/// epochs, 30% attack epochs) at `N = 64, F = 4`.
pub fn workload_config(seed: u64, epochs: u64, threads: Threads) -> ChaosConfig {
    ChaosConfig {
        seed,
        epochs,
        loss_rate: 0.10,
        max_retries: 3,
        crash_prob: 0.20,
        attack_prob: 0.30,
        max_value: 1000,
        recovery: RecoveryConfig::default(),
        threads,
    }
}

fn deployment(seed: u64) -> (SiesDeployment, Topology) {
    let n = 64u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    (dep, Topology::complete_tree(n, 4))
}

fn journal_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sies-recovery-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.journal"))
}

/// Digest of one restarted run at a given worker-thread count.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadDigest {
    /// Worker threads the run used.
    pub threads: u64,
    /// Chaos result digest the restarted run produced.
    pub digest: String,
    /// Kill-restart cycles the run executed.
    pub restarts: u64,
}

/// Everything `repro recovery` measures, ready for
/// `BENCH_recovery.json`.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryReport {
    /// Epochs per run.
    pub epochs: u64,
    /// Seeded epochs at whose start the querier was killed.
    pub kill_epochs: Vec<u64>,
    /// Kill-restart cycles executed by the primary restarted run.
    pub restarts: u64,
    /// Receipts replayed from the journal across all restarts.
    pub replayed_receipts: u64,
    /// Restarts that found (and tolerated) a torn final record.
    pub torn_tails: u64,
    /// Final journal size in bytes.
    pub journal_bytes: u64,
    /// Journal bytes per epoch (size / epochs).
    pub bytes_per_epoch: f64,
    /// Wall-clock of one cold full-journal replay, milliseconds.
    pub replay_ms: f64,
    /// Receipts authenticated and folded per second during that replay.
    pub replay_records_per_sec: f64,
    /// Journal megabytes scanned per second during that replay.
    pub replay_mb_per_sec: f64,
    /// Result digest of the uninterrupted run.
    pub live_digest: String,
    /// Result digest of the kill-restart run.
    pub restarted_digest: String,
    /// Result digest rebuilt by the cold replay alone.
    pub replayed_digest: String,
    /// Whether all three digests are byte-identical (asserted).
    pub digests_match: bool,
    /// False accepts across the restarted run (asserted zero).
    pub false_accepts: u64,
    /// False rejects across the restarted run (asserted zero).
    pub false_rejects: u64,
    /// Sum mismatches across the restarted run (asserted zero).
    pub sum_mismatches: u64,
    /// Availability of the restarted run.
    pub availability: f64,
    /// Restarted-run digest per worker-thread count.
    pub thread_digests: Vec<ThreadDigest>,
    /// Whether every thread count matched the live digest (asserted).
    pub threads_invariant: bool,
}

fn hex_of(digest: sies_crypto::sha256::Sha256) -> String {
    use sies_crypto::HashFunction;
    digest
        .finalize()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

/// Runs the recovery benchmark: an uninterrupted baseline, a seeded
/// kill-restart run on the same fault stream, a thread sweep at 1/2/8,
/// and a timed cold replay of the finished journal. When `keep_journal`
/// is set, the primary run's finished journal is copied there (CI
/// uploads it as the run's durable artifact).
///
/// Panics if any digest diverges or any run is unsound — recovery that
/// loses or invents state must fail the benchmark, not ship a number.
pub fn recovery_suite(
    seed: u64,
    epochs: u64,
    threads: Threads,
    kills: usize,
    keep_journal: Option<&std::path::Path>,
) -> RecoveryReport {
    let (dep, topo) = deployment(seed);
    let cfg = workload_config(seed, epochs, threads);
    let baseline = run_chaos(&dep, &topo, &cfg);

    let jcfg = JournalConfig {
        session: seed,
        capacity: epochs.max(1024),
        ..JournalConfig::default()
    };
    // A dedicated kill-schedule seed keeps the fault stream identical to
    // the baseline's.
    let kill_epochs = RestartConfig::seeded_kills(seed.wrapping_add(0x9E37), epochs, kills);

    let assert_run = |m: &ChaosMetrics, restarts: u64, label: &str| {
        assert!(
            m.sound(),
            "{label}: unsound across restarts (fa={} fr={} sm={})",
            m.false_accepts,
            m.false_rejects,
            m.sum_mismatches
        );
        assert_eq!(
            m.result_digest, baseline.result_digest,
            "{label}: restarted digest diverged from the uninterrupted run"
        );
        assert_eq!(restarts, kill_epochs.len() as u64, "{label}: missed kills");
    };

    let rcfg = RestartConfig {
        journal_path: journal_path(&format!("primary-{seed}")),
        journal: jcfg.clone(),
        kill_epochs: kill_epochs.clone(),
    };
    let out = run_chaos_with_restarts(&dep, &topo, &cfg, &rcfg).expect("journal I/O failed");
    assert_run(&out.metrics, out.restarts, "primary");
    assert_eq!(
        out.metrics, baseline,
        "restarted metrics diverged from the uninterrupted run"
    );

    // Cold replay of the finished journal: authenticate every record,
    // rebuild the digest, time it.
    let journal_bytes = std::fs::metadata(&rcfg.journal_path)
        .map(|m| m.len())
        .unwrap_or(0);
    let t0 = Instant::now();
    let state = replay(&rcfg.journal_path, &jcfg).expect("cold replay failed");
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
    let replayed_digest = hex_of(state.digest.clone());
    assert_eq!(
        replayed_digest, baseline.result_digest,
        "cold replay digest diverged from the live run"
    );
    assert_eq!(state.summary.receipts.len() as u64, epochs);
    let replay_secs = (replay_ms / 1e3).max(1e-9);
    let replay_records_per_sec = state.summary.receipts.len() as f64 / replay_secs;
    let replay_mb_per_sec = journal_bytes as f64 / 1e6 / replay_secs;

    // Thread sweep: the whole kill-restart story must be worker-count
    // invariant, like every other engine metric.
    let thread_digests: Vec<ThreadDigest> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            let cfg = ChaosConfig {
                threads: Threads::fixed(t),
                ..cfg
            };
            let rcfg = RestartConfig {
                journal_path: journal_path(&format!("threads{t}-{seed}")),
                journal: jcfg.clone(),
                kill_epochs: kill_epochs.clone(),
            };
            let out = run_chaos_with_restarts(&dep, &topo, &cfg, &rcfg).expect("journal I/O");
            assert_run(&out.metrics, out.restarts, &format!("threads={t}"));
            let _ = std::fs::remove_file(&rcfg.journal_path);
            ThreadDigest {
                threads: t as u64,
                digest: out.metrics.result_digest,
                restarts: out.restarts,
            }
        })
        .collect();
    let threads_invariant = thread_digests
        .iter()
        .all(|d| d.digest == baseline.result_digest);
    assert!(
        threads_invariant,
        "thread sweep diverged: {thread_digests:?}"
    );
    if let Some(dest) = keep_journal {
        if let Some(parent) = dest.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let _ = std::fs::copy(&rcfg.journal_path, dest);
    }
    let _ = std::fs::remove_file(&rcfg.journal_path);

    RecoveryReport {
        epochs,
        kill_epochs,
        restarts: out.restarts,
        replayed_receipts: out.replayed_receipts,
        torn_tails: out.torn_tails,
        journal_bytes,
        bytes_per_epoch: journal_bytes as f64 / epochs.max(1) as f64,
        replay_ms,
        replay_records_per_sec,
        replay_mb_per_sec,
        live_digest: baseline.result_digest.clone(),
        restarted_digest: out.metrics.result_digest.clone(),
        replayed_digest,
        digests_match: true,
        false_accepts: out.metrics.false_accepts,
        false_rejects: out.metrics.false_rejects,
        sum_mismatches: out.metrics.sum_mismatches,
        availability: out.metrics.availability(),
        thread_digests,
        threads_invariant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_suite_asserts_identity_on_a_short_run() {
        let report = recovery_suite(5, 40, Threads::serial(), 2, None);
        assert_eq!(report.epochs, 40);
        assert_eq!(report.kill_epochs.len(), 2);
        assert_eq!(report.restarts, 2);
        assert!(report.digests_match && report.threads_invariant);
        assert!(report.replayed_receipts > 0);
        assert!(report.journal_bytes > 0);
        assert!(report.bytes_per_epoch > 0.0);
        assert_eq!(report.live_digest, report.replayed_digest);
        assert_eq!(report.false_accepts + report.false_rejects, 0);
    }
}
