//! Flajolet–Martin / AMS-style sketches for distinct-item counting — the
//! approximation engine behind SECOA's SUM support (paper §II-D).
//!
//! A source with value `v` inserts `v` distinct items `(source, 0..v)`
//! into each of `J` sketches; a sketch stores the maximum *rank* (number
//! of trailing zero bits of a per-sketch item hash) over its items. Ranks
//! merge under `max`, so in-network aggregation is trivially order- and
//! duplicate-insensitive, and the count of distinct items — here `Σ v_i` —
//! is estimated as `2^x̄` (the paper's formulation), debiased by the
//! max-rank constant `0.332746` bits.

use rand::Rng;
use rand::RngCore;

/// Bias of the max-rank statistic: for `n` items with geometric ranks,
/// `E[max rank] ≈ log₂(n) + 0.332746` (the paper abbreviates the
/// estimator to `2^x̄`; subtracting the bias recovers `n`).
pub const MAX_RANK_BIAS: f64 = 0.332_746;

/// Maximum storable rank: a sketch value fits one byte on the wire
/// (`S_sk = 1` byte, paper Table II).
pub const MAX_RANK: u8 = 63;

/// Cheap 64-bit mixer (splitmix64 finalizer). Sketch hashing is not a
/// cryptographic operation — the paper prices it at `C_sk ≈ 0.037 µs`,
/// i.e. a couple of multiplies.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The rank (trailing-zero count) of an item under sketch `sketch_idx`'s
/// hash function.
#[inline]
fn rank(sketch_idx: u32, source: u32, item: u64) -> u8 {
    let h = mix64((sketch_idx as u64) << 32 ^ source as u64)
        .wrapping_add(mix64(item) ^ item.rotate_left(17));
    let h = mix64(h);
    (h.trailing_zeros() as u8).min(MAX_RANK)
}

/// One FM sketch: the running maximum rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FmSketch {
    max_rank: u8,
}

impl FmSketch {
    /// An empty sketch (no items).
    pub fn new() -> Self {
        FmSketch { max_rank: 0 }
    }

    /// The sketch value `x`.
    pub fn value(&self) -> u8 {
        self.max_rank
    }

    /// Constructs from a raw value (deserialization / attack simulation).
    pub fn from_value(x: u8) -> Self {
        FmSketch {
            max_rank: x.min(MAX_RANK),
        }
    }

    /// Inserts one item.
    pub fn insert(&mut self, sketch_idx: u32, source: u32, item: u64) {
        self.max_rank = self.max_rank.max(rank(sketch_idx, source, item));
    }

    /// Inserts `source`'s value `v` as `v` distinct items — the paper's
    /// `J·v` sketch generations per source, executed for one sketch. This
    /// is the faithful (and expensive) path; cost grows linearly in `v`.
    pub fn insert_value(&mut self, sketch_idx: u32, source: u32, v: u64) {
        for item in 0..v {
            self.insert(sketch_idx, source, item);
        }
    }

    /// Merges another sketch (max of ranks).
    pub fn merge(&mut self, other: &FmSketch) {
        self.max_rank = self.max_rank.max(other.max_rank);
    }

    /// Draws a sketch value from the *exact* distribution of
    /// `max rank over v independent items` without hashing the items:
    /// `P(max < r) = (1 − 2^{−r})^v`.
    ///
    /// Used by the experiment harness to synthesize large-`N`/large-`v`
    /// SECOA messages whose downstream costs (certificates, SEAL chain
    /// lengths, estimation accuracy) are distribution-faithful while
    /// skipping the per-item hashing that only matters for *source-side*
    /// CPU measurements.
    pub fn sample(rng: &mut dyn RngCore, v: u64) -> Self {
        if v == 0 {
            return FmSketch::new();
        }
        let u: f64 = rng.random_range(0.0..1.0);
        for r in 1..=MAX_RANK {
            // P(max < r) = (1 - 2^-r)^v
            let p_below = (1.0 - 0.5f64.powi(r as i32)).powf(v as f64);
            if u < p_below {
                return FmSketch { max_rank: r - 1 };
            }
        }
        FmSketch { max_rank: MAX_RANK }
    }

    /// Estimates the distinct-item count from the average of `J` sketch
    /// values: `2^(x̄ − 0.332746)` (the paper's `2^x̄` with the max-rank
    /// bias removed).
    pub fn estimate(values: impl IntoIterator<Item = u8>) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for v in values {
            sum += v as f64;
            count += 1;
        }
        if count == 0 {
            return 0.0;
        }
        let mean = sum / count as f64;
        2f64.powf(mean - MAX_RANK_BIAS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_sketch_is_zero() {
        assert_eq!(FmSketch::new().value(), 0);
        assert_eq!(FmSketch::estimate(std::iter::empty()), 0.0);
    }

    #[test]
    fn merge_is_max() {
        let mut a = FmSketch::from_value(3);
        a.merge(&FmSketch::from_value(7));
        assert_eq!(a.value(), 7);
        a.merge(&FmSketch::from_value(2));
        assert_eq!(a.value(), 7);
    }

    #[test]
    fn insertion_is_deterministic_and_monotone() {
        let mut a = FmSketch::new();
        a.insert_value(0, 1, 100);
        let mut b = FmSketch::new();
        b.insert_value(0, 1, 100);
        assert_eq!(a, b);
        // Inserting more items never lowers the value.
        let mut c = FmSketch::new();
        c.insert_value(0, 1, 200);
        assert!(c.value() >= a.value());
    }

    #[test]
    fn distinct_sketch_indices_decorrelate() {
        let mut a = FmSketch::new();
        let mut b = FmSketch::new();
        a.insert_value(0, 1, 1000);
        b.insert_value(1, 1, 1000);
        // Not a hard guarantee per pair, but for these parameters the
        // hash functions differ.
        let mut diffs = 0;
        for j in 0..20u32 {
            let mut s = FmSketch::new();
            s.insert_value(j, 1, 1000);
            if s.value() != a.value() {
                diffs += 1;
            }
        }
        assert!(diffs > 0, "all sketch hash functions identical");
    }

    #[test]
    fn estimate_accuracy_with_many_sketches() {
        // J = 300 as in the paper: relative error within ~10-15%.
        let total: u64 = 50_000;
        let j = 300u32;
        let values: Vec<u8> = (0..j)
            .map(|idx| {
                let mut s = FmSketch::new();
                // Split the total across 25 "sources".
                for src in 0..25u32 {
                    s.insert_value(idx, src, total / 25);
                }
                s.value()
            })
            .collect();
        let est = FmSketch::estimate(values);
        let rel = (est - total as f64).abs() / total as f64;
        assert!(rel < 0.15, "estimate {est} vs {total}: rel err {rel}");
    }

    #[test]
    fn sampled_distribution_matches_hashed_distribution() {
        // Compare mean sketch value from real insertion vs sampling.
        let v = 5000u64;
        let trials = 300;
        let mut hashed_mean = 0.0;
        for j in 0..trials {
            let mut s = FmSketch::new();
            s.insert_value(j as u32, 7, v);
            hashed_mean += s.value() as f64;
        }
        hashed_mean /= trials as f64;

        let mut rng = StdRng::seed_from_u64(3);
        let mut sampled_mean = 0.0;
        for _ in 0..trials {
            sampled_mean += FmSketch::sample(&mut rng, v).value() as f64;
        }
        sampled_mean /= trials as f64;
        assert!(
            (hashed_mean - sampled_mean).abs() < 0.6,
            "hashed mean {hashed_mean} vs sampled mean {sampled_mean}"
        );
    }

    #[test]
    fn sample_of_zero_items_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(FmSketch::sample(&mut rng, 0).value(), 0);
    }

    #[test]
    fn sketch_value_bounded_for_paper_domains() {
        // x_i ∈ [0, log2(N · D_U)]: for N=1024, D_U=5000 that's ~22.3.
        // Statistically the max rank stays in a small band.
        let mut s = FmSketch::new();
        for src in 0..64u32 {
            s.insert_value(0, src, 5000);
        }
        assert!(s.value() <= 40, "rank {} implausibly high", s.value());
    }
}
