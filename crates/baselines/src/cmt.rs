//! CMT (Castelluccia–Mykletun–Tsudik, MobiQuitous 2005): additively
//! homomorphic encryption of sensor readings (paper §II-D).
//!
//! Each source shares a key `k_i` with the querier and sends
//! `c_i = v_i + k_{i,t} mod n` for a public modulus `n`; aggregators add
//! ciphertexts mod `n`; the querier subtracts `Σ k_{i,t}`.
//!
//! CMT provides confidentiality but **no integrity**: an adversary can add
//! any integer to a ciphertext and shift the SUM undetected — the paper's
//! motivating weakness, demonstrated by [`CmtDeployment::tamper`] plus the
//! attack tests.
//!
//! Freshness handling follows the paper's cost model (§V): per-epoch keys
//! `k_{i,t} = HM1(k_i, t)`, so a source costs `C_HM1 + C_A20`.

use rand::RngCore;
use sies_core::{Epoch, SourceId};
use sies_crypto::prf;
use sies_crypto::u256::U256;
use sies_net::scheme::{AggregationScheme, EvaluatedSum, SchemeError};

/// CMT's modulus width: 20 bytes (160 bits), giving 20-byte ciphertexts
/// (paper Table V).
pub const CMT_MODULUS_BITS: usize = 160;

/// Wire size of a CMT ciphertext.
pub const CMT_PSR_BYTES: usize = 20;

/// A CMT partial state record: one residue mod `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmtPsr {
    ciphertext: U256,
}

impl CmtPsr {
    /// The raw residue.
    pub fn ciphertext(&self) -> &U256 {
        &self.ciphertext
    }

    /// Builds from a raw residue (for attack simulations).
    pub fn from_ciphertext(ciphertext: U256) -> Self {
        CmtPsr { ciphertext }
    }
}

/// A deployed CMT network: the shared modulus and every source's key.
pub struct CmtDeployment {
    /// Public modulus `n` (2^160: any 160-bit value works since keys are
    /// uniform; we use the power of two like the original scheme's
    /// `mod 2^b` arithmetic).
    modulus: U256,
    /// Long-term source keys, indexed by source id (querier's copy).
    keys: Vec<[u8; 20]>,
}

impl CmtDeployment {
    /// Sets up `n` sources with random 20-byte keys.
    pub fn new(rng: &mut dyn RngCore, num_sources: u64) -> Self {
        let modulus = U256::ONE.shl(CMT_MODULUS_BITS);
        let mut keys = Vec::with_capacity(num_sources as usize);
        for _ in 0..num_sources {
            let mut k = [0u8; 20];
            rng.fill_bytes(&mut k);
            keys.push(k);
        }
        CmtDeployment { modulus, keys }
    }

    /// Number of sources.
    pub fn num_sources(&self) -> u64 {
        self.keys.len() as u64
    }

    /// Derives the per-epoch key `k_{i,t} = HM1(k_i, t) mod n`.
    fn epoch_key(&self, source: SourceId, epoch: Epoch) -> U256 {
        let digest = prf::hm1_epoch(&self.keys[source as usize], epoch);
        let mut bytes = [0u8; 32];
        bytes[12..].copy_from_slice(&digest);
        // A 160-bit digest is already < 2^160 = n.
        U256::from_be_bytes(&bytes)
    }
}

impl AggregationScheme for CmtDeployment {
    type Psr = CmtPsr;

    fn name(&self) -> &'static str {
        "CMT"
    }

    fn source_init(&self, source: SourceId, epoch: Epoch, value: u64) -> CmtPsr {
        let k = self.epoch_key(source, epoch);
        let v = U256::from_u64(value);
        CmtPsr {
            ciphertext: v.add_mod(&k, &self.modulus),
        }
    }

    fn merge(&self, psrs: &[CmtPsr]) -> CmtPsr {
        let mut acc = psrs[0].ciphertext;
        for p in &psrs[1..] {
            acc = acc.add_mod(&p.ciphertext, &self.modulus);
        }
        CmtPsr { ciphertext: acc }
    }

    fn evaluate(
        &self,
        final_psr: &CmtPsr,
        epoch: Epoch,
        contributors: &[SourceId],
    ) -> Result<EvaluatedSum, SchemeError> {
        let mut acc = final_psr.ciphertext;
        for &id in contributors {
            if id as usize >= self.keys.len() {
                return Err(SchemeError::Malformed(format!("unknown source {id}")));
            }
            let k = self.epoch_key(id, epoch);
            acc = acc.sub_mod(&k, &self.modulus);
        }
        // CMT has no verification step: whatever comes out is accepted.
        Ok(EvaluatedSum {
            sum: acc.as_u128() as f64,
            integrity_checked: false,
        })
    }

    fn psr_wire_size(&self, _psr: &CmtPsr) -> usize {
        CMT_PSR_BYTES
    }

    fn tamper(&self, psr: &mut CmtPsr) {
        // The §II-D attack: inject an arbitrary integer v' into the SUM.
        psr.ciphertext = psr
            .ciphertext
            .add_mod(&U256::from_u64(1_000_000), &self.modulus);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sies_net::engine::{Attack, Engine};
    use sies_net::topology::Topology;
    use std::collections::HashSet;

    fn deployment(n: u64) -> CmtDeployment {
        let mut rng = StdRng::seed_from_u64(5);
        CmtDeployment::new(&mut rng, n)
    }

    #[test]
    fn exact_sum_recovered() {
        let dep = deployment(16);
        let psrs: Vec<CmtPsr> = (0..16)
            .map(|i| dep.source_init(i, 3, 100 + i as u64))
            .collect();
        let merged = dep.merge(&psrs);
        let contributors: Vec<SourceId> = (0..16).collect();
        let res = dep.evaluate(&merged, 3, &contributors).unwrap();
        let expected: u64 = (0..16).map(|i| 100 + i).sum();
        assert_eq!(res.sum, expected as f64);
        assert!(!res.integrity_checked);
    }

    #[test]
    fn ciphertext_hides_value() {
        let dep = deployment(2);
        let c = dep.source_init(0, 0, 42);
        // The ciphertext is the value plus a 160-bit pseudo-random pad; it
        // must not equal the raw value.
        assert_ne!(c.ciphertext().as_u64(), 42);
        // And must differ across epochs (fresh pads).
        assert_ne!(dep.source_init(0, 1, 42), c);
    }

    #[test]
    fn tamper_goes_undetected() {
        // The paper's §II-D attack: CMT accepts a shifted sum as correct.
        let dep = deployment(4);
        let topo = Topology::complete_tree(4, 2);
        let mut engine = Engine::new(&dep, &topo);
        let node = topo.source_node(1).unwrap();
        let out =
            engine.run_epoch_with(0, &[10; 4], &HashSet::new(), &[Attack::TamperAtNode(node)]);
        let res = out.result.unwrap();
        assert_eq!(
            res.sum,
            40.0 + 1_000_000.0,
            "tamper shifts the result silently"
        );
    }

    #[test]
    fn replay_goes_undetected_with_wrong_result() {
        let dep = deployment(4);
        let topo = Topology::complete_tree(4, 2);
        let mut engine = Engine::new(&dep, &topo);
        engine.run_epoch(0, &[5; 4]);
        let out = engine.run_epoch_with(1, &[50; 4], &HashSet::new(), &[Attack::ReplayFinal]);
        // Epoch-1 keys subtracted from epoch-0 ciphertext: garbage, and no
        // way to notice — just not the right answer.
        let res = out.result.unwrap();
        assert_ne!(res.sum, 200.0);
    }

    #[test]
    fn psr_is_20_bytes_on_every_edge() {
        let dep = deployment(8);
        let topo = Topology::complete_tree(8, 2);
        let mut engine = Engine::new(&dep, &topo);
        let out = engine.run_epoch(0, &[1; 8]);
        assert!((out.stats.bytes.per_sa_edge() - 20.0).abs() < 1e-9);
        assert!((out.stats.bytes.per_aa_edge() - 20.0).abs() < 1e-9);
        assert_eq!(out.stats.bytes.agg_to_querier, 20);
    }

    #[test]
    fn honest_failures_handled() {
        let dep = deployment(8);
        let topo = Topology::complete_tree(8, 2);
        let mut engine = Engine::new(&dep, &topo);
        let failed: HashSet<_> = [topo.source_node(0).unwrap()].into();
        let out = engine.run_epoch_with(0, &[9; 8], &failed, &[]);
        assert_eq!(out.result.unwrap().sum, 63.0);
    }

    #[test]
    fn large_values_wrap_only_at_modulus() {
        let dep = deployment(2);
        let psrs = [
            dep.source_init(0, 0, u64::MAX),
            dep.source_init(1, 0, u64::MAX),
        ];
        let merged = dep.merge(&psrs);
        let res = dep.evaluate(&merged, 0, &[0, 1]).unwrap();
        // 2·(2^64−1) fits comfortably below 2^160.
        assert_eq!(res.sum, 2.0 * (u64::MAX as f64));
    }
}
