//! CMT (Castelluccia–Mykletun–Tsudik, MobiQuitous 2005): additively
//! homomorphic encryption of sensor readings (paper §II-D).
//!
//! Each source shares a key `k_i` with the querier and sends
//! `c_i = v_i + k_{i,t} mod n` for a public modulus `n`; aggregators add
//! ciphertexts mod `n`; the querier subtracts `Σ k_{i,t}`.
//!
//! CMT provides confidentiality but **no integrity**: an adversary can add
//! any integer to a ciphertext and shift the SUM undetected — the paper's
//! motivating weakness, demonstrated by [`CmtDeployment::tamper`] plus the
//! attack tests.
//!
//! Freshness handling follows the paper's cost model (§V): per-epoch keys
//! `k_{i,t} = HM1(k_i, t)`, so a source costs `C_HM1 + C_A20`.

use rand::RngCore;
use sies_core::{Epoch, SourceId};
use sies_crypto::prf::{self, KeyedPrf};
use sies_crypto::u256::U256;
use sies_net::scheme::{AggregationScheme, EvaluatedSum, SchemeError};

/// CMT's modulus width: 20 bytes (160 bits), giving 20-byte ciphertexts
/// (paper Table V).
pub const CMT_MODULUS_BITS: usize = 160;

/// Wire size of a CMT ciphertext.
pub const CMT_PSR_BYTES: usize = 20;

/// A CMT partial state record: one residue mod `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmtPsr {
    ciphertext: U256,
}

impl CmtPsr {
    /// The raw residue.
    pub fn ciphertext(&self) -> &U256 {
        &self.ciphertext
    }

    /// Builds from a raw residue (for attack simulations).
    pub fn from_ciphertext(ciphertext: U256) -> Self {
        CmtPsr { ciphertext }
    }
}

/// A deployed CMT network: the shared modulus and every source's key.
pub struct CmtDeployment {
    /// Public modulus `n` (2^160: any 160-bit value works since keys are
    /// uniform; we use the power of two like the original scheme's
    /// `mod 2^b` arithmetic).
    modulus: U256,
    /// Long-term source keys with their HMAC pads pre-absorbed, indexed
    /// by source id (querier's copy): every per-epoch pad `k_{i,t}`
    /// costs two compressions, both lane-batchable.
    prfs: Vec<KeyedPrf>,
}

impl CmtDeployment {
    /// Sets up `n` sources with random 20-byte keys.
    pub fn new(rng: &mut dyn RngCore, num_sources: u64) -> Self {
        let modulus = U256::ONE.shl(CMT_MODULUS_BITS);
        let mut prfs = Vec::with_capacity(num_sources as usize);
        for _ in 0..num_sources {
            let mut k = [0u8; 20];
            rng.fill_bytes(&mut k);
            prfs.push(KeyedPrf::new(&k));
        }
        CmtDeployment { modulus, prfs }
    }

    /// Number of sources.
    pub fn num_sources(&self) -> u64 {
        self.prfs.len() as u64
    }

    /// Widens a 160-bit `HM1` digest into the residue `k_{i,t} mod n`.
    fn key_from_digest(digest: &[u8; 20]) -> U256 {
        let mut bytes = [0u8; 32];
        bytes[12..].copy_from_slice(digest);
        // A 160-bit digest is already < 2^160 = n.
        U256::from_be_bytes(&bytes)
    }

    /// Derives the per-epoch key `k_{i,t} = HM1(k_i, t) mod n`.
    fn epoch_key(&self, source: SourceId, epoch: Epoch) -> U256 {
        Self::key_from_digest(&self.prfs[source as usize].hm1_epoch(epoch))
    }
}

impl AggregationScheme for CmtDeployment {
    type Psr = CmtPsr;

    fn name(&self) -> &'static str {
        "CMT"
    }

    fn source_init(&self, source: SourceId, epoch: Epoch, value: u64) -> CmtPsr {
        let k = self.epoch_key(source, epoch);
        let v = U256::from_u64(value);
        CmtPsr {
            ciphertext: v.add_mod(&k, &self.modulus),
        }
    }

    fn try_source_init(
        &self,
        source: SourceId,
        epoch: Epoch,
        value: u64,
    ) -> Result<CmtPsr, SchemeError> {
        if source as usize >= self.prfs.len() {
            return Err(SchemeError::Malformed(format!("unknown source {source}")));
        }
        Ok(self.source_init(source, epoch, value))
    }

    fn batch_source_init(
        &self,
        epoch: Epoch,
        jobs: &[(SourceId, u64)],
    ) -> Vec<Result<CmtPsr, SchemeError>> {
        // One multi-lane pass derives every job's pad; unknown ids keep
        // the per-job error of the scalar path.
        let known: Vec<&KeyedPrf> = jobs
            .iter()
            .filter_map(|&(source, _)| self.prfs.get(source as usize))
            .collect();
        let mut pads = prf::hm1_epoch_many(known, epoch).into_iter();
        jobs.iter()
            .map(|&(source, value)| {
                if source as usize >= self.prfs.len() {
                    return Err(SchemeError::Malformed(format!("unknown source {source}")));
                }
                let k = Self::key_from_digest(&pads.next().expect("one pad per known job"));
                Ok(CmtPsr {
                    ciphertext: U256::from_u64(value).add_mod(&k, &self.modulus),
                })
            })
            .collect()
    }

    fn merge(&self, psrs: &[CmtPsr]) -> CmtPsr {
        let mut acc = psrs[0].ciphertext;
        for p in &psrs[1..] {
            acc = acc.add_mod(&p.ciphertext, &self.modulus);
        }
        CmtPsr { ciphertext: acc }
    }

    fn evaluate(
        &self,
        final_psr: &CmtPsr,
        epoch: Epoch,
        contributors: &[SourceId],
    ) -> Result<EvaluatedSum, SchemeError> {
        // Resolve every contributor before deriving, so the first unknown
        // id errors exactly as the scalar loop did; then strip all pads in
        // one lane-batched pass.
        let mut prfs = Vec::with_capacity(contributors.len());
        for &id in contributors {
            match self.prfs.get(id as usize) {
                Some(p) => prfs.push(p),
                None => return Err(SchemeError::Malformed(format!("unknown source {id}"))),
            }
        }
        let mut acc = final_psr.ciphertext;
        for digest in prf::hm1_epoch_many(prfs, epoch) {
            acc = acc.sub_mod(&Self::key_from_digest(&digest), &self.modulus);
        }
        // CMT has no verification step: whatever comes out is accepted.
        Ok(EvaluatedSum {
            sum: acc.as_u128() as f64,
            integrity_checked: false,
        })
    }

    fn psr_wire_size(&self, _psr: &CmtPsr) -> usize {
        CMT_PSR_BYTES
    }

    fn tamper(&self, psr: &mut CmtPsr) {
        // The §II-D attack: inject an arbitrary integer v' into the SUM.
        psr.ciphertext = psr
            .ciphertext
            .add_mod(&U256::from_u64(1_000_000), &self.modulus);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sies_net::engine::{Attack, Engine};
    use sies_net::topology::Topology;
    use std::collections::HashSet;

    fn deployment(n: u64) -> CmtDeployment {
        let mut rng = StdRng::seed_from_u64(5);
        CmtDeployment::new(&mut rng, n)
    }

    #[test]
    fn exact_sum_recovered() {
        let dep = deployment(16);
        let psrs: Vec<CmtPsr> = (0..16)
            .map(|i| dep.source_init(i, 3, 100 + i as u64))
            .collect();
        let merged = dep.merge(&psrs);
        let contributors: Vec<SourceId> = (0..16).collect();
        let res = dep.evaluate(&merged, 3, &contributors).unwrap();
        let expected: u64 = (0..16).map(|i| 100 + i).sum();
        assert_eq!(res.sum, expected as f64);
        assert!(!res.integrity_checked);
    }

    #[test]
    fn ciphertext_hides_value() {
        let dep = deployment(2);
        let c = dep.source_init(0, 0, 42);
        // The ciphertext is the value plus a 160-bit pseudo-random pad; it
        // must not equal the raw value.
        assert_ne!(c.ciphertext().as_u64(), 42);
        // And must differ across epochs (fresh pads).
        assert_ne!(dep.source_init(0, 1, 42), c);
    }

    #[test]
    fn tamper_goes_undetected() {
        // The paper's §II-D attack: CMT accepts a shifted sum as correct.
        let dep = deployment(4);
        let topo = Topology::complete_tree(4, 2);
        let mut engine = Engine::new(&dep, &topo);
        let node = topo.source_node(1).unwrap();
        let out =
            engine.run_epoch_with(0, &[10; 4], &HashSet::new(), &[Attack::TamperAtNode(node)]);
        let res = out.result.unwrap();
        assert_eq!(
            res.sum,
            40.0 + 1_000_000.0,
            "tamper shifts the result silently"
        );
    }

    #[test]
    fn replay_goes_undetected_with_wrong_result() {
        let dep = deployment(4);
        let topo = Topology::complete_tree(4, 2);
        let mut engine = Engine::new(&dep, &topo);
        engine.run_epoch(0, &[5; 4]);
        let out = engine.run_epoch_with(1, &[50; 4], &HashSet::new(), &[Attack::ReplayFinal]);
        // Epoch-1 keys subtracted from epoch-0 ciphertext: garbage, and no
        // way to notice — just not the right answer.
        let res = out.result.unwrap();
        assert_ne!(res.sum, 200.0);
    }

    #[test]
    fn psr_is_20_bytes_on_every_edge() {
        let dep = deployment(8);
        let topo = Topology::complete_tree(8, 2);
        let mut engine = Engine::new(&dep, &topo);
        let out = engine.run_epoch(0, &[1; 8]);
        assert!((out.stats.bytes.per_sa_edge() - 20.0).abs() < 1e-9);
        assert!((out.stats.bytes.per_aa_edge() - 20.0).abs() < 1e-9);
        assert_eq!(out.stats.bytes.agg_to_querier, 20);
    }

    #[test]
    fn honest_failures_handled() {
        let dep = deployment(8);
        let topo = Topology::complete_tree(8, 2);
        let mut engine = Engine::new(&dep, &topo);
        let failed: HashSet<_> = [topo.source_node(0).unwrap()].into();
        let out = engine.run_epoch_with(0, &[9; 8], &failed, &[]);
        assert_eq!(out.result.unwrap().sum, 63.0);
    }

    #[test]
    fn batch_init_matches_scalar_and_flags_unknown_ids() {
        let dep = deployment(6);
        let jobs: Vec<(SourceId, u64)> = (0..6)
            .map(|i| (i, 10 + i as u64))
            .chain([(99, 1)])
            .collect();
        let batched = dep.batch_source_init(4, &jobs);
        assert_eq!(batched.len(), jobs.len());
        for (res, &(id, value)) in batched.iter().zip(&jobs) {
            if id < 6 {
                assert_eq!(*res.as_ref().unwrap(), dep.source_init(id, 4, value));
            } else {
                assert!(res.is_err(), "unknown source must error, not panic");
            }
        }
    }

    #[test]
    fn large_values_wrap_only_at_modulus() {
        let dep = deployment(2);
        let psrs = [
            dep.source_init(0, 0, u64::MAX),
            dep.source_init(1, 0, u64::MAX),
        ];
        let merged = dep.merge(&psrs);
        let res = dep.evaluate(&merged, 0, &[0, 1]).unwrap();
        // 2·(2^64−1) fits comfortably below 2^160.
        assert_eq!(res.sum, 2.0 * (u64::MAX as f64));
    }
}
