//! Paillier-based in-network aggregation — the ODB-model approach of
//! Ge–Zdonik (§II-C) transplanted to the sensor setting, as an extra
//! comparison point.
//!
//! One public key encrypts every reading; aggregators multiply
//! ciphertexts mod `n²`; the querier holds the private key. Exact and
//! confidential like SIES, but:
//!
//! * **no integrity** — ciphertexts are malleable, exactly like CMT;
//! * ciphertexts are `2·|n|` bytes (256 B at the paper-grade 1024-bit
//!   modulus) versus SIES's 32 B;
//! * each encryption costs a full `r^n mod n²` exponentiation — orders of
//!   magnitude beyond SIES's two HMACs, on the *sensor*.
//!
//! Which is the paper's point: public-key homomorphic encryption does not
//! fit resource-constrained sources, and single-key ODB schemes bring no
//! integrity.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sies_core::{Epoch, SourceId};
use sies_crypto::biguint::BigUint;
use sies_crypto::paillier::{PaillierCiphertext, PaillierKeyPair, PaillierPublicKey};
use sies_crypto::prf;
use sies_net::scheme::{AggregationScheme, EvaluatedSum, SchemeError};

/// A Paillier PSR: one ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierPsr {
    ciphertext: PaillierCiphertext,
}

impl PaillierPsr {
    /// The ciphertext.
    pub fn ciphertext(&self) -> &PaillierCiphertext {
        &self.ciphertext
    }
}

/// A deployed Paillier aggregation network.
pub struct PaillierDeployment {
    keypair: PaillierKeyPair,
    /// Per-source PRF keys deriving encryption randomness (a DRBG stand-in
    /// that keeps `source_init` deterministic per `(source, epoch)`).
    randomness_keys: Vec<[u8; 20]>,
}

impl PaillierDeployment {
    /// Sets up `num_sources` sources under a fresh `bits`-bit modulus.
    pub fn new(rng: &mut dyn RngCore, num_sources: u64, bits: usize) -> Self {
        let keypair = PaillierKeyPair::generate(rng, bits);
        let mut randomness_keys = Vec::with_capacity(num_sources as usize);
        for _ in 0..num_sources {
            let mut k = [0u8; 20];
            rng.fill_bytes(&mut k);
            randomness_keys.push(k);
        }
        PaillierDeployment {
            keypair,
            randomness_keys,
        }
    }

    /// The shared public key.
    pub fn public(&self) -> &PaillierPublicKey {
        self.keypair.public()
    }

    /// Deterministic per-(source, epoch) RNG for encryption randomness.
    fn source_rng(&self, source: SourceId, epoch: Epoch) -> StdRng {
        let digest = prf::hm1_epoch(&self.randomness_keys[source as usize], epoch);
        StdRng::seed_from_u64(u64::from_be_bytes(digest[..8].try_into().unwrap()))
    }
}

impl AggregationScheme for PaillierDeployment {
    type Psr = PaillierPsr;

    fn name(&self) -> &'static str {
        "Paillier"
    }

    fn source_init(&self, source: SourceId, epoch: Epoch, value: u64) -> PaillierPsr {
        let mut rng = self.source_rng(source, epoch);
        let c = self.public().encrypt(&mut rng, &BigUint::from_u64(value));
        PaillierPsr { ciphertext: c }
    }

    fn merge(&self, psrs: &[PaillierPsr]) -> PaillierPsr {
        let pk = self.public();
        let mut acc = psrs[0].ciphertext.clone();
        for p in &psrs[1..] {
            acc = pk.add(&acc, &p.ciphertext);
        }
        PaillierPsr { ciphertext: acc }
    }

    fn evaluate(
        &self,
        final_psr: &PaillierPsr,
        _epoch: Epoch,
        _contributors: &[SourceId],
    ) -> Result<EvaluatedSum, SchemeError> {
        let m = self.keypair.decrypt(&final_psr.ciphertext);
        // No verification is possible: accept whatever decrypts.
        Ok(EvaluatedSum {
            sum: m.as_u64() as f64,
            integrity_checked: false,
        })
    }

    fn psr_wire_size(&self, _psr: &PaillierPsr) -> usize {
        self.public().ciphertext_bytes()
    }

    fn tamper(&self, psr: &mut PaillierPsr) {
        // Malleability: homomorphically add a spurious reading.
        let mut rng = StdRng::seed_from_u64(0xE711);
        let spurious = self
            .public()
            .encrypt(&mut rng, &BigUint::from_u64(1_000_000));
        psr.ciphertext = self.public().add(&psr.ciphertext, &spurious);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sies_net::engine::{Attack, Engine};
    use sies_net::topology::Topology;
    use std::collections::HashSet;

    fn deployment(n: u64) -> PaillierDeployment {
        let mut rng = StdRng::seed_from_u64(1);
        PaillierDeployment::new(&mut rng, n, 256)
    }

    #[test]
    fn exact_sum_over_engine() {
        let dep = deployment(16);
        let topo = Topology::complete_tree(16, 4);
        let mut engine = Engine::new(&dep, &topo);
        let values: Vec<u64> = (0..16).map(|i| 1000 + i).collect();
        let out = engine.run_epoch(0, &values);
        let res = out.result.unwrap();
        assert_eq!(res.sum as u64, values.iter().sum::<u64>());
        assert!(!res.integrity_checked);
        // 256-bit n → 64-byte ciphertexts on every edge.
        assert!((out.stats.bytes.per_sa_edge() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn tamper_goes_undetected_like_cmt() {
        let dep = deployment(4);
        let topo = Topology::complete_tree(4, 2);
        let mut engine = Engine::new(&dep, &topo);
        let node = topo.source_node(0).unwrap();
        let out =
            engine.run_epoch_with(0, &[10; 4], &HashSet::new(), &[Attack::TamperAtNode(node)]);
        assert_eq!(out.result.unwrap().sum as u64, 40 + 1_000_000);
    }

    #[test]
    fn deterministic_randomness_is_epoch_separated() {
        let dep = deployment(2);
        let a = dep.source_init(0, 0, 5);
        let b = dep.source_init(0, 1, 5);
        let c = dep.source_init(1, 0, 5);
        assert_ne!(a, b, "epochs share randomness");
        assert_ne!(a, c, "sources share randomness");
        assert_eq!(
            a,
            dep.source_init(0, 0, 5),
            "derivation must be deterministic"
        );
    }

    #[test]
    fn honest_failures_work_without_contributor_bookkeeping() {
        // Paillier needs no per-source keys at decryption, so failures
        // need no special handling — but also cannot be audited.
        let dep = deployment(8);
        let topo = Topology::complete_tree(8, 2);
        let mut engine = Engine::new(&dep, &topo);
        let failed: HashSet<_> = [topo.source_node(2).unwrap()].into();
        let out = engine.run_epoch_with(0, &[7; 8], &failed, &[]);
        assert_eq!(out.result.unwrap().sum as u64, 49);
    }
}
