//! SEALs: SECOA's deflation certificates (paper §II-D).
//!
//! A SEAL is a seed encrypted `x` times with the raw RSA permutation — a
//! one-way chain. From `E^a(sd)` anyone can *roll* forward to `E^b(sd)`
//! for `b > a`, but never backward; so a reported value can be inflated
//! but not deflated without detection (inflation is covered separately by
//! HMAC certificates). RSA's multiplicative homomorphism lets SEALs at the
//! same chain position be *folded* (multiplied mod `n`) into one.

use sies_crypto::biguint::BigUint;
use sies_crypto::prf;
use sies_crypto::rsa::RsaPublicKey;

/// A SEAL: a chain element at a known position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seal {
    /// Chain position (= the committed sketch/value).
    pub position: u64,
    /// `E^position(seed-product) mod n`.
    pub value: BigUint,
}

impl Seal {
    /// Creates the SEAL for a seed at chain position `x` (the source-side
    /// operation: `x` RSA encryptions).
    pub fn new(pk: &RsaPublicKey, seed: &BigUint, x: u64) -> Self {
        Seal {
            position: x,
            value: pk.encrypt_repeated(seed, x),
        }
    }

    /// Creates SEALs for many `(seed, position)` pairs at once: the
    /// ragged chains are bucketed by position and run W lanes at a time
    /// through the batch rolling kernel
    /// ([`RsaPublicKey::encrypt_repeated_ragged`]). Identical bytes to
    /// mapping [`Seal::new`].
    pub fn new_many(pk: &RsaPublicKey, items: &[(BigUint, u64)]) -> Vec<Seal> {
        let values = pk.encrypt_repeated_ragged(items);
        items
            .iter()
            .zip(values)
            .map(|((_, x), value)| Seal {
                position: *x,
                value,
            })
            .collect()
    }

    /// Rolls the SEAL forward to `target` (≥ current position).
    ///
    /// # Panics
    /// Panics if `target` is behind the current position — that is the
    /// deflation the one-way chain forbids.
    pub fn roll_to(&mut self, pk: &RsaPublicKey, target: u64) {
        assert!(
            target >= self.position,
            "cannot roll a SEAL backward ({} -> {target})",
            self.position
        );
        self.value = pk.encrypt_repeated(&self.value, target - self.position);
        self.position = target;
    }

    /// Folds another SEAL at the same position into this one.
    ///
    /// # Panics
    /// Panics on position mismatch.
    pub fn fold_with(&mut self, pk: &RsaPublicKey, other: &Seal) {
        assert_eq!(
            self.position, other.position,
            "folding requires equal positions"
        );
        self.value = pk.fold(&self.value, &other.value);
    }

    /// Wire size of a SEAL in bytes (`S_SEAL`, = RSA modulus size).
    pub fn wire_size(pk: &RsaPublicKey) -> usize {
        pk.modulus_bytes()
    }
}

/// The `HM1` message binding a seed to its `(sketch, epoch)` slot.
pub fn seed_message(sketch_idx: u32, epoch: u64) -> [u8; 12] {
    let mut msg = [0u8; 12];
    msg[..4].copy_from_slice(&sketch_idx.to_be_bytes());
    msg[4..].copy_from_slice(&epoch.to_be_bytes());
    msg
}

/// Derives the per-(source, sketch, epoch) seed `sd_{i,j,t} ∈ Z_n`.
///
/// Cost-model faithful: exactly **one** `HM1` call per seed (the querier's
/// `J·N·C_HM1` term in Equation 8); the 20-byte digest is then expanded to
/// the modulus width with a non-cryptographic mixer. A production system
/// would use a full PRF expansion; the distinction does not affect any
/// measured cost shape.
pub fn derive_seed(seed_key: &[u8], sketch_idx: u32, epoch: u64, pk: &RsaPublicKey) -> BigUint {
    seed_from_digest(&prf::hm1(seed_key, &seed_message(sketch_idx, epoch)), pk)
}

/// [`derive_seed`] through a cached-pad [`KeyedPrf`] — bit-identical, two
/// compressions instead of four per seed.
pub fn derive_seed_with(
    prf: &sies_crypto::prf::KeyedPrf,
    sketch_idx: u32,
    epoch: u64,
    pk: &RsaPublicKey,
) -> BigUint {
    seed_from_digest(&prf.hm1(&seed_message(sketch_idx, epoch)), pk)
}

/// Expands a 20-byte `HM1` digest into `Z_n`. Exposed so batched digest
/// derivations ([`sies_crypto::prf::hm1_many`]) can share the expansion.
pub fn seed_from_digest(digest: &[u8; 20], pk: &RsaPublicKey) -> BigUint {
    // Expand 20 bytes to modulus width with splitmix64 over the digest.
    let nbytes = pk.modulus_bytes();
    let mut material = Vec::with_capacity(nbytes);
    let mut state = u64::from_be_bytes(digest[..8].try_into().unwrap());
    let tweak = u64::from_be_bytes(digest[8..16].try_into().unwrap());
    while material.len() < nbytes {
        state = state
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ tweak;
        material.extend_from_slice(&state.to_be_bytes());
    }
    material.truncate(nbytes);
    // Clear the top byte so the value is < n for any plausible modulus.
    material[0] = 0;
    let candidate = BigUint::from_be_bytes(&material);
    // Guard against zero (not invertible / degenerate chain).
    if candidate.is_zero() {
        BigUint::from_u64(2)
    } else {
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sies_crypto::rsa::RsaKeyPair;

    fn pk() -> RsaPublicKey {
        let mut rng = StdRng::seed_from_u64(42);
        RsaKeyPair::generate(&mut rng, 256).public().clone()
    }

    #[test]
    fn seal_roll_matches_direct_construction() {
        let pk = pk();
        let sd = BigUint::from_u64(31337);
        let mut s = Seal::new(&pk, &sd, 3);
        s.roll_to(&pk, 8);
        assert_eq!(s, Seal::new(&pk, &sd, 8));
    }

    #[test]
    #[should_panic(expected = "backward")]
    fn deflation_panics() {
        let pk = pk();
        let mut s = Seal::new(&pk, &BigUint::from_u64(5), 4);
        s.roll_to(&pk, 2);
    }

    #[test]
    fn fold_is_seed_product() {
        let pk = pk();
        let (a, b) = (BigUint::from_u64(111), BigUint::from_u64(222));
        let mut sa = Seal::new(&pk, &a, 5);
        let sb = Seal::new(&pk, &b, 5);
        sa.fold_with(&pk, &sb);
        let product = a.mul_mod(&b, pk.modulus());
        assert_eq!(sa, Seal::new(&pk, &product, 5));
    }

    #[test]
    #[should_panic(expected = "equal positions")]
    fn fold_position_mismatch_panics() {
        let pk = pk();
        let mut sa = Seal::new(&pk, &BigUint::from_u64(1), 2);
        let sb = Seal::new(&pk, &BigUint::from_u64(1), 3);
        sa.fold_with(&pk, &sb);
    }

    #[test]
    fn roll_then_fold_equals_fold_then_roll() {
        let pk = pk();
        let (a, b) = (BigUint::from_u64(987), BigUint::from_u64(654));
        // Roll both to 6, then fold.
        let mut r1 = Seal::new(&pk, &a, 2);
        r1.roll_to(&pk, 6);
        let mut r2 = Seal::new(&pk, &b, 4);
        r2.roll_to(&pk, 6);
        r1.fold_with(&pk, &r2);
        // Fold seeds first, then construct at 6.
        let direct = Seal::new(&pk, &a.mul_mod(&b, pk.modulus()), 6);
        assert_eq!(r1, direct);
    }

    #[test]
    fn cached_and_digest_paths_match_derive_seed() {
        let pk = pk();
        let prf = sies_crypto::prf::KeyedPrf::new(b"key-a");
        for j in 0..4u32 {
            for t in 0..4u64 {
                let direct = derive_seed(b"key-a", j, t, &pk);
                assert_eq!(derive_seed_with(&prf, j, t, &pk), direct);
                let digest = prf.hm1(&seed_message(j, t));
                assert_eq!(seed_from_digest(&digest, &pk), direct);
            }
        }
    }

    #[test]
    fn seeds_are_distinct_per_dimension() {
        let pk = pk();
        let base = derive_seed(b"key-a", 0, 0, &pk);
        assert_ne!(base, derive_seed(b"key-b", 0, 0, &pk), "key separation");
        assert_ne!(base, derive_seed(b"key-a", 1, 0, &pk), "sketch separation");
        assert_ne!(base, derive_seed(b"key-a", 0, 1, &pk), "epoch separation");
        assert_eq!(base, derive_seed(b"key-a", 0, 0, &pk), "determinism");
    }

    #[test]
    fn seeds_fit_modulus() {
        let pk = pk();
        for j in 0..20u32 {
            let sd = derive_seed(b"k", j, 9, &pk);
            assert!(sd < *pk.modulus());
            assert!(!sd.is_zero());
        }
    }
}
