//! SECOA (Nath, Yu, Chan — SIGMOD 2009), as described in paper §II-D:
//! integrity-protected in-network aggregation via one-way SEAL chains,
//! providing **approximate** SUM answers and no confidentiality.
//!
//! * [`SecoaMax`] is SECOA_M, the MAX protocol: every source sends its
//!   value, an HMAC *inflation certificate*, and a SEAL *deflation
//!   certificate*; aggregators keep the max, roll the other SEALs up to
//!   it, and fold.
//! * [`SecoaSum`] is SECOA_S: each source expands its value `v` into `v`
//!   distinct items inserted into `J` FM sketches and runs SECOA_M per
//!   sketch; the querier estimates `SUM ≈ 2^x̄` over the `J` verified
//!   sketch maxima.
//!
//! ## Wire-format note (recorded in DESIGN.md)
//!
//! In-memory PSRs carry each sketch's winning certificate individually;
//! the *accounted* wire size follows the paper's cost model — `J` sketch
//! bytes + SEALs + a single 20-byte aggregate certificate (`S_inf`),
//! assuming the XOR aggregate-MAC optimization of Katz–Lindell the paper
//! cites. All measured quantities (bytes, CPU shapes) match Equations
//! 5, 8, 10 and 11.

use crate::seal::{derive_seed_with, seed_from_digest, seed_message, Seal};
use crate::sketch::FmSketch;
use rand::RngCore;
use sies_core::{Epoch, SourceId};
use sies_crypto::biguint::BigUint;
use sies_crypto::hmac::ct_eq;
use sies_crypto::prf::{self, KeyedPrf};
use sies_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use sies_net::scheme::{AggregationScheme, EvaluatedSum, SchemeError};

/// Wire size of a sketch value (`S_sk`, Table II).
pub const SKETCH_BYTES: usize = 1;
/// Wire size of an inflation certificate (`S_inf`, Table II).
pub const INFLATION_CERT_BYTES: usize = 20;

/// The inflation-certificate message for sketch `j`, value `x`, epoch `t`.
fn cert_message(x: u8, sketch_idx: u32, epoch: Epoch) -> [u8; 13] {
    let mut msg = [0u8; 13];
    msg[0] = x;
    msg[1..5].copy_from_slice(&sketch_idx.to_be_bytes());
    msg[5..13].copy_from_slice(&epoch.to_be_bytes());
    msg
}

/// Per-sketch aggregation state: the current maximum, who owns it, and the
/// owner's inflation certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchSlot {
    /// The sketch value `x` (maximum rank so far).
    pub x: u8,
    /// The source owning the maximum.
    pub owner: SourceId,
    /// `HM1(K_owner, x ‖ j ‖ t)`.
    pub cert: [u8; 20],
}

/// SEAL payload: per-sketch chains, or same-position-folded chains after
/// the sink's pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealBundle {
    /// One SEAL per sketch, `seals[j].position == slots[j].x`.
    PerSketch(Vec<Seal>),
    /// Folded: one SEAL per distinct chain position.
    Folded(Vec<Seal>),
}

/// A SECOA_S partial state record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecoaPsr {
    /// The `J` sketch slots.
    pub slots: Vec<SketchSlot>,
    /// The deflation certificates.
    pub seals: SealBundle,
}

/// A deployed SECOA_S network.
pub struct SecoaSum {
    j: usize,
    rsa: RsaPublicKey,
    /// `K_i`: inflation-certificate keys shared source ↔ querier, HMAC
    /// pads pre-absorbed so every certificate costs two lane-batchable
    /// compressions.
    mac_prfs: Vec<KeyedPrf>,
    /// Seed keys for the SEAL chains, shared source ↔ querier (cached
    /// like the certificate keys).
    seed_prfs: Vec<KeyedPrf>,
}

impl SecoaSum {
    /// Sets up `num_sources` sources with `j` sketches and a fresh RSA
    /// modulus of `modulus_bits` (1024 in the paper; tests use smaller).
    pub fn new(rng: &mut dyn RngCore, num_sources: u64, j: usize, modulus_bits: usize) -> Self {
        let rsa = RsaKeyPair::generate(rng, modulus_bits).public().clone();
        Self::with_rsa(rng, num_sources, j, rsa)
    }

    /// Sets up with an existing RSA public key (lets experiments reuse one
    /// expensive 1024-bit key generation).
    pub fn with_rsa(rng: &mut dyn RngCore, num_sources: u64, j: usize, rsa: RsaPublicKey) -> Self {
        assert!(j >= 1);
        let mut mac_prfs = Vec::with_capacity(num_sources as usize);
        let mut seed_prfs = Vec::with_capacity(num_sources as usize);
        for _ in 0..num_sources {
            let mut a = [0u8; 20];
            let mut b = [0u8; 20];
            rng.fill_bytes(&mut a);
            rng.fill_bytes(&mut b);
            mac_prfs.push(KeyedPrf::new(&a));
            seed_prfs.push(KeyedPrf::new(&b));
        }
        SecoaSum {
            j,
            rsa,
            mac_prfs,
            seed_prfs,
        }
    }

    /// Number of sketches `J`.
    pub fn num_sketches(&self) -> usize {
        self.j
    }

    /// The RSA public key.
    pub fn rsa(&self) -> &RsaPublicKey {
        &self.rsa
    }

    /// Builds a source's PSR from already-chosen sketch values (shared by
    /// the faithful and the sampled paths).
    fn psr_from_sketch_values(&self, source: SourceId, epoch: Epoch, xs: &[u8]) -> SecoaPsr {
        // All 2J certificate + seed HMACs for this source run through one
        // lane-batched pass under the cached key pads.
        let mac_prf = &self.mac_prfs[source as usize];
        let seed_prf = &self.seed_prfs[source as usize];
        let certs = prf::hm1_many(
            xs.iter()
                .enumerate()
                .map(|(jj, &x)| (mac_prf, cert_message(x, jj as u32, epoch))),
        );
        let seed_digests =
            prf::hm1_many((0..xs.len()).map(|jj| (seed_prf, seed_message(jj as u32, epoch))));
        let slots = xs
            .iter()
            .zip(certs)
            .map(|(&x, cert)| SketchSlot {
                x,
                owner: source,
                cert,
            })
            .collect();
        // All J ragged SEAL chains in one batch: bucketed by position,
        // rolled W lanes at a time.
        let seed_items: Vec<(BigUint, u64)> = xs
            .iter()
            .zip(&seed_digests)
            .map(|(&x, digest)| (seed_from_digest(digest, &self.rsa), x as u64))
            .collect();
        let seals = Seal::new_many(&self.rsa, &seed_items);
        SecoaPsr {
            slots,
            seals: SealBundle::PerSketch(seals),
        }
    }

    /// Synthesizes the *final* PSR the querier would receive for a network
    /// whose contributing sources' values total `total_value`, without
    /// running every source and aggregator.
    ///
    /// Distribution-faithful: each sketch maximum is drawn from the exact
    /// distribution of the max rank over `total_value` distinct items
    /// (max over sources of per-source maxima ≡ max over the union of
    /// items), the owning source is sampled uniformly from the
    /// contributors, and the aggregate SEAL is `E^{x_j}` of the product of
    /// all contributors' seeds — exactly what honest merging produces.
    /// Used by the querier-cost experiments (Figure 6) where running
    /// `N·J·v` sketch insertions per epoch would dominate the harness
    /// without affecting what is measured.
    pub fn synthesize_final_psr(
        &self,
        rng: &mut dyn RngCore,
        epoch: Epoch,
        total_value: u64,
        contributors: &[SourceId],
    ) -> SecoaPsr {
        use rand::Rng as _;
        assert!(!contributors.is_empty());
        // Pass 1: sample the J sketch maxima and owners (rng order
        // unchanged), certificates per owner key.
        let mut slots = Vec::with_capacity(self.j);
        for jj in 0..self.j {
            let x = FmSketch::sample(rng, total_value).value();
            let owner = contributors[rng.random_range(0..contributors.len())];
            let cert = self.mac_prfs[owner as usize].hm1(&cert_message(x, jj as u32, epoch));
            slots.push(SketchSlot { x, owner, cert });
        }
        // Pass 2: each sketch's contributor seeds (one lane-batched HMAC
        // pass per sketch), then all J seed products through the W-lane
        // fold kernel and all J ragged SEAL chains in one batch.
        let seed_lists: Vec<Vec<BigUint>> = (0..self.j)
            .map(|jj| {
                let msg = seed_message(jj as u32, epoch);
                prf::hm1_many(
                    contributors
                        .iter()
                        .map(|&i| (&self.seed_prfs[i as usize], msg)),
                )
                .iter()
                .map(|digest| seed_from_digest(digest, &self.rsa))
                .collect()
            })
            .collect();
        let refs: Vec<&[BigUint]> = seed_lists.iter().map(|v| v.as_slice()).collect();
        let products = self.rsa.fold_product_many(&refs);
        let items: Vec<(BigUint, u64)> = products
            .into_iter()
            .zip(&slots)
            .map(|(product, slot)| (product, slot.x as u64))
            .collect();
        let seals = Seal::new_many(&self.rsa, &items);
        SecoaPsr {
            slots,
            seals: SealBundle::PerSketch(seals),
        }
    }

    /// Distribution-faithful fast path for huge `N`/`v` experiment setups:
    /// sketch values are sampled from the exact max-rank distribution
    /// instead of hashing `J·v` items (see [`FmSketch::sample`]).
    pub fn source_init_sampled(
        &self,
        rng: &mut dyn RngCore,
        source: SourceId,
        epoch: Epoch,
        value: u64,
    ) -> SecoaPsr {
        let xs: Vec<u8> = (0..self.j)
            .map(|_| FmSketch::sample(rng, value).value())
            .collect();
        self.psr_from_sketch_values(source, epoch, &xs)
    }
}

impl AggregationScheme for SecoaSum {
    type Psr = SecoaPsr;

    fn name(&self) -> &'static str {
        "SECOAS"
    }

    /// The faithful source path: `J·v` sketch insertions, `2J` HMACs
    /// (certificate + seed), `Σ x_j` RSA encryptions (Equation 2).
    fn source_init(&self, source: SourceId, epoch: Epoch, value: u64) -> SecoaPsr {
        let xs: Vec<u8> = (0..self.j)
            .map(|jj| {
                let mut sk = FmSketch::new();
                sk.insert_value(jj as u32, source, value);
                sk.value()
            })
            .collect();
        self.psr_from_sketch_values(source, epoch, &xs)
    }

    /// Per sketch: keep the max child, roll the others' SEALs to it, fold
    /// (`J·(F−1)` modular multiplications plus `Σ rl_i` RSA encryptions,
    /// Equation 5).
    fn merge(&self, psrs: &[SecoaPsr]) -> SecoaPsr {
        assert!(!psrs.is_empty());
        // Pass 1: pick each sketch's winner and collect every child
        // SEAL's (value, roll distance) into one ragged batch, so all
        // J·F rolls run W chains at a time instead of one by one.
        let mut winners = Vec::with_capacity(self.j);
        let mut items: Vec<(BigUint, u64)> = Vec::with_capacity(self.j * psrs.len());
        for jj in 0..self.j {
            let mut winner = 0usize;
            for (c, psr) in psrs.iter().enumerate() {
                if psr.slots[jj].x > psrs[winner].slots[jj].x {
                    winner = c;
                }
            }
            let target = psrs[winner].slots[jj].x as u64;
            for psr in psrs {
                let SealBundle::PerSketch(child_seals) = &psr.seals else {
                    panic!("merge expects unfolded PSRs");
                };
                let s = &child_seals[jj];
                assert!(
                    target >= s.position,
                    "cannot roll a SEAL backward ({} -> {target})",
                    s.position
                );
                items.push((s.value.clone(), target - s.position));
            }
            winners.push((winner, target));
        }
        let rolled = self.rsa.encrypt_repeated_ragged(&items);
        // Pass 2: fold the rolled SEALs per sketch, in child order.
        let mut slots = Vec::with_capacity(self.j);
        let mut seals = Vec::with_capacity(self.j);
        for (jj, &(winner, target)) in winners.iter().enumerate() {
            let row = &rolled[jj * psrs.len()..(jj + 1) * psrs.len()];
            let mut value = row[0].clone();
            for v in &row[1..] {
                value = self.rsa.fold(&value, v);
            }
            slots.push(psrs[winner].slots[jj].clone());
            seals.push(Seal {
                position: target,
                value,
            });
        }
        SecoaPsr {
            slots,
            seals: SealBundle::PerSketch(seals),
        }
    }

    /// The sink folds SEALs at the same chain position (paper §II-D),
    /// shrinking the aggregator→querier message from `J` SEALs to
    /// `seals ≤ J` distinct-position SEALs.
    fn sink_finalize(&self, psr: SecoaPsr) -> SecoaPsr {
        let SealBundle::PerSketch(seals) = psr.seals else {
            return psr; // already folded
        };
        let mut by_position: Vec<Seal> = Vec::new();
        for s in seals {
            match by_position.iter_mut().find(|f| f.position == s.position) {
                Some(f) => f.fold_with(&self.rsa, &s),
                None => by_position.push(s),
            }
        }
        by_position.sort_by_key(|s| s.position);
        SecoaPsr {
            slots: psr.slots,
            seals: SealBundle::Folded(by_position),
        }
    }

    /// Querier verification (Equation 8): checks every sketch's inflation
    /// certificate, then recreates the reference SEAL — `J·N` seed
    /// derivations, folding them all, rolling to `x_max` — and compares it
    /// against the collected SEALs rolled to `x_max` and folded.
    fn evaluate(
        &self,
        final_psr: &SecoaPsr,
        epoch: Epoch,
        contributors: &[SourceId],
    ) -> Result<EvaluatedSum, SchemeError> {
        if final_psr.slots.len() != self.j {
            return Err(SchemeError::Malformed(format!(
                "expected {} sketch slots, got {}",
                self.j,
                final_psr.slots.len()
            )));
        }
        let contributor_set: std::collections::HashSet<SourceId> =
            contributors.iter().copied().collect();

        // 1. Inflation certificates: validate ownership slot-by-slot,
        // then recompute all J expected certificates in one lane-batched
        // pass under the cached owner keys.
        for (jj, slot) in final_psr.slots.iter().enumerate() {
            if !contributor_set.contains(&slot.owner) {
                return Err(SchemeError::VerificationFailed(format!(
                    "sketch {jj} claims non-contributing owner {}",
                    slot.owner
                )));
            }
        }
        let expected_certs = prf::hm1_many(final_psr.slots.iter().enumerate().map(|(jj, slot)| {
            (
                &self.mac_prfs[slot.owner as usize],
                cert_message(slot.x, jj as u32, epoch),
            )
        }));
        for (jj, (slot, expected)) in final_psr.slots.iter().zip(&expected_certs).enumerate() {
            if !ct_eq(expected, &slot.cert) {
                return Err(SchemeError::VerificationFailed(format!(
                    "inflation certificate mismatch on sketch {jj}"
                )));
            }
        }

        let x_max = final_psr.slots.iter().map(|s| s.x).max().unwrap_or(0) as u64;

        // 2. Collected SEALs → one value at x_max.
        let collected = {
            let seals: Vec<Seal> = match &final_psr.seals {
                SealBundle::PerSketch(v) => {
                    // Consistency: SEAL positions must match the claimed
                    // sketch values.
                    for (jj, s) in v.iter().enumerate() {
                        if s.position != final_psr.slots[jj].x as u64 {
                            return Err(SchemeError::VerificationFailed(format!(
                                "SEAL position {} disagrees with sketch value {} (sketch {jj})",
                                s.position, final_psr.slots[jj].x
                            )));
                        }
                    }
                    v.clone()
                }
                SealBundle::Folded(v) => {
                    // Folded positions must cover exactly the multiset of
                    // claimed sketch values' distinct positions.
                    let mut claimed: Vec<u64> =
                        final_psr.slots.iter().map(|s| s.x as u64).collect();
                    claimed.sort_unstable();
                    claimed.dedup();
                    let mut got: Vec<u64> = v.iter().map(|s| s.position).collect();
                    got.sort_unstable();
                    if claimed != got {
                        return Err(SchemeError::VerificationFailed(
                            "folded SEAL positions disagree with sketch values".into(),
                        ));
                    }
                    v.clone()
                }
            };
            let mut acc: Option<Seal> = None;
            for mut s in seals {
                if s.position > x_max {
                    return Err(SchemeError::VerificationFailed(
                        "SEAL beyond the maximal sketch value".into(),
                    ));
                }
                s.roll_to(&self.rsa, x_max);
                match &mut acc {
                    None => acc = Some(s),
                    Some(a) => a.fold_with(&self.rsa, &s),
                }
            }
            acc.ok_or_else(|| SchemeError::Malformed("no SEALs collected".into()))?
        };

        // 3. Reference SEAL from all contributors' seeds. For folded
        // bundles, each distinct position contributed one SEAL per sketch
        // at that position, so the reference is the product over all
        // (contributor, sketch) seeds — identical in both representations.
        // The N·J-element product is lane-split across W partial products
        // through the key's shared Montgomery context (one division-free
        // multiply per seed, W seeds per pass) instead of N·J generic
        // mul-then-divide steps.
        if self.rsa.mont_ctx().is_none() {
            return Err(SchemeError::Malformed("degenerate RSA modulus".into()));
        }
        let mut prfs = Vec::with_capacity(contributors.len());
        for &i in contributors {
            match self.seed_prfs.get(i as usize) {
                Some(p) => prfs.push(p),
                None => return Err(SchemeError::Malformed(format!("unknown source {i}"))),
            }
        }
        // The dominant N·J seed-digest derivation runs as one lane-batched
        // HMAC pass; each digest is then expanded and folded in.
        let digests = prf::hm1_many(
            prfs.iter()
                .flat_map(|&p| (0..self.j).map(move |jj| (p, seed_message(jj as u32, epoch)))),
        );
        let seeds: Vec<BigUint> = digests
            .iter()
            .map(|digest| seed_from_digest(digest, &self.rsa))
            .collect();
        let reference = Seal::new(&self.rsa, &self.rsa.fold_product_wide(&seeds), x_max);
        if reference.value != collected.value {
            return Err(SchemeError::VerificationFailed(
                "aggregate SEAL mismatch (deflation or tampering)".into(),
            ));
        }

        // 4. Estimate SUM ≈ 2^x̄ (with the FM correction).
        let est = FmSketch::estimate(final_psr.slots.iter().map(|s| s.x));
        Ok(EvaluatedSum {
            sum: est,
            integrity_checked: true,
        })
    }

    /// Paper-accounted wire size: `J·S_sk + seals·S_SEAL + S_inf`
    /// (Equations 10 and 11).
    fn psr_wire_size(&self, psr: &SecoaPsr) -> usize {
        let seal_count = match &psr.seals {
            SealBundle::PerSketch(v) => v.len(),
            SealBundle::Folded(v) => v.len(),
        };
        self.j * SKETCH_BYTES + seal_count * Seal::wire_size(&self.rsa) + INFLATION_CERT_BYTES
    }

    /// Inflation attempt: bump one sketch value without the owner's key.
    /// The bump is large enough to beat the network-wide maximum — a
    /// smaller inflation would be absorbed by some other child's larger
    /// value and leave the result untouched. (The certificate check
    /// catches it; deflation is impossible because the chain cannot be
    /// rolled backward.)
    fn tamper(&self, psr: &mut SecoaPsr) {
        if let Some(slot) = psr.slots.first_mut() {
            // Inflate to the maximum rank so the forged slot wins the
            // max-fold at every merge up to the root; a small additive
            // bump can be absorbed by a sibling subtree with a larger
            // honest rank, leaving the final aggregate untouched.
            if slot.x == crate::sketch::MAX_RANK {
                // Already saturated (vanishingly unlikely): forge the
                // inflation certificate instead so the PSR still mutates.
                slot.cert[0] ^= 0xA5;
            } else {
                slot.x = crate::sketch::MAX_RANK;
            }
        }
        // Keep the SEAL consistent with the inflated claim — rolling
        // forward is something any adversary can do.
        if let SealBundle::PerSketch(seals) = &mut psr.seals {
            if let Some(s) = seals.first_mut() {
                let target = psr.slots[0].x as u64;
                if s.position < target {
                    s.roll_to(&self.rsa, target);
                }
            }
        }
    }
}

/// SECOA_M: the MAX protocol over raw values (no sketches). One value,
/// one inflation certificate, one SEAL.
pub struct SecoaMax {
    inner: SecoaSum,
}

/// SECOA_M reuses the SECOA_S machinery with a single "sketch" whose value
/// is the raw reading (capped to the one-byte chain representation the
/// bundle uses? — no: MAX values use the full u64 chain positions, so the
/// slot stores a claim and the PSR carries the position in the SEAL).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecoaMaxPsr {
    /// Claimed maximum value.
    pub value: u64,
    /// Who owns it.
    pub owner: SourceId,
    /// `HM1(K_owner, value ‖ t)`.
    pub cert: [u8; 20],
    /// The aggregate SEAL at position `value`.
    pub seal: Seal,
}

impl SecoaMax {
    /// Sets up a MAX deployment.
    pub fn new(rng: &mut dyn RngCore, num_sources: u64, modulus_bits: usize) -> Self {
        SecoaMax {
            inner: SecoaSum::new(rng, num_sources, 1, modulus_bits),
        }
    }

    fn max_cert(&self, source: SourceId, epoch: Epoch, value: u64) -> [u8; 20] {
        let mut msg = [0u8; 16];
        msg[..8].copy_from_slice(&value.to_be_bytes());
        msg[8..].copy_from_slice(&epoch.to_be_bytes());
        self.inner.mac_prfs[source as usize].hm1(&msg)
    }

    /// Source side: value + inflation certificate + SEAL.
    pub fn source_init(&self, source: SourceId, epoch: Epoch, value: u64) -> SecoaMaxPsr {
        let seed = derive_seed_with(
            &self.inner.seed_prfs[source as usize],
            0,
            epoch,
            &self.inner.rsa,
        );
        SecoaMaxPsr {
            value,
            owner: source,
            cert: self.max_cert(source, epoch, value),
            seal: Seal::new(&self.inner.rsa, &seed, value),
        }
    }

    /// Aggregator: keep the max, roll the rest up to it, fold.
    pub fn merge(&self, psrs: &[SecoaMaxPsr]) -> SecoaMaxPsr {
        assert!(!psrs.is_empty());
        let winner = psrs.iter().max_by_key(|p| p.value).unwrap();
        let target = winner.value;
        let mut agg: Option<Seal> = None;
        for p in psrs {
            let mut s = p.seal.clone();
            s.roll_to(&self.inner.rsa, target);
            match &mut agg {
                None => agg = Some(s),
                Some(a) => a.fold_with(&self.inner.rsa, &s),
            }
        }
        SecoaMaxPsr {
            value: winner.value,
            owner: winner.owner,
            cert: winner.cert,
            seal: agg.expect("non-empty"),
        }
    }

    /// Querier: verify the inflation certificate and the aggregate SEAL,
    /// then accept the MAX.
    pub fn evaluate(
        &self,
        psr: &SecoaMaxPsr,
        epoch: Epoch,
        contributors: &[SourceId],
    ) -> Result<u64, SchemeError> {
        if !contributors.contains(&psr.owner) {
            return Err(SchemeError::VerificationFailed(
                "non-contributing owner".into(),
            ));
        }
        let expected = self.max_cert(psr.owner, epoch, psr.value);
        if !ct_eq(&expected, &psr.cert) {
            return Err(SchemeError::VerificationFailed(
                "inflation certificate mismatch".into(),
            ));
        }
        if psr.seal.position != psr.value {
            return Err(SchemeError::VerificationFailed(
                "SEAL position mismatch".into(),
            ));
        }
        let msg = seed_message(0, epoch);
        let seeds: Vec<_> = prf::hm1_many(
            contributors
                .iter()
                .map(|&i| (&self.inner.seed_prfs[i as usize], msg)),
        )
        .iter()
        .map(|digest| seed_from_digest(digest, &self.inner.rsa))
        .collect();
        let product = self.inner.rsa.fold_product(seeds.iter());
        let reference = Seal::new(&self.inner.rsa, &product, psr.value);
        if reference.value != psr.seal.value {
            return Err(SchemeError::VerificationFailed(
                "aggregate SEAL mismatch".into(),
            ));
        }
        Ok(psr.value)
    }
}

/// SECOA_MIN: MIN via the MAX protocol on reflected values — the paper
/// notes SECOA "supports a wide range of aggregate queries"; MIN follows
/// from MAX with the standard `v ↦ D_U − v` transform over a known upper
/// domain bound.
pub struct SecoaMin {
    max: SecoaMax,
    /// Upper bound `D_U` of the value domain.
    domain_upper: u64,
}

impl SecoaMin {
    /// Sets up a MIN deployment for values in `[0, domain_upper]`.
    pub fn new(
        rng: &mut dyn RngCore,
        num_sources: u64,
        modulus_bits: usize,
        domain_upper: u64,
    ) -> Self {
        SecoaMin {
            max: SecoaMax::new(rng, num_sources, modulus_bits),
            domain_upper,
        }
    }

    /// Source side: runs MAX on the reflected value.
    ///
    /// # Panics
    /// Panics when `value` exceeds the configured domain bound.
    pub fn source_init(&self, source: SourceId, epoch: Epoch, value: u64) -> SecoaMaxPsr {
        assert!(value <= self.domain_upper, "value above the domain bound");
        self.max
            .source_init(source, epoch, self.domain_upper - value)
    }

    /// Aggregator side: identical to MAX.
    pub fn merge(&self, psrs: &[SecoaMaxPsr]) -> SecoaMaxPsr {
        self.max.merge(psrs)
    }

    /// Querier side: verifies the MAX of the reflected values and undoes
    /// the transform.
    pub fn evaluate(
        &self,
        psr: &SecoaMaxPsr,
        epoch: Epoch,
        contributors: &[SourceId],
    ) -> Result<u64, SchemeError> {
        let reflected_max = self.max.evaluate(psr, epoch, contributors)?;
        Ok(self.domain_upper - reflected_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sies_net::engine::{Attack, Engine};
    use sies_net::topology::Topology;
    use std::collections::HashSet;

    /// Small-modulus deployment for fast tests.
    fn deployment(n: u64, j: usize) -> SecoaSum {
        let mut rng = StdRng::seed_from_u64(31);
        SecoaSum::new(&mut rng, n, j, 128)
    }

    #[test]
    fn clean_run_verifies_and_estimates() {
        let dep = deployment(8, 64);
        let topo = Topology::complete_tree(8, 2);
        let mut engine = Engine::new(&dep, &topo);
        let values = [500u64; 8]; // true SUM = 4000
        let out = engine.run_epoch(0, &values);
        let res = out.result.expect("clean run must verify");
        assert!(res.integrity_checked);
        let rel = (res.sum - 4000.0).abs() / 4000.0;
        assert!(rel < 0.6, "estimate {} too far from 4000", res.sum);
    }

    #[test]
    fn estimate_is_approximate_not_exact() {
        // The defining weakness vs SIES: answers are estimates.
        let dep = deployment(4, 32);
        let psrs: Vec<_> = (0..4).map(|i| dep.source_init(i, 0, 1000)).collect();
        let merged = dep.merge(&psrs);
        let finalized = dep.sink_finalize(merged);
        let res = dep.evaluate(&finalized, 0, &[0, 1, 2, 3]).unwrap();
        assert_ne!(res.sum, 4000.0);
    }

    #[test]
    fn inflation_attack_detected() {
        let dep = deployment(4, 8);
        let topo = Topology::complete_tree(4, 2);
        let node = topo.source_node(2).unwrap();
        let mut engine = Engine::new(&dep, &topo);
        let out =
            engine.run_epoch_with(0, &[300; 4], &HashSet::new(), &[Attack::TamperAtNode(node)]);
        assert!(matches!(
            out.result,
            Err(SchemeError::VerificationFailed(_))
        ));
    }

    #[test]
    fn dropped_contribution_detected_via_seal() {
        let dep = deployment(4, 8);
        let topo = Topology::complete_tree(4, 2);
        let node = topo.source_node(1).unwrap();
        let mut engine = Engine::new(&dep, &topo);
        let out = engine.run_epoch_with(0, &[300; 4], &HashSet::new(), &[Attack::DropAtNode(node)]);
        assert!(matches!(
            out.result,
            Err(SchemeError::VerificationFailed(_))
        ));
    }

    #[test]
    fn replay_detected_via_epoch_keys() {
        let dep = deployment(4, 8);
        let topo = Topology::complete_tree(4, 2);
        let mut engine = Engine::new(&dep, &topo);
        assert!(engine.run_epoch(0, &[100; 4]).result.is_ok());
        let out = engine.run_epoch_with(1, &[100; 4], &HashSet::new(), &[Attack::ReplayFinal]);
        assert!(matches!(
            out.result,
            Err(SchemeError::VerificationFailed(_))
        ));
    }

    #[test]
    fn honest_failure_handled() {
        let dep = deployment(8, 8);
        let topo = Topology::complete_tree(8, 2);
        let mut engine = Engine::new(&dep, &topo);
        let failed: HashSet<_> = [topo.source_node(3).unwrap()].into();
        let out = engine.run_epoch_with(0, &[200; 8], &failed, &[]);
        assert!(out.result.is_ok(), "honest failure must still verify");
    }

    #[test]
    fn sink_folding_reduces_seal_count_and_still_verifies() {
        let dep = deployment(8, 64);
        let psrs: Vec<_> = (0..8).map(|i| dep.source_init(i, 2, 2000)).collect();
        let merged = dep.merge(&psrs);
        let pre = dep.psr_wire_size(&merged);
        let finalized = dep.sink_finalize(merged);
        let post = dep.psr_wire_size(&finalized);
        assert!(
            post < pre,
            "folding must shrink the A→Q message ({pre} -> {post})"
        );
        assert!(dep
            .evaluate(&finalized, 2, &(0..8).collect::<Vec<_>>())
            .is_ok());
    }

    #[test]
    fn wire_size_matches_cost_model() {
        // S-A edge: J·S_sk + J·S_SEAL + S_inf with a 16-byte test modulus.
        let dep = deployment(2, 10);
        let psr = dep.source_init(0, 0, 100);
        let expected = 10 * SKETCH_BYTES + 10 * 16 + INFLATION_CERT_BYTES;
        assert_eq!(dep.psr_wire_size(&psr), expected);
    }

    #[test]
    fn sampled_sources_verify_like_hashed_sources() {
        let dep = deployment(4, 16);
        let mut rng = StdRng::seed_from_u64(8);
        let psrs: Vec<_> = (0..4)
            .map(|i| dep.source_init_sampled(&mut rng, i, 5, 3000))
            .collect();
        let merged = dep.merge(&psrs);
        let finalized = dep.sink_finalize(merged);
        assert!(dep.evaluate(&finalized, 5, &[0, 1, 2, 3]).is_ok());
    }

    #[test]
    fn synthesized_final_psr_verifies() {
        let dep = deployment(8, 16);
        let mut rng = StdRng::seed_from_u64(99);
        let contributors: Vec<SourceId> = (0..8).collect();
        let psr = dep.synthesize_final_psr(&mut rng, 3, 8 * 2500, &contributors);
        let finalized = dep.sink_finalize(psr);
        let res = dep.evaluate(&finalized, 3, &contributors).unwrap();
        assert!(res.integrity_checked);
        let rel = (res.sum - 20_000.0).abs() / 20_000.0;
        assert!(rel < 1.0, "estimate {} wildly off", res.sum);
    }

    #[test]
    fn secoa_max_end_to_end() {
        let mut rng = StdRng::seed_from_u64(13);
        let dep = SecoaMax::new(&mut rng, 4, 128);
        let values = [3u64, 9, 5, 7];
        let psrs: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| dep.source_init(i as SourceId, 1, v))
            .collect();
        let merged = dep.merge(&psrs);
        assert_eq!(dep.evaluate(&merged, 1, &[0, 1, 2, 3]).unwrap(), 9);
    }

    #[test]
    fn secoa_min_end_to_end() {
        let mut rng = StdRng::seed_from_u64(21);
        let d_u = 5000;
        let dep = SecoaMin::new(&mut rng, 4, 128, d_u);
        let values = [1900u64, 1843, 4200, 3000];
        let psrs: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| dep.source_init(i as SourceId, 2, v))
            .collect();
        let merged = dep.merge(&psrs);
        assert_eq!(dep.evaluate(&merged, 2, &[0, 1, 2, 3]).unwrap(), 1843);
    }

    #[test]
    fn secoa_min_tamper_detected() {
        let mut rng = StdRng::seed_from_u64(22);
        let dep = SecoaMin::new(&mut rng, 2, 128, 100);
        let psrs = [dep.source_init(0, 0, 60), dep.source_init(1, 0, 40)];
        let mut merged = dep.merge(&psrs);
        // Claim a *smaller* minimum (= larger reflected max): the
        // adversary can roll the SEAL forward but lacks the MAC key.
        merged.value += 10;
        merged.seal.roll_to(dep.max.inner.rsa(), merged.value);
        assert!(dep.evaluate(&merged, 0, &[0, 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "domain bound")]
    fn secoa_min_rejects_out_of_domain() {
        let mut rng = StdRng::seed_from_u64(23);
        let dep = SecoaMin::new(&mut rng, 2, 128, 100);
        dep.source_init(0, 0, 101);
    }

    #[test]
    fn secoa_max_inflation_detected() {
        let mut rng = StdRng::seed_from_u64(14);
        let dep = SecoaMax::new(&mut rng, 2, 128);
        let psrs = [dep.source_init(0, 0, 5), dep.source_init(1, 0, 3)];
        let mut merged = dep.merge(&psrs);
        // Claim a larger max (and roll the SEAL to match — anyone can).
        merged.value = 8;
        merged.seal.roll_to(dep.inner.rsa(), 8);
        assert!(dep.evaluate(&merged, 0, &[0, 1]).is_err());
    }

    #[test]
    fn secoa_max_deflation_detected() {
        let mut rng = StdRng::seed_from_u64(15);
        let dep = SecoaMax::new(&mut rng, 2, 128);
        let psrs = [dep.source_init(0, 0, 5), dep.source_init(1, 0, 9)];
        let merged = dep.merge(&psrs);
        // Claim a smaller max with a forged owner claim: the adversary can
        // craft value/owner but cannot unroll the SEAL.
        let mut forged = merged.clone();
        forged.value = 5;
        forged.owner = 0;
        forged.cert = dep.max_cert(0, 0, 5); // pretend key compromise of 0
        assert!(dep.evaluate(&forged, 0, &[0, 1]).is_err());
    }
}
