//! TAG-style plain in-network aggregation (Madden et al., OSDI 2002 —
//! the paper’s reference \[1\]): no security at all.
//!
//! This is the foundation every secure scheme builds on, included so the
//! *price of security* is measurable: TAG transmits an 8-byte running
//! sum per edge and does one integer addition per child. Comparing its
//! rows against SIES in the `sim`/bench output shows SIES adds ~24 bytes
//! per edge and a handful of hash/modular operations per party — and
//! nothing else — to get confidentiality, integrity, authentication and
//! freshness.

use sies_core::{Epoch, SourceId};
use sies_net::scheme::{AggregationScheme, EvaluatedSum, SchemeError};

/// A plain PSR: the running SUM in clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlainPsr {
    /// The partial sum.
    pub sum: u64,
}

/// The TAG-style deployment (stateless — there are no keys).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainAggregation;

/// Wire size of a plain PSR: one 8-byte integer.
pub const PLAIN_PSR_BYTES: usize = 8;

impl AggregationScheme for PlainAggregation {
    type Psr = PlainPsr;

    fn name(&self) -> &'static str {
        "TAG"
    }

    fn source_init(&self, _source: SourceId, _epoch: Epoch, value: u64) -> PlainPsr {
        PlainPsr { sum: value }
    }

    fn merge(&self, psrs: &[PlainPsr]) -> PlainPsr {
        PlainPsr {
            sum: psrs.iter().map(|p| p.sum).sum(),
        }
    }

    fn evaluate(
        &self,
        final_psr: &PlainPsr,
        _epoch: Epoch,
        _contributors: &[SourceId],
    ) -> Result<EvaluatedSum, SchemeError> {
        Ok(EvaluatedSum {
            sum: final_psr.sum as f64,
            integrity_checked: false,
        })
    }

    fn psr_wire_size(&self, _psr: &PlainPsr) -> usize {
        PLAIN_PSR_BYTES
    }

    fn tamper(&self, psr: &mut PlainPsr) {
        psr.sum += 1_000_000;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sies_net::engine::{Attack, Engine};
    use sies_net::topology::Topology;
    use std::collections::HashSet;

    #[test]
    fn sums_exactly_with_zero_overhead() {
        let dep = PlainAggregation;
        let topo = Topology::complete_tree(16, 4);
        let mut engine = Engine::new(&dep, &topo);
        let values: Vec<u64> = (1..=16).collect();
        let out = engine.run_epoch(0, &values);
        let res = out.result.unwrap();
        assert_eq!(res.sum, 136.0);
        assert!(!res.integrity_checked);
        assert!((out.stats.bytes.per_sa_edge() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn everything_is_attackable() {
        let dep = PlainAggregation;
        let topo = Topology::complete_tree(8, 2);
        let victim = topo.source_node(3).unwrap();
        let mut engine = Engine::new(&dep, &topo);
        // Values travel in clear (confidentiality: none), and tampering
        // shifts the result silently (integrity: none).
        let out =
            engine.run_epoch_with(0, &[5; 8], &HashSet::new(), &[Attack::TamperAtNode(victim)]);
        assert_eq!(out.result.unwrap().sum, 40.0 + 1_000_000.0);
    }

    #[test]
    fn security_overhead_of_sies_is_bounded() {
        // The quantified claim: SIES costs exactly 4x TAG's bandwidth.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sies_core::SystemParams;
        use sies_net::SiesDeployment;
        let topo = Topology::complete_tree(16, 4);
        let plain_bytes = {
            let mut engine = Engine::new(&PlainAggregation, &topo);
            engine.run_epoch(0, &[100; 16]).stats.bytes.source_to_agg
        };
        let sies_bytes = {
            let mut rng = StdRng::seed_from_u64(1);
            let dep = SiesDeployment::new(&mut rng, SystemParams::new(16).unwrap());
            let mut engine = Engine::new(&dep, &topo);
            engine.run_epoch(0, &[100; 16]).stats.bytes.source_to_agg
        };
        assert_eq!(sies_bytes, 4 * plain_bytes);
    }
}
