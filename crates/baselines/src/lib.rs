#![warn(missing_docs)]

//! # sies-baselines
//!
//! The two benchmark schemes the SIES paper compares against (§II-D):
//!
//! * [`cmt::CmtDeployment`] — **CMT** (Castelluccia–Mykletun–Tsudik):
//!   additively homomorphic one-time pads mod `2^160`. Confidential,
//!   cheap, exact — but offers *no integrity*: tampering and replay go
//!   undetected (demonstrated by tests).
//! * [`secoa::SecoaSum`] — **SECOA_S** (Nath–Yu–Chan): integrity via HMAC
//!   inflation certificates and one-way RSA SEAL chains over `J`
//!   Flajolet–Martin sketches. Verifiable but *approximate* and with no
//!   confidentiality (values travel in clear), at orders-of-magnitude
//!   higher CPU and bandwidth cost.
//! * [`secoa::SecoaMax`] — **SECOA_M**, the underlying MAX protocol.
//!
//! All deployments implement [`sies_net::scheme::AggregationScheme`], so
//! the same epoch engine drives them and the paper's §VI comparisons fall
//! out of identical instrumentation.

pub mod cmt;
pub mod paillier_agg;
pub mod plain;
pub mod seal;
pub mod secoa;
pub mod sketch;

pub use cmt::{CmtDeployment, CmtPsr};
pub use paillier_agg::{PaillierDeployment, PaillierPsr};
pub use plain::{PlainAggregation, PlainPsr};
pub use seal::Seal;
pub use secoa::{SecoaMax, SecoaPsr, SecoaSum};
pub use sketch::FmSketch;
