//! Exporter-conformance properties: the Prometheus text exposition
//! must use valid metric names and parse line-by-line for *any*
//! registered metric name, help strings must come out escaped, and the
//! hand-rolled JSON snapshot document must round-trip through an
//! independent JSON parser (the vendored `serde_json`).

use proptest::prelude::*;
use serde_json::Value;
use sies_telemetry::registry::describe;
use sies_telemetry::{HistogramSnapshot, Snapshot};

/// Decodes a byte vector into a deliberately hostile metric name:
/// Latin-1 chars, so quotes, backslashes, control bytes, digits-first
/// names, and high bytes all appear.
fn hostile_name(bytes: &[u8]) -> String {
    bytes.iter().map(|&b| b as char).collect()
}

/// A Prometheus metric name must match `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn is_valid_prom_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits a sample line `name[{labels}] value` and validates both
/// halves. Returns false for anything malformed.
fn sample_line_is_valid(line: &str) -> bool {
    let (series, value) = match line.rsplit_once(' ') {
        Some(pair) => pair,
        None => return false,
    };
    if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
        return false;
    }
    let name = match series.split_once('{') {
        Some((name, labels)) => {
            if !labels.ends_with('}') {
                return false;
            }
            name
        }
        None => series,
    };
    is_valid_prom_name(name)
}

/// Builds a snapshot exercising every metric family from raw fuzz
/// words.
fn build_snapshot(names: &[Vec<u8>], values: &[u64]) -> Snapshot {
    let mut s = Snapshot::default();
    for (i, raw) in names.iter().enumerate() {
        let name = hostile_name(raw);
        let v = values[i % values.len().max(1)];
        match i % 4 {
            0 => {
                s.counters.insert(name, v);
            }
            1 => {
                s.floats.insert(name, (v % 1_000_000) as f64 / 128.0);
            }
            2 => {
                s.gauges.insert(name, v);
            }
            _ => {
                let mut h = HistogramSnapshot::default();
                // A few samples spread across buckets.
                for k in 0..(v % 5 + 1) {
                    let sample = v.rotate_left(k as u32 * 7);
                    h.buckets[sies_telemetry::metric::bucket_index(sample)] += 1;
                    h.count += 1;
                    h.sum = h.sum.wrapping_add(sample);
                }
                s.hists.insert(name, h);
            }
        }
    }
    s
}

fn as_map(v: &Value) -> &[(String, Value)] {
    match v {
        Value::Map(m) => m,
        other => panic!("expected JSON object, got {other:?}"),
    }
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    as_map(v)
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, x)| x)
        .unwrap_or_else(|| panic!("missing key {key:?}"))
}

proptest! {
    /// Every line of the Prometheus exposition is a comment line with
    /// a valid metric name or a sample line with a valid name and a
    /// numeric value — no matter how hostile the registered names are.
    #[test]
    fn prometheus_output_parses_line_by_line(
        names in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..16), 1..12),
        values in proptest::collection::vec(any::<u64>(), 1..12),
    ) {
        let text = build_snapshot(&names, &values).to_prometheus();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                prop_assert!(is_valid_prom_name(name), "bad TYPE name {name:?}");
                prop_assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "bad TYPE kind {kind:?}"
                );
                prop_assert!(parts.next().is_none());
            } else if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                prop_assert!(is_valid_prom_name(name), "bad HELP name {name:?}");
            } else {
                prop_assert!(sample_line_is_valid(line), "bad sample line {line:?}");
            }
        }
    }

    /// Histogram series are internally consistent: cumulative buckets
    /// are nondecreasing and `+Inf` equals `_count`.
    #[test]
    fn prometheus_histogram_series_are_cumulative(
        samples in proptest::collection::vec(any::<u64>(), 1..60),
    ) {
        let mut h = HistogramSnapshot::default();
        for &v in &samples {
            h.buckets[sies_telemetry::metric::bucket_index(v)] += 1;
            h.count += 1;
            h.sum = h.sum.wrapping_add(v);
        }
        let mut s = Snapshot::default();
        s.hists.insert("conf.hist".into(), h);
        let text = s.to_prometheus();

        let mut last_cum = 0u64;
        let mut inf = None;
        let mut count = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("conf_hist_bucket{le=\"") {
                let (bound, cum) = rest.split_once("\"} ").unwrap();
                let cum: u64 = cum.parse().unwrap();
                prop_assert!(cum >= last_cum, "bucket series not cumulative");
                last_cum = cum;
                if bound == "+Inf" {
                    inf = Some(cum);
                }
            } else if let Some(c) = line.strip_prefix("conf_hist_count ") {
                count = Some(c.parse::<u64>().unwrap());
            }
        }
        prop_assert_eq!(inf, Some(samples.len() as u64));
        prop_assert_eq!(count, Some(samples.len() as u64));
    }

    /// Help strings with backslashes/newlines come out escaped: the
    /// HELP line never breaks the line-by-line framing.
    #[test]
    fn help_strings_are_escaped(raw in proptest::collection::vec(any::<u8>(), 0..24)) {
        // `describe` requires 'static strs; the test set is bounded by
        // the proptest case count, so leaking here is fine.
        let help: &'static str =
            Box::leak(hostile_name(&raw).replace('\r', "r").into_boxed_str());
        describe("conf.help_fuzz", help);
        let mut s = Snapshot::default();
        s.counters.insert("conf.help_fuzz".into(), 1);
        let text = s.to_prometheus();
        let help_line = text
            .lines()
            .find(|l| l.starts_with("# HELP conf_help_fuzz"))
            .expect("HELP line present");
        prop_assert!(!help_line.contains('\n'));
        // Unescaped backslashes may only appear as \\ or \n pairs.
        let payload = help_line.strip_prefix("# HELP conf_help_fuzz").unwrap();
        let mut chars = payload.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                let next = chars.next();
                prop_assert!(
                    matches!(next, Some('\\') | Some('n')),
                    "dangling escape in {payload:?}"
                );
            }
        }
        // Exactly three lines for this metric: HELP, TYPE, sample.
        prop_assert_eq!(text.lines().count(), 3);
    }

    /// The hand-rolled JSON snapshot document parses with an
    /// independent parser and preserves every counter, float, gauge,
    /// and histogram count — including hostile metric names.
    #[test]
    fn json_snapshot_round_trips(
        names in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..16), 1..12),
        values in proptest::collection::vec(any::<u64>(), 1..12),
    ) {
        let snap = build_snapshot(&names, &values);
        let doc: Value = serde_json::from_str(&snap.to_json())
            .expect("snapshot JSON must parse");

        let counters = as_map(field(&doc, "counters"));
        prop_assert_eq!(counters.len(), snap.counters.len());
        for (name, &v) in &snap.counters {
            let got = counters.iter().find(|(k, _)| k == name).map(|(_, x)| x);
            match got {
                Some(Value::U64(u)) => prop_assert_eq!(*u, v),
                // Large u64s may parse as f64 in a lenient parser.
                Some(Value::F64(f)) => prop_assert!((*f - v as f64).abs() <= v as f64 * 1e-9),
                Some(Value::I64(i)) => prop_assert_eq!(*i as u64, v),
                other => prop_assert!(false, "counter {name:?} missing/mismatched: {other:?}"),
            }
        }

        let gauges = as_map(field(&doc, "gauges"));
        prop_assert_eq!(gauges.len(), snap.gauges.len());

        let floats = as_map(field(&doc, "floats"));
        for (name, &v) in &snap.floats {
            let got = floats.iter().find(|(k, _)| k == name).map(|(_, x)| x);
            let f = match got {
                Some(Value::F64(f)) => *f,
                Some(Value::U64(u)) => *u as f64,
                Some(Value::I64(i)) => *i as f64,
                other => {
                    prop_assert!(false, "float {name:?} missing: {other:?}");
                    unreachable!()
                }
            };
            prop_assert!((f - v).abs() < 1e-6_f64.max(v.abs() * 1e-9));
        }

        let hists = as_map(field(&doc, "histograms"));
        prop_assert_eq!(hists.len(), snap.hists.len());
        for (name, h) in &snap.hists {
            let entry = hists
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, x)| x)
                .expect("histogram present");
            match field(entry, "count") {
                Value::U64(c) => prop_assert_eq!(*c, h.count),
                other => prop_assert!(false, "bad count {other:?}"),
            }
        }
    }
}
