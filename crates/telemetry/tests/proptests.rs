//! Property-based tests for the telemetry core: concurrent recording
//! sums exactly, histogram merges are associative, bucket boundaries
//! hold at the domain edges, and snapshot diffs round-trip.

use std::sync::Arc;

use proptest::prelude::*;
use sies_telemetry::{
    metric::{bucket_index, bucket_upper_bound},
    Counter, Histogram, HistogramSnapshot, Registry,
};

proptest! {
    // ---- Count invariance under concurrency ------------------------------

    /// T threads each adding their share of a workload leaves the
    /// counter at exactly the total — no lost updates.
    #[test]
    fn concurrent_counter_sums_exactly(
        per_thread in proptest::collection::vec(1u64..1000, 1..8),
    ) {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for &n in &per_thread {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..n {
                        c.incr();
                    }
                });
            }
        });
        prop_assert_eq!(c.get(), per_thread.iter().sum::<u64>());
    }

    /// Histogram count/bucket totals are invariant to how samples are
    /// split across recording threads.
    #[test]
    fn concurrent_histogram_count_invariance(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        threads in 1usize..6,
    ) {
        let h = Arc::new(Histogram::new());
        let chunk = samples.len().div_ceil(threads);
        std::thread::scope(|s| {
            for part in samples.chunks(chunk) {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for &v in part {
                        h.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        // Same samples recorded serially produce the identical snapshot.
        let serial = Histogram::new();
        for &v in &samples {
            serial.record(v);
        }
        prop_assert_eq!(snap, serial.snapshot());
    }

    // ---- Merge associativity ---------------------------------------------

    /// (a ⊎ b) ⊎ c == a ⊎ (b ⊎ c) for histogram snapshots.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..50),
        b in proptest::collection::vec(any::<u64>(), 0..50),
        c in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let snap = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(left.clone(), right);

        // And merging equals recording everything in one histogram.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left, snap(&all));
    }

    // ---- Bucket boundaries -----------------------------------------------

    /// Every sample lands in a bucket whose bounds contain it, for the
    /// full u64 domain including the 0 and u64::MAX edges.
    /// (The vendored proptest has no `prop_oneof`, so the edge-case mix
    /// is derived from a selector + raw sample pair.)
    #[test]
    fn bucket_bounds_contain_sample(sel in 0u8..7, raw in any::<u64>()) {
        let v = match sel {
            0 => 0u64,
            1 => 1,
            2 => u64::MAX,
            3 => u64::MAX - 1,
            4 => 1u64 << (raw % 64),               // power of two
            5 => (1u64 << (raw % 64)).wrapping_sub(1), // one below a power
            _ => raw,
        };
        let i = bucket_index(v);
        prop_assert!(i < sies_telemetry::HIST_BUCKETS);
        prop_assert!(bucket_upper_bound(i) >= v);
        if i > 0 {
            // Lower edge: the previous bucket's upper bound is below v.
            prop_assert!(bucket_upper_bound(i - 1) < v);
        } else {
            prop_assert_eq!(v, 0);
        }
    }

    // ---- Snapshot diff round-trips ---------------------------------------

    /// later.diff(earlier) merged back onto earlier reconstructs later,
    /// for full registry snapshots (counters, floats, gauges, hists).
    /// Each raw u64 op word encodes (metric type, name, value).
    #[test]
    fn registry_snapshot_diff_round_trips(
        first in proptest::collection::vec(any::<u64>(), 0..40),
        second in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        static NAMES: [&str; 4] = ["m.a", "m.b", "m.c", "m.d"];
        let r = Registry::new();
        let apply = |ops: &[u64]| {
            for &op in ops {
                let which = op & 3;
                let name = NAMES[((op >> 2) & 3) as usize];
                let v = op >> 4;
                match which {
                    0 => r.counter(name).add(v % 1000),
                    1 => r.float(name).add((v % 1000) as f64 / 8.0),
                    2 => r.gauge(name).set(v),
                    _ => r.histogram(name).record(v),
                }
            }
        };
        apply(&first);
        let t0 = r.snapshot();
        apply(&second);
        let t1 = r.snapshot();

        let d = t1.diff(&t0);
        let mut recon = t0.clone();
        recon.merge(&d);
        prop_assert_eq!(recon, t1.clone());

        // Histogram-level identity as well: per-name diff matches a
        // fresh histogram of just the second batch's samples.
        let fresh = Registry::new();
        for &op in &second {
            if op & 3 == 3 {
                fresh
                    .histogram(NAMES[((op >> 2) & 3) as usize])
                    .record(op >> 4);
            }
        }
        for (name, h) in &fresh.snapshot().hists {
            if h.count > 0 {
                prop_assert_eq!(&t1.hist(name).diff(&t0.hist(name)), h);
            }
        }
    }

    /// Histogram diff of a snapshot with itself is empty, and diffing
    /// from the zero snapshot is the identity.
    #[test]
    fn histogram_diff_identities(samples in proptest::collection::vec(any::<u64>(), 0..60)) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let zero = HistogramSnapshot::default();
        prop_assert_eq!(s.diff(&s).count, 0);
        prop_assert_eq!(s.diff(&zero), s);
    }
}
