//! RAII span timers with a per-thread span stack that a profiler can
//! sample from outside the thread.
//!
//! A span measures one wall-clock section and records its duration (in
//! nanoseconds) into a histogram when dropped. Spans nest: each thread
//! keeps a stack of the names of its live spans, so instrumentation can
//! ask "where am I?" ([`current_path`]) without threading context
//! through call signatures.
//!
//! The stack is *shared*, not thread-local-only: each thread registers
//! an `Arc`-held mirror of its stack in a process-wide table, so the
//! sampling profiler ([`crate::profiler`]) can walk every live thread's
//! stack from its own watcher thread. The mirror is guarded by a plain
//! `Mutex` — span enter/exit and profiler samples are both rare (spans
//! wrap whole epoch phases, samples run at ~100 Hz), so the lock is
//! effectively uncontended and costs ~20 ns per operation. A disabled
//! span ([`Span::noop`]) still skips everything.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

use crate::metric::Histogram;

/// One thread's live-span stack, shared with the sampling profiler.
struct ThreadStack {
    /// Small dense thread label (registration order, starting at 1) —
    /// stable for the thread's lifetime, used as `tid` in trace events.
    tid: u64,
    names: Mutex<Vec<&'static str>>,
}

/// Process-wide table of all registered thread stacks. Holds weak refs
/// so exited threads are pruned on the next sample instead of leaking.
fn stack_table() -> &'static Mutex<Vec<Weak<ThreadStack>>> {
    static TABLE: OnceLock<Mutex<Vec<Weak<ThreadStack>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL_STACK: Arc<ThreadStack> = {
        let stack = Arc::new(ThreadStack {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            names: Mutex::new(Vec::new()),
        });
        stack_table().lock().unwrap().push(Arc::downgrade(&stack));
        stack
    };
}

/// A live timed section. Created by [`Span::enter`] (usually via the
/// [`span!`](crate::span!) macro); records on drop.
///
/// A disabled span ([`Span::noop`]) skips the clock read, the stack
/// push, and the histogram record entirely — the kill-switch reduces a
/// `span!` site to one relaxed load and a branch.
#[must_use = "a span records when dropped; binding it to _ discards the timing"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    start: Instant,
    hist: &'static Histogram,
    stack: Arc<ThreadStack>,
}

impl Span {
    /// Starts a span that records its duration into `hist` on drop and
    /// appears on this thread's span stack while live.
    pub fn enter(name: &'static str, hist: &'static Histogram) -> Span {
        let stack = LOCAL_STACK.with(Arc::clone);
        stack.names.lock().unwrap().push(name);
        Span {
            inner: Some(SpanInner {
                name,
                start: Instant::now(),
                hist,
                stack,
            }),
        }
    }

    /// A span that does nothing (telemetry disabled).
    pub fn noop() -> Span {
        Span { inner: None }
    }

    /// Whether this span is live (false for [`Span::noop`]).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.start.elapsed();
            inner.hist.record_duration(elapsed);
            crate::timeline::record_complete(inner.name, inner.start, elapsed, inner.stack.tid);
            let mut stack = inner.stack.names.lock().unwrap();
            // Spans are RAII-scoped so LIFO order holds; defend
            // against mem::forget-style misuse anyway.
            if let Some(pos) = stack.iter().rposition(|&n| n == inner.name) {
                stack.remove(pos);
            }
        }
    }
}

/// Number of live spans on this thread.
pub fn current_depth() -> usize {
    LOCAL_STACK.with(|s| s.names.lock().unwrap().len())
}

/// The names of this thread's live spans, outermost first, joined with
/// `/` (empty string when no span is live).
pub fn current_path() -> String {
    LOCAL_STACK.with(|s| s.names.lock().unwrap().join("/"))
}

/// This thread's stable profiler/trace label (assigned on first span
/// activity, registration order starting at 1).
pub fn thread_tid() -> u64 {
    LOCAL_STACK.with(|s| s.tid)
}

/// Snapshots every registered thread's live-span stack, outermost
/// first: `(tid, names)` pairs. Exited threads are pruned in passing.
/// This is the profiler's sampling primitive, but it is public so tests
/// and ad-hoc tooling can observe cross-thread span state.
pub fn sample_stacks() -> Vec<(u64, Vec<&'static str>)> {
    let mut table = stack_table().lock().unwrap();
    let mut out = Vec::with_capacity(table.len());
    table.retain(|weak| match weak.upgrade() {
        Some(stack) => {
            out.push((stack.tid, stack.names.lock().unwrap().clone()));
            true
        }
        None => false,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn hist() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(Histogram::new)
    }

    #[test]
    fn span_records_on_drop_and_tracks_stack() {
        let before = hist().snapshot().count;
        {
            let _outer = Span::enter("outer", hist());
            assert_eq!(current_depth(), 1);
            {
                let _inner = Span::enter("inner", hist());
                assert_eq!(current_path(), "outer/inner");
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        assert_eq!(hist().snapshot().count, before + 2);
    }

    #[test]
    fn noop_span_is_invisible() {
        let before = hist().snapshot().count;
        {
            let s = Span::noop();
            assert!(!s.is_recording());
            assert_eq!(current_depth(), 0);
        }
        assert_eq!(hist().snapshot().count, before);
    }

    #[test]
    fn sampler_sees_other_threads_stacks() {
        use std::sync::mpsc;
        let (ready_tx, ready_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            let _outer = Span::enter("worker_outer", hist());
            let _inner = Span::enter("worker_inner", hist());
            let tid = thread_tid();
            ready_tx.send(tid).unwrap();
            done_rx.recv().unwrap();
        });
        let worker_tid = ready_rx.recv().unwrap();
        let stacks = sample_stacks();
        let seen = stacks
            .iter()
            .find(|(tid, _)| *tid == worker_tid)
            .expect("worker stack registered");
        assert_eq!(seen.1, vec!["worker_outer", "worker_inner"]);
        done_tx.send(()).unwrap();
        worker.join().unwrap();
        // After the thread exits its stack is pruned on the next sample.
        let stacks = sample_stacks();
        assert!(stacks.iter().all(|(tid, _)| *tid != worker_tid));
    }
}
