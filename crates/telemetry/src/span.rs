//! RAII span timers with a thread-local span stack.
//!
//! A span measures one wall-clock section and records its duration (in
//! nanoseconds) into a histogram when dropped. Spans nest: each thread
//! keeps a stack of the names of its live spans, so instrumentation can
//! ask "where am I?" ([`current_path`]) without threading context
//! through call signatures.

use std::cell::RefCell;
use std::time::Instant;

use crate::metric::Histogram;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A live timed section. Created by [`Span::enter`] (usually via the
/// [`span!`](crate::span!) macro); records on drop.
///
/// A disabled span ([`Span::noop`]) skips the clock read, the stack
/// push, and the histogram record entirely — the kill-switch reduces a
/// `span!` site to one relaxed load and a branch.
#[must_use = "a span records when dropped; binding it to _ discards the timing"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    start: Instant,
    hist: &'static Histogram,
}

impl Span {
    /// Starts a span that records its duration into `hist` on drop and
    /// appears on this thread's span stack while live.
    pub fn enter(name: &'static str, hist: &'static Histogram) -> Span {
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        Span {
            inner: Some(SpanInner {
                name,
                start: Instant::now(),
                hist,
            }),
        }
    }

    /// A span that does nothing (telemetry disabled).
    pub fn noop() -> Span {
        Span { inner: None }
    }

    /// Whether this span is live (false for [`Span::noop`]).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.hist.record_duration(inner.start.elapsed());
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Spans are RAII-scoped so LIFO order holds; defend
                // against mem::forget-style misuse anyway.
                if let Some(pos) = stack.iter().rposition(|&n| n == inner.name) {
                    stack.remove(pos);
                }
            });
        }
    }
}

/// Number of live spans on this thread.
pub fn current_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// The names of this thread's live spans, outermost first, joined with
/// `/` (empty string when no span is live).
pub fn current_path() -> String {
    SPAN_STACK.with(|s| s.borrow().join("/"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn hist() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(Histogram::new)
    }

    #[test]
    fn span_records_on_drop_and_tracks_stack() {
        let before = hist().snapshot().count;
        {
            let _outer = Span::enter("outer", hist());
            assert_eq!(current_depth(), 1);
            {
                let _inner = Span::enter("inner", hist());
                assert_eq!(current_path(), "outer/inner");
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        assert_eq!(hist().snapshot().count, before + 2);
    }

    #[test]
    fn noop_span_is_invisible() {
        let before = hist().snapshot().count;
        {
            let s = Span::noop();
            assert!(!s.is_recording());
            assert_eq!(current_depth(), 0);
        }
        assert_eq!(hist().snapshot().count, before);
    }
}
