//! Chrome `trace_event` timeline capture.
//!
//! While recording is on, every completed [`Span`](crate::Span) also
//! appends one *complete* (`"ph":"X"`) trace event — name, start
//! timestamp, duration, thread label — to a bounded in-memory buffer.
//! [`stop_recording`] drains the buffer; [`to_trace_json`] serialises
//! it in the Trace Event Format that `chrome://tracing` / Perfetto
//! load directly, giving a zoomable timeline of epoch and pipeline
//! phases.
//!
//! Costs: when recording is off (the default), the hook in `Span::drop`
//! is one relaxed load and a branch. When on, it is one mutex push into
//! a pre-bounded `Vec`; overflow drops the event and counts it (exposed
//! in [`TimelineCapture::dropped`] and the `telemetry.events_dropped`
//! counter) rather than growing without bound.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default event-buffer capacity for [`start_recording`].
pub const DEFAULT_TIMELINE_CAPACITY: usize = 1 << 16;

/// One completed span occurrence on the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (static instrumentation label).
    pub name: &'static str,
    /// Start time in microseconds since recording began.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Thread label (see [`crate::span::thread_tid`]).
    pub tid: u64,
}

/// The result of a recording session: the captured events plus how many
/// were discarded because the bounded buffer was full.
#[derive(Debug, Default)]
pub struct TimelineCapture {
    /// Events captured, in completion order.
    pub events: Vec<TraceEvent>,
    /// Events discarded on overflow.
    pub dropped: u64,
}

struct Buffer {
    events: Vec<TraceEvent>,
    cap: usize,
    origin: Instant,
    dropped: u64,
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static DROPPED_TOTAL: AtomicU64 = AtomicU64::new(0);

fn buffer() -> &'static Mutex<Option<Buffer>> {
    static BUF: OnceLock<Mutex<Option<Buffer>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(None))
}

/// Starts timeline recording with a buffer of at most `capacity`
/// events. A recording already in progress is discarded.
pub fn start_recording(capacity: usize) {
    let mut buf = buffer().lock().unwrap();
    *buf = Some(Buffer {
        events: Vec::with_capacity(capacity.min(DEFAULT_TIMELINE_CAPACITY)),
        cap: capacity.max(1),
        origin: Instant::now(),
        dropped: 0,
    });
    RECORDING.store(true, Ordering::Release);
}

/// Whether timeline recording is currently on (one relaxed load).
pub fn is_recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Stops recording and returns everything captured since
/// [`start_recording`]. Returns an empty capture when recording was
/// never started.
pub fn stop_recording() -> TimelineCapture {
    RECORDING.store(false, Ordering::Release);
    let mut buf = buffer().lock().unwrap();
    match buf.take() {
        Some(b) => TimelineCapture {
            events: b.events,
            dropped: b.dropped,
        },
        None => TimelineCapture::default(),
    }
}

/// Total timeline events discarded on overflow across all recording
/// sessions in this process.
pub fn dropped_total() -> u64 {
    DROPPED_TOTAL.load(Ordering::Relaxed)
}

/// Hook called from `Span::drop`. Cheap no-op unless recording.
pub(crate) fn record_complete(name: &'static str, start: Instant, dur: Duration, tid: u64) {
    if !is_recording() {
        return;
    }
    let mut buf = buffer().lock().unwrap();
    let Some(b) = buf.as_mut() else { return };
    if b.events.len() >= b.cap {
        b.dropped += 1;
        DROPPED_TOTAL.fetch_add(1, Ordering::Relaxed);
        crate::journal::note_events_dropped(1);
        return;
    }
    let ts_us = start.saturating_duration_since(b.origin).as_micros() as u64;
    b.events.push(TraceEvent {
        name,
        ts_us,
        dur_us: dur.as_micros() as u64,
        tid,
    });
}

/// Serialises events in the Chrome Trace Event Format (JSON object
/// form): `{"traceEvents":[{"name":…,"ph":"X","ts":…,"dur":…,…}]}`.
/// Load the output in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn to_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Span names are static identifiers (no quotes/backslashes),
        // but escape defensively so output is always valid JSON.
        out.push_str("{\"name\":\"");
        for c in e.name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str(&format!(
            "\",\"cat\":\"sies\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            e.ts_us, e.dur_us, e.tid
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Histogram;
    use crate::Span;

    fn hist() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(Histogram::new)
    }

    /// Recording state is process-global, and spans dropped by other
    /// concurrently running tests would leak into a capture; serialise
    /// the timeline tests and filter captured events by our own tid.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn captures_span_completions_in_order() {
        let _g = test_lock();
        start_recording(1 << 12);
        {
            let _outer = Span::enter("tl_outer", hist());
            let _inner = Span::enter("tl_inner", hist());
        }
        let cap = stop_recording();
        let me = crate::span::thread_tid();
        let names: Vec<&str> = cap
            .events
            .iter()
            .filter(|e| e.tid == me)
            .map(|e| e.name)
            .collect();
        // Inner drops first.
        assert_eq!(names, vec!["tl_inner", "tl_outer"]);
        let json = to_trace_json(&cap.events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"tl_outer\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn overflow_drops_and_counts() {
        let _g = test_lock();
        start_recording(1);
        {
            let _a = Span::enter("tl_a", hist());
        }
        {
            let _b = Span::enter("tl_b", hist());
        }
        let cap = stop_recording();
        assert_eq!(cap.events.len(), 1);
        assert!(cap.dropped >= 1);
    }

    #[test]
    fn not_recording_captures_nothing() {
        let _g = test_lock();
        // Ensure off.
        let _ = stop_recording();
        {
            let _s = Span::enter("tl_off", hist());
        }
        let cap = stop_recording();
        assert!(cap.events.is_empty());
        assert_eq!(cap.dropped, 0);
    }
}
