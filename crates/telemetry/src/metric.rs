//! Lock-free metric primitives: counters, float counters, gauges, and
//! fixed-width log2-bucketed histograms.
//!
//! Every record path is a handful of `Relaxed` atomic operations — no
//! locks, no allocation — so instrumentation can sit on hot paths. All
//! types are mergeable: two instances recorded independently (e.g. on
//! different threads, or across a snapshot boundary) combine into
//! exactly the totals a single instance would have seen.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing `f64` accumulator (energy joules, seconds)
/// stored as raw bits in an `AtomicU64` and updated with a CAS loop —
/// still lock-free, at the cost of a retry under contention.
#[derive(Debug, Default)]
pub struct FloatCounter(AtomicU64);

impl FloatCounter {
    /// Creates a float counter at `0.0`.
    pub const fn new() -> Self {
        FloatCounter(AtomicU64::new(0))
    }

    /// Adds `x` (non-finite contributions are dropped so the exporters
    /// always emit valid JSON).
    #[inline]
    pub fn add(&self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A last-write-wins level indicator (queue depths, configured widths).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i`
/// (`1 ≤ i ≤ 64`) holds values in `[2^(i-1), 2^i)` — so the full `u64`
/// range, including `u64::MAX`, lands in a bucket and two histograms
/// always merge bucket-by-bucket.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-width, mergeable, log2-bucketed histogram of `u64` samples
/// (latencies in nanoseconds, sizes in bytes, batch widths).
///
/// Recording touches three relaxed atomics: the bucket, the count, and
/// the (wrapping) sum. There is no lock and no dynamic allocation; the
/// bucket array is fixed at [`HIST_BUCKETS`].
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    /// Wrapping sum of all samples (used for means; wraps only after
    /// ~1.8e19 total units, documented rather than guarded).
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`
/// (the sample's bit length).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array through the const
        // initializer pattern.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HIST_BUCKETS],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed); // wrapping by definition
    }

    /// Records a duration as whole nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// A point-in-time copy of the histogram's state.
    ///
    /// The three loads are not mutually atomic; under concurrent
    /// recording the snapshot may be torn by a few in-flight samples.
    /// Quiescent snapshots (the only ones the suite diffs) are exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Merges a snapshot's contents into this histogram (used when a
    /// local registry's epoch diff is absorbed into the global one).
    pub fn absorb(&self, s: &HistogramSnapshot) {
        for (b, &v) in self.buckets.iter().zip(&s.buckets) {
            if v > 0 {
                b.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(s.count, Ordering::Relaxed);
        self.sum.fetch_add(s.sum, Ordering::Relaxed);
    }
}

/// Plain-data copy of a [`Histogram`], supporting merge and diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Wrapping sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Adds another snapshot's samples into this one (associative and
    /// commutative — merge order never matters).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.wrapping_add(*b);
        }
    }

    /// Samples recorded since `earlier` (bucket-wise saturating
    /// subtraction; `earlier` must be an older snapshot of the same
    /// histogram for the result to be meaningful).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = self.clone();
        out.count = out.count.wrapping_sub(earlier.count);
        out.sum = out.sum.wrapping_sub(earlier.sum);
        for (a, b) in out.buckets.iter_mut().zip(&earlier.buckets) {
            *a = a.saturating_sub(*b);
        }
        out
    }

    /// Mean sample value (0 when empty; meaningless if `sum` wrapped).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`); 0 when empty. A log2 histogram bounds the true
    /// quantile within a factor of 2.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Interpolated `q`-quantile estimate (`0.0 ≤ q ≤ 1.0`); 0 when
    /// empty.
    ///
    /// Finds the log2 bucket containing the `q`-rank sample and
    /// linearly interpolates within `[lower, upper]` of that bucket by
    /// the rank's position among the bucket's samples — the standard
    /// histogram-quantile estimator (what PromQL's `histogram_quantile`
    /// computes), assuming samples are uniform within a bucket. Exact
    /// for buckets holding one value (0 and 1); within a factor of 2
    /// worst-case elsewhere, and much tighter for smooth distributions.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank && b > 0 {
                let hi = bucket_upper_bound(i) as f64;
                let lo = match i {
                    0 => 0.0,
                    _ => bucket_upper_bound(i - 1) as f64 + 1.0,
                };
                // rank falls `into`-th (1-based) among this bucket's
                // `b` samples.
                let into = rank - (seen - b);
                let frac = into as f64 / b as f64;
                return lo + (hi - lo) * frac;
            }
        }
        u64::MAX as f64
    }

    /// Interpolated median. See [`HistogramSnapshot::quantile`].
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Interpolated 95th percentile. See [`HistogramSnapshot::quantile`].
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Interpolated 99th percentile. See [`HistogramSnapshot::quantile`].
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn float_counter_accumulates() {
        let f = FloatCounter::new();
        f.add(1.5);
        f.add(2.25);
        f.add(f64::NAN); // dropped
        f.add(f64::INFINITY); // dropped
        assert_eq!(f.get(), 3.75);
    }

    #[test]
    fn gauge_set_and_raise() {
        let g = Gauge::new();
        g.set(7);
        g.raise(3);
        assert_eq!(g.get(), 7);
        g.raise(10);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_cover_the_domain() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value's bucket upper bound is >= the value.
        for v in [0u64, 1, 2, 3, 5, 1000, u64::MAX - 1, u64::MAX] {
            assert!(bucket_upper_bound(bucket_index(v)) >= v, "v = {v}");
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 1024, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the two ones
        assert_eq!(s.buckets[3], 1); // 7
        assert_eq!(s.buckets[11], 1); // 1024
        assert_eq!(s.buckets[64], 1); // u64::MAX
        assert_eq!(
            s.sum,
            0u64.wrapping_add(1 + 1 + 7 + 1024).wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn snapshot_diff_round_trips() {
        let h = Histogram::new();
        h.record(5);
        let t0 = h.snapshot();
        h.record(9);
        h.record(100);
        let t1 = h.snapshot();
        let d = t1.diff(&t0);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 109);
        // diff + earlier == later, bucket by bucket.
        let mut recon = t0.clone();
        recon.merge(&d);
        assert_eq!(recon, t1);
    }

    #[test]
    fn quantiles_bound_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile_upper_bound(0.5);
        let p99 = s.quantile_upper_bound(0.99);
        assert!((500..1024).contains(&p50), "p50 bound {p50}");
        assert!(p99 >= 990, "p99 bound {p99}");
        assert!((s.mean() - 500.5).abs() < 1e-9);
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn interpolated_quantiles_pin_known_distributions() {
        // Empty and all-zero distributions.
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
        let zeros = Histogram::new();
        for _ in 0..10 {
            zeros.record(0);
        }
        assert_eq!(zeros.snapshot().p50(), 0.0);

        // Four samples in bucket [8, 15]: ranks interpolate at
        // 1/4, 2/4, 3/4, 4/4 of the bucket span [8, 15].
        let h = Histogram::new();
        for _ in 0..4 {
            h.record(10);
        }
        let s = h.snapshot();
        assert!((s.quantile(0.25) - 9.75).abs() < 1e-9);
        assert!((s.p50() - 11.5).abs() < 1e-9);
        assert!((s.quantile(0.75) - 13.25).abs() < 1e-9);
        assert!((s.quantile(1.0) - 15.0).abs() < 1e-9);

        // Uniform 1..=1024: interpolation recovers the true quantiles
        // closely (bucket [512, 1023] holds exactly its value range).
        let u = Histogram::new();
        for v in 1..=1024u64 {
            u.record(v);
        }
        let s = u.snapshot();
        // rank 512 is the 1st of 512 samples in [512, 1023]:
        // 512 + 511/512.
        assert!((s.p50() - (512.0 + 511.0 / 512.0)).abs() < 1e-9);
        // rank 1014 is the 503rd: 512 + 511 * 503/512.
        assert!((s.p99() - (512.0 + 511.0 * 503.0 / 512.0)).abs() < 1e-9);
        assert!((s.p50() - 512.0).abs() < 2.0, "p50 {}", s.p50());
        assert!((s.p99() - 1014.0).abs() < 2.0, "p99 {}", s.p99());

        // Single-value buckets are exact.
        let ones = Histogram::new();
        for _ in 0..7 {
            ones.record(1);
        }
        assert_eq!(ones.snapshot().p95(), 1.0);

        // Quantiles are monotone in q and never exceed the bucket
        // upper bound.
        let m = Histogram::new();
        for v in [3u64, 9, 27, 81, 243, 729, 2187, 6561] {
            m.record(v);
        }
        let s = m.snapshot();
        let mut last = -1.0f64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = s.quantile(q);
            assert!(v >= last, "quantile not monotone at q={q}");
            assert!(v <= s.quantile_upper_bound(q) as f64);
            last = v;
        }
    }
}
