//! Bounded per-epoch event journal: a ring buffer of typed events.
//!
//! Counters answer "how many"; the journal answers "what happened, in
//! order". Each event carries the epoch it belongs to, a kind tag, and
//! two kind-specific payload words. The buffer is bounded: when full,
//! the oldest events are evicted and a drop counter advances, so the
//! journal can stay on for a 2000-epoch chaos run without growing
//! without bound.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Global counter advanced whenever a bounded telemetry buffer (the
/// event ring here, or the trace-event timeline) silently discards an
/// entry. Exported so the alert engine can turn silent truncation into
/// a visible `events_dropped` alert.
pub const EVENTS_DROPPED: &str = "telemetry.events_dropped";

/// Bumps [`EVENTS_DROPPED`] in the global registry. The counter handle
/// is cached after the first call, so steady-state cost is one atomic
/// add — safe to call with a ring mutex held (the registry lock is
/// only taken once, and never takes the ring lock).
pub(crate) fn note_events_dropped(n: u64) {
    static HANDLE: OnceLock<std::sync::Arc<crate::metric::Counter>> = OnceLock::new();
    HANDLE
        .get_or_init(|| crate::registry::global().counter(EVENTS_DROPPED))
        .add(n);
}

/// What happened. Payload word meanings are listed per variant as
/// `(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Querier broadcast the epoch query. `(n_sources, 0)`
    QueryDisseminated,
    /// A source produced its PSR. `(source_id, 0)`
    SourceInit,
    /// An aggregator folded children into a partial result.
    /// `(aggregator_id, n_children)`
    PsrMerged,
    /// Epoch verdict: accepted. `(contributors, 0)`
    EpochAccepted,
    /// Epoch verdict: integrity failure detected. `(contributors, 0)`
    EpochRejected,
    /// Epoch verdict: no result reached the querier. `(0, 0)`
    EpochLost,
    /// Recovery: positive acknowledgement sent. `(node_id, 0)`
    AckSent,
    /// Recovery: negative acknowledgement sent. `(node_id, attempt)`
    NackSent,
    /// Recovery: a NACK was honored with a retransmit. `(node_id, attempt)`
    Retransmit,
    /// Recovery: querier re-solicited missing subtrees. `(round, n_missing)`
    Resolicit,
    /// Recovery: orphan adopted by a backup parent. `(child_id, parent_id)`
    Reattach,
    /// Recovery: failure report escalated. `(node_id, 0)`
    FailureReport,
    /// Chaos: a node crash was injected. `(node_id, 0)`
    CrashInjected,
    /// Chaos: a value/integrity attack was injected. `(node_id, 0)`
    AttackInjected,
    /// Rekey: a version announcement was re-broadcast to laggards.
    /// `(version, n_laggards)`
    RekeyRetry,
    /// muTesla: an interval key was disclosed. `(interval, 0)`
    KeyDisclosed,
    /// A multi-lane kernel pass chose a dispatch width.
    /// `(requested_width, effective_width)` — the two differ when the
    /// requested lane count exceeds what the hardware supports and the
    /// dispatcher falls back (e.g. 16 lanes without AVX-512).
    LaneDispatch,
    /// Receipts: one epoch's receipt was committed to the durable
    /// journal. `(records, bytes_written)`
    ReceiptCommitted,
    /// Receipts: a journal was replayed at startup. `(records, torn_tail)`
    JournalReplayed,
    /// SLO alerting: a rule fired over a snapshot window.
    /// `(rule_id, observed_value)` — `rule_id` indexes the engine's
    /// rule list; `observed_value` is the triggering value rounded to
    /// u64.
    AlertRaised,
}

impl EventKind {
    /// Stable machine-readable name (used by the JSON trace).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::QueryDisseminated => "query_disseminated",
            EventKind::SourceInit => "source_init",
            EventKind::PsrMerged => "psr_merged",
            EventKind::EpochAccepted => "epoch_accepted",
            EventKind::EpochRejected => "epoch_rejected",
            EventKind::EpochLost => "epoch_lost",
            EventKind::AckSent => "ack_sent",
            EventKind::NackSent => "nack_sent",
            EventKind::Retransmit => "retransmit",
            EventKind::Resolicit => "resolicit",
            EventKind::Reattach => "reattach",
            EventKind::FailureReport => "failure_report",
            EventKind::CrashInjected => "crash_injected",
            EventKind::AttackInjected => "attack_injected",
            EventKind::RekeyRetry => "rekey_retry",
            EventKind::KeyDisclosed => "key_disclosed",
            EventKind::LaneDispatch => "lane_dispatch",
            EventKind::ReceiptCommitted => "receipt_committed",
            EventKind::JournalReplayed => "journal_replayed",
            EventKind::AlertRaised => "alert_raised",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (monotone across evictions — gaps in a
    /// drained batch reveal how much was dropped and where).
    pub seq: u64,
    /// Epoch the event belongs to.
    pub epoch: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (meaning per [`EventKind`] variant).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl Event {
    /// Serializes the event as one JSON object (hand-rolled, no deps).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"epoch\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            self.seq,
            self.epoch,
            self.kind.name(),
            self.a,
            self.b
        )
    }
}

/// Default ring capacity: enough for several epochs of a dense chaos
/// run without unbounded growth.
pub const DEFAULT_CAPACITY: usize = 4096;

struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
    next_seq: u64,
    dropped: u64,
}

/// The bounded event ring. The process-wide instance is
/// [`crate::journal()`]; recording goes through
/// [`crate::event`] so it obeys the kill-switch.
pub struct Journal {
    ring: Mutex<Ring>,
}

impl Default for Journal {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Journal {
    /// Creates a journal bounded at `cap` events (min 1).
    pub fn with_capacity(cap: usize) -> Self {
        Journal {
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                cap: cap.max(1),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    /// Returns the event's sequence number.
    pub fn record(&self, epoch: u64, kind: EventKind, a: u64, b: u64) -> u64 {
        let mut r = self.ring.lock().unwrap();
        let seq = r.next_seq;
        r.next_seq += 1;
        if r.buf.len() == r.cap {
            r.buf.pop_front();
            r.dropped += 1;
            note_events_dropped(1);
        }
        r.buf.push_back(Event {
            seq,
            epoch,
            kind,
            a,
            b,
        });
        seq
    }

    /// Appends a batch of `(epoch, kind, a, b)` events under a single
    /// lock acquisition. Hot loops that would otherwise take the ring
    /// mutex once per event buffer locally and flush through here.
    pub fn record_batch(&self, events: &[(u64, EventKind, u64, u64)]) {
        if events.is_empty() {
            return;
        }
        let mut r = self.ring.lock().unwrap();
        for &(epoch, kind, a, b) in events {
            let seq = r.next_seq;
            r.next_seq += 1;
            if r.buf.len() == r.cap {
                r.buf.pop_front();
                r.dropped += 1;
                note_events_dropped(1);
            }
            r.buf.push_back(Event {
                seq,
                epoch,
                kind,
                a,
                b,
            });
        }
    }

    /// Resizes the ring (evicting oldest entries if shrinking below the
    /// current length).
    pub fn set_capacity(&self, cap: usize) {
        let mut r = self.ring.lock().unwrap();
        r.cap = cap.max(1);
        while r.buf.len() > r.cap {
            r.buf.pop_front();
            r.dropped += 1;
            note_events_dropped(1);
        }
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.ring.lock().unwrap().buf.drain(..).collect()
    }

    /// Events evicted (not drained) since creation.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_batch_matches_singles_and_evicts() {
        let j = Journal::with_capacity(4);
        j.record(1, EventKind::QueryDisseminated, 9, 0);
        j.record_batch(&[
            (1, EventKind::Retransmit, 2, 1),
            (1, EventKind::NackSent, 3, 2),
            (1, EventKind::Resolicit, 4, 1),
            (1, EventKind::EpochAccepted, 9, 0),
        ]);
        // 5 events into a 4-slot ring: the oldest is evicted, sequence
        // numbers keep counting across the batch.
        assert_eq!(j.dropped(), 1);
        let events = j.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::Retransmit);
        assert_eq!(events[3].seq, 4);
        j.record_batch(&[]);
        assert!(j.is_empty());
    }

    #[test]
    fn records_in_order_and_drains() {
        let j = Journal::with_capacity(8);
        j.record(1, EventKind::QueryDisseminated, 10, 0);
        j.record(1, EventKind::SourceInit, 3, 0);
        j.record(1, EventKind::EpochAccepted, 10, 0);
        let events = j.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::QueryDisseminated);
        assert_eq!(events[2].seq, 2);
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn bounded_ring_evicts_oldest() {
        let j = Journal::with_capacity(3);
        for i in 0..5 {
            j.record(i, EventKind::NackSent, i, 0);
        }
        let events = j.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2, "oldest two evicted");
        assert_eq!(j.dropped(), 2);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let j = Journal::with_capacity(10);
        for i in 0..10 {
            j.record(0, EventKind::Retransmit, i, 0);
        }
        j.set_capacity(4);
        assert_eq!(j.len(), 4);
        assert_eq!(j.dropped(), 6);
    }

    #[test]
    fn eviction_bumps_global_events_dropped_counter() {
        let counter = crate::registry::global().counter(EVENTS_DROPPED);
        let before = counter.get();
        let j = Journal::with_capacity(2);
        for i in 0..5 {
            j.record(0, EventKind::NackSent, i, 0);
        }
        j.set_capacity(1);
        // 3 record-time evictions + 1 shrink eviction. Other tests may
        // evict concurrently, so assert a lower bound.
        assert!(counter.get() - before >= 4);
        assert_eq!(j.dropped(), 4);
    }

    #[test]
    fn event_json_shape() {
        let j = Journal::with_capacity(2);
        j.record(7, EventKind::LaneDispatch, 8, 64);
        let e = &j.drain()[0];
        assert_eq!(
            e.to_json(),
            "{\"seq\":0,\"epoch\":7,\"kind\":\"lane_dispatch\",\"a\":8,\"b\":64}"
        );
    }
}
