//! Std-only TCP metrics endpoint.
//!
//! A background thread accepts connections and serves three read-only
//! routes over minimal HTTP/1.1:
//!
//! | route       | body                                              |
//! |-------------|---------------------------------------------------|
//! | `/metrics`  | global registry in Prometheus text format         |
//! | `/healthz`  | `ok\n`                                            |
//! | `/snapshot` | global registry as the snapshot JSON document     |
//!
//! Anything else is a 404. Requests are parsed just enough to route:
//! first line method + path, headers skipped. The server refreshes the
//! procfs process gauges ([`crate::process`]) before each scrape so
//! `/metrics` always carries current RSS / cpu time.
//!
//! # Security posture
//!
//! The endpoint is **read-only and unauthenticated** — it can leak
//! operational metadata (timings, counters, never key material or
//! sensor values, which are not in the registry by construction) but
//! cannot change anything. Bind it to loopback
//! ([`MetricsServer::start_local`]) unless the scrape network is
//! trusted; there is deliberately no TLS/auth in a zero-dependency
//! crate. Request reads are bounded (8 KiB, 2 s timeout) so a stuck
//! peer cannot pin the accept loop; one connection is served at a time
//! — a metrics scraper, not a web server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Counter name for requests served, by any route.
pub const HTTP_REQUESTS: &str = "telemetry.http_requests";

/// A running metrics endpoint. Stop (and join the thread) with
/// [`MetricsServer::shutdown`]; dropping also stops it.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free
    /// port) and starts serving the global registry.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("sies-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // A bad peer only costs its own bounded read.
                        let _ = serve_one(stream);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// Binds loopback on an OS-assigned free port — the recommended
    /// default (see the module's security posture).
    pub fn start_local() -> std::io::Result<MetricsServer> {
        MetricsServer::start("127.0.0.1:0")
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads one request (bounded), routes it, writes one response.
fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 8192];
    let mut used = 0;
    // Read until the header terminator or the bound; a shutdown poke
    // that sends nothing lands in the Ok(0) arm immediately.
    loop {
        if used == buf.len() {
            break;
        }
        match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => {
                used += n;
                if buf[..used].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf[..used]);
    let mut first = request.lines().next().unwrap_or("").split_whitespace();
    let method = first.next().unwrap_or("");
    let path = first.next().unwrap_or("");
    if method.is_empty() {
        return Ok(()); // empty poke (shutdown), no response owed
    }

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => {
                crate::process::record_process_gauges();
                (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    crate::registry::global().snapshot().to_prometheus(),
                )
            }
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            "/snapshot" => {
                crate::process::record_process_gauges();
                (
                    "200 OK",
                    "application/json",
                    crate::registry::global().snapshot().to_json(),
                )
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    if crate::enabled() {
        crate::registry::global().counter(HTTP_REQUESTS).incr();
    }
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_all_routes_and_shuts_down() {
        crate::registry::global()
            .counter("servertest.counter")
            .add(7);
        let server = MetricsServer::start_local().unwrap();
        let addr = server.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let metrics = get(addr, "/metrics");
        assert!(
            metrics.contains("# TYPE servertest_counter counter"),
            "{metrics}"
        );
        assert!(metrics.contains("servertest_counter 7"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");

        let snap = get(addr, "/snapshot");
        assert!(snap.contains("application/json"), "{snap}");
        assert!(snap.contains("\"servertest.counter\":7"), "{snap}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
    }

    #[test]
    fn rejects_non_get() {
        let server = MetricsServer::start_local().unwrap();
        let addr = server.local_addr();
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        server.shutdown();
    }

    #[test]
    fn content_length_matches_body() {
        let server = MetricsServer::start_local().unwrap();
        let response = get(server.local_addr(), "/healthz");
        let (headers, body) = response.split_once("\r\n\r\n").unwrap();
        let len: usize = headers
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
        server.shutdown();
    }
}
