//! Zero-dependency in-process sampling profiler.
//!
//! A watcher thread wakes at a configurable frequency and snapshots
//! every registered thread's live-span stack
//! ([`crate::span::sample_stacks`]), folding each observed stack into a
//! `outer;inner → count` table. [`ProfileData::to_folded`] serialises
//! that table in the *folded stacks* format consumed by
//! `flamegraph.pl`, inferno, and speedscope.
//!
//! Because the profiler only ever *reads* span names pushed by the
//! instrumented threads, the workload is untouched apart from the span
//! mutexes it already pays for — the determinism oracle (chaos result
//! digest identical with the profiler on and off) holds by
//! construction, and the wall-clock overhead is gated at 3% in CI
//! (`repro profile`).
//!
//! Sampling bias note: span stacks cover *instrumented phases*, not
//! arbitrary native frames — this is a phase profiler, not a
//! frame-pointer unwinder. Samples landing outside any span are
//! counted as idle so the denominator stays honest.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::span::sample_stacks;

/// Default sampling frequency. Prime, so the sampler cannot phase-lock
/// with millisecond-periodic workload structure.
pub const DEFAULT_HZ: u32 = 97;

/// Aggregated samples from one profiling session.
#[derive(Debug, Default, Clone)]
pub struct ProfileData {
    /// Folded stack (`"outer;inner"`) → number of samples observed.
    pub stacks: BTreeMap<String, u64>,
    /// Total per-thread stack observations, including idle ones.
    pub samples: u64,
    /// Observations of threads with no live span.
    pub idle_samples: u64,
    /// Sampling ticks performed (each tick observes every thread).
    pub ticks: u64,
}

impl ProfileData {
    /// Number of distinct folded stacks observed.
    pub fn distinct_stacks(&self) -> usize {
        self.stacks.len()
    }

    /// Serialises in the folded-stacks format (`stack count\n` lines,
    /// semicolon-separated frames, outermost first) understood by
    /// `flamegraph.pl`, inferno, and speedscope.
    pub fn to_folded(&self) -> String {
        let mut out = String::with_capacity(self.stacks.len() * 48);
        for (stack, count) in &self.stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Merges another session's samples into this one.
    pub fn absorb(&mut self, other: &ProfileData) {
        for (k, v) in &other.stacks {
            *self.stacks.entry(k.clone()).or_insert(0) += v;
        }
        self.samples += other.samples;
        self.idle_samples += other.idle_samples;
        self.ticks += other.ticks;
    }
}

/// A running sampling session. Construct with [`Profiler::start`],
/// harvest with [`Profiler::stop`]. Dropping without `stop` terminates
/// the watcher and discards its samples.
pub struct Profiler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<ProfileData>>,
}

impl Profiler {
    /// Spawns the watcher thread sampling all span stacks at `hz`
    /// (clamped to `[1, 10_000]`).
    pub fn start(hz: u32) -> Profiler {
        let hz = hz.clamp(1, 10_000);
        let period = Duration::from_nanos(1_000_000_000 / hz as u64);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("sies-profiler".into())
            .spawn(move || {
                let mut data = ProfileData::default();
                while !stop2.load(Ordering::Relaxed) {
                    data.ticks += 1;
                    for (_tid, stack) in sample_stacks() {
                        data.samples += 1;
                        if stack.is_empty() {
                            data.idle_samples += 1;
                        } else {
                            *data.stacks.entry(stack.join(";")).or_insert(0) += 1;
                        }
                    }
                    std::thread::sleep(period);
                }
                data
            })
            .expect("spawn profiler watcher thread");
        Profiler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the watcher and returns everything it sampled.
    pub fn stop(mut self) -> ProfileData {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => ProfileData::default(),
        }
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Histogram;
    use crate::Span;
    use std::sync::OnceLock;

    fn hist() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(Histogram::new)
    }

    #[test]
    fn samples_a_held_span() {
        let prof = Profiler::start(2000);
        {
            let _outer = Span::enter("prof_outer", hist());
            let _inner = Span::enter("prof_inner", hist());
            // Hold the stack open long enough for many ticks even on a
            // heavily loaded test machine.
            std::thread::sleep(Duration::from_millis(120));
        }
        let data = prof.stop();
        assert!(data.ticks > 0, "watcher never ticked");
        assert!(data.samples > 0, "no thread stacks observed");
        let folded = data.to_folded();
        assert!(
            data.stacks.keys().any(|k| k == "prof_outer;prof_inner"),
            "expected folded stack missing; got:\n{folded}"
        );
        // Folded lines are "frames count".
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("line has count");
            assert!(!stack.is_empty());
            assert!(count.parse::<u64>().unwrap() > 0);
        }
    }

    #[test]
    fn absorb_merges_counts() {
        let mut a = ProfileData::default();
        a.stacks.insert("x".into(), 2);
        a.samples = 3;
        a.idle_samples = 1;
        a.ticks = 3;
        let mut b = ProfileData::default();
        b.stacks.insert("x".into(), 1);
        b.stacks.insert("y".into(), 4);
        b.samples = 5;
        b.ticks = 5;
        a.absorb(&b);
        assert_eq!(a.stacks["x"], 3);
        assert_eq!(a.stacks["y"], 4);
        assert_eq!(a.samples, 8);
        assert_eq!(a.idle_samples, 1);
        assert_eq!(a.ticks, 8);
        assert_eq!(a.distinct_stacks(), 2);
    }
}
