//! # sies-telemetry — zero-dependency observability for the SIES stack
//!
//! The paper's whole evaluation is an accounting exercise: where do
//! cycles, bytes, and joules go per epoch? This crate makes that
//! accounting a first-class, always-available substrate instead of
//! hand-threaded structs:
//!
//! - **Metrics** ([`metric`]): lock-free [`Counter`]s, [`FloatCounter`]s
//!   (energy joules), [`Gauge`]s, and fixed-width log2-bucketed
//!   [`Histogram`]s that merge and diff exactly.
//! - **Spans** ([`span`]): RAII wall-clock sections recording into
//!   histograms, with a thread-local stack for nesting.
//! - **Journal** ([`journal`]): a bounded ring of typed per-epoch
//!   events (NACK sent, retransmit, rekey retry, lane dispatch, ...).
//! - **Registry** ([`registry`]): named metrics with cheap
//!   [`Snapshot`]/[`Snapshot::diff`] and JSON / Prometheus-text
//!   exporters.
//! - **Profiler** ([`profiler`]): a watcher thread sampling every
//!   thread's live-span stack at a configurable Hz, emitting
//!   flamegraph folded stacks.
//! - **Timeline** ([`timeline`]): Chrome `trace_event` capture of span
//!   completions for `chrome://tracing` / Perfetto.
//! - **Alerts** ([`alert`]): declarative threshold/rate/quantile rules
//!   over snapshot diffs, journaling typed [`EventKind::AlertRaised`]
//!   events.
//! - **Endpoint** ([`server`]): a std-only TCP listener serving
//!   `/metrics` (Prometheus), `/healthz`, and `/snapshot` (JSON).
//!
//! ## Kill-switch
//!
//! Telemetry defaults **on** and is disabled with `SIES_TELEMETRY=off`
//! (or `0`/`false`), mirroring the `SIES_LANES` knob in
//! `sies-crypto::lanes`. Tests and the overhead bench flip it
//! in-process with [`set_enabled`]/[`clear_enabled`]. When disabled,
//! every record macro compiles down to one relaxed atomic load plus a
//! branch — measured as <3% on the 2000-epoch chaos workload (see
//! `BENCH_observability.json`).
//!
//! ## Determinism
//!
//! Nothing in this crate feeds back into computation: metrics are
//! write-only from the instrumented code's perspective, and the journal
//! is drain-only. The determinism oracle in `sies-bench` pins this:
//! epoch digests are byte-identical with telemetry on/off and across
//! thread counts.
//!
//! ## Usage
//!
//! ```
//! use sies_telemetry as tel;
//!
//! tel::count!("net.nack.sent", 1);
//! tel::observe!("crypto.hmac.batch", 64);
//! {
//!     let _s = tel::span!("engine.aggregate");
//!     // ... timed section ...
//! }
//! tel::event(7, tel::EventKind::Retransmit, 42, 1);
//! let snap = tel::global().snapshot();
//! let _json = snap.to_json();
//! ```

pub mod alert;
pub mod journal;
pub mod metric;
pub mod process;
pub mod profiler;
pub mod registry;
pub mod server;
pub mod span;
pub mod timeline;

pub use alert::{Alert, AlertEngine, Rule};
pub use journal::{Event, EventKind, Journal, EVENTS_DROPPED};
pub use metric::{Counter, FloatCounter, Gauge, Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use process::{
    cpu_time_ns, peak_rss_bytes, record_bytes_per_node, record_cpu_time, record_peak_rss,
    record_process_gauges,
};
pub use profiler::{ProfileData, Profiler};
pub use registry::{describe, global, Registry, Snapshot};
pub use server::MetricsServer;
pub use span::{current_depth, current_path, sample_stacks, thread_tid, Span};
pub use timeline::{
    dropped_total, is_recording, start_recording, stop_recording, to_trace_json, TimelineCapture,
    TraceEvent, DEFAULT_TIMELINE_CAPACITY,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// In-process override: 0 = follow the environment, 1 = forced on,
/// 2 = forced off. Same shape as `FORCED` in `sies-crypto::lanes`.
static FORCED: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("SIES_TELEMETRY") {
            Ok(v) => {
                let v = v.trim().to_ascii_lowercase();
                !(v == "off" || v == "0" || v == "false")
            }
            // Default on: the whole point is visibility without opt-in.
            Err(_) => true,
        }
    })
}

/// Whether record sites are live. One relaxed load + branch; this is
/// the entire cost of a disabled record site.
#[inline]
pub fn enabled() -> bool {
    match FORCED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_enabled(),
    }
}

/// Forces telemetry on or off in-process, overriding `SIES_TELEMETRY`.
/// Used by the overhead bench and by tests.
pub fn set_enabled(on: bool) {
    FORCED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Reverts to the environment's setting.
pub fn clear_enabled() {
    FORCED.store(0, Ordering::Relaxed);
}

/// The process-wide event journal.
pub fn journal() -> &'static Journal {
    static JOURNAL: OnceLock<Journal> = OnceLock::new();
    JOURNAL.get_or_init(Journal::default)
}

/// Records an event in the global [`journal`] when telemetry is
/// enabled (the journal analogue of [`count!`]).
#[inline]
pub fn event(epoch: u64, kind: EventKind, a: u64, b: u64) {
    if enabled() {
        journal().record(epoch, kind, a, b);
    }
}

/// A reusable local buffer for journal events emitted from a hot loop.
///
/// [`event`] takes the journal mutex once per event; a loop that emits
/// dozens of events per epoch pushes into this plain `Vec` instead and
/// [`flush`](EventBuf::flush)es them under a single lock at the epoch
/// boundary. Within-epoch ordering relative to directly-recorded events
/// shifts to the flush point; counts and epoch tags are unchanged.
#[derive(Default)]
pub struct EventBuf {
    buf: Vec<(u64, EventKind, u64, u64)>,
}

impl EventBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        EventBuf::default()
    }

    /// Buffers an event when telemetry is enabled (no lock taken).
    #[inline]
    pub fn push(&mut self, epoch: u64, kind: EventKind, a: u64, b: u64) {
        if enabled() {
            self.buf.push((epoch, kind, a, b));
        }
    }

    /// Appends everything buffered to the global [`journal`] under one
    /// lock, retaining the allocation for reuse.
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            journal().record_batch(&self.buf);
            self.buf.clear();
        }
    }
}

/// A cached handle to the global counter named `$name`.
///
/// The registry lookup (a `Mutex` + `BTreeMap` walk) happens once per
/// call site; afterwards this is a `OnceLock` load. `$name` must be a
/// string literal (each expansion owns one static slot).
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::global().counter($name)))
    }};
}

/// Adds `$n` to the global counter `$name` when telemetry is enabled.
#[macro_export]
macro_rules! count {
    ($name:literal, $n:expr) => {
        if $crate::enabled() {
            $crate::counter!($name).add($n);
        }
    };
    ($name:literal) => {
        $crate::count!($name, 1)
    };
}

/// A cached handle to the global float counter named `$name`.
#[macro_export]
macro_rules! float_counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::FloatCounter>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::global().float($name)))
    }};
}

/// Adds `$x` (an `f64`) to the global float counter `$name` when
/// telemetry is enabled.
#[macro_export]
macro_rules! count_float {
    ($name:literal, $x:expr) => {
        if $crate::enabled() {
            $crate::float_counter!($name).add($x);
        }
    };
}

/// A cached handle to the global gauge named `$name`.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::global().gauge($name)))
    }};
}

/// Sets the global gauge `$name` to `$v` when telemetry is enabled.
#[macro_export]
macro_rules! set_gauge {
    ($name:literal, $v:expr) => {
        if $crate::enabled() {
            $crate::gauge!($name).set($v);
        }
    };
}

/// A cached handle to the global histogram named `$name`.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::global().histogram($name)))
    }};
}

/// Records sample `$v` (a `u64`) into the global histogram `$name` when
/// telemetry is enabled.
#[macro_export]
macro_rules! observe {
    ($name:literal, $v:expr) => {
        if $crate::enabled() {
            $crate::histogram!($name).record($v);
        }
    };
}

/// Opens an RAII span recording its duration (ns) into the global
/// histogram `$name`; a noop when telemetry is disabled. Bind the
/// result (`let _s = span!(...)`) — the timing is taken at drop.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        if $crate::enabled() {
            // Leak-free: the histogram Arc lives in the registry; the
            // span borrows a per-site &'static through the OnceLock.
            static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            $crate::Span::enter(
                $name,
                ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::global().histogram($name))),
            )
        } else {
            $crate::Span::noop()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The kill-switch toggles process-global state, so the tests that
    // flip it share one lock to stay parallel-safe.
    fn switch_lock() -> &'static std::sync::Mutex<()> {
        static LOCK: OnceLock<std::sync::Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
    }

    #[test]
    fn kill_switch_gates_macros() {
        let _g = switch_lock().lock().unwrap();
        set_enabled(true);
        count!("test.lib.gated", 2);
        observe!("test.lib.gated_hist", 5);
        set_enabled(false);
        count!("test.lib.gated", 100);
        observe!("test.lib.gated_hist", 100);
        let s = span!("test.lib.gated_span");
        assert!(!s.is_recording());
        drop(s);
        clear_enabled();

        let snap = global().snapshot();
        assert_eq!(snap.counter("test.lib.gated"), 2);
        assert_eq!(snap.hist("test.lib.gated_hist").count, 1);
    }

    #[test]
    fn event_helper_respects_switch() {
        let _g = switch_lock().lock().unwrap();
        set_enabled(false);
        event(1, EventKind::NackSent, 1, 1);
        set_enabled(true);
        event(2, EventKind::Retransmit, 9, 1);
        clear_enabled();
        let drained = journal().drain();
        assert!(drained.iter().all(|e| e.kind != EventKind::NackSent));
        assert!(drained
            .iter()
            .any(|e| e.kind == EventKind::Retransmit && e.epoch == 2));
    }

    #[test]
    fn event_buf_respects_switch_and_flushes_once() {
        let _g = switch_lock().lock().unwrap();
        let mut buf = EventBuf::new();
        set_enabled(false);
        buf.push(1, EventKind::NackSent, 1, 1);
        set_enabled(true);
        buf.push(2, EventKind::Resolicit, 7, 3);
        buf.push(2, EventKind::Retransmit, 8, 1);
        clear_enabled();
        buf.flush();
        buf.flush(); // idempotent once drained into the journal
        let drained = journal().drain();
        assert!(drained.iter().all(|e| e.kind != EventKind::NackSent));
        assert_eq!(
            drained
                .iter()
                .filter(|e| e.epoch == 2 && (e.a == 7 || e.a == 8))
                .count(),
            2
        );
    }

    #[test]
    fn macro_handles_are_the_registry_handles() {
        let _g = switch_lock().lock().unwrap();
        set_enabled(true);
        count!("test.lib.shared_handle", 1);
        clear_enabled();
        global().counter("test.lib.shared_handle").add(4);
        assert_eq!(
            global().snapshot().counter("test.lib.shared_handle"),
            5,
            "macro slot and registry lookup must alias one atomic"
        );
    }
}
