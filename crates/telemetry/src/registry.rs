//! Named-metric registry with point-in-time snapshots, diffs, and
//! zero-dependency JSON / Prometheus-text exporters.
//!
//! Metric handles are `Arc`s: looking a name up takes a `Mutex`, but
//! call sites do that once (the recording macros cache the handle in a
//! `OnceLock`) and every subsequent record is lock-free on the metric
//! itself. `BTreeMap` keeps export and diff order deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metric::{Counter, FloatCounter, Gauge, Histogram, HistogramSnapshot};

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    floats: BTreeMap<&'static str, Arc<FloatCounter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    hists: BTreeMap<&'static str, Arc<Histogram>>,
}

/// A collection of named metrics.
///
/// The process-wide instance is [`global()`]; code that needs isolated
/// accounting (the epoch engine derives `EpochStats` from a private
/// registry so stats work even when global telemetry is off) can own
/// additional ones.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Metrics>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.metrics
                .lock()
                .unwrap()
                .counters
                .entry(name)
                .or_default(),
        )
    }

    /// Returns the float counter registered under `name`.
    pub fn float(&self, name: &'static str) -> Arc<FloatCounter> {
        Arc::clone(self.metrics.lock().unwrap().floats.entry(name).or_default())
    }

    /// Returns the gauge registered under `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(self.metrics.lock().unwrap().gauges.entry(name).or_default())
    }

    /// Returns the histogram registered under `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(self.metrics.lock().unwrap().hists.entry(name).or_default())
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().unwrap();
        Snapshot {
            counters: m
                .counters
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            floats: m
                .floats
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: m
                .gauges
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            hists: m
                .hists
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }

    /// Merges a snapshot's monotone metrics (counters, floats,
    /// histograms) into this registry; gauges are set to the snapshot's
    /// value. Used to fold a local registry's per-epoch diff into the
    /// global one.
    pub fn absorb(&self, s: &Snapshot) {
        for (name, &v) in &s.counters {
            if v > 0 {
                self.counter(leak_name(name)).add(v);
            }
        }
        for (name, &v) in &s.floats {
            if v != 0.0 {
                self.float(leak_name(name)).add(v);
            }
        }
        for (name, &v) in &s.gauges {
            self.gauge(leak_name(name)).set(v);
        }
        for (name, h) in &s.hists {
            if h.count > 0 {
                self.histogram(leak_name(name)).absorb(h);
            }
        }
    }
}

/// Interns a runtime metric name, returning a `&'static str`.
///
/// Metric name sets are small and fixed (dozens of instrumentation
/// sites), so leaking each distinct name once is bounded; the intern
/// table makes repeat absorbs of the same snapshot shape free.
fn leak_name(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let table = INTERNED.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut table = table.lock().unwrap();
    if let Some(&s) = table.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    table.insert(name.to_string(), leaked);
    leaked
}

/// The process-wide registry that the recording macros target.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

fn help_table() -> &'static Mutex<BTreeMap<&'static str, &'static str>> {
    static HELPS: OnceLock<Mutex<BTreeMap<&'static str, &'static str>>> = OnceLock::new();
    HELPS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Registers a help string for a metric name. Help strings are
/// process-wide (shared by every registry — names mean the same thing
/// everywhere) and surface as `# HELP` lines in the Prometheus
/// exposition. Re-describing a name replaces the previous text.
pub fn describe(name: &'static str, help: &'static str) {
    help_table().lock().unwrap().insert(name, help);
}

/// The registered help string for `name`, if any.
pub fn help_for(name: &str) -> Option<&'static str> {
    help_table().lock().unwrap().get(name).copied()
}

/// Maps a metric name to a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every character outside
/// `[a-zA-Z0-9]` becomes `_`, and a leading digit is prefixed with
/// `_` so the first-character rule holds for any input.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a help string for a Prometheus `# HELP` line: backslashes
/// and newlines must be escaped per the text exposition format.
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Plain-data copy of a [`Registry`] at a point in time.
///
/// Snapshots diff (`later.diff(&earlier)` = activity in between), merge,
/// and export; they are the unit the engine uses to derive `EpochStats`
/// and the unit `repro trace` serializes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Float-counter values by name.
    pub floats: BTreeMap<String, f64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub hists: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Float-counter value, 0.0 if absent.
    pub fn float(&self, name: &str) -> f64 {
        self.floats.get(name).copied().unwrap_or(0.0)
    }

    /// Gauge value, 0 if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram state, empty if absent.
    pub fn hist(&self, name: &str) -> HistogramSnapshot {
        self.hists.get(name).cloned().unwrap_or_default()
    }

    /// Activity between `earlier` and `self`: counters, floats, and
    /// histograms subtract (names absent earlier count from zero);
    /// gauges keep their later value (a level has no meaningful delta).
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (name, v) in out.counters.iter_mut() {
            *v = v.wrapping_sub(earlier.counter(name));
        }
        for (name, v) in out.floats.iter_mut() {
            *v -= earlier.float(name);
        }
        for (name, h) in out.hists.iter_mut() {
            let e = earlier.hist(name);
            *h = h.diff(&e);
        }
        out
    }

    /// Adds another snapshot's monotone metrics into this one (gauges
    /// take the other's value when present). Associative with `diff`:
    /// `earlier.merge(&later.diff(&earlier))` reconstructs `later`.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.floats {
            *self.floats.entry(name.clone()).or_insert(0.0) += v;
        }
        for (name, &v) in &other.gauges {
            self.gauges.insert(name.clone(), v);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
    }

    /// True when every metric is zero/empty.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.floats.values().all(|&v| v == 0.0)
            && self.gauges.values().all(|&v| v == 0)
            && self.hists.values().all(|h| h.count == 0)
    }

    /// Serializes the snapshot as a self-contained JSON object
    /// (hand-rolled — the telemetry crate has no dependencies).
    ///
    /// Shape: `{"counters": {..}, "floats": {..}, "gauges": {..},
    /// "histograms": {name: {count, sum, mean, p50_ub, p99_ub,
    /// buckets: {"le_<bound>": n, ...nonzero only}}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |o, v| {
            let _ = write!(o, "{v}");
        });
        out.push_str("},\"floats\":{");
        push_entries(&mut out, self.floats.iter(), |o, v| push_f64(o, *v));
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |o, v| {
            let _ = write!(o, "{v}");
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.hists.iter(), |o, h| {
            let _ = write!(o, "{{\"count\":{},\"sum\":{},\"mean\":", h.count, h.sum);
            push_f64(o, h.mean());
            let _ = write!(
                o,
                ",\"p50_ub\":{},\"p99_ub\":{},\"buckets\":{{",
                h.quantile_upper_bound(0.5),
                h.quantile_upper_bound(0.99)
            );
            let mut first = true;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    o.push(',');
                }
                first = false;
                let _ = write!(o, "\"le_{}\":{}", crate::metric::bucket_upper_bound(i), n);
            }
            o.push_str("}}");
        });
        out.push_str("}}");
        out
    }

    /// Serializes the snapshot in the Prometheus text exposition format
    /// (metric names have `.` mapped to `_`; histograms emit cumulative
    /// `_bucket{le=...}` series plus `_count` and `_sum`; names with a
    /// registered [`describe`] help string get a `# HELP` line with
    /// backslash/newline escaping).
    pub fn to_prometheus(&self) -> String {
        fn push_help(out: &mut String, raw: &str, n: &str) {
            if let Some(help) = help_for(raw) {
                let _ = writeln!(out, "# HELP {n} {}", escape_help(help));
            }
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            push_help(&mut out, name, &n);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.floats {
            let n = prom_name(name);
            push_help(&mut out, name, &n);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            push_help(&mut out, name, &n);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for (name, h) in &self.hists {
            let n = prom_name(name);
            push_help(&mut out, name, &n);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                cum += b;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cum}",
                    crate::metric::bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
        }
        out
    }
}

/// Writes `"key":<value>` pairs with JSON string escaping on keys.
fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut write_value: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (name, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        for c in name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push_str("\":");
        write_value(out, v);
    }
}

/// Writes an `f64` as valid JSON (no NaN/Inf; those become 0).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.snapshot().counter("x"), 5);
    }

    #[test]
    fn snapshot_diff_and_merge_round_trip() {
        let r = Registry::new();
        r.counter("c").add(10);
        r.float("f").add(1.5);
        r.gauge("g").set(3);
        r.histogram("h").record(100);
        let t0 = r.snapshot();
        r.counter("c").add(7);
        r.counter("new").add(1);
        r.float("f").add(0.5);
        r.gauge("g").set(9);
        r.histogram("h").record(200);
        let t1 = r.snapshot();

        let d = t1.diff(&t0);
        assert_eq!(d.counter("c"), 7);
        assert_eq!(d.counter("new"), 1);
        assert_eq!(d.float("f"), 0.5);
        assert_eq!(d.gauge("g"), 9); // gauges keep the later level
        assert_eq!(d.hist("h").count, 1);

        let mut recon = t0.clone();
        recon.merge(&d);
        assert_eq!(recon, t1);
    }

    #[test]
    fn absorb_folds_a_diff_into_another_registry() {
        let local = Registry::new();
        local.counter("c").add(4);
        local.histogram("h").record(8);
        let global = Registry::new();
        global.counter("c").add(1);
        global.absorb(&local.snapshot());
        let s = global.snapshot();
        assert_eq!(s.counter("c"), 5);
        assert_eq!(s.hist("h").count, 1);
    }

    #[test]
    fn empty_detection() {
        let r = Registry::new();
        r.counter("c"); // registered but zero
        assert!(r.snapshot().is_empty());
        r.counter("c").incr();
        assert!(!r.snapshot().is_empty());
    }

    #[test]
    fn json_exporter_is_well_formed() {
        let r = Registry::new();
        r.counter("net.bytes").add(12);
        r.float("energy.tx_j").add(0.25);
        r.gauge("lanes.width").set(8);
        r.histogram("span.merge_ns").record(0);
        r.histogram("span.merge_ns").record(1000);
        let js = r.snapshot().to_json();
        assert!(js.contains("\"net.bytes\":12"), "{js}");
        assert!(js.contains("\"energy.tx_j\":0.25"), "{js}");
        assert!(js.contains("\"lanes.width\":8"), "{js}");
        assert!(js.contains("\"count\":2"), "{js}");
        assert!(js.contains("\"le_0\":1"), "{js}");
        // Balanced braces (crude well-formedness check without a parser
        // dependency; no strings contain braces here).
        let open = js.matches('{').count();
        let close = js.matches('}').count();
        assert_eq!(open, close, "{js}");
    }

    #[test]
    fn prometheus_exporter_shapes() {
        let r = Registry::new();
        r.counter("net.tx.bytes").add(3);
        r.histogram("lat.ns").record(5);
        r.histogram("lat.ns").record(900);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE net_tx_bytes counter"), "{text}");
        assert!(text.contains("net_tx_bytes 3"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"7\"} 1"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"1023\"} 2"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_ns_count 2"), "{text}");
    }

    #[test]
    fn help_lines_are_emitted_and_escaped() {
        describe(
            "helptest.counter",
            "a counter\nwith a newline and a \\ slash",
        );
        let r = Registry::new();
        r.counter("helptest.counter").add(1);
        let text = r.snapshot().to_prometheus();
        assert!(
            text.contains("# HELP helptest_counter a counter\\nwith a newline and a \\\\ slash"),
            "{text}"
        );
        // HELP precedes TYPE for the same metric.
        let help_at = text.find("# HELP helptest_counter").unwrap();
        let type_at = text.find("# TYPE helptest_counter").unwrap();
        assert!(help_at < type_at);
    }

    #[test]
    fn prom_names_never_start_with_a_digit() {
        assert_eq!(prom_name("3rd.party"), "_3rd_party");
        assert_eq!(prom_name("net.bytes"), "net_bytes");
        assert_eq!(prom_name(""), "_");
    }

    #[test]
    fn json_escapes_hostile_names() {
        let mut s = Snapshot::default();
        s.counters.insert("we\"ird\\name".into(), 1);
        let js = s.to_json();
        assert!(js.contains("we\\\"ird\\\\name"), "{js}");
    }
}
