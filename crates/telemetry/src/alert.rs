//! Declarative SLO / alert rules over registry snapshot diffs.
//!
//! A rule names one observable — a counter delta, a gauge level, a
//! histogram quantile, or a ratio of two counter deltas — compares it
//! against a threshold, and fires an [`Alert`] when the comparison
//! holds over the evaluated window. Windows are [`Snapshot`] diffs
//! (`later.diff(&earlier)`), so the same engine works per-epoch, per
//! scenario, or per scrape interval.
//!
//! # Rule grammar
//!
//! One rule per line; `#` starts a comment; blank lines are skipped.
//!
//! ```text
//! <name>: counter(<metric>) <op> <threshold>
//! <name>: gauge(<metric>) <op> <threshold>
//! <name>: p50|p95|p99(<metric>) <op> <threshold> [min <count>]
//! <name>: rate(<numerator> / <denominator>) <op> <threshold> [min <count>]
//! ```
//!
//! `<op>` is one of `>`, `>=`, `<`, `<=`. The optional `min <count>`
//! guard suppresses the rule unless the histogram saw at least `count`
//! samples (quantile rules) or the denominator delta is at least
//! `count` (rate rules) — without it, a quiet window with a 0/0 ratio
//! could page an operator.
//!
//! Firing is observable two ways: the returned [`Alert`] list, and —
//! when telemetry is enabled — one [`EventKind::AlertRaised`] event
//! per firing in the process event journal plus an `alert.raised`
//! counter bump, which is what the chaos detection oracle and the
//! forensic timeline consume.

use crate::journal::EventKind;
use crate::registry::Snapshot;

/// Counter name bumped once per alert firing.
pub const ALERTS_RAISED: &str = "alert.raised";

/// The observable a rule evaluates over a snapshot diff.
#[derive(Debug, Clone, PartialEq)]
pub enum Observable {
    /// Counter delta (saturating at 0 via the diff).
    Counter(String),
    /// Gauge level at the end of the window.
    Gauge(String),
    /// Interpolated histogram quantile over the window's samples.
    Quantile(String, f64),
    /// `numerator / denominator` counter-delta ratio.
    Rate(String, String),
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
}

impl Op {
    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Op::Gt => value > threshold,
            Op::Ge => value >= threshold,
            Op::Lt => value < threshold,
            Op::Le => value <= threshold,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Lt => "<",
            Op::Le => "<=",
        }
    }
}

/// One parsed alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (the alert identity reported to operators).
    pub name: String,
    /// What is measured.
    pub observable: Observable,
    /// How it is compared.
    pub op: Op,
    /// Against what.
    pub threshold: f64,
    /// Minimum sample/denominator count before the rule is live
    /// (0 = always live). Quantile rules compare against the
    /// histogram's window count; rate rules against the denominator
    /// delta; counter/gauge rules ignore it.
    pub min_count: u64,
}

/// One rule firing over one evaluated window.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Index of the rule in the engine's rule list.
    pub rule_id: usize,
    /// The firing rule's name.
    pub rule: String,
    /// Observed value that crossed the threshold.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// Epoch label the caller attached to the window.
    pub epoch: u64,
}

impl Alert {
    /// Human-oriented one-line rendering.
    pub fn describe(&self, op: Op) -> String {
        format!(
            "[{}] {} fired: observed {} {} {}",
            self.epoch,
            self.rule,
            self.value,
            op.symbol(),
            self.threshold
        )
    }
}

/// Default rule set wired to the instrumentation this workspace ships:
/// integrity rejections, lost epochs, loss-driven retransmissions,
/// crash-driven topology churn, telemetry self-monitoring, journal
/// durability lag, prewarm efficiency, and the epoch latency SLO.
pub const DEFAULT_RULES: &str = "\
# Integrity: any rejected epoch in the window is an attack signal
# (exact SUM verification refused the aggregate).
integrity_reject: counter(engine.epochs_rejected) > 0
# Liveness: the tree failed to deliver any verifiable result.
epoch_loss: counter(engine.epochs_lost) > 0
# Link loss: NACK-driven retransmissions happened in the window.
loss_retransmit: counter(recovery.retransmits) > 0
# Topology churn: orphans were adopted by backup parents (aggregator
# crash detected and repaired in-epoch).
crash_churn: counter(engine.adoptions) > 0
# Telemetry self-monitoring: a bounded event buffer overflowed, the
# record of this window is incomplete.
events_dropped: counter(telemetry.events_dropped) > 0
# Durability: receipts buffered past the fsync horizon.
fsync_lag: gauge(journal.fsync_lag) > 64
# Precompute efficiency: the prewarm pool is thrashing (mostly
# misses) under real lookup load.
prewarm_miss_rate: rate(net.prewarm.misses / net.prewarm.lookups) > 0.9 min 16
# Latency SLO: p99 epoch wall time above 10 s.
epoch_latency_p99: p99(engine.epoch) > 10000000000 min 8
";

/// Parses the rule grammar (see module docs). Returns the first error
/// as `line <n>: <why>`.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, String> {
    let mut rules = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |why: &str| format!("line {}: {}", lineno + 1, why);
        let (name, rest) = line
            .split_once(':')
            .ok_or_else(|| err("missing `name:` prefix"))?;
        let name = name.trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err("rule name must be [A-Za-z0-9_]+"));
        }
        let rest = rest.trim();
        let open = rest.find('(').ok_or_else(|| err("missing `(`"))?;
        let close = rest.find(')').ok_or_else(|| err("missing `)`"))?;
        if close < open {
            return Err(err("`)` before `(`"));
        }
        let func = rest[..open].trim();
        let arg = rest[open + 1..close].trim();
        let observable = match func {
            "counter" => Observable::Counter(arg.to_string()),
            "gauge" => Observable::Gauge(arg.to_string()),
            "p50" => Observable::Quantile(arg.to_string(), 0.50),
            "p95" => Observable::Quantile(arg.to_string(), 0.95),
            "p99" => Observable::Quantile(arg.to_string(), 0.99),
            "rate" => {
                let (num, den) = arg
                    .split_once('/')
                    .ok_or_else(|| err("rate needs `num / den`"))?;
                let (num, den) = (num.trim(), den.trim());
                if num.is_empty() || den.is_empty() {
                    return Err(err("rate needs `num / den`"));
                }
                Observable::Rate(num.to_string(), den.to_string())
            }
            other => return Err(err(&format!("unknown function `{other}`"))),
        };
        if matches!(&observable, Observable::Counter(m) | Observable::Gauge(m)
            | Observable::Quantile(m, _) if m.is_empty())
        {
            return Err(err("empty metric name"));
        }
        let mut tail = rest[close + 1..].split_whitespace();
        let op = match tail.next() {
            Some(">") => Op::Gt,
            Some(">=") => Op::Ge,
            Some("<") => Op::Lt,
            Some("<=") => Op::Le,
            _ => return Err(err("expected comparison `>`, `>=`, `<`, `<=`")),
        };
        let threshold: f64 = tail
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("expected numeric threshold"))?;
        let min_count = match (tail.next(), tail.next()) {
            (None, _) => 0,
            (Some("min"), Some(n)) => n.parse().map_err(|_| err("expected integer after `min`"))?,
            _ => return Err(err("trailing tokens (expected `min <count>` or end)")),
        };
        if tail.next().is_some() {
            return Err(err("trailing tokens after `min <count>`"));
        }
        rules.push(Rule {
            name: name.to_string(),
            observable,
            op,
            threshold,
            min_count,
        });
    }
    Ok(rules)
}

/// Evaluates parsed rules against snapshot windows.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<Rule>,
}

impl AlertEngine {
    /// An engine over an explicit rule list.
    pub fn new(rules: Vec<Rule>) -> AlertEngine {
        AlertEngine { rules }
    }

    /// An engine over [`DEFAULT_RULES`].
    pub fn with_default_rules() -> AlertEngine {
        AlertEngine::new(parse_rules(DEFAULT_RULES).expect("DEFAULT_RULES parse"))
    }

    /// The rule list (index = `rule_id` in alerts and journal events).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Evaluates every rule against one window (`diff` of two
    /// snapshots, or a raw snapshot for whole-run checks). Each firing
    /// rule yields one [`Alert`]; when telemetry is enabled it also
    /// journals an [`EventKind::AlertRaised`] event (`a` = rule id,
    /// `b` = observed value rounded to u64) and bumps
    /// [`ALERTS_RAISED`].
    pub fn evaluate(&self, window: &Snapshot, epoch: u64) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for (rule_id, rule) in self.rules.iter().enumerate() {
            let value = match &rule.observable {
                Observable::Counter(m) => window.counter(m) as f64,
                Observable::Gauge(m) => window.gauge(m) as f64,
                Observable::Quantile(m, q) => {
                    let h = window.hist(m);
                    if h.count < rule.min_count.max(1) {
                        continue;
                    }
                    h.quantile(*q)
                }
                Observable::Rate(num, den) => {
                    let d = window.counter(den);
                    if d < rule.min_count.max(1) {
                        continue;
                    }
                    window.counter(num) as f64 / d as f64
                }
            };
            if rule.op.holds(value, rule.threshold) {
                if crate::enabled() {
                    crate::event(
                        epoch,
                        EventKind::AlertRaised,
                        rule_id as u64,
                        value.max(0.0).min(u64::MAX as f64) as u64,
                    );
                    static RAISED: std::sync::OnceLock<std::sync::Arc<crate::metric::Counter>> =
                        std::sync::OnceLock::new();
                    RAISED
                        .get_or_init(|| crate::registry::global().counter(ALERTS_RAISED))
                        .incr();
                }
                alerts.push(Alert {
                    rule_id,
                    rule: rule.name.clone(),
                    value,
                    threshold: rule.threshold,
                    epoch,
                });
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn window(build: impl Fn(&Registry)) -> Snapshot {
        let r = Registry::new();
        build(&r);
        r.snapshot()
    }

    #[test]
    fn default_rules_parse() {
        let rules = parse_rules(DEFAULT_RULES).unwrap();
        assert_eq!(rules.len(), 8);
        assert_eq!(rules[0].name, "integrity_reject");
        assert_eq!(
            rules[6].observable,
            Observable::Rate("net.prewarm.misses".into(), "net.prewarm.lookups".into())
        );
        assert_eq!(rules[6].min_count, 16);
        assert_eq!(
            rules[7].observable,
            Observable::Quantile("engine.epoch".into(), 0.99)
        );
    }

    #[test]
    fn grammar_rejects_malformed_lines() {
        for bad in [
            "no_colon counter(x) > 1",
            "name: frobnicate(x) > 1",
            "name: counter(x) ~ 1",
            "name: counter(x) > banana",
            "name: rate(a) > 1",
            "name: counter(x) > 1 min",
            "name: counter(x) > 1 extra tokens here",
            "bad name!: counter(x) > 1",
        ] {
            assert!(parse_rules(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn threshold_rules_fire_on_counters_and_gauges() {
        let eng = AlertEngine::new(
            parse_rules(
                "rej: counter(engine.epochs_rejected) > 0\nlag: gauge(journal.fsync_lag) > 64\n",
            )
            .unwrap(),
        );
        let quiet = window(|r| {
            r.counter("engine.epochs_rejected");
            r.gauge("journal.fsync_lag").set(3);
        });
        assert!(eng.evaluate(&quiet, 1).is_empty());

        let noisy = window(|r| {
            r.counter("engine.epochs_rejected").add(2);
            r.gauge("journal.fsync_lag").set(100);
        });
        let alerts = eng.evaluate(&noisy, 7);
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].rule, "rej");
        assert_eq!(alerts[0].value, 2.0);
        assert_eq!(alerts[0].epoch, 7);
        assert_eq!(alerts[1].rule, "lag");
    }

    #[test]
    fn rate_rules_respect_the_min_guard() {
        let eng = AlertEngine::new(parse_rules("miss: rate(m / l) > 0.9 min 16\n").unwrap());
        // Below the guard: 10 lookups, all misses — suppressed.
        let small = window(|r| {
            r.counter("m").add(10);
            r.counter("l").add(10);
        });
        assert!(eng.evaluate(&small, 0).is_empty());
        // Above the guard and above threshold.
        let big = window(|r| {
            r.counter("m").add(20);
            r.counter("l").add(20);
        });
        let alerts = eng.evaluate(&big, 0);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].value, 1.0);
        // Above the guard, below threshold.
        let healthy = window(|r| {
            r.counter("m").add(2);
            r.counter("l").add(100);
        });
        assert!(eng.evaluate(&healthy, 0).is_empty());
        // Zero denominator never divides.
        let empty = window(|r| {
            r.counter("m").add(5);
        });
        assert!(eng.evaluate(&empty, 0).is_empty());
    }

    #[test]
    fn quantile_rules_gate_on_sample_count_and_interpolate() {
        let eng = AlertEngine::new(parse_rules("lat: p99(lat_ns) > 1000 min 8\n").unwrap());
        // 7 huge samples: below min count, suppressed.
        let few = window(|r| {
            for _ in 0..7 {
                r.histogram("lat_ns").record(1 << 20);
            }
        });
        assert!(eng.evaluate(&few, 0).is_empty());
        // 100 samples all far above threshold: fires.
        let slow = window(|r| {
            for _ in 0..100 {
                r.histogram("lat_ns").record(1 << 20);
            }
        });
        let alerts = eng.evaluate(&slow, 3);
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].value > 1000.0);
        // 100 fast samples: quiet.
        let fast = window(|r| {
            for _ in 0..100 {
                r.histogram("lat_ns").record(16);
            }
        });
        assert!(eng.evaluate(&fast, 3).is_empty());
    }

    #[test]
    fn default_rules_stay_quiet_on_an_empty_window() {
        let eng = AlertEngine::with_default_rules();
        assert!(eng.evaluate(&Snapshot::default(), 0).is_empty());
    }

    #[test]
    fn describe_renders_readably() {
        let a = Alert {
            rule_id: 0,
            rule: "rej".into(),
            value: 2.0,
            threshold: 0.0,
            epoch: 5,
        };
        assert_eq!(a.describe(Op::Gt), "[5] rej fired: observed 2 > 0");
    }
}
