//! Process-level gauges: peak RSS, per-node footprint, and cpu time.
//!
//! The million-sensor throughput experiment promises a *stated* memory
//! budget, so the budget has to be machine-readable: `repro throughput`
//! emits these gauges into `BENCH_throughput.json` and CI gates on
//! bytes-per-node. Peak RSS comes from the kernel (`VmHWM` in
//! `/proc/self/status`), which covers everything the process ever held —
//! key material and allocator slack included — while the bytes-per-node
//! gauge is the engine's own accounting of its reusable epoch state.
//! Cpu time (scheduler on-cpu nanoseconds from `/proc/self/schedstat`)
//! lets the `/metrics` endpoint expose utilisation without any wall
//! clock arithmetic in-process.
//!
//! Everything procfs-backed degrades gracefully off Linux: the readers
//! return `None`, the recorders record nothing, and callers treat the
//! value as *unknown*, never zero.

use crate::registry::global;

/// Gauge name for the process's peak resident set size, in bytes.
pub const PEAK_RSS_GAUGE: &str = "process.peak_rss_bytes";

/// Gauge name for the epoch engine's per-node state footprint, in bytes
/// (arena + double-buffered epoch state, excluding scheme key material).
pub const BYTES_PER_NODE_GAUGE: &str = "engine.bytes_per_node";

/// Gauge name for cumulative scheduler on-cpu time, in nanoseconds.
pub const CPU_TIME_GAUGE: &str = "process.cpu_time_ns";

/// Reads the process's peak resident set size in bytes from
/// `/proc/self/status` (`VmHWM`). Returns `None` on platforms without
/// procfs or if the field is missing — callers must treat the budget as
/// unchecked rather than zero.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Samples [`peak_rss_bytes`] and records it into the global
/// [`PEAK_RSS_GAUGE`] (when telemetry is enabled), returning the sample
/// so callers can also report it out-of-band (JSON artifacts).
pub fn record_peak_rss() -> Option<u64> {
    let bytes = peak_rss_bytes()?;
    if crate::enabled() {
        global().gauge(PEAK_RSS_GAUGE).set(bytes);
    }
    Some(bytes)
}

/// Reads cumulative on-cpu time for this process in nanoseconds from
/// `/proc/self/schedstat` (first field: time spent on the cpu). The
/// value is scheduler-accounted, so it needs no `USER_HZ` conversion.
/// Returns `None` on platforms without procfs (or with `schedstat`
/// compiled out) — callers must treat cpu time as unknown, not zero.
pub fn cpu_time_ns() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let stat = std::fs::read_to_string("/proc/self/schedstat").ok()?;
        stat.split_whitespace().next()?.parse().ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Samples [`cpu_time_ns`] and records it into the global
/// [`CPU_TIME_GAUGE`] (when telemetry is enabled), returning the sample
/// so callers can also report it out-of-band.
pub fn record_cpu_time() -> Option<u64> {
    let ns = cpu_time_ns()?;
    if crate::enabled() {
        global().gauge(CPU_TIME_GAUGE).set(ns);
    }
    Some(ns)
}

/// Samples every procfs-backed process gauge that is available on this
/// platform (peak RSS, cpu time). Intended for periodic calls from the
/// metrics endpoint or epoch loop; missing sources are skipped.
pub fn record_process_gauges() {
    let _ = record_peak_rss();
    let _ = record_cpu_time();
}

/// Records the engine's bytes-per-node footprint into the global
/// [`BYTES_PER_NODE_GAUGE`] (when telemetry is enabled), returning the
/// rounded value it stored.
pub fn record_bytes_per_node(state_bytes: usize, nodes: usize) -> u64 {
    let per_node = if nodes == 0 {
        0
    } else {
        (state_bytes as u64).div_ceil(nodes as u64)
    };
    if crate::enabled() {
        global().gauge(BYTES_PER_NODE_GAUGE).set(per_node);
    }
    per_node
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_reads_a_plausible_value() {
        let rss = peak_rss_bytes().expect("procfs available on linux");
        // Any running test binary holds at least 100 KiB and (sanity
        // ceiling) under 1 TiB.
        assert!(rss > 100 * 1024, "peak RSS {rss} implausibly small");
        assert!(rss < 1 << 40, "peak RSS {rss} implausibly large");
    }

    #[test]
    fn bytes_per_node_rounds_up_and_handles_zero() {
        assert_eq!(record_bytes_per_node(0, 0), 0);
        assert_eq!(record_bytes_per_node(100, 3), 34);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn cpu_time_is_monotone_and_plausible() {
        let a = cpu_time_ns().expect("schedstat available on linux");
        // Burn a little cpu so the second sample can only be >=.
        let mut x = 0u64;
        for i in 0..200_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = cpu_time_ns().unwrap();
        assert!(b >= a, "cpu time went backwards: {a} -> {b}");
        // A running test process has burned under an hour of cpu.
        assert!(b < 3_600_000_000_000_000, "cpu time {b} implausible");
    }

    #[test]
    fn record_process_gauges_never_panics() {
        record_process_gauges();
    }
}
