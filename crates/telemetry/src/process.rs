//! Process-level memory gauges: peak RSS and per-node footprint.
//!
//! The million-sensor throughput experiment promises a *stated* memory
//! budget, so the budget has to be machine-readable: `repro throughput`
//! emits these gauges into `BENCH_throughput.json` and CI gates on
//! bytes-per-node. Peak RSS comes from the kernel (`VmHWM` in
//! `/proc/self/status`), which covers everything the process ever held —
//! key material and allocator slack included — while the bytes-per-node
//! gauge is the engine's own accounting of its reusable epoch state.

use crate::registry::global;

/// Gauge name for the process's peak resident set size, in bytes.
pub const PEAK_RSS_GAUGE: &str = "process.peak_rss_bytes";

/// Gauge name for the epoch engine's per-node state footprint, in bytes
/// (arena + double-buffered epoch state, excluding scheme key material).
pub const BYTES_PER_NODE_GAUGE: &str = "engine.bytes_per_node";

/// Reads the process's peak resident set size in bytes from
/// `/proc/self/status` (`VmHWM`). Returns `None` on platforms without
/// procfs or if the field is missing — callers must treat the budget as
/// unchecked rather than zero.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Samples [`peak_rss_bytes`] and records it into the global
/// [`PEAK_RSS_GAUGE`] (when telemetry is enabled), returning the sample
/// so callers can also report it out-of-band (JSON artifacts).
pub fn record_peak_rss() -> Option<u64> {
    let bytes = peak_rss_bytes()?;
    if crate::enabled() {
        global().gauge(PEAK_RSS_GAUGE).set(bytes);
    }
    Some(bytes)
}

/// Records the engine's bytes-per-node footprint into the global
/// [`BYTES_PER_NODE_GAUGE`] (when telemetry is enabled), returning the
/// rounded value it stored.
pub fn record_bytes_per_node(state_bytes: usize, nodes: usize) -> u64 {
    let per_node = if nodes == 0 {
        0
    } else {
        (state_bytes as u64).div_ceil(nodes as u64)
    };
    if crate::enabled() {
        global().gauge(BYTES_PER_NODE_GAUGE).set(per_node);
    }
    per_node
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_reads_a_plausible_value() {
        let rss = peak_rss_bytes().expect("procfs available on linux");
        // Any running test binary holds at least 100 KiB and (sanity
        // ceiling) under 1 TiB.
        assert!(rss > 100 * 1024, "peak RSS {rss} implausibly small");
        assert!(rss < 1 << 40, "peak RSS {rss} implausibly large");
    }

    #[test]
    fn bytes_per_node_rounds_up_and_handles_zero() {
        assert_eq!(record_bytes_per_node(0, 0), 0);
        assert_eq!(record_bytes_per_node(100, 3), 34);
    }
}
