#![warn(missing_docs)]

//! # sies-receipts — durable signed epoch receipts
//!
//! The SIES querier's verification state is tiny (a verdict, a sum, a
//! contributor set per epoch) but *losing* it is expensive: a crashed
//! querier forgets which epochs verified, where the μTesla key chain
//! stood, and every per-session counter. This crate makes that state
//! durable with a deliberately boring file format:
//!
//! * **Append-only journal** — one length-prefixed, CRC-framed record
//!   per epoch ([`frame`]), written by a [`Recorder`] that accumulates
//!   off the data path and flushes once per epoch with a configurable
//!   [`FsyncPolicy`] (every epoch / every N epochs).
//! * **Signed receipts** — each record carries a 32-byte MAC over its
//!   payload. Signing is pluggable (the caller injects a closure, e.g.
//!   HMAC-SHA256 keyed by the querier), so this crate stays
//!   dependency-free and the journal stays self-authenticating.
//! * **Torn-tail-tolerant replay** — a [`Replayer`] scan accepts a
//!   journal whose *final* record was cut mid-write at any byte offset
//!   (the crash case) and reports it as a [`TornTail`], while a corrupt
//!   record *followed by more data* is a hard [`ReceiptError`] — silent
//!   skipping would hide tampering.
//!
//! What goes in a receipt ([`EpochReceipt`]) is exactly what the chaos
//! harness folds into its result digest plus the recovery-protocol
//! counters, so a restarted querier rebuilds byte-identical state from
//! the journal alone. See DESIGN.md §13 for the format and invariants.

pub mod frame;
pub mod receipt;
pub mod recorder;
pub mod replay;

pub use frame::{crc32, Frame, RecordKind, FRAME_OVERHEAD, JOURNAL_MAGIC, JOURNAL_VERSION};
pub use receipt::{EpochReceipt, ReceiptError, SessionHeader, Signature, Verdict};
pub use recorder::{FsyncPolicy, Recorder, RecorderStats, Signer};
pub use replay::{ReplaySummary, Replayer, TornTail, Verifier};
