//! Record framing: magic, version, kind, length prefix, payload,
//! signature, CRC-32.
//!
//! Every journal record is one frame:
//!
//! ```text
//! offset  size  field
//!      0     2  magic (0x5EC5, little-endian)
//!      2     1  format version (1)
//!      3     1  record kind (1 = epoch receipt, 2 = session header)
//!      4     4  payload length `len` (little-endian u32)
//!      8   len  payload (kind-specific codec, receipt.rs)
//!  8+len    32  signature (MAC over the payload; zero when unsigned)
//! 40+len     4  CRC-32 (IEEE 802.3) over bytes [0, 40+len)
//! ```
//!
//! The length prefix makes records skippable without decoding; the CRC
//! catches torn writes and bit rot before the payload codec ever runs.
//! The CRC polynomial and check value match `sies-net::wire` (the same
//! table-driven IEEE 802.3 reflected implementation), but the code is
//! duplicated here on purpose: the journal must stay readable by a
//! stand-alone auditor with no dependency on the network stack.

use crate::receipt::{ReceiptError, Signature};

/// Journal record magic (distinct from the wire-frame magic `0x51E5`).
pub const JOURNAL_MAGIC: u16 = 0x5EC5;

/// Journal format version this crate reads and writes.
pub const JOURNAL_VERSION: u8 = 1;

/// Frame bytes beyond the payload: 8-byte header + 32-byte signature +
/// 4-byte CRC.
pub const FRAME_OVERHEAD: usize = 8 + 32 + 4;

/// Sanity ceiling on the payload length field: a mid-file length this
/// large is corruption, not a real record (the largest real receipt is
/// a few KiB of contributor ids).
pub const MAX_PAYLOAD: u32 = 1 << 24;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// One epoch's signed receipt.
    Receipt,
    /// The once-per-journal session header.
    SessionHeader,
}

impl RecordKind {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            RecordKind::Receipt => 1,
            RecordKind::SessionHeader => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(RecordKind::Receipt),
            2 => Some(RecordKind::SessionHeader),
            _ => None,
        }
    }
}

/// One decoded frame: kind, payload slice bounds, and signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Record kind.
    pub kind: RecordKind,
    /// The payload bytes.
    pub payload: Vec<u8>,
    /// The 32-byte signature field.
    pub signature: Signature,
}

/// Computes the IEEE 802.3 CRC-32 (reflected, init/xorout `0xFFFF_FFFF`)
/// of `data`. `crc32(b"123456789") == 0xCBF4_3926`.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Encodes one frame, appending to `out`.
pub fn encode_into(out: &mut Vec<u8>, kind: RecordKind, payload: &[u8], signature: &Signature) {
    let start = out.len();
    out.extend_from_slice(&JOURNAL_MAGIC.to_le_bytes());
    out.push(JOURNAL_VERSION);
    out.push(kind.tag());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(signature);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Outcome of attempting to read one frame at `offset` within `buf`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete, CRC-clean frame; `next` is the offset just past it.
    Ok {
        /// The decoded frame.
        frame: Frame,
        /// Offset of the byte after this frame.
        next: usize,
    },
    /// The remaining bytes cannot hold a complete frame — at end of
    /// file this is a torn final record; earlier it cannot happen (the
    /// scan always reads to the end).
    Incomplete {
        /// Bytes left unread.
        remaining: usize,
    },
    /// A structurally complete frame that fails validation (bad CRC,
    /// magic, version, kind, or an absurd length). `next` is where the
    /// frame claimed to end, when that is computable.
    Corrupt {
        /// Why the frame was rejected.
        error: ReceiptError,
        /// Offset just past the claimed frame, if the header parsed.
        next: Option<usize>,
    },
}

/// Reads one frame from `buf` at `offset`.
pub fn read_frame(buf: &[u8], offset: usize) -> FrameRead {
    let rest = &buf[offset..];
    if rest.len() < 8 {
        return FrameRead::Incomplete {
            remaining: rest.len(),
        };
    }
    let magic = u16::from_le_bytes([rest[0], rest[1]]);
    if magic != JOURNAL_MAGIC {
        return FrameRead::Corrupt {
            error: ReceiptError::BadMagic {
                offset: offset as u64,
            },
            next: None,
        };
    }
    let version = rest[2];
    if version != JOURNAL_VERSION {
        return FrameRead::Corrupt {
            error: ReceiptError::BadVersion {
                offset: offset as u64,
                version,
            },
            next: None,
        };
    }
    let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    if len > MAX_PAYLOAD {
        return FrameRead::Corrupt {
            error: ReceiptError::OversizeRecord {
                offset: offset as u64,
                len: len as u64,
            },
            next: None,
        };
    }
    let total = 8 + len as usize + 32 + 4;
    if rest.len() < total {
        return FrameRead::Incomplete {
            remaining: rest.len(),
        };
    }
    let body = &rest[..total - 4];
    let stored = u32::from_le_bytes([
        rest[total - 4],
        rest[total - 3],
        rest[total - 2],
        rest[total - 1],
    ]);
    if crc32(body) != stored {
        return FrameRead::Corrupt {
            error: ReceiptError::CorruptRecord {
                offset: offset as u64,
            },
            next: Some(offset + total),
        };
    }
    let Some(kind) = RecordKind::from_tag(rest[3]) else {
        return FrameRead::Corrupt {
            error: ReceiptError::BadKind {
                offset: offset as u64,
                kind: rest[3],
            },
            next: Some(offset + total),
        };
    };
    let payload = rest[8..8 + len as usize].to_vec();
    let mut signature = [0u8; 32];
    signature.copy_from_slice(&rest[8 + len as usize..8 + len as usize + 32]);
    FrameRead::Ok {
        frame: Frame {
            kind,
            payload,
            signature,
        },
        next: offset + total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        encode_into(&mut buf, RecordKind::Receipt, b"payload bytes", &[7u8; 32]);
        match read_frame(&buf, 0) {
            FrameRead::Ok { frame, next } => {
                assert_eq!(frame.kind, RecordKind::Receipt);
                assert_eq!(frame.payload, b"payload bytes");
                assert_eq!(frame.signature, [7u8; 32]);
                assert_eq!(next, buf.len());
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_incomplete_at_every_offset() {
        let mut buf = Vec::new();
        encode_into(&mut buf, RecordKind::SessionHeader, b"hdr", &[0u8; 32]);
        for cut in 0..buf.len() {
            match read_frame(&buf[..cut], 0) {
                FrameRead::Incomplete { .. } => {}
                other => panic!("cut at {cut}: expected Incomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_byte_fails_crc() {
        let mut buf = Vec::new();
        encode_into(&mut buf, RecordKind::Receipt, b"abcdef", &[0u8; 32]);
        for i in 4..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(
                !matches!(read_frame(&bad, 0), FrameRead::Ok { .. }),
                "flip at {i} went undetected"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let mut buf = Vec::new();
        encode_into(&mut buf, RecordKind::Receipt, b"x", &[0u8; 32]);
        let mut bad_magic = buf.clone();
        bad_magic[0] = 0;
        assert!(matches!(
            read_frame(&bad_magic, 0),
            FrameRead::Corrupt {
                error: ReceiptError::BadMagic { offset: 0 },
                ..
            }
        ));
        let mut bad_ver = buf.clone();
        bad_ver[2] = 9;
        // Version is CRC-covered, but the version check runs first so the
        // error names the actual problem.
        assert!(matches!(
            read_frame(&bad_ver, 0),
            FrameRead::Corrupt {
                error: ReceiptError::BadVersion {
                    offset: 0,
                    version: 9
                },
                ..
            }
        ));
    }
}
