//! The journal writer: off-data-path accumulation, one flush per epoch,
//! configurable fsync cadence.
//!
//! The epoch engine's hot path never touches the file: [`Recorder::append`]
//! only encodes into an in-memory buffer, and [`Recorder::commit_epoch`]
//! writes the whole buffer with a single `write` at the epoch boundary,
//! then fsyncs per [`FsyncPolicy`]. Durability is therefore bounded by
//! policy: `EveryEpoch` loses at most the record being written when the
//! process dies (the torn tail replay tolerates); `EveryN(n)` trades up
//! to `n - 1` fsynced epochs for fewer synchronous flushes.

use crate::frame::{self, RecordKind};
use crate::receipt::{EpochReceipt, SessionHeader, Signature};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// How often the recorder fsyncs the journal file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every committed epoch: at most the in-flight record
    /// is lost on power failure.
    EveryEpoch,
    /// Fsync after every `n` committed epochs (`n ≥ 1`): cheaper, loses
    /// at most `n - 1` whole epochs plus the in-flight record.
    EveryN(u32),
    /// Never fsync explicitly; the OS decides. Fastest, weakest.
    Never,
}

/// A pluggable record signer: MACs the payload bytes. Injected by the
/// caller so the journal crate never depends on a crypto library.
pub type Signer = Box<dyn Fn(&[u8]) -> Signature + Send>;

/// Running totals for one recorder (feed these to telemetry upstream).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Receipt records appended.
    pub records: u64,
    /// Epochs committed (buffer flushes attempted).
    pub commits: u64,
    /// Bytes written to the file, framing included.
    pub bytes_written: u64,
    /// Explicit fsyncs issued.
    pub fsyncs: u64,
    /// Write or fsync failures (the recorder keeps running; durability
    /// degrades, the data path never does).
    pub io_errors: u64,
}

/// Appends signed, framed epoch receipts to a journal file.
pub struct Recorder {
    file: File,
    /// Frames encoded but not yet written (the off-data-path buffer).
    pending: Vec<u8>,
    policy: FsyncPolicy,
    since_sync: u32,
    signer: Option<Signer>,
    stats: RecorderStats,
}

impl Recorder {
    /// Creates (truncating) a journal at `path` and writes its session
    /// header — immediately flushed and fsynced so even an empty journal
    /// identifies its session after a crash.
    pub fn create(
        path: &Path,
        header: &SessionHeader,
        policy: FsyncPolicy,
        signer: Option<Signer>,
    ) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut rec = Recorder {
            file,
            pending: Vec::new(),
            policy,
            since_sync: 0,
            signer,
            stats: RecorderStats::default(),
        };
        let payload = header.encode();
        let sig = rec.sign(&payload);
        frame::encode_into(&mut rec.pending, RecordKind::SessionHeader, &payload, &sig);
        rec.write_pending()?;
        rec.file.sync_data()?;
        rec.stats.fsyncs += 1;
        Ok(rec)
    }

    /// Reopens an existing journal for appending — the crash-restart
    /// path. No header is written (the original one is already on disk);
    /// the caller is expected to have replayed the file first (and to
    /// have truncated any torn tail it chose not to keep).
    pub fn resume(
        path: &Path,
        policy: FsyncPolicy,
        signer: Option<Signer>,
    ) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Recorder {
            file,
            pending: Vec::new(),
            policy,
            since_sync: 0,
            signer,
            stats: RecorderStats::default(),
        })
    }

    /// Running totals.
    pub fn stats(&self) -> RecorderStats {
        self.stats
    }

    fn sign(&self, payload: &[u8]) -> Signature {
        match &self.signer {
            Some(s) => s(payload),
            None => [0u8; 32],
        }
    }

    /// Encodes one receipt into the in-memory buffer. No I/O happens
    /// here — this is the call that is safe on the data path.
    pub fn append(&mut self, receipt: &EpochReceipt) {
        let payload = receipt.encode();
        let sig = self.sign(&payload);
        frame::encode_into(&mut self.pending, RecordKind::Receipt, &payload, &sig);
        self.stats.records += 1;
    }

    fn write_pending(&mut self) -> std::io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.pending)?;
        self.stats.bytes_written += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Flushes everything appended since the last commit in one write,
    /// then fsyncs per policy. I/O failures are absorbed into
    /// [`RecorderStats::io_errors`] — a dying disk must degrade
    /// durability, not crash the querier mid-epoch.
    pub fn commit_epoch(&mut self) {
        self.stats.commits += 1;
        if let Err(_e) = self.write_pending() {
            self.stats.io_errors += 1;
            self.pending.clear();
            return;
        }
        let sync_now = match self.policy {
            FsyncPolicy::EveryEpoch => true,
            FsyncPolicy::EveryN(n) => {
                self.since_sync += 1;
                self.since_sync >= n.max(1)
            }
            FsyncPolicy::Never => false,
        };
        if sync_now {
            self.since_sync = 0;
            match self.file.sync_data() {
                Ok(()) => self.stats.fsyncs += 1,
                Err(_) => self.stats.io_errors += 1,
            }
        }
    }

    /// Forces any buffered frames and an fsync (end-of-run barrier).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.write_pending()?;
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::Replayer;
    use crate::Verdict;

    fn header() -> SessionHeader {
        SessionHeader {
            session: 11,
            mutesla_commitment: [0u8; 32],
            mutesla_delay: 0,
        }
    }

    fn receipt(epoch: u64) -> EpochReceipt {
        EpochReceipt {
            session: 11,
            epoch,
            verdict: Verdict::Accepted,
            integrity_checked: true,
            sum_bits: (epoch as f64).to_bits(),
            contributors: vec![1, 2, 3],
            ..EpochReceipt::default()
        }
    }

    #[test]
    fn append_is_buffered_until_commit() {
        let dir = std::env::temp_dir().join(format!("sies-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("buffered.journal");
        let mut rec = Recorder::create(&path, &header(), FsyncPolicy::EveryEpoch, None).unwrap();
        let header_len = std::fs::metadata(&path).unwrap().len();
        rec.append(&receipt(0));
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            header_len,
            "append must not touch the file"
        );
        rec.commit_epoch();
        assert!(std::fs::metadata(&path).unwrap().len() > header_len);
        let stats = rec.stats();
        assert_eq!(stats.records, 1);
        assert_eq!(stats.commits, 1);
        // create() fsyncs the header, commit fsyncs the record.
        assert_eq!(stats.fsyncs, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_n_policy_batches_fsyncs() {
        let dir = std::env::temp_dir().join(format!("sies-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("every_n.journal");
        let mut rec = Recorder::create(&path, &header(), FsyncPolicy::EveryN(4), None).unwrap();
        for e in 0..8 {
            rec.append(&receipt(e));
            rec.commit_epoch();
        }
        // 1 header fsync + 2 batched fsyncs (after epochs 3 and 7).
        assert_eq!(rec.stats().fsyncs, 3);
        let summary = Replayer::scan_path(&path, None).unwrap();
        assert_eq!(summary.receipts.len(), 8);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_appends_after_the_existing_records() {
        let dir = std::env::temp_dir().join(format!("sies-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.journal");
        let mut rec = Recorder::create(&path, &header(), FsyncPolicy::EveryEpoch, None).unwrap();
        for e in 0..3 {
            rec.append(&receipt(e));
            rec.commit_epoch();
        }
        drop(rec);

        let mut rec = Recorder::resume(&path, FsyncPolicy::EveryEpoch, None).unwrap();
        for e in 3..5 {
            rec.append(&receipt(e));
            rec.commit_epoch();
        }
        rec.sync().unwrap();

        let summary = Replayer::scan_path(&path, None).unwrap();
        assert_eq!(summary.header.session, 11, "original header survives");
        assert_eq!(summary.receipts.len(), 5);
        assert_eq!(summary.last_epoch(), Some(4));
        std::fs::remove_file(&path).unwrap();
    }
}
