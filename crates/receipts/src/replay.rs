//! Journal replay: the crash-restart scan.
//!
//! [`Replayer::scan`] walks a journal front to back and rebuilds the
//! receipt sequence. Its error discipline is the whole point:
//!
//! * **Torn tail tolerated.** A record cut mid-write at any byte offset
//!   — the signature a process death with an in-flight `write` leaves
//!   behind — ends the scan cleanly; the prefix is intact state and the
//!   damage is reported as a [`TornTail`], not an error. A final record
//!   that is frame-complete but CRC-dirty is classified the same way
//!   (a torn sector write inside the last record).
//! * **Mid-file corruption is an error.** A CRC-dirty or unparseable
//!   record *followed by more data* cannot be a crash artifact of an
//!   append-only writer; it is bit rot or tampering, and skipping it
//!   silently would let an auditor read a journal that lies. The scan
//!   returns the typed [`ReceiptError`] instead.
//! * **Signatures checked when a verifier is supplied.** A receipt
//!   whose MAC fails is reported with its offset; an all-or-nothing
//!   discipline again, never a skip.

use crate::frame::{read_frame, FrameRead, RecordKind};
use crate::receipt::{EpochReceipt, ReceiptError, SessionHeader, Signature};
use std::path::Path;

/// A pluggable signature verifier: `(payload, signature) -> valid?`.
pub type Verifier<'v> = &'v dyn Fn(&[u8], &Signature) -> bool;

/// Evidence of a torn final record (process death mid-write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// File offset where the torn record starts.
    pub offset: u64,
    /// Bytes of the torn record present in the file.
    pub bytes: u64,
}

/// Everything a scan recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySummary {
    /// The session header (first record of every journal).
    pub header: SessionHeader,
    /// Every intact receipt, in append order.
    pub receipts: Vec<EpochReceipt>,
    /// The torn final record, when the journal ends mid-write.
    pub torn_tail: Option<TornTail>,
    /// Total bytes scanned (file size).
    pub bytes_scanned: u64,
}

impl ReplaySummary {
    /// The last journaled epoch, if any receipt survived.
    pub fn last_epoch(&self) -> Option<u64> {
        self.receipts.last().map(|r| r.epoch)
    }

    /// The μTesla chain position to resume from: the newest receipt
    /// with a non-zero authenticated interval.
    pub fn mutesla_position(&self) -> Option<(u64, [u8; 32])> {
        self.receipts
            .iter()
            .rev()
            .find(|r| r.mutesla_interval > 0)
            .map(|r| (r.mutesla_interval, r.mutesla_key))
    }
}

/// The journal scanner.
pub struct Replayer;

impl Replayer {
    /// Scans `bytes` as a journal. `verify` (when supplied) is applied
    /// to every record's `(payload, signature)`.
    pub fn scan(bytes: &[u8], verify: Option<Verifier<'_>>) -> Result<ReplaySummary, ReceiptError> {
        let mut offset = 0usize;
        let mut header: Option<SessionHeader> = None;
        let mut receipts: Vec<EpochReceipt> = Vec::new();
        let mut torn_tail = None;

        while offset < bytes.len() {
            match read_frame(bytes, offset) {
                FrameRead::Ok { frame, next } => {
                    if let Some(v) = verify {
                        if !v(&frame.payload, &frame.signature) {
                            return Err(ReceiptError::BadSignature {
                                offset: offset as u64,
                            });
                        }
                    }
                    match frame.kind {
                        RecordKind::SessionHeader => {
                            if header.is_some() || offset != 0 {
                                return Err(ReceiptError::BadLayout {
                                    offset: offset as u64,
                                    reason: "session header must be the first and only one",
                                });
                            }
                            header = Some(SessionHeader::decode(&frame.payload, offset as u64)?);
                        }
                        RecordKind::Receipt => {
                            if header.is_none() {
                                return Err(ReceiptError::BadLayout {
                                    offset: offset as u64,
                                    reason: "journal must start with a session header",
                                });
                            }
                            receipts.push(EpochReceipt::decode(&frame.payload, offset as u64)?);
                        }
                    }
                    offset = next;
                }
                FrameRead::Incomplete { remaining } => {
                    // Only reachable with `remaining` bytes left at end
                    // of file: the torn-tail crash signature.
                    torn_tail = Some(TornTail {
                        offset: offset as u64,
                        bytes: remaining as u64,
                    });
                    break;
                }
                FrameRead::Corrupt { error, next } => {
                    // A CRC-dirty record that is the file's *last* frame
                    // is a torn in-place write; anything mid-file is a
                    // hard error.
                    if matches!(error, ReceiptError::CorruptRecord { .. })
                        && next == Some(bytes.len())
                    {
                        torn_tail = Some(TornTail {
                            offset: offset as u64,
                            bytes: (bytes.len() - offset) as u64,
                        });
                        break;
                    }
                    return Err(error);
                }
            }
        }

        let header = header.ok_or(ReceiptError::BadLayout {
            offset: 0,
            reason: "journal has no session header",
        })?;
        Ok(ReplaySummary {
            header,
            receipts,
            torn_tail,
            bytes_scanned: bytes.len() as u64,
        })
    }

    /// Reads and scans the journal at `path`.
    pub fn scan_path(
        path: &Path,
        verify: Option<Verifier<'_>>,
    ) -> Result<ReplaySummary, ReceiptError> {
        let bytes = std::fs::read(path)?;
        Self::scan(&bytes, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_into;
    use crate::receipt::Verdict;

    fn header_bytes() -> Vec<u8> {
        let mut out = Vec::new();
        let h = SessionHeader {
            session: 3,
            mutesla_commitment: [1u8; 32],
            mutesla_delay: 2,
        };
        encode_into(&mut out, RecordKind::SessionHeader, &h.encode(), &[0u8; 32]);
        out
    }

    fn receipt(epoch: u64, interval: u64) -> EpochReceipt {
        EpochReceipt {
            session: 3,
            epoch,
            verdict: Verdict::Accepted,
            integrity_checked: true,
            mutesla_interval: interval,
            mutesla_key: [interval as u8; 32],
            contributors: vec![epoch as u32],
            ..EpochReceipt::default()
        }
    }

    fn journal(epochs: u64) -> Vec<u8> {
        let mut buf = header_bytes();
        for e in 0..epochs {
            encode_into(
                &mut buf,
                RecordKind::Receipt,
                &receipt(e, e + 1).encode(),
                &[0u8; 32],
            );
        }
        buf
    }

    #[test]
    fn clean_journal_replays_fully() {
        let buf = journal(5);
        let s = Replayer::scan(&buf, None).unwrap();
        assert_eq!(s.header.session, 3);
        assert_eq!(s.receipts.len(), 5);
        assert_eq!(s.last_epoch(), Some(4));
        assert_eq!(s.mutesla_position(), Some((5, [5u8; 32])));
        assert!(s.torn_tail.is_none());
        assert_eq!(s.bytes_scanned, buf.len() as u64);
    }

    #[test]
    fn missing_header_is_a_layout_error() {
        let mut buf = Vec::new();
        encode_into(
            &mut buf,
            RecordKind::Receipt,
            &receipt(0, 0).encode(),
            &[0u8; 32],
        );
        assert!(matches!(
            Replayer::scan(&buf, None),
            Err(ReceiptError::BadLayout { offset: 0, .. })
        ));
        assert!(matches!(
            Replayer::scan(&[], None),
            Err(ReceiptError::BadLayout { .. })
        ));
    }

    #[test]
    fn duplicate_header_is_a_layout_error() {
        let mut buf = journal(1);
        buf.extend_from_slice(&header_bytes());
        assert!(matches!(
            Replayer::scan(&buf, None),
            Err(ReceiptError::BadLayout { .. })
        ));
    }

    #[test]
    fn signature_verifier_is_enforced() {
        let buf = journal(2);
        let accept: Verifier<'_> = &|_p, _s| true;
        assert_eq!(
            Replayer::scan(&buf, Some(accept)).unwrap().receipts.len(),
            2
        );
        let reject: Verifier<'_> = &|_p, s| s != &[0u8; 32];
        assert!(matches!(
            Replayer::scan(&buf, Some(reject)),
            Err(ReceiptError::BadSignature { offset: 0 })
        ));
    }
}
