//! The receipt payload codec and the journal's typed error.
//!
//! An [`EpochReceipt`] captures everything the querier needs to rebuild
//! its verification state for one epoch — and nothing it could derive
//! elsewhere. The fields mirror what the chaos harness folds into its
//! result digest (verdict tag, sum bits, corruption flag, contributor
//! set) plus the recovery-protocol counters, so replaying a journal
//! reproduces the live run's fingerprint byte for byte.
//!
//! The codec is fixed-layout little-endian with one variable-length
//! tail (the contributor list). Decoding never panics: every short or
//! inconsistent payload becomes a typed [`ReceiptError`].

/// A record MAC (32 bytes; all-zero when the journal is unsigned).
pub type Signature = [u8; 32];

/// The querier's verdict for one epoch, as recorded in the journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Verdict {
    /// The epoch produced an accepted (verified) sum.
    Accepted,
    /// Integrity verification rejected the aggregate.
    Rejected,
    /// No aggregate reached the querier (availability loss).
    #[default]
    Lost,
}

impl Verdict {
    /// The digest tag for this verdict — identical to the tag the chaos
    /// harness hashes (`1` accepted, `2` rejected, `3` lost), so a
    /// replayed digest can be rebuilt from receipts alone.
    pub fn digest_tag(self) -> u8 {
        match self {
            Verdict::Accepted => 1,
            Verdict::Rejected => 2,
            Verdict::Lost => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Verdict::Accepted),
            1 => Some(Verdict::Rejected),
            2 => Some(Verdict::Lost),
            _ => None,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Verdict::Accepted => 0,
            Verdict::Rejected => 1,
            Verdict::Lost => 2,
        }
    }
}

/// Everything that can go wrong reading a journal. Offsets are absolute
/// file offsets so an operator can inspect the damage with `xxd`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiptError {
    /// An I/O error (message retained; `std::io::Error` is not `Eq`).
    Io(String),
    /// A record does not start with the journal magic.
    BadMagic {
        /// File offset of the offending record.
        offset: u64,
    },
    /// A record declares an unknown format version.
    BadVersion {
        /// File offset of the offending record.
        offset: u64,
        /// The version byte found.
        version: u8,
    },
    /// A record declares an unknown kind tag.
    BadKind {
        /// File offset of the offending record.
        offset: u64,
        /// The kind byte found.
        kind: u8,
    },
    /// A record's CRC does not match its bytes and the record is *not*
    /// the file's final one — mid-file corruption is reported, never
    /// silently skipped.
    CorruptRecord {
        /// File offset of the offending record.
        offset: u64,
    },
    /// A record's length field exceeds the format's ceiling.
    OversizeRecord {
        /// File offset of the offending record.
        offset: u64,
        /// The declared payload length.
        len: u64,
    },
    /// A record's signature failed the caller's verifier.
    BadSignature {
        /// File offset of the offending record.
        offset: u64,
    },
    /// A CRC-clean payload that does not decode (truncated field,
    /// inconsistent counts, bad enum tag).
    Malformed {
        /// File offset of the offending record.
        offset: u64,
        /// What the codec rejected.
        reason: &'static str,
    },
    /// The journal's first record is not a session header, or a second
    /// header appeared mid-file.
    BadLayout {
        /// File offset of the offending record.
        offset: u64,
        /// What the scan expected.
        reason: &'static str,
    },
}

impl core::fmt::Display for ReceiptError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReceiptError::Io(m) => write!(f, "journal i/o error: {m}"),
            ReceiptError::BadMagic { offset } => write!(f, "bad magic at offset {offset}"),
            ReceiptError::BadVersion { offset, version } => {
                write!(f, "unknown version {version} at offset {offset}")
            }
            ReceiptError::BadKind { offset, kind } => {
                write!(f, "unknown record kind {kind} at offset {offset}")
            }
            ReceiptError::CorruptRecord { offset } => {
                write!(f, "CRC mismatch at offset {offset} (mid-file corruption)")
            }
            ReceiptError::OversizeRecord { offset, len } => {
                write!(f, "absurd record length {len} at offset {offset}")
            }
            ReceiptError::BadSignature { offset } => {
                write!(f, "signature verification failed at offset {offset}")
            }
            ReceiptError::Malformed { offset, reason } => {
                write!(f, "malformed payload at offset {offset}: {reason}")
            }
            ReceiptError::BadLayout { offset, reason } => {
                write!(f, "bad journal layout at offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for ReceiptError {}

impl From<std::io::Error> for ReceiptError {
    fn from(e: std::io::Error) -> Self {
        ReceiptError::Io(e.to_string())
    }
}

/// The once-per-journal session header: identifies the run and pins the
/// μTesla bootstrap so a restarted querier can resume the broadcast
/// chain from the journal alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionHeader {
    /// Caller-chosen session identifier (ties receipts to a deployment).
    pub session: u64,
    /// The μTesla chain commitment `K_0` distributed at bootstrap
    /// (all-zero when the session runs without broadcast auth).
    pub mutesla_commitment: [u8; 32],
    /// The μTesla disclosure delay `d` (0 when unused).
    pub mutesla_delay: u64,
}

impl SessionHeader {
    /// Encodes the header payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.extend_from_slice(&self.session.to_le_bytes());
        out.extend_from_slice(&self.mutesla_commitment);
        out.extend_from_slice(&self.mutesla_delay.to_le_bytes());
        out
    }

    /// Decodes a header payload (offset is for error reporting only).
    pub fn decode(payload: &[u8], offset: u64) -> Result<Self, ReceiptError> {
        if payload.len() != 48 {
            return Err(ReceiptError::Malformed {
                offset,
                reason: "session header must be exactly 48 bytes",
            });
        }
        let mut commitment = [0u8; 32];
        commitment.copy_from_slice(&payload[8..40]);
        Ok(SessionHeader {
            session: u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")),
            mutesla_commitment: commitment,
            mutesla_delay: u64::from_le_bytes(payload[40..48].try_into().expect("8 bytes")),
        })
    }
}

/// Flag bits packed into the receipt's `flags` byte.
mod flag {
    pub const INTEGRITY_CHECKED: u8 = 1 << 0;
    pub const CORRUPTED: u8 = 1 << 1;
    pub const CRASH_INJECTED: u8 = 1 << 2;
    pub const ATTACK_INJECTED: u8 = 1 << 3;
    pub const SUM_MISMATCH: u8 = 1 << 4;
}

/// Fixed-layout byte size of a receipt payload before the contributor
/// list.
pub const RECEIPT_FIXED_LEN: usize = 8 + 8 + 1 + 1 + 8 + 8 + 32 + 8 * 11 + 4;

/// One epoch's signed receipt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochReceipt {
    /// Session the epoch belongs to (must match the session header).
    pub session: u64,
    /// The epoch id.
    pub epoch: u64,
    /// The querier's verdict.
    pub verdict: Verdict,
    /// Whether the scheme cryptographically verified integrity (false
    /// for accept-without-verify baselines).
    pub integrity_checked: bool,
    /// Ground truth (harness runs only): whether a covert attack
    /// actually corrupted the aggregate this epoch.
    pub corrupted: bool,
    /// Whether the harness injected node crashes this epoch.
    pub crash_injected: bool,
    /// Whether the harness injected a covert attack this epoch.
    pub attack_injected: bool,
    /// Whether an accepted, verified sum disagreed with the ground-truth
    /// sum over the reported contributors (live harness check; must be
    /// false for exact schemes).
    pub sum_mismatch: bool,
    /// The accepted sum's `f64` bit pattern (0 for rejected/lost).
    pub sum_bits: u64,
    /// μTesla: the receiver's last authenticated interval after this
    /// epoch (0 when broadcast auth is not in use).
    pub mutesla_interval: u64,
    /// μTesla: the last authenticated chain key. Disclosed keys are
    /// public, so journaling one leaks nothing; the signature keeps it
    /// tamper-evident, and replay resumes the chain position from it.
    pub mutesla_key: [u8; 32],
    /// Uplink transfers delivered under the recovery protocol.
    pub delivered_links: u64,
    /// Uplink transfers lost after all re-solicitation rounds.
    pub lost_links: u64,
    /// Transfers that only succeeded in a re-solicited phase.
    pub recovered_by_resolicit: u64,
    /// Re-solicitation rounds run.
    pub resolicitations: u64,
    /// Orphans re-homed to backup parents.
    pub adoptions: u64,
    /// Sources excluded by a fallible `source_init`.
    pub init_failures: u64,
    /// Subtrees excluded by a fallible `merge`.
    pub merge_failures: u64,
    /// First-copy data bytes this epoch.
    pub data_bytes: u64,
    /// Retransmitted data bytes this epoch.
    pub retransmit_bytes: u64,
    /// Control-plane bytes this epoch.
    pub control_bytes: u64,
    /// Modeled backoff delay accumulated by the recovery protocol (ms).
    pub backoff_ms: u64,
    /// Sources that contributed to the accepted aggregate, ascending.
    pub contributors: Vec<u32>,
}

impl EpochReceipt {
    /// Encoded payload size in bytes.
    pub fn encoded_len(&self) -> usize {
        RECEIPT_FIXED_LEN + 4 * self.contributors.len()
    }

    /// Encodes the receipt payload, appending to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.extend_from_slice(&self.session.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.push(self.verdict.tag());
        let mut flags = 0u8;
        if self.integrity_checked {
            flags |= flag::INTEGRITY_CHECKED;
        }
        if self.corrupted {
            flags |= flag::CORRUPTED;
        }
        if self.crash_injected {
            flags |= flag::CRASH_INJECTED;
        }
        if self.attack_injected {
            flags |= flag::ATTACK_INJECTED;
        }
        if self.sum_mismatch {
            flags |= flag::SUM_MISMATCH;
        }
        out.push(flags);
        out.extend_from_slice(&self.sum_bits.to_le_bytes());
        out.extend_from_slice(&self.mutesla_interval.to_le_bytes());
        out.extend_from_slice(&self.mutesla_key);
        for v in [
            self.delivered_links,
            self.lost_links,
            self.recovered_by_resolicit,
            self.resolicitations,
            self.adoptions,
            self.init_failures,
            self.merge_failures,
            self.data_bytes,
            self.retransmit_bytes,
            self.control_bytes,
            self.backoff_ms,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.contributors.len() as u32).to_le_bytes());
        for &sid in &self.contributors {
            out.extend_from_slice(&sid.to_le_bytes());
        }
    }

    /// Encodes the receipt payload into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes a receipt payload (offset is for error reporting only).
    pub fn decode(payload: &[u8], offset: u64) -> Result<Self, ReceiptError> {
        let malformed = |reason| ReceiptError::Malformed { offset, reason };
        if payload.len() < RECEIPT_FIXED_LEN {
            return Err(malformed("payload shorter than the fixed layout"));
        }
        let u64_at = |pos: usize| u64::from_le_bytes(payload[pos..pos + 8].try_into().expect("8"));
        let session = u64_at(0);
        let epoch = u64_at(8);
        let verdict =
            Verdict::from_tag(payload[16]).ok_or_else(|| malformed("unknown verdict tag"))?;
        let flags = payload[17];
        let known = flag::INTEGRITY_CHECKED
            | flag::CORRUPTED
            | flag::CRASH_INJECTED
            | flag::ATTACK_INJECTED
            | flag::SUM_MISMATCH;
        if flags & !known != 0 {
            return Err(malformed("unknown flag bits set"));
        }
        let sum_bits = u64_at(18);
        let mutesla_interval = u64_at(26);
        let mut mutesla_key = [0u8; 32];
        mutesla_key.copy_from_slice(&payload[34..66]);
        let counters: Vec<u64> = (0..11).map(|i| u64_at(66 + 8 * i)).collect();
        let n_pos = 66 + 88;
        let n = u32::from_le_bytes(payload[n_pos..n_pos + 4].try_into().expect("4")) as usize;
        let tail = &payload[n_pos + 4..];
        if tail.len() != 4 * n {
            return Err(malformed("contributor count disagrees with payload length"));
        }
        let contributors: Vec<u32> = tail
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4")))
            .collect();
        Ok(EpochReceipt {
            session,
            epoch,
            verdict,
            integrity_checked: flags & flag::INTEGRITY_CHECKED != 0,
            corrupted: flags & flag::CORRUPTED != 0,
            crash_injected: flags & flag::CRASH_INJECTED != 0,
            attack_injected: flags & flag::ATTACK_INJECTED != 0,
            sum_mismatch: flags & flag::SUM_MISMATCH != 0,
            sum_bits,
            mutesla_interval,
            mutesla_key,
            delivered_links: counters[0],
            lost_links: counters[1],
            recovered_by_resolicit: counters[2],
            resolicitations: counters[3],
            adoptions: counters[4],
            init_failures: counters[5],
            merge_failures: counters[6],
            data_bytes: counters[7],
            retransmit_bytes: counters[8],
            control_bytes: counters[9],
            backoff_ms: counters[10],
            contributors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EpochReceipt {
        EpochReceipt {
            session: 0xDEAD_BEEF,
            epoch: 42,
            verdict: Verdict::Accepted,
            integrity_checked: true,
            corrupted: false,
            crash_injected: true,
            attack_injected: false,
            sum_mismatch: false,
            sum_bits: 12345.5f64.to_bits(),
            mutesla_interval: 43,
            mutesla_key: [9u8; 32],
            delivered_links: 80,
            lost_links: 1,
            recovered_by_resolicit: 2,
            resolicitations: 3,
            adoptions: 1,
            init_failures: 0,
            merge_failures: 0,
            data_bytes: 4096,
            retransmit_bytes: 128,
            control_bytes: 512,
            backoff_ms: 77,
            contributors: vec![0, 1, 2, 5, 63],
        }
    }

    #[test]
    fn codec_round_trip() {
        let r = sample();
        let bytes = r.encode();
        assert_eq!(bytes.len(), r.encoded_len());
        assert_eq!(EpochReceipt::decode(&bytes, 0).unwrap(), r);
    }

    #[test]
    fn every_truncation_is_malformed_not_panic() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                EpochReceipt::decode(&bytes[..cut], 0).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn bad_verdict_and_flags_are_typed() {
        let mut bytes = sample().encode();
        bytes[16] = 7;
        assert!(matches!(
            EpochReceipt::decode(&bytes, 5),
            Err(ReceiptError::Malformed { offset: 5, .. })
        ));
        let mut bytes = sample().encode();
        bytes[17] |= 0x80;
        assert!(EpochReceipt::decode(&bytes, 0).is_err());
    }

    #[test]
    fn session_header_round_trip() {
        let h = SessionHeader {
            session: 7,
            mutesla_commitment: [3u8; 32],
            mutesla_delay: 2,
        };
        assert_eq!(SessionHeader::decode(&h.encode(), 0).unwrap(), h);
        assert!(SessionHeader::decode(&[0u8; 47], 0).is_err());
    }

    #[test]
    fn digest_tags_match_chaos_fold() {
        assert_eq!(Verdict::Accepted.digest_tag(), 1);
        assert_eq!(Verdict::Rejected.digest_tag(), 2);
        assert_eq!(Verdict::Lost.digest_tag(), 3);
    }
}
