//! Journal durability properties: codec round-trips under random
//! receipts, the torn-write simulation (truncation at every byte offset
//! of the final record), and the mid-file corruption discipline.

use proptest::prelude::*;
use sies_receipts::frame::{encode_into, RecordKind};
use sies_receipts::{EpochReceipt, ReceiptError, Replayer, SessionHeader, Signature, Verdict};

fn header() -> SessionHeader {
    SessionHeader {
        session: 99,
        mutesla_commitment: [7u8; 32],
        mutesla_delay: 1,
    }
}

/// A deliberately toy keyed MAC (FNV-1a folded over key then payload,
/// repeated to 32 bytes): enough to prove the signature plumbing without
/// a crypto dependency in this crate's tests.
fn toy_mac(key: u8, payload: &[u8]) -> Signature {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ key as u64;
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut sig = [0u8; 32];
    for (i, chunk) in sig.chunks_mut(8).enumerate() {
        chunk.copy_from_slice(&h.wrapping_add(i as u64).to_le_bytes());
    }
    sig
}

fn receipt(epoch: u64, contributors: Vec<u32>) -> EpochReceipt {
    EpochReceipt {
        session: 99,
        epoch,
        verdict: Verdict::Accepted,
        integrity_checked: true,
        sum_bits: (epoch as f64 * 1.5).to_bits(),
        mutesla_interval: epoch + 1,
        mutesla_key: [epoch as u8; 32],
        delivered_links: 60,
        data_bytes: 2048,
        contributors,
        ..EpochReceipt::default()
    }
}

fn signed_journal(epochs: u64, key: u8) -> Vec<u8> {
    let mut buf = Vec::new();
    let hp = header().encode();
    let hs = toy_mac(key, &hp);
    encode_into(&mut buf, RecordKind::SessionHeader, &hp, &hs);
    for e in 0..epochs {
        let p = receipt(e, vec![e as u32, e as u32 + 1]).encode();
        let s = toy_mac(key, &p);
        encode_into(&mut buf, RecordKind::Receipt, &p, &s);
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encode→decode is the identity for arbitrary receipts.
    #[test]
    fn codec_round_trips(
        session in any::<u64>(),
        epoch in any::<u64>(),
        verdict_tag in 0u64..3,
        flags in 0u64..32,
        sum_bits in any::<u64>(),
        counters in collection::vec(any::<u64>(), 12..=12),
        contributors in collection::vec(0u32..1_000_000, 0..64),
    ) {
        let r = EpochReceipt {
            session,
            epoch,
            verdict: match verdict_tag {
                0 => Verdict::Accepted,
                1 => Verdict::Rejected,
                _ => Verdict::Lost,
            },
            integrity_checked: flags & 1 != 0,
            corrupted: flags & 2 != 0,
            crash_injected: flags & 4 != 0,
            attack_injected: flags & 8 != 0,
            sum_mismatch: flags & 16 != 0,
            sum_bits,
            mutesla_interval: counters[11],
            mutesla_key: [counters[0] as u8; 32],
            delivered_links: counters[0],
            lost_links: counters[1],
            recovered_by_resolicit: counters[2],
            resolicitations: counters[3],
            adoptions: counters[4],
            init_failures: counters[5],
            merge_failures: counters[6],
            data_bytes: counters[7],
            retransmit_bytes: counters[8],
            control_bytes: counters[9],
            backoff_ms: counters[10],
            contributors,
        };
        let bytes = r.encode();
        prop_assert_eq!(bytes.len(), r.encoded_len());
        prop_assert_eq!(EpochReceipt::decode(&bytes, 0).unwrap(), r);
    }

    /// Decoding arbitrary bytes never panics — it returns a typed error
    /// or a (coincidentally) valid receipt.
    #[test]
    fn decode_never_panics(bytes in collection::vec(any::<u64>().prop_map(|x| x as u8), 0..512)) {
        let _ = EpochReceipt::decode(&bytes, 0);
        let _ = SessionHeader::decode(&bytes, 0);
        let _ = Replayer::scan(&bytes, None);
    }

    /// A journal truncated at a random offset never errors into a panic
    /// and never invents receipts that were not fully written.
    #[test]
    fn random_truncation_yields_prefix(epochs in 1u64..12, cut_frac in 0u64..10_000) {
        let buf = signed_journal(epochs, 0xA5);
        let cut = (buf.len() as u64 * cut_frac / 10_000) as usize;
        match Replayer::scan(&buf[..cut], None) {
            Ok(s) => prop_assert!(s.receipts.len() as u64 <= epochs),
            Err(e) => prop_assert!(
                matches!(e, ReceiptError::BadLayout { .. }),
                "unexpected error {:?}", e
            ),
        }
    }
}

/// The crash signature: the final record cut at *every* byte offset must
/// replay to exactly the preceding records, reporting the torn tail.
#[test]
fn torn_final_record_recovers_cleanly_at_every_offset() {
    let epochs = 4u64;
    let full = signed_journal(epochs, 0x11);
    let prefix = signed_journal(epochs - 1, 0x11);
    let last_start = prefix.len();
    assert!(last_start < full.len());

    for cut in last_start..full.len() {
        let s = Replayer::scan(&full[..cut], None)
            .unwrap_or_else(|e| panic!("cut at {cut}: scan failed with {e}"));
        assert_eq!(s.receipts.len() as u64, epochs - 1, "cut at {cut}");
        assert_eq!(s.last_epoch(), Some(epochs - 2), "cut at {cut}");
        if cut == last_start {
            assert!(s.torn_tail.is_none(), "no tail bytes at the boundary");
        } else {
            let tail = s.torn_tail.expect("torn tail reported");
            assert_eq!(tail.offset, last_start as u64);
            assert_eq!(tail.bytes, (cut - last_start) as u64);
        }
    }
    // And the untruncated journal replays everything with no tail.
    let s = Replayer::scan(&full, None).unwrap();
    assert_eq!(s.receipts.len() as u64, epochs);
    assert!(s.torn_tail.is_none());
}

/// A CRC-dirty record *mid-file* is a hard, typed error — never skipped.
#[test]
fn corrupted_record_mid_file_is_reported_not_skipped() {
    let full = signed_journal(5, 0x22);
    let one = signed_journal(1, 0x22);
    let two = signed_journal(2, 0x22);
    // Flip one payload byte inside the second receipt record.
    let target = (one.len() + two.len()) / 2;
    let mut bad = full.clone();
    bad[target] ^= 0x08;
    match Replayer::scan(&bad, None) {
        Err(ReceiptError::CorruptRecord { offset }) => {
            assert_eq!(offset, one.len() as u64, "error names the dirty record");
        }
        other => panic!("expected CorruptRecord, got {other:?}"),
    }
}

/// Same flip applied to the *final* record is the torn-tail case: the
/// prefix replays, the damage is reported as a tail, not an error.
#[test]
fn corrupted_final_record_is_a_tolerated_tail() {
    let full = signed_journal(5, 0x22);
    let prefix = signed_journal(4, 0x22);
    let mut bad = full.clone();
    let target = prefix.len() + (full.len() - prefix.len()) / 2;
    bad[target] ^= 0x08;
    let s = Replayer::scan(&bad, None).unwrap();
    assert_eq!(s.receipts.len(), 4);
    assert_eq!(
        s.torn_tail,
        Some(sies_receipts::TornTail {
            offset: prefix.len() as u64,
            bytes: (full.len() - prefix.len()) as u64,
        })
    );
}

/// Signature discipline: the right key verifies, the wrong key is a
/// typed error at the offending record's offset.
#[test]
fn signatures_verify_with_the_session_key_only() {
    let buf = signed_journal(3, 0x77);
    let good: &dyn Fn(&[u8], &Signature) -> bool = &|p, s| &toy_mac(0x77, p) == s;
    let s = Replayer::scan(&buf, Some(good)).unwrap();
    assert_eq!(s.receipts.len(), 3);

    let wrong: &dyn Fn(&[u8], &Signature) -> bool = &|p, s| &toy_mac(0x78, p) == s;
    assert!(matches!(
        Replayer::scan(&buf, Some(wrong)),
        Err(ReceiptError::BadSignature { offset: 0 })
    ));
}
