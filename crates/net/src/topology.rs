//! Aggregation-tree topologies (paper §III-A, Figure 1).
//!
//! Sources are the leaves; aggregators are internal nodes; the root
//! aggregator is the network sink, which alone talks to the querier. The
//! paper's experiments use a *complete tree* with aggregator fanout `F`;
//! [`Topology::random_tree`] additionally builds irregular trees for
//! robustness testing, since "the tree topology can be arbitrary".

use rand::Rng;
use rand::RngCore;
use sies_core::SourceId;
use std::collections::{BTreeMap, HashSet};

/// Index of a node within a [`Topology`].
pub type NodeId = usize;

/// The role a node plays in the aggregation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A leaf that generates data (`𝒮_i`).
    Source(SourceId),
    /// An internal node that fuses PSRs (`𝒜_j`).
    Aggregator,
}

/// One node of the aggregation tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Parent node (`None` for the sink).
    pub parent: Option<NodeId>,
    /// Children, empty for sources.
    pub children: Vec<NodeId>,
    /// Source or aggregator.
    pub role: Role,
    /// Hop distance from the sink (sink = 0).
    pub depth: usize,
}

/// The within-epoch re-homing plan for children orphaned by crashed
/// nodes (recovery protocol, see `sies_net::recovery`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairPlan {
    /// Orphan → adopting backup parent (ordered for deterministic
    /// replay under a fixed seed).
    pub adoptions: BTreeMap<NodeId, NodeId>,
    /// Live nodes with no live ancestor (possible only when the sink
    /// itself crashed); their subtrees are lost for the epoch.
    pub stranded: Vec<NodeId>,
}

impl RepairPlan {
    /// True when no node needed re-homing.
    pub fn is_empty(&self) -> bool {
        self.adoptions.is_empty() && self.stranded.is_empty()
    }
}

/// An aggregation tree.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    root: NodeId,
    num_sources: u64,
}

impl Topology {
    /// Builds the paper's experimental topology: `num_sources` leaves under
    /// a complete tree of aggregators with fanout `fanout`.
    ///
    /// Construction is bottom-up: every group of up to `fanout` nodes at
    /// one level is adopted by a fresh aggregator at the next level, until
    /// a single sink remains. With `num_sources = 1` a single aggregator
    /// (the sink) still exists so the querier always talks to an
    /// aggregator.
    pub fn complete_tree(num_sources: u64, fanout: usize) -> Self {
        assert!(num_sources >= 1, "need at least one source");
        assert!(fanout >= 2, "fanout must be at least 2");
        let mut nodes: Vec<Node> = Vec::new();
        let mut level: Vec<NodeId> = (0..num_sources)
            .map(|i| {
                let id = nodes.len();
                nodes.push(Node {
                    id,
                    parent: None,
                    children: Vec::new(),
                    role: Role::Source(i as SourceId),
                    depth: 0,
                });
                id
            })
            .collect();

        // Keep adding aggregator levels until one node remains — and make
        // sure that node is an aggregator (the sink), not a lone source.
        while level.len() > 1 || matches!(nodes[level[0]].role, Role::Source(_)) {
            let mut next: Vec<NodeId> = Vec::new();
            for group in level.chunks(fanout) {
                let id = nodes.len();
                nodes.push(Node {
                    id,
                    parent: None,
                    children: group.to_vec(),
                    role: Role::Aggregator,
                    depth: 0,
                });
                for &child in group {
                    nodes[child].parent = Some(id);
                }
                next.push(id);
            }
            level = next;
        }
        let root = level[0];
        let mut topo = Topology {
            nodes,
            root,
            num_sources,
        };
        topo.recompute_depths();
        topo
    }

    /// Builds a random irregular tree: aggregators get between 1 and
    /// `max_fanout` children, sampled with `rng`.
    pub fn random_tree(rng: &mut dyn RngCore, num_sources: u64, max_fanout: usize) -> Self {
        assert!(num_sources >= 1);
        assert!(max_fanout >= 2);
        let mut nodes: Vec<Node> = Vec::new();
        let mut level: Vec<NodeId> = (0..num_sources)
            .map(|i| {
                let id = nodes.len();
                nodes.push(Node {
                    id,
                    parent: None,
                    children: Vec::new(),
                    role: Role::Source(i as SourceId),
                    depth: 0,
                });
                id
            })
            .collect();
        while level.len() > 1 || matches!(nodes[level[0]].role, Role::Source(_)) {
            let mut next: Vec<NodeId> = Vec::new();
            let mut i = 0;
            while i < level.len() {
                let take = rng.random_range(1..=max_fanout).min(level.len() - i);
                let group = &level[i..i + take];
                let id = nodes.len();
                nodes.push(Node {
                    id,
                    parent: None,
                    children: group.to_vec(),
                    role: Role::Aggregator,
                    depth: 0,
                });
                for &child in group {
                    nodes[child].parent = Some(id);
                }
                next.push(id);
                i += take;
            }
            level = next;
        }
        let root = level[0];
        let mut topo = Topology {
            nodes,
            root,
            num_sources,
        };
        topo.recompute_depths();
        topo
    }

    fn recompute_depths(&mut self) {
        let mut stack = vec![(self.root, 0usize)];
        while let Some((id, depth)) = stack.pop() {
            self.nodes[id].depth = depth;
            for i in 0..self.nodes[id].children.len() {
                stack.push((self.nodes[id].children[i], depth + 1));
            }
        }
    }

    /// The sink (root aggregator).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of source leaves.
    pub fn num_sources(&self) -> u64 {
        self.num_sources
    }

    /// Number of aggregator nodes.
    pub fn num_aggregators(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.role, Role::Aggregator))
            .count()
    }

    /// Post-order traversal (children before parents), the order the
    /// epoch engine processes nodes in.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
            } else {
                stack.push((id, true));
                for &c in &self.nodes[id].children {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// The node id hosting a given source.
    pub fn source_node(&self, source: SourceId) -> Option<NodeId> {
        self.nodes
            .iter()
            .find(|n| n.role == Role::Source(source))
            .map(|n| n.id)
    }

    /// All source ids in the subtree rooted at `id`.
    pub fn sources_under(&self, id: NodeId) -> Vec<SourceId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            match self.nodes[n].role {
                Role::Source(s) => out.push(s),
                Role::Aggregator => stack.extend(&self.nodes[n].children),
            }
        }
        out.sort_unstable();
        out
    }

    /// Tree height (max depth over nodes).
    pub fn height(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Renders the tree in Graphviz DOT format (sources as boxes,
    /// aggregators as circles, the sink double-circled) for debugging and
    /// documentation.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph aggregation_tree {\n  rankdir=BT;\n");
        for node in &self.nodes {
            match node.role {
                Role::Source(s) => {
                    out.push_str(&format!("  n{} [shape=box, label=\"S{}\"];\n", node.id, s));
                }
                Role::Aggregator => {
                    let shape = if node.id == self.root {
                        "doublecircle"
                    } else {
                        "circle"
                    };
                    out.push_str(&format!("  n{} [shape={shape}, label=\"A\"];\n", node.id));
                }
            }
        }
        for node in &self.nodes {
            if let Some(parent) = node.parent {
                out.push_str(&format!("  n{} -> n{};\n", node.id, parent));
            }
        }
        out.push_str("}\n");
        out
    }

    /// The designated backup parent for `orphan` when its parent is in
    /// `crashed`: the nearest live ancestor of the original parent.
    /// Returns `None` when every ancestor up to and including the sink
    /// crashed (the orphan is stranded for this epoch).
    ///
    /// Adopting an ancestor preserves correctness because merging is
    /// associative and commutative: the orphan's partial state reaches
    /// the sink through a shorter path, fused one level higher than
    /// planned.
    pub fn backup_parent(&self, orphan: NodeId, crashed: &HashSet<NodeId>) -> Option<NodeId> {
        let mut candidate = self.nodes[orphan].parent;
        while let Some(id) = candidate {
            if !crashed.contains(&id) {
                return Some(id);
            }
            candidate = self.nodes[id].parent;
        }
        None
    }

    /// Plans the within-epoch topology repair for a set of crashed nodes:
    /// every live child of a crashed aggregator re-attaches to its
    /// [`backup_parent`](Self::backup_parent).
    pub fn repair_plan(&self, crashed: &HashSet<NodeId>) -> RepairPlan {
        let mut plan = RepairPlan::default();
        for node in &self.nodes {
            if crashed.contains(&node.id) {
                continue;
            }
            let Some(parent) = node.parent else { continue };
            if !crashed.contains(&parent) {
                continue;
            }
            match self.backup_parent(node.id, crashed) {
                Some(backup) => {
                    plan.adoptions.insert(node.id, backup);
                }
                None => plan.stranded.push(node.id),
            }
        }
        plan
    }

    /// Checks structural invariants (parent/child symmetry, one root,
    /// every source reachable). Used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        let mut roots = 0;
        for n in &self.nodes {
            match n.parent {
                None => roots += 1,
                Some(p) => {
                    if !self.nodes[p].children.contains(&n.id) {
                        return Err(format!(
                            "node {} missing from parent {}'s children",
                            n.id, p
                        ));
                    }
                }
            }
            for &c in &n.children {
                if self.nodes[c].parent != Some(n.id) {
                    return Err(format!("child {c} does not point back to {}", n.id));
                }
            }
            if matches!(n.role, Role::Source(_)) && !n.children.is_empty() {
                return Err(format!("source node {} has children", n.id));
            }
        }
        if roots != 1 {
            return Err(format!("expected exactly one root, found {roots}"));
        }
        let reach = self.sources_under(self.root);
        if reach.len() as u64 != self.num_sources {
            return Err(format!(
                "only {} of {} sources reachable from the root",
                reach.len(),
                self.num_sources
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_topology() {
        // N = 1024, F = 4: a complete 4-ary tree of aggregators.
        let t = Topology::complete_tree(1024, 4);
        t.validate().unwrap();
        assert_eq!(t.num_sources(), 1024);
        // 256 + 64 + 16 + 4 + 1 aggregators.
        assert_eq!(t.num_aggregators(), 256 + 64 + 16 + 4 + 1);
        assert_eq!(t.height(), 5);
        assert!(matches!(t.node(t.root()).role, Role::Aggregator));
    }

    #[test]
    fn single_source_still_has_sink() {
        let t = Topology::complete_tree(1, 4);
        t.validate().unwrap();
        assert_eq!(t.num_aggregators(), 1);
        assert!(matches!(t.node(t.root()).role, Role::Aggregator));
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn non_divisible_source_count() {
        let t = Topology::complete_tree(10, 4);
        t.validate().unwrap();
        // level1: ceil(10/4)=3 aggs, level2: 1 agg.
        assert_eq!(t.num_aggregators(), 4);
    }

    #[test]
    fn post_order_visits_children_first() {
        let t = Topology::complete_tree(16, 4);
        let order = t.post_order();
        assert_eq!(order.len(), t.nodes().len());
        let mut seen = vec![false; t.nodes().len()];
        for id in order {
            for &c in &t.node(id).children {
                assert!(seen[c], "child {c} visited after parent {id}");
            }
            seen[id] = true;
        }
    }

    #[test]
    fn sources_under_root_is_everything() {
        let t = Topology::complete_tree(64, 2);
        let s = t.sources_under(t.root());
        assert_eq!(s, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sources_under_subtree_is_partial() {
        let t = Topology::complete_tree(16, 4);
        let first_agg = t.node(t.root()).children[0];
        let s = t.sources_under(first_agg);
        assert!(!s.is_empty() && s.len() < 16);
    }

    #[test]
    fn source_node_lookup() {
        let t = Topology::complete_tree(8, 2);
        let id = t.source_node(3).unwrap();
        assert_eq!(t.node(id).role, Role::Source(3));
        assert!(t.source_node(99).is_none());
    }

    #[test]
    fn dot_export_is_well_formed() {
        let t = Topology::complete_tree(4, 2);
        let dot = t.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        // 4 source boxes, 1 double-circled sink, and one edge per
        // non-root node.
        assert_eq!(dot.matches("shape=box").count(), 4);
        assert_eq!(dot.matches("doublecircle").count(), 1);
        assert_eq!(dot.matches("->").count(), t.nodes().len() - 1);
    }

    #[test]
    fn random_trees_are_valid() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [1u64, 2, 7, 33, 100] {
            for fan in [2usize, 3, 6] {
                let t = Topology::random_tree(&mut rng, n, fan);
                t.validate().unwrap();
                assert_eq!(t.num_sources(), n);
            }
        }
    }

    #[test]
    fn fanout_bounds_respected() {
        let t = Topology::complete_tree(100, 5);
        for n in t.nodes() {
            assert!(n.children.len() <= 5);
        }
    }

    #[test]
    fn backup_parent_is_grandparent() {
        let t = Topology::complete_tree(16, 4);
        let agg = t.node(t.root()).children[0];
        let crashed: HashSet<NodeId> = [agg].into();
        for &child in &t.node(agg).children {
            assert_eq!(t.backup_parent(child, &crashed), Some(t.root()));
        }
    }

    #[test]
    fn backup_parent_skips_crashed_ancestors() {
        // 64 sources, fanout 2: deep tree. Crash a node and its parent;
        // the orphan must re-home two levels up.
        let t = Topology::complete_tree(64, 2);
        let l1 = t.node(t.root()).children[0];
        let l2 = t.node(l1).children[0];
        let crashed: HashSet<NodeId> = [l1, l2].into();
        for &child in &t.node(l2).children {
            assert_eq!(t.backup_parent(child, &crashed), Some(t.root()));
        }
    }

    #[test]
    fn repair_plan_adopts_all_orphans() {
        let t = Topology::complete_tree(16, 4);
        let agg = t.node(t.root()).children[1];
        let crashed: HashSet<NodeId> = [agg].into();
        let plan = t.repair_plan(&crashed);
        assert_eq!(plan.adoptions.len(), t.node(agg).children.len());
        assert!(plan.stranded.is_empty());
        for (&orphan, &adopter) in &plan.adoptions {
            assert_eq!(t.node(orphan).parent, Some(agg));
            assert_eq!(adopter, t.root());
        }
    }

    #[test]
    fn crashed_sink_strands_children() {
        let t = Topology::complete_tree(16, 4);
        let crashed: HashSet<NodeId> = [t.root()].into();
        let plan = t.repair_plan(&crashed);
        assert!(plan.adoptions.is_empty());
        assert_eq!(plan.stranded.len(), t.node(t.root()).children.len());
    }

    #[test]
    fn no_crashes_empty_plan() {
        let t = Topology::complete_tree(8, 2);
        assert!(t.repair_plan(&HashSet::new()).is_empty());
    }
}
