//! Radio wire format: framing for everything the network transmits.
//!
//! The simulator's engine passes PSRs in memory; this module defines the
//! byte-level packet format a real deployment would put on the air, so
//! the per-edge sizes the engine accounts correspond to concrete,
//! round-trippable packets. Framing adds a fixed 20-byte overhead
//! (header + CRC) on top of the scheme payload; the paper's Table V
//! counts payload bytes only, and so does the engine.
//!
//! ```text
//!   0        2     3     4            12        16           18
//!   +--------+-----+-----+------------+---------+------------+---------+-----+
//!   | magic  | ver | typ | epoch (u64)| sender  | payload_len| payload | crc |
//!   +--------+-----+-----+------------+---------+------------+---------+-----+
//! ```
//!
//! The CRC-32 (IEEE 802.3 polynomial) detects radio corruption; it is
//! **not** a security mechanism — integrity against adversaries comes
//! from the schemes themselves.

use sies_core::Epoch;

/// Packet magic bytes.
pub const MAGIC: u16 = 0x51E5;
/// Current format version.
pub const VERSION: u8 = 1;
/// Fixed framing overhead in bytes (header 18 + CRC 4 = 22).
pub const FRAME_OVERHEAD: usize = 22;

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketType {
    /// A partial state record travelling up the tree.
    Psr,
    /// A μTesla-authenticated query broadcast travelling down.
    QueryBroadcast,
    /// A μTesla key disclosure.
    KeyDisclosure,
    /// A node-failure report for the querier (paper §IV-B Discussion).
    FailureReport,
    /// Link-layer acknowledgement of a received PSR (recovery protocol).
    Ack,
    /// Negative acknowledgement: a frame arrived but failed its CRC, so
    /// the receiver asks for an immediate retransmission.
    Nack,
    /// Querier-driven re-solicitation of a missing subtree after the
    /// epoch deadline.
    Resolicit,
    /// An orphaned node's request to re-attach to a backup parent after
    /// its original parent crashed.
    Reattach,
}

impl PacketType {
    fn to_byte(self) -> u8 {
        match self {
            PacketType::Psr => 1,
            PacketType::QueryBroadcast => 2,
            PacketType::KeyDisclosure => 3,
            PacketType::FailureReport => 4,
            PacketType::Ack => 5,
            PacketType::Nack => 6,
            PacketType::Resolicit => 7,
            PacketType::Reattach => 8,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            1 => PacketType::Psr,
            2 => PacketType::QueryBroadcast,
            3 => PacketType::KeyDisclosure,
            4 => PacketType::FailureReport,
            5 => PacketType::Ack,
            6 => PacketType::Nack,
            7 => PacketType::Resolicit,
            8 => PacketType::Reattach,
            _ => return None,
        })
    }
}

/// A decoded packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Payload kind.
    pub packet_type: PacketType,
    /// Epoch the payload belongs to.
    pub epoch: Epoch,
    /// Sending node id.
    pub sender: u32,
    /// The scheme payload (e.g. a 32-byte SIES PSR).
    pub payload: Vec<u8>,
}

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a minimal frame.
    Truncated,
    /// Magic bytes mismatch.
    BadMagic,
    /// Unsupported version.
    BadVersion(u8),
    /// Unknown packet type byte.
    BadType(u8),
    /// Declared payload length disagrees with the buffer.
    BadLength,
    /// CRC mismatch (radio corruption).
    BadCrc,
    /// The packet decoded fine but is not the type the caller needs
    /// (e.g. [`Packet::to_psr`] on an ACK).
    WrongType {
        /// The type byte the caller required.
        expected: u8,
        /// The type byte the packet carries.
        found: u8,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic => write!(f, "bad magic"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::BadType(t) => write!(f, "unknown packet type {t}"),
            WireError::BadLength => write!(f, "length mismatch"),
            WireError::BadCrc => write!(f, "CRC mismatch"),
            WireError::WrongType { expected, found } => {
                write!(f, "expected packet type {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFFFFFF`) with a
/// lazily-built lookup table.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

impl Packet {
    /// Encodes into a framed byte vector.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.payload.len() <= u16::MAX as usize, "payload too large");
        let mut out = Vec::with_capacity(FRAME_OVERHEAD + self.payload.len());
        out.extend_from_slice(&MAGIC.to_be_bytes());
        out.push(VERSION);
        out.push(self.packet_type.to_byte());
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&self.sender.to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Decodes and validates a framed byte slice.
    pub fn decode(bytes: &[u8]) -> Result<Packet, WireError> {
        if bytes.len() < FRAME_OVERHEAD {
            return Err(WireError::Truncated);
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let expected = u32::from_be_bytes(take4(crc_bytes)?);
        if crc32(body) != expected {
            return Err(WireError::BadCrc);
        }
        if u16::from_be_bytes([body[0], body[1]]) != MAGIC {
            return Err(WireError::BadMagic);
        }
        if body[2] != VERSION {
            return Err(WireError::BadVersion(body[2]));
        }
        let packet_type = PacketType::from_byte(body[3]).ok_or(WireError::BadType(body[3]))?;
        let epoch = u64::from_be_bytes(take8(body.get(4..12).ok_or(WireError::Truncated)?)?);
        let sender = u32::from_be_bytes(take4(body.get(12..16).ok_or(WireError::Truncated)?)?);
        let len = u16::from_be_bytes([body[16], body[17]]) as usize;
        if body.len() - 18 != len {
            return Err(WireError::BadLength);
        }
        Ok(Packet {
            packet_type,
            epoch,
            sender,
            payload: body[18..].to_vec(),
        })
    }

    /// Frames a SIES PSR.
    pub fn from_psr(psr: &sies_core::Psr, epoch: Epoch, sender: u32) -> Packet {
        Packet {
            packet_type: PacketType::Psr,
            epoch,
            sender,
            payload: psr.to_bytes().to_vec(),
        }
    }

    /// Recovers a SIES PSR from a [`PacketType::Psr`] packet.
    pub fn to_psr(&self) -> Result<sies_core::Psr, WireError> {
        if self.packet_type != PacketType::Psr {
            return Err(WireError::WrongType {
                expected: PacketType::Psr.to_byte(),
                found: self.packet_type.to_byte(),
            });
        }
        let bytes: [u8; 32] = self
            .payload
            .as_slice()
            .try_into()
            .map_err(|_| WireError::BadLength)?;
        Ok(sies_core::Psr::from_bytes(&bytes))
    }
}

fn take4(slice: &[u8]) -> Result<[u8; 4], WireError> {
    slice.try_into().map_err(|_| WireError::Truncated)
}

fn take8(slice: &[u8]) -> Result<[u8; 8], WireError> {
    slice.try_into().map_err(|_| WireError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet {
            packet_type: PacketType::Psr,
            epoch: 42,
            sender: 7,
            payload: vec![0xAB; 32],
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), FRAME_OVERHEAD + 32);
        assert_eq!(Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn every_packet_type_round_trips() {
        for t in [
            PacketType::Psr,
            PacketType::QueryBroadcast,
            PacketType::KeyDisclosure,
            PacketType::FailureReport,
            PacketType::Ack,
            PacketType::Nack,
            PacketType::Resolicit,
            PacketType::Reattach,
        ] {
            let p = Packet {
                packet_type: t,
                epoch: 1,
                sender: 2,
                payload: vec![1, 2, 3],
            };
            assert_eq!(Packet::decode(&p.encode()).unwrap().packet_type, t);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x01;
            assert!(
                Packet::decode(&corrupted).is_err(),
                "flipped byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                Packet::decode(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample().encode();
        bytes[2] = 9;
        // Re-CRC the body so only the version check fires.
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(Packet::decode(&bytes), Err(WireError::BadVersion(9)));
    }

    #[test]
    fn psr_framing_round_trip() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sies_core::SystemParams;
        let mut rng = StdRng::seed_from_u64(5);
        let dep = crate::SiesDeployment::new(&mut rng, SystemParams::new(4).unwrap());
        let psr = dep.source(0).initialize(3, 777).unwrap();
        let framed = Packet::from_psr(&psr, 3, 0).encode();
        let decoded = Packet::decode(&framed).unwrap();
        assert_eq!(decoded.to_psr().unwrap(), psr);
        assert_eq!(decoded.epoch, 3);
    }

    #[test]
    fn empty_payload_supported() {
        let p = Packet {
            packet_type: PacketType::FailureReport,
            epoch: 0,
            sender: 0,
            payload: vec![],
        };
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn non_psr_packet_reports_wrong_type_not_length() {
        let p = Packet {
            packet_type: PacketType::Ack,
            epoch: 0,
            sender: 0,
            payload: vec![0; 32],
        };
        assert_eq!(
            p.to_psr(),
            Err(WireError::WrongType {
                expected: 1,
                found: 5
            })
        );
        // A PSR packet with the wrong payload size is still a length
        // error.
        let short = Packet {
            packet_type: PacketType::Psr,
            epoch: 0,
            sender: 0,
            payload: vec![0; 16],
        };
        assert_eq!(short.to_psr(), Err(WireError::BadLength));
    }

    mod never_panics {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            /// Arbitrary garbage must decode to a typed error or a
            /// packet — never a panic. This is the frame the radio hands
            /// us; an adversary controls every byte of it.
            #[test]
            fn decode_is_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = Packet::decode(&bytes);
            }

            /// Single-byte corruption of a well-formed frame is always a
            /// typed error (the CRC or a later check catches it), and
            /// to_psr on whatever decodes is panic-free too.
            #[test]
            fn flipped_frames_degrade_to_typed_errors(
                payload in proptest::collection::vec(any::<u8>(), 0..64),
                epoch in any::<u64>(),
                sender in any::<u32>(),
                idx in any::<usize>(),
                bit in 0u8..8,
            ) {
                let mut bytes = Packet {
                    packet_type: PacketType::Psr,
                    epoch,
                    sender,
                    payload,
                }
                .encode();
                let i = idx % bytes.len();
                bytes[i] ^= 1 << bit;
                if let Ok(p) = Packet::decode(&bytes) {
                    let _ = p.to_psr();
                }
            }
        }
    }
}
