//! High-level declarative query execution: compiles a [`Query`] into its
//! SUM sub-queries and runs each as a SIES round over the network,
//! returning the verified, finalized answer.
//!
//! Derived aggregates need up to three SUM instances per epoch (paper
//! §III-B: AVG = SUM/COUNT etc.). Each sub-query runs in its own
//! *sub-epoch* (`epoch · STRIDE + term`), which domain-separates the
//! per-epoch keys and shares between concurrent SUM instances — the same
//! freshness machinery, reused as instance separation.

use crate::deploy::SiesDeployment;
use crate::engine::{Attack, Engine, EpochStats};
use crate::journal::ReceiptJournal;
use crate::scheme::SchemeError;
use crate::topology::{NodeId, Topology};
use sies_core::query::{Query, QueryPlan, QueryResult, SensorReading};
use sies_core::Epoch;
use std::collections::HashSet;

/// Sub-epochs reserved per logical epoch (the widest plan uses 3).
pub const EPOCH_STRIDE: u64 = 8;

/// The outcome of one logical epoch of a query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The verified, finalized aggregate.
    pub result: QueryResult,
    /// Per-sub-query engine measurements.
    pub rounds: Vec<EpochStats>,
}

/// Executes declarative queries over a deployed SIES network.
pub struct QueryEngine<'a> {
    engine: Engine<'a, SiesDeployment>,
    plan: QueryPlan,
}

impl<'a> QueryEngine<'a> {
    /// Registers `query` over the deployment and topology (the paper's
    /// setup-phase query dissemination, minus the radio).
    pub fn new(deployment: &'a SiesDeployment, topology: &'a Topology, query: &Query) -> Self {
        QueryEngine {
            engine: Engine::new(deployment, topology),
            plan: query.plan(),
        }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Attaches a durable receipt journal to the underlying engine:
    /// every sub-query round commits one signed receipt, keyed by its
    /// sub-epoch (`epoch · STRIDE + term`), so a restarted querier can
    /// tell exactly which terms of which logical epoch were verified.
    pub fn attach_journal(&mut self, journal: ReceiptJournal) {
        self.engine.attach_journal(journal);
    }

    /// Detaches the journal, flushing and fsyncing it first. I/O errors
    /// from the final sync are returned; the journal is detached either
    /// way.
    pub fn finish_journal(&mut self) -> std::io::Result<Option<ReceiptJournal>> {
        match self.engine.take_journal() {
            Some(mut journal) => {
                journal.finish()?;
                Ok(Some(journal))
            }
            None => Ok(None),
        }
    }

    /// Runs one logical epoch: every source contributes its reading, the
    /// plan's sub-queries execute as separate SIES rounds, and the
    /// verified sub-sums are combined into the final answer.
    pub fn run_epoch(
        &mut self,
        epoch: Epoch,
        readings: &[SensorReading],
    ) -> Result<QueryOutcome, SchemeError> {
        self.run_epoch_with(epoch, readings, &HashSet::new(), &[])
    }

    /// [`Self::run_epoch`] with failure and attack injection, applied to
    /// every sub-query round.
    pub fn run_epoch_with(
        &mut self,
        epoch: Epoch,
        readings: &[SensorReading],
        failed: &HashSet<NodeId>,
        attacks: &[Attack],
    ) -> Result<QueryOutcome, SchemeError> {
        assert_eq!(
            readings.len() as u64,
            self.engine.topology().num_sources(),
            "one reading per source required"
        );
        let per_source: Vec<Vec<u64>> = readings
            .iter()
            .map(|r| self.plan.source_values(r))
            .collect();

        let mut sums = Vec::with_capacity(self.plan.terms().len());
        let mut rounds = Vec::with_capacity(self.plan.terms().len());
        for term_idx in 0..self.plan.terms().len() {
            let sub_epoch = epoch * EPOCH_STRIDE + term_idx as u64;
            let values: Vec<u64> = per_source.iter().map(|v| v[term_idx]).collect();
            let out = self
                .engine
                .run_epoch_with(sub_epoch, &values, failed, attacks);
            let evaluated = out.result?;
            debug_assert!(evaluated.integrity_checked);
            sums.push(evaluated.sum as u64);
            rounds.push(out.stats);
        }
        let result = self
            .plan
            .finalize(&sums)
            .map_err(|e| SchemeError::Malformed(e.to_string()))?;
        Ok(QueryOutcome { result, rounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sies_core::query::{Aggregate, Attribute, CmpOp, Predicate};
    use sies_core::{ResultWidth, SystemParams};
    use sies_crypto::DEFAULT_PRIME_256;

    fn fixture(n: u64) -> (SiesDeployment, Topology) {
        let mut rng = StdRng::seed_from_u64(42);
        let params = SystemParams::with_prime(n, DEFAULT_PRIME_256, ResultWidth::U64).unwrap();
        (
            SiesDeployment::new(&mut rng, params),
            Topology::complete_tree(n, 4),
        )
    }

    fn readings(n: u64) -> Vec<SensorReading> {
        (0..n)
            .map(|i| SensorReading::new(2000 + i * 10, 400 + i, 100, 2500))
            .collect()
    }

    #[test]
    fn sum_query_end_to_end() {
        let (dep, topo) = fixture(16);
        let q = Query::sum(Attribute::Temperature);
        let mut engine = QueryEngine::new(&dep, &topo, &q);
        let rs = readings(16);
        let expected: u64 = rs.iter().map(|r| r.get(Attribute::Temperature)).sum();
        let out = engine.run_epoch(0, &rs).unwrap();
        assert_eq!(out.result, QueryResult::Exact(expected));
        assert_eq!(out.rounds.len(), 1);
    }

    #[test]
    fn avg_query_uses_two_rounds() {
        let (dep, topo) = fixture(16);
        let q = Query {
            aggregate: Aggregate::Avg(Attribute::Temperature),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        };
        let mut engine = QueryEngine::new(&dep, &topo, &q);
        let rs = readings(16);
        let out = engine.run_epoch(0, &rs).unwrap();
        let expected = rs
            .iter()
            .map(|r| r.get(Attribute::Temperature) as f64)
            .sum::<f64>()
            / 16.0;
        match out.result {
            QueryResult::Real(v) => assert!((v - expected).abs() < 1e-9),
            other => panic!("expected Real, got {other:?}"),
        }
        assert_eq!(out.rounds.len(), 2);
    }

    #[test]
    fn filtered_count_matches_predicate() {
        let (dep, topo) = fixture(16);
        let q = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Cmp(Attribute::Temperature, CmpOp::Ge, 2100),
            epoch_duration_ms: 1000,
        };
        let mut engine = QueryEngine::new(&dep, &topo, &q);
        let rs = readings(16);
        let expected = rs
            .iter()
            .filter(|r| r.get(Attribute::Temperature) >= 2100)
            .count();
        let out = engine.run_epoch(3, &rs).unwrap();
        assert_eq!(out.result, QueryResult::Exact(expected as u64));
    }

    #[test]
    fn attacked_round_fails_the_whole_query() {
        let (dep, topo) = fixture(16);
        let q = Query {
            aggregate: Aggregate::Variance(Attribute::Temperature),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        };
        let mut engine = QueryEngine::new(&dep, &topo, &q);
        let victim = topo.source_node(3).unwrap();
        let err = engine
            .run_epoch_with(
                0,
                &readings(16),
                &HashSet::new(),
                &[Attack::TamperAtNode(victim)],
            )
            .unwrap_err();
        assert!(matches!(err, SchemeError::VerificationFailed(_)));
    }

    #[test]
    fn consecutive_epochs_use_distinct_sub_epochs() {
        // Same readings, different epochs: ciphertext freshness must hold
        // across the stride mapping (no sub-epoch collision).
        let (dep, topo) = fixture(8);
        let q = Query {
            aggregate: Aggregate::StdDev(Attribute::Temperature),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        };
        let mut engine = QueryEngine::new(&dep, &topo, &q);
        let rs = readings(8);
        let a = engine.run_epoch(0, &rs).unwrap();
        let b = engine.run_epoch(1, &rs).unwrap();
        assert_eq!(a.result, b.result, "same data, same answer");
        assert_eq!(a.rounds.len(), 3, "stddev needs 3 sub-queries");
    }

    #[test]
    fn journaled_query_run_replays_per_sub_epoch_receipts() {
        use crate::journal::{replay, JournalConfig, ReceiptJournal};
        use sies_receipts::Verdict;

        let path = std::env::temp_dir().join(format!(
            "sies-query-journal-{}-replays.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let cfg = JournalConfig {
            session: 9,
            ..JournalConfig::default()
        };

        let (dep, topo) = fixture(8);
        let q = Query {
            aggregate: Aggregate::Avg(Attribute::Temperature),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        };
        let mut engine = QueryEngine::new(&dep, &topo, &q);
        engine.attach_journal(ReceiptJournal::create(&path, &cfg).unwrap());
        let rs = readings(8);
        engine.run_epoch(0, &rs).unwrap();
        engine.run_epoch(1, &rs).unwrap();
        engine.finish_journal().unwrap();

        // AVG is 2 sub-queries per logical epoch: 4 receipts at the
        // stride-mapped sub-epochs, all verified.
        let state = replay(&path, &cfg).unwrap();
        let epochs: Vec<u64> = state.summary.receipts.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![0, 1, EPOCH_STRIDE, EPOCH_STRIDE + 1]);
        assert!(state
            .summary
            .receipts
            .iter()
            .all(|r| r.verdict == Verdict::Accepted && r.integrity_checked && r.session == 9));
        assert_eq!(state.next_epoch, EPOCH_STRIDE + 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failures_propagate_to_derived_result() {
        let (dep, topo) = fixture(8);
        let q = Query {
            aggregate: Aggregate::Avg(Attribute::Temperature),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        };
        let mut engine = QueryEngine::new(&dep, &topo, &q);
        let rs = readings(8);
        let failed: HashSet<NodeId> = [topo.source_node(0).unwrap()].into();
        let out = engine.run_epoch_with(0, &rs, &failed, &[]).unwrap();
        let expected = rs[1..]
            .iter()
            .map(|r| r.get(Attribute::Temperature) as f64)
            .sum::<f64>()
            / 7.0;
        match out.result {
            QueryResult::Real(v) => assert!((v - expected).abs() < 1e-9),
            other => panic!("expected Real, got {other:?}"),
        }
    }
}
