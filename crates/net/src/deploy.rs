//! [`SiesDeployment`]: the SIES scheme plugged into the
//! [`crate::scheme::AggregationScheme`] abstraction so the epoch engine
//! can drive it alongside the baselines.

use crate::prewarm::{PrewarmPolicy, PrewarmPool, PrewarmStats};
use crate::scheme::{AggregationScheme, EvaluatedSum, SchemeError};
use rand::RngCore;
use sies_core::scheme::{setup, Aggregator, EpochKeyMaterial, Psr, Querier, Source};
use sies_core::{Epoch, SiesError, SourceId, SystemParams};
use sies_crypto::u256::U256;
use std::sync::{Arc, Mutex};

/// A full SIES deployment: all source credentials, the aggregator
/// configuration, and the querier's key material.
pub struct SiesDeployment {
    sources: Vec<Source>,
    aggregator: Aggregator,
    querier: Querier,
    /// Precomputed next-epoch key material ([`crate::prewarm`]). Starts
    /// disabled so existing callers see identical behavior; a pipeline
    /// (or test) opts in via [`SiesDeployment::set_prewarm_policy`].
    /// Entries are `Arc`-shared so a lookup clones a pointer, not the
    /// per-source key vectors, and concurrent shard workers of one
    /// epoch all hit the same derivation.
    prewarm: Mutex<PrewarmPool<Arc<EpochKeyMaterial>>>,
}

impl SiesDeployment {
    /// Runs the setup phase for `params.num_sources()` sources.
    pub fn new(rng: &mut dyn RngCore, params: SystemParams) -> Self {
        let (querier, creds, aggregator) = setup(rng, params);
        let sources = creds.into_iter().map(Source::new).collect();
        SiesDeployment {
            sources,
            aggregator,
            querier,
            prewarm: Mutex::new(PrewarmPool::new(PrewarmPolicy::disabled())),
        }
    }

    /// Direct access to the querier (for API-level tests).
    pub fn querier(&self) -> &Querier {
        &self.querier
    }

    /// Direct access to a source.
    pub fn source(&self, id: SourceId) -> &Source {
        &self.sources[id as usize]
    }

    /// Number of deployed sources.
    pub fn num_sources(&self) -> u64 {
        self.sources.len() as u64
    }

    /// Installs a precompute policy (disabling clears the pool). The
    /// pool only ever caches key material that on-demand derivation
    /// would produce bit-for-bit, so this never changes any result —
    /// only where the PRF sweeps run.
    pub fn set_prewarm_policy(&self, policy: PrewarmPolicy) {
        self.prewarm
            .lock()
            .expect("prewarm lock")
            .set_policy(policy);
    }

    /// Builder form of [`SiesDeployment::set_prewarm_policy`].
    pub fn with_prewarm(self, policy: PrewarmPolicy) -> Self {
        self.set_prewarm_policy(policy);
        self
    }

    /// Lifetime pool counters (hits/misses/derived/evicted/cancelled).
    pub fn prewarm_stats(&self) -> PrewarmStats {
        self.prewarm.lock().expect("prewarm lock").stats()
    }

    /// The epochs a warmer thread should derive next, given the last
    /// epoch the engine finished.
    pub fn prewarm_plan(&self, watermark: Epoch) -> Vec<Epoch> {
        self.prewarm.lock().expect("prewarm lock").plan(watermark)
    }

    /// Drops pooled material the watermark has passed.
    pub fn prewarm_retire(&self, watermark: Epoch) {
        self.prewarm.lock().expect("prewarm lock").retire(watermark);
    }

    /// Derives and pools `epoch`'s full key set (shared cipher plus all
    /// per-source keys and shares) through the same lane-batched PRF
    /// sweeps the hot path uses. The expensive derivation runs outside
    /// the pool lock; returns whether the pool kept the result (`false`
    /// when disabled, already pooled, or lost a race to another
    /// warmer).
    pub fn prewarm_derive(&self, epoch: Epoch) -> bool {
        {
            let pool = self.prewarm.lock().expect("prewarm lock");
            if !pool.policy().enabled || pool.contains(epoch) {
                return false;
            }
        }
        let Some(keys) = Source::derive_epoch_keys(&self.sources, epoch) else {
            return false;
        };
        self.prewarm
            .lock()
            .expect("prewarm lock")
            .insert(epoch, Arc::new(keys))
    }

    /// Non-destructive pool probe: the `Arc` clone is a pointer copy,
    /// and the entry stays for the epoch's other shard workers.
    fn prewarm_lookup(&self, epoch: Epoch) -> Option<Arc<EpochKeyMaterial>> {
        self.prewarm
            .lock()
            .expect("prewarm lock")
            .lookup(epoch)
            .cloned()
    }
}

impl AggregationScheme for SiesDeployment {
    type Psr = Psr;

    fn name(&self) -> &'static str {
        "SIES"
    }

    fn source_init(&self, source: SourceId, epoch: Epoch, value: u64) -> Psr {
        self.sources[source as usize]
            .initialize(epoch, value)
            .expect("value fits the configured result width")
    }

    fn try_source_init(
        &self,
        source: SourceId,
        epoch: Epoch,
        value: u64,
    ) -> Result<Psr, SchemeError> {
        let src = self
            .sources
            .get(source as usize)
            .ok_or_else(|| SchemeError::Malformed(format!("unknown source {source}")))?;
        src.initialize(epoch, value)
            .map_err(|e| SchemeError::Malformed(e.to_string()))
    }

    fn batch_source_init(
        &self,
        epoch: Epoch,
        jobs: &[(SourceId, u64)],
    ) -> Vec<Result<Psr, SchemeError>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        // Prewarm fast path: when a warmer already derived this epoch's
        // key material during the idle gap, every job collapses to a
        // table lookup + encode + one CIOS multiply — zero PRF calls on
        // the critical path. Results (and error shapes) are identical to
        // the derive-on-demand path below, so digests never depend on
        // pool state.
        if let Some(keys) = self.prewarm_lookup(epoch) {
            return jobs
                .iter()
                .map(|&(source, value)| match self.sources.get(source as usize) {
                    None => Err(SchemeError::Malformed(format!("unknown source {source}"))),
                    Some(src) => src
                        .initialize_prewarmed(&keys, value)
                        .map_err(|e| SchemeError::Malformed(e.to_string())),
                })
                .collect();
        }
        // Hoist the epoch-shared work: K_t derived once and entered into
        // the Montgomery domain once per shard, so each job costs one
        // HM256, one HM1 and a single CIOS multiply. Ciphertexts are
        // bit-identical to `try_source_init` (the EpochCipher contract).
        let Some(&(first, _)) = jobs.first() else {
            return Vec::new();
        };
        let Some(template) = self.sources.get(first as usize) else {
            // Fall back to the per-job path, which reports the error in
            // the same shape as the serial loop.
            return jobs
                .iter()
                .map(|&(s, v)| self.try_source_init(s, epoch, v))
                .collect();
        };
        let cipher = template.epoch_cipher(epoch);
        // Resolve ids first (unknown ids keep the per-job error shape),
        // then derive every resolved job's k_{i,t} and ss_{i,t} through
        // the lane-batched PRF pass in `Source::initialize_batch`.
        let resolved: Vec<Option<&Source>> = jobs
            .iter()
            .map(|&(s, _)| self.sources.get(s as usize))
            .collect();
        let batch_jobs: Vec<(&Source, u64)> = jobs
            .iter()
            .zip(&resolved)
            .filter_map(|(&(_, v), src)| src.map(|s| (s, v)))
            .collect();
        let mut batched = Source::initialize_batch(&cipher, epoch, &batch_jobs).into_iter();
        jobs.iter()
            .zip(&resolved)
            .map(|(&(source, _), src)| match src {
                None => Err(SchemeError::Malformed(format!("unknown source {source}"))),
                Some(_) => batched
                    .next()
                    .expect("one result per resolved job")
                    .map_err(|e| SchemeError::Malformed(e.to_string())),
            })
            .collect()
    }

    fn batch_source_init_into(
        &self,
        epoch: Epoch,
        jobs: &[(SourceId, u64)],
        out: &mut Vec<Result<Psr, SchemeError>>,
    ) {
        // Keep the lane-batched fast path. The batched kernels build
        // intermediate vectors internally, so this override trades the
        // trait default's zero-allocation property for SIES' ~4x PRF
        // speedup; the reused `out` buffer still absorbs the outer
        // allocation.
        out.clear();
        out.extend(self.batch_source_init(epoch, jobs));
    }

    fn prewarm_enabled(&self) -> bool {
        self.prewarm.lock().expect("prewarm lock").policy().enabled
    }

    fn prewarm_epoch(&self, epoch: Epoch) {
        self.prewarm_derive(epoch);
    }

    fn prewarm_plan(&self, watermark: Epoch) -> Vec<Epoch> {
        SiesDeployment::prewarm_plan(self, watermark)
    }

    fn prewarm_retire(&self, watermark: Epoch) {
        SiesDeployment::prewarm_retire(self, watermark);
    }

    fn prewarm_cancel(&self) {
        self.prewarm.lock().expect("prewarm lock").cancel_all();
    }

    fn merge(&self, psrs: &[Psr]) -> Psr {
        self.aggregator
            .merge(psrs)
            .expect("merge called with children")
    }

    fn try_merge(&self, psrs: &[Psr]) -> Result<Psr, SchemeError> {
        self.aggregator
            .merge(psrs)
            .ok_or_else(|| SchemeError::Malformed("merge called with no inputs".into()))
    }

    fn evaluate(
        &self,
        final_psr: &Psr,
        epoch: Epoch,
        contributors: &[SourceId],
    ) -> Result<EvaluatedSum, SchemeError> {
        match self
            .querier
            .evaluate_with_contributors(final_psr, epoch, contributors)
        {
            Ok(v) => Ok(EvaluatedSum {
                sum: v.sum as f64,
                integrity_checked: true,
            }),
            Err(SiesError::IntegrityViolation { epoch }) => Err(SchemeError::VerificationFailed(
                format!("secret mismatch at epoch {epoch}"),
            )),
            Err(e) => Err(SchemeError::Malformed(e.to_string())),
        }
    }

    fn evaluate_par(
        &self,
        final_psr: &Psr,
        epoch: Epoch,
        contributors: &[SourceId],
        threads: usize,
    ) -> Result<EvaluatedSum, SchemeError> {
        match self.querier.evaluate_with_contributors_threaded(
            final_psr,
            epoch,
            contributors,
            threads,
        ) {
            Ok(v) => Ok(EvaluatedSum {
                sum: v.sum as f64,
                integrity_checked: true,
            }),
            Err(SiesError::IntegrityViolation { epoch }) => Err(SchemeError::VerificationFailed(
                format!("secret mismatch at epoch {epoch}"),
            )),
            Err(e) => Err(SchemeError::Malformed(e.to_string())),
        }
    }

    fn psr_wire_size(&self, _psr: &Psr) -> usize {
        Psr::wire_size()
    }

    fn tamper(&self, psr: &mut Psr) {
        // Add 1 to the ciphertext — the attack that silently corrupts CMT.
        let p = self.querier.params().prime();
        let c = psr.ciphertext().add_mod(&U256::ONE, p);
        *psr = Psr::from_ciphertext(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Attack, Engine};
    use crate::topology::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn deployment(n: u64) -> SiesDeployment {
        let mut rng = StdRng::seed_from_u64(1234);
        SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap())
    }

    #[test]
    fn engine_runs_sies_end_to_end() {
        let dep = deployment(64);
        let topo = Topology::complete_tree(64, 4);
        let mut engine = Engine::new(&dep, &topo);
        let values: Vec<u64> = (0..64).map(|i| 1800 + i * 13).collect();
        let expected: u64 = values.iter().sum();
        let out = engine.run_epoch(7, &values);
        let res = out.result.unwrap();
        assert_eq!(res.sum, expected as f64);
        assert!(res.integrity_checked);
        // SIES PSRs are 32 bytes on every edge class.
        assert!((out.stats.bytes.per_sa_edge() - 32.0).abs() < 1e-9);
        assert!((out.stats.bytes.per_aa_edge() - 32.0).abs() < 1e-9);
        assert_eq!(out.stats.bytes.agg_to_querier, 32);
    }

    #[test]
    fn all_covert_attacks_detected() {
        let dep = deployment(16);
        let topo = Topology::complete_tree(16, 4);
        let node = topo.source_node(5).unwrap();
        let agg = topo.node(topo.root()).children[0];
        for attacks in [
            vec![Attack::TamperAtNode(node)],
            vec![Attack::DropAtNode(node)],
            vec![Attack::DuplicateAtNode(node)],
            vec![Attack::TamperAtNode(agg)],
            vec![Attack::DropAtNode(agg)],
        ] {
            let mut engine = Engine::new(&dep, &topo);
            let out = engine.run_epoch_with(3, &[100; 16], &HashSet::new(), &attacks);
            assert!(
                matches!(out.result, Err(SchemeError::VerificationFailed(_))),
                "attack {attacks:?} went undetected"
            );
        }
    }

    #[test]
    fn replay_detected() {
        let dep = deployment(8);
        let topo = Topology::complete_tree(8, 2);
        let mut engine = Engine::new(&dep, &topo);
        assert!(engine.run_epoch(0, &[5; 8]).result.is_ok());
        let out = engine.run_epoch_with(1, &[5; 8], &HashSet::new(), &[Attack::ReplayFinal]);
        assert!(matches!(
            out.result,
            Err(SchemeError::VerificationFailed(_))
        ));
    }

    #[test]
    fn honest_failures_still_verify() {
        let dep = deployment(16);
        let topo = Topology::complete_tree(16, 4);
        let mut engine = Engine::new(&dep, &topo);
        let failed: HashSet<_> =
            [topo.source_node(2).unwrap(), topo.source_node(9).unwrap()].into();
        let out = engine.run_epoch_with(2, &[10; 16], &failed, &[]);
        let res = out.result.unwrap();
        assert_eq!(res.sum, 140.0);
    }

    #[test]
    fn prewarmed_epoch_is_bit_identical_to_cold() {
        // Two deployments from the same seed; one precomputes, one
        // derives on demand. Every PSR (and every error) must match —
        // the deployment half of the prewarm digest-identity oracle.
        let cold = deployment(24);
        let warm = deployment(24).with_prewarm(PrewarmPolicy::default());
        let jobs: Vec<(SourceId, u64)> = (0..24).map(|i| (i, 500 + i as u64 * 7)).collect();
        for epoch in 0..4u64 {
            if epoch % 2 == 0 {
                assert!(warm.prewarm_derive(epoch), "derivation pooled");
                assert!(!warm.prewarm_derive(epoch), "duplicate derivation dropped");
            } // odd epochs miss the pool and derive on demand
            let a = cold.batch_source_init(epoch, &jobs);
            let b = warm.batch_source_init(epoch, &jobs);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    x.as_ref().unwrap(),
                    y.as_ref().unwrap(),
                    "job {i} epoch {epoch}"
                );
            }
            warm.prewarm_retire(epoch);
        }
        let stats = warm.prewarm_stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.derived, 2);
        assert_eq!(stats.evicted, 2);
        // Error shapes are identical on both paths too.
        warm.prewarm_derive(9);
        let bad = [(99u32, 1u64), (0, u64::MAX)];
        assert_eq!(
            cold.batch_source_init(9, &bad),
            warm.batch_source_init(9, &bad)
        );
        // Cancellation (e.g. topology repair) leaves results unchanged.
        warm.prewarm_derive(10);
        AggregationScheme::prewarm_cancel(&warm);
        assert_eq!(
            cold.batch_source_init(10, &jobs[..5]),
            warm.batch_source_init(10, &jobs[..5])
        );
    }

    #[test]
    fn prewarm_plan_tracks_watermark() {
        let dep = deployment(8).with_prewarm(PrewarmPolicy {
            enabled: true,
            depth: 2,
            capacity: 4,
        });
        assert_eq!(dep.prewarm_plan(0), vec![1, 2]);
        dep.prewarm_derive(1);
        assert_eq!(dep.prewarm_plan(0), vec![2]);
        assert!(AggregationScheme::prewarm_enabled(&dep));
        assert!(!AggregationScheme::prewarm_enabled(&deployment(8)));
    }

    #[test]
    fn random_topology_works() {
        let dep = deployment(33);
        let mut rng = StdRng::seed_from_u64(9);
        let topo = Topology::random_tree(&mut rng, 33, 5);
        let mut engine = Engine::new(&dep, &topo);
        let out = engine.run_epoch(11, &[7; 33]);
        assert_eq!(out.result.unwrap().sum, 231.0);
    }
}
