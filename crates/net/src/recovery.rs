//! Epoch recovery protocol: per-uplink ACK/NACK with bounded
//! retransmission, an epoch deadline, and querier-driven re-solicitation
//! of missing subtrees.
//!
//! The paper (§IV-B Discussion) assumes *some* mechanism tells the
//! querier which sources contributed; this module supplies a concrete
//! one and makes its cost measurable. Every uplink transfer runs a small
//! stop-and-wait protocol:
//!
//! 1. **Normal phase** — the child transmits its PSR; the parent ACKs
//!    each copy it receives. A frame that arrives corrupted (caught by
//!    the wire CRC) triggers an immediate NACK and retransmission; a
//!    frame that vanishes entirely is retransmitted on timeout. The
//!    retransmission budget is `1 + max_retries` data frames
//!    ([`crate::radio::LossyRadio::max_retries`]).
//! 2. **Re-solicitation phase** — when the epoch deadline passes with
//!    the transfer still missing, the querier (told by a
//!    [`crate::wire::PacketType::FailureReport`]) re-solicits the
//!    missing subtree: each round costs a
//!    [`crate::wire::PacketType::Resolicit`] frame per hop down to the
//!    waiting parent and buys one more full retransmission budget.
//! 3. **Exclusion** — a transfer that is still missing after
//!    [`RecoveryConfig::resolicit_rounds`] re-solicitations is declared
//!    lost; the subtree's sources are excluded from the contributor set
//!    and the epoch still verifies exactly over the survivors.
//!
//! Crash recovery (topology repair) is planned by
//! [`crate::topology::Topology::repair_plan`]: live children of a
//! crashed aggregator re-attach to their nearest live ancestor within
//! the same epoch, at the cost of a Reattach/ACK handshake each.
//!
//! A key property the chaos harness leans on: the protocol recovers
//! *honest* faults only. A covert adversary ACKs like everyone else, so
//! recovery never masks an attack — detection stays the scheme's job.

use crate::radio::{LinkStats, LossyRadio};
use crate::wire::FRAME_OVERHEAD;
use rand::Rng;
use rand::RngCore;
use sies_telemetry as tel;

/// Wire size of a link-layer acknowledgement (a bare frame: epoch and
/// sender live in the header, no payload).
pub const ACK_BYTES: usize = FRAME_OVERHEAD;
/// Wire size of a negative acknowledgement.
pub const NACK_BYTES: usize = FRAME_OVERHEAD;
/// Wire size of one re-solicitation frame (payload: the missing node id).
pub const RESOLICIT_BYTES: usize = FRAME_OVERHEAD + 4;
/// Wire size of a re-attach request (payload: the crashed parent's id).
pub const REATTACH_BYTES: usize = FRAME_OVERHEAD + 4;
/// Wire size of a failure report (payload: the failed node id).
pub const FAILURE_REPORT_BYTES: usize = FRAME_OVERHEAD + 4;

/// Bounded exponential backoff with seeded jitter, governing how long a
/// child waits before each retransmission and how long the querier
/// waits before each re-solicitation round.
///
/// The schedule for exponent `k` is `min(base_ms · 2^k, cap_ms)` plus a
/// uniformly drawn jitter of up to `jitter_pct` percent of that value.
/// Jitter comes from the caller's seeded RNG, so a fixed seed pins the
/// entire retry schedule — chaos runs stay replayable while synchronized
/// retry bursts (every child timing out in lockstep) are broken up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Delay before the first retransmission (exponent 0), in modeled
    /// milliseconds. `0` disables the backoff model entirely (and draws
    /// nothing from the RNG).
    pub base_ms: u32,
    /// Upper bound on the exponential, in modeled milliseconds.
    pub cap_ms: u32,
    /// Jitter span as a percentage of the backed-off delay (0–100).
    pub jitter_pct: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base_ms: 8,
            cap_ms: 512,
            jitter_pct: 50,
        }
    }
}

impl BackoffConfig {
    /// Creates a config with validation.
    pub fn new(base_ms: u32, cap_ms: u32, jitter_pct: u32) -> Self {
        assert!(jitter_pct <= 100, "jitter percentage must be in [0,100]");
        assert!(cap_ms >= base_ms, "cap must be at least the base delay");
        BackoffConfig {
            base_ms,
            cap_ms,
            jitter_pct,
        }
    }

    /// The modeled delay for retry exponent `k`: the capped exponential
    /// plus seeded jitter. Draws exactly one value from `rng` when a
    /// non-zero jitter span applies, zero otherwise.
    pub fn delay_ms(&self, exponent: u32, rng: &mut dyn RngCore) -> u64 {
        let capped = (self.base_ms as u64)
            .saturating_mul(1u64.checked_shl(exponent).unwrap_or(u64::MAX))
            .min(self.cap_ms as u64);
        let span = capped * self.jitter_pct as u64 / 100;
        if span == 0 {
            capped
        } else {
            capped + rng.random_range(0..=span)
        }
    }
}

/// Recovery-protocol policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Re-solicitation rounds the querier runs after the epoch deadline
    /// before declaring a subtree lost. Each round buys the failed
    /// uplink one more full retransmission budget.
    pub resolicit_rounds: u32,
    /// Fraction of lost frames that arrive *corrupted* (CRC caught, so
    /// the parent NACKs immediately) rather than vanishing (timeout).
    pub nack_fraction: f64,
    /// Retry pacing: bounded exponential backoff with seeded jitter.
    pub backoff: BackoffConfig,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            resolicit_rounds: 2,
            nack_fraction: 0.5,
            backoff: BackoffConfig::default(),
        }
    }
}

impl RecoveryConfig {
    /// Creates a config with validation (default backoff pacing).
    pub fn new(resolicit_rounds: u32, nack_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&nack_fraction),
            "nack fraction must be in [0,1]"
        );
        RecoveryConfig {
            resolicit_rounds,
            nack_fraction,
            backoff: BackoffConfig::default(),
        }
    }

    /// Overrides the backoff schedule.
    pub fn with_backoff(mut self, backoff: BackoffConfig) -> Self {
        self.backoff = backoff;
        self
    }
}

/// What happened on one uplink transfer under the recovery protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UplinkOutcome {
    /// Whether the parent ultimately holds the PSR (parent-side truth:
    /// a delivered frame counts even if every ACK back was lost).
    pub delivered: bool,
    /// Data frames the child transmitted (first attempt + retransmits).
    pub data_attempts: u32,
    /// ACK frames the parent sent (one per data frame received).
    pub acks: u32,
    /// NACK frames the parent sent for corrupted arrivals.
    pub nacks: u32,
    /// Re-solicitation rounds consumed.
    pub resolicit_rounds_used: u32,
    /// Modeled backoff delay spent waiting between retries and before
    /// re-solicitation rounds (milliseconds, jitter included).
    pub backoff_ms: u64,
}

impl RecoveryConfig {
    /// Simulates one uplink transfer: normal phase, then up to
    /// `resolicit_rounds` re-solicited phases. Each phase spends at most
    /// `1 + radio.max_retries` data frames. Duplicate deliveries (data
    /// got through but the ACK back was lost) are ACKed again and
    /// deduplicated by the parent — they cost bytes, never correctness.
    ///
    /// Retry pacing follows [`RecoveryConfig::backoff`]: retransmission
    /// `k` within a phase waits out exponent `k - 1`, and re-solicited
    /// phase `p` waits out exponent `budget + p - 1` (the querier's
    /// deadline keeps climbing past the retransmission ladder). The
    /// waits are modeled time, accumulated in
    /// [`UplinkOutcome::backoff_ms`]; they gate nothing — delivery is
    /// still decided by the loss draws (jitter shares the same seeded
    /// stream, so a fixed seed pins the whole interleaving).
    pub fn simulate_uplink(&self, radio: &LossyRadio, rng: &mut dyn RngCore) -> UplinkOutcome {
        let budget = radio.max_retries + 1;
        let mut out = UplinkOutcome::default();
        for phase in 0..=self.resolicit_rounds {
            if out.delivered {
                break;
            }
            if phase > 0 {
                out.resolicit_rounds_used += 1;
                if self.backoff.base_ms > 0 {
                    out.backoff_ms += self.backoff.delay_ms(budget + phase - 1, rng);
                }
            }
            let mut heard_ack = false;
            for attempt in 0..budget {
                if heard_ack {
                    break;
                }
                if attempt > 0 && self.backoff.base_ms > 0 {
                    out.backoff_ms += self.backoff.delay_ms(attempt - 1, rng);
                }
                out.data_attempts += 1;
                let r = rng.random_range(0.0..1.0);
                if r >= radio.loss_rate {
                    // Data frame arrived intact; the parent ACKs it.
                    out.delivered = true;
                    out.acks += 1;
                    if rng.random_range(0.0..1.0) >= radio.loss_rate {
                        heard_ack = true;
                    }
                    // ACK lost: the child retransmits; the parent
                    // dedupes and ACKs again.
                } else if r < radio.loss_rate * self.nack_fraction {
                    // Arrived corrupted: CRC failure, immediate NACK.
                    out.nacks += 1;
                }
                // Otherwise the frame vanished; the child times out.
            }
        }
        out
    }
}

/// Per-epoch accumulator for the recovery-protocol telemetry counters.
///
/// `simulate_uplink` records nothing itself: at ~100 uplinks per epoch
/// a per-call flush was the single largest telemetry cost in the whole
/// stack, so callers tally outcomes locally and flush once per epoch —
/// eight atomic adds instead of hundreds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UplinkTally {
    uplinks: u64,
    acks: u64,
    nacks: u64,
    resolicitations: u64,
    data_attempts: u64,
    delivered: u64,
    lost: u64,
    backoff_ms: u64,
}

impl UplinkTally {
    /// Folds one uplink outcome into the tally.
    pub fn add(&mut self, out: &UplinkOutcome) {
        self.uplinks += 1;
        self.acks += out.acks as u64;
        self.nacks += out.nacks as u64;
        self.resolicitations += out.resolicit_rounds_used as u64;
        self.data_attempts += out.data_attempts as u64;
        self.backoff_ms += out.backoff_ms;
        if out.delivered {
            self.delivered += 1;
        } else {
            self.lost += 1;
        }
    }

    /// Flushes the tally into the global registry. Retransmitted frames
    /// are the attempts beyond the first of each uplink.
    pub fn flush(&self) {
        tel::count!("recovery.uplinks", self.uplinks);
        tel::count!("recovery.acks", self.acks);
        tel::count!("recovery.nacks", self.nacks);
        tel::count!("recovery.resolicitations", self.resolicitations);
        tel::count!("recovery.data_attempts", self.data_attempts);
        tel::count!(
            "recovery.retransmits",
            self.data_attempts.saturating_sub(self.uplinks)
        );
        tel::count!("recovery.delivered", self.delivered);
        tel::count!("recovery.lost", self.lost);
        tel::count!("recovery.backoff_ms", self.backoff_ms);
    }
}

/// Recovery-protocol accounting for one epoch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Attempt-level link statistics (includes recovery retransmissions).
    pub link: LinkStats,
    /// Uplink transfers whose PSR reached the parent.
    pub delivered_links: u64,
    /// Uplink transfers still missing after all re-solicitation rounds;
    /// their subtrees were excluded from the contributor set.
    pub lost_links: u64,
    /// Transfers that only succeeded in a re-solicited phase.
    pub recovered_by_resolicit: u64,
    /// ACK frames sent.
    pub acks: u64,
    /// NACK frames sent.
    pub nacks: u64,
    /// Re-solicitation rounds run across all uplinks.
    pub resolicitations: u64,
    /// Orphans re-homed to a backup parent this epoch.
    pub adoptions: u64,
    /// Live nodes stranded with no live ancestor (sink crash only).
    pub stranded: u64,
    /// Failure reports sent up to the querier.
    pub failure_reports: u64,
    /// Sources a fallible `source_init` rejected (excluded like honest
    /// failures instead of panicking the epoch).
    pub init_failures: u64,
    /// Subtrees excluded because `merge` itself reported an error.
    pub merge_failures: u64,
    /// Total control-plane bytes (ACK + NACK + re-solicit + re-attach +
    /// failure reports).
    pub control_bytes: u64,
    /// Modeled backoff delay accumulated across all uplinks this epoch
    /// (milliseconds, jitter included).
    pub backoff_ms: u64,
}

impl RecoveryReport {
    /// Fraction of uplink transfers that ultimately delivered.
    pub fn delivery_rate(&self) -> f64 {
        let total = self.delivered_links + self.lost_links;
        if total == 0 {
            1.0
        } else {
            self.delivered_links as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lossless_uplink_one_frame_one_ack() {
        let cfg = RecoveryConfig::default();
        let radio = LossyRadio::new(0.0, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = cfg.simulate_uplink(&radio, &mut rng);
        assert_eq!(
            out,
            UplinkOutcome {
                delivered: true,
                data_attempts: 1,
                acks: 1,
                nacks: 0,
                resolicit_rounds_used: 0,
                backoff_ms: 0
            }
        );
    }

    #[test]
    fn backoff_schedule_is_pinned_for_a_known_seed() {
        // The capped exponential without jitter: 8, 16, 32, ..., 512, 512.
        let quiet = BackoffConfig::new(8, 512, 0);
        let mut rng = StdRng::seed_from_u64(42);
        let bare: Vec<u64> = (0..8).map(|k| quiet.delay_ms(k, &mut rng)).collect();
        assert_eq!(bare, vec![8, 16, 32, 64, 128, 256, 512, 512]);

        // With 50% jitter from a fixed seed the whole schedule is pinned:
        // each delay is the capped exponential plus one seeded draw from
        // [0, delay/2].
        let cfg = BackoffConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        let jittered: Vec<u64> = (0..8).map(|k| cfg.delay_ms(k, &mut rng)).collect();
        for (k, (&j, &b)) in jittered.iter().zip(bare.iter()).enumerate() {
            assert!(
                j >= b && j <= b + b / 2,
                "exponent {k}: {j} outside [{b}, {}]",
                b + b / 2
            );
        }
        let mut again = StdRng::seed_from_u64(42);
        let replay: Vec<u64> = (0..8).map(|k| cfg.delay_ms(k, &mut again)).collect();
        assert_eq!(jittered, replay, "same seed must pin the schedule");
        // Pin the exact values so any change to the draw order or the
        // jitter arithmetic is caught, not silently absorbed.
        assert_eq!(jittered, vec![12, 18, 48, 87, 179, 331, 544, 667]);
    }

    #[test]
    fn zero_base_disables_backoff_and_draws_nothing() {
        let cfg = RecoveryConfig::new(2, 0.5).with_backoff(BackoffConfig::new(0, 0, 0));
        let radio = LossyRadio::new(0.7, 3);
        // Same seed with and without backoff: identical delivery outcomes
        // when backoff is off proves delay_ms draws nothing at base 0.
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        for _ in 0..200 {
            let off = cfg.simulate_uplink(&radio, &mut a);
            let off2 = cfg.simulate_uplink(&radio, &mut b);
            assert_eq!(off, off2);
            assert_eq!(off.backoff_ms, 0);
        }
    }

    #[test]
    fn total_loss_exhausts_every_phase() {
        let cfg = RecoveryConfig::new(2, 0.5);
        let radio = LossyRadio::new(1.0, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let out = cfg.simulate_uplink(&radio, &mut rng);
        assert!(!out.delivered);
        // 3 phases (normal + 2 re-solicits) × 4 attempts each.
        assert_eq!(out.data_attempts, 12);
        assert_eq!(out.resolicit_rounds_used, 2);
        assert_eq!(out.acks, 0);
        // Half of total losses are detected corruptions → NACKs.
        assert!(out.nacks > 0 && out.nacks < 12);
    }

    #[test]
    fn resolicitation_recovers_some_transfers() {
        // At 60% loss with a tiny budget, some transfers only make it in
        // a re-solicited phase.
        let cfg = RecoveryConfig::new(3, 0.5);
        let radio = LossyRadio::new(0.6, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut recovered = 0;
        let mut lost = 0;
        for _ in 0..500 {
            let out = cfg.simulate_uplink(&radio, &mut rng);
            if out.delivered && out.resolicit_rounds_used > 0 {
                recovered += 1;
            }
            if !out.delivered {
                lost += 1;
            }
        }
        assert!(recovered > 0, "expected some re-solicited recoveries");
        // With 4 total phases at 60% loss, most transfers still succeed.
        assert!(lost < 100, "lost {lost} of 500");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = RecoveryConfig::default();
        let radio = LossyRadio::new(0.3, 2);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(
                cfg.simulate_uplink(&radio, &mut a),
                cfg.simulate_uplink(&radio, &mut b)
            );
        }
    }

    #[test]
    fn lost_acks_cost_retransmissions_not_delivery() {
        // nack_fraction 0 and heavy loss: deliveries happen, and some
        // spend more than one data frame purely because ACKs vanished.
        let cfg = RecoveryConfig::new(0, 0.0);
        let radio = LossyRadio::new(0.5, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let mut dup_frames = 0;
        for _ in 0..300 {
            let out = cfg.simulate_uplink(&radio, &mut rng);
            if out.delivered && out.acks > 1 {
                dup_frames += 1;
            }
        }
        assert!(
            dup_frames > 0,
            "expected duplicate deliveries from lost ACKs"
        );
    }

    #[test]
    #[should_panic(expected = "nack fraction")]
    fn invalid_nack_fraction_rejected() {
        RecoveryConfig::new(1, 1.5);
    }
}
