//! Streamed struct-of-arrays epoch pipeline for million-sensor
//! populations.
//!
//! [`EpochPipeline`] is the clean-path (no failures, no attacks)
//! counterpart of [`crate::engine::Engine`], rebuilt around the
//! [`FlatTopology`] arena for scale:
//!
//! * **Subtree sharding.** The sink's child subtrees are contiguous
//!   segments of the arena's post-order, so the tree splits into at most
//!   `threads` contiguous shards. Each worker walks its segment exactly
//!   as the serial engine would — batched source init, then a stack
//!   merge in post-order — and the main thread fuses the shard results
//!   in deterministic tree order. The final PSR is bit-identical for
//!   every thread count.
//! * **Epoch streaming.** With `streaming` enabled, two epoch buffers
//!   alternate through a one-producer hand-off: while the main thread
//!   merges/evaluates epoch `t`, a producer thread runs source init for
//!   epoch `t+1` in the other buffer. Results are identical with
//!   streaming on or off because the phases of one epoch never reorder —
//!   only phases of *different* epochs overlap.
//! * **Precompute-ahead.** When the scheme opts in
//!   ([`AggregationScheme::prewarm_enabled`]), a scoped warmer thread
//!   derives upcoming epochs' key material during the inter-epoch idle
//!   gap, paced by the consumer's progress watermark (no polling).
//!   Digests cannot change: the scheme's pool contract requires pooled
//!   material to reproduce on-demand derivation bit-for-bit, so the
//!   warmer may lag, race, or be absent without observable effect.
//! * **Zero steady-state allocation.** All per-epoch state (values,
//!   jobs, init results, merge stacks, shard outputs) lives in the two
//!   reused [`EpochBuf`]s; schemes write init results through
//!   [`AggregationScheme::batch_source_init_into`]. After a warm-up
//!   epoch per buffer, a `threads = 1` run performs no heap allocation
//!   per epoch (the `alloc_free` integration test pins this down with a
//!   counting allocator). With `threads > 1` the scoped-worker spawn is
//!   the one remaining O(threads) allocation per epoch.
//!
//! ## Digest identity with the serial engine
//!
//! The merge inputs seen by every aggregator are byte-identical to the
//! engine's: a post-order walk pushes child results on a stack in
//! *reverse child order* (post-order visits subtrees last-child-first),
//! so each merge window is reversed before the scheme sees it, and the
//! sink's shard remnants are concatenated in shard order then reversed
//! into child order. The `flat_equivalence` and `soa_determinism` tests
//! assert the resulting SHA-256 digests match the legacy engine across
//! thread counts and streaming modes.

use crate::flat::FlatTopology;
use crate::scheme::{AggregationScheme, EvaluatedSum, SchemeError};
use sies_core::{parallel, Epoch, SourceId, Threads};
use sies_telemetry as tel;
use std::ops::Range;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One contiguous run of sink-child subtrees in the post-order array,
/// walked serially by one worker.
#[derive(Debug, Clone)]
struct Shard {
    /// Post-order positions this shard covers.
    range: Range<usize>,
    /// Sources inside the range (pre-sizes the job buffers).
    sources: usize,
}

/// Reusable per-shard working state.
struct ShardState<P> {
    /// `(source, value)` jobs in shard post-order.
    jobs: Vec<(SourceId, u64)>,
    /// Per-job init results, aligned with `jobs`.
    inits: Vec<Result<P, SchemeError>>,
    /// The post-order merge stack.
    stack: Vec<P>,
    /// Subtree-root PSRs left on the stack, in shard post-order.
    out: Vec<P>,
    /// First scheme error hit in the walk (aborts the epoch exactly
    /// where the serial engine would).
    err: Option<SchemeError>,
    source_ns: u64,
    merge_ns: u64,
}

impl<P> ShardState<P> {
    fn with_capacity(shard: &Shard) -> Self {
        ShardState {
            jobs: Vec::with_capacity(shard.sources),
            inits: Vec::with_capacity(shard.sources),
            stack: Vec::new(),
            out: Vec::new(),
            err: None,
            source_ns: 0,
            merge_ns: 0,
        }
    }

    fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.jobs.capacity() * size_of::<(SourceId, u64)>()
            + self.inits.capacity() * size_of::<Result<P, SchemeError>>()
            + (self.stack.capacity() + self.out.capacity()) * size_of::<P>()
    }
}

/// One epoch's worth of reusable buffers. The pipeline owns two and
/// alternates them when streaming.
struct EpochBuf<P> {
    /// `values[i]` is source `i`'s reading, filled by the caller.
    values: Vec<u64>,
    /// One state block per shard, written by the producer.
    shards: Vec<ShardState<P>>,
    /// Shard remnants gathered for the sink merge.
    root_inputs: Vec<P>,
}

impl<P> EpochBuf<P> {
    fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.values.capacity() * size_of::<u64>()
            + self.root_inputs.capacity() * size_of::<P>()
            + self.shards.iter().map(ShardState::bytes).sum::<usize>()
    }
}

/// Per-epoch CPU breakdown handed to the sink callback, mirroring the
/// engine's source/aggregator/querier split.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochReport {
    /// The epoch this report covers.
    pub epoch: Epoch,
    /// Summed in-worker source-init CPU time.
    pub source_cpu_ns: u64,
    /// Summed merge (+ sink finalize) CPU time.
    pub merge_cpu_ns: u64,
    /// Evaluation CPU time at the querier.
    pub querier_cpu_ns: u64,
}

/// A single-slot rendezvous channel: `Mutex<Option<T>>` + condvars, so
/// buffer hand-off moves values without allocating or spinning.
struct Mailbox<T> {
    slot: Mutex<MailSlot<T>>,
    cv: Condvar,
}

struct MailSlot<T> {
    item: Option<T>,
    closed: bool,
}

impl<T> Mailbox<T> {
    fn new() -> Self {
        Mailbox {
            slot: Mutex::new(MailSlot {
                item: None,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Deposits `item`, blocking while the slot is full. Dropped
    /// silently if the mailbox closed (only happens during unwinding).
    fn send(&self, item: T) {
        let mut slot = self.slot.lock().expect("mailbox poisoned");
        while slot.item.is_some() && !slot.closed {
            slot = self.cv.wait(slot).expect("mailbox poisoned");
        }
        if slot.closed {
            return;
        }
        slot.item = Some(item);
        self.cv.notify_all();
    }

    /// Takes the next item, blocking while the slot is empty; `None`
    /// once the mailbox is closed and drained.
    fn recv(&self) -> Option<T> {
        let mut slot = self.slot.lock().expect("mailbox poisoned");
        loop {
            if let Some(item) = slot.item.take() {
                self.cv.notify_all();
                return Some(item);
            }
            if slot.closed {
                return None;
            }
            slot = self.cv.wait(slot).expect("mailbox poisoned");
        }
    }

    /// Closes the mailbox: blocked and future `recv`s drain then return
    /// `None`; future `send`s become no-ops.
    fn close(&self) {
        let mut slot = self.slot.lock().expect("mailbox poisoned");
        slot.closed = true;
        self.cv.notify_all();
    }
}

/// Closes a mailbox when dropped, so a panicking thread can never leave
/// its peer blocked forever.
struct CloseOnDrop<'m, T>(&'m Mailbox<T>);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Pacing gate for the background prewarm warmer: the main loop
/// publishes its progress watermark (last fully consumed epoch) and the
/// warmer blocks here between re-planning passes, so precomputation
/// runs exactly during the inter-epoch gaps instead of polling.
struct WarmGate {
    state: Mutex<(Option<Epoch>, bool)>,
    cv: Condvar,
}

impl WarmGate {
    fn new() -> Self {
        WarmGate {
            state: Mutex::new((None, false)),
            cv: Condvar::new(),
        }
    }

    /// Publishes that `epoch` is fully consumed.
    fn advance(&self, epoch: Epoch) {
        let mut st = self.state.lock().expect("warm gate poisoned");
        st.0 = Some(epoch);
        self.cv.notify_all();
    }

    /// Shuts the warmer down (idempotent).
    fn close(&self) {
        let mut st = self.state.lock().expect("warm gate poisoned");
        st.1 = true;
        self.cv.notify_all();
    }

    /// Blocks until the watermark moves past `seen` (returning the new
    /// watermark) or the gate closes (returning `None`).
    fn wait_past(&self, seen: Option<Epoch>) -> Option<Epoch> {
        let mut st = self.state.lock().expect("warm gate poisoned");
        loop {
            if st.1 {
                return None;
            }
            if st.0 != seen {
                return st.0;
            }
            st = self.cv.wait(st).expect("warm gate poisoned");
        }
    }
}

/// Closes a [`WarmGate`] when dropped — a panicking main loop never
/// leaves the warmer blocked.
struct WarmGateGuard<'g>(&'g WarmGate);

impl Drop for WarmGateGuard<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// The warmer thread body: precompute key material ahead of the main
/// loop's watermark, re-planning each time it advances. Runs on a spare
/// thread during the inter-epoch idle gap; the scheme guarantees pooled
/// material is bit-identical to on-demand derivation, so this thread
/// can lag, race, or die without affecting any digest.
fn warm_loop<S: AggregationScheme>(scheme: &S, gate: &WarmGate, first_epoch: Epoch, last: Epoch) {
    let fill_ahead = |watermark: Epoch| {
        // The span makes the warmer visible to the sampling profiler as
        // its own thread lane (`pipeline.prewarm` frames).
        let _warm = tel::span!("pipeline.prewarm");
        for e in scheme.prewarm_plan(watermark) {
            if e > last {
                break;
            }
            scheme.prewarm_epoch(e);
        }
    };
    // Epoch `first_epoch` is already in flight when the warmer starts,
    // so it paces as if that epoch were the watermark.
    fill_ahead(first_epoch);
    let mut seen = None;
    while let Some(watermark) = gate.wait_past(seen) {
        seen = Some(watermark);
        scheme.prewarm_retire(watermark);
        fill_ahead(watermark);
    }
}

/// The immutable execution view shared between the main thread and the
/// streaming producer.
struct Exec<'a, S: AggregationScheme> {
    scheme: &'a S,
    flat: &'a FlatTopology,
    shards: &'a [Shard],
    contributors: &'a [SourceId],
    threads: usize,
}

fn now_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos() as u64
}

impl<S: AggregationScheme> Exec<'_, S> {
    /// Source init + in-shard merges for one epoch, sharded across the
    /// scoped pool. Allocation-free once the buffers are warm.
    fn produce(&self, epoch: Epoch, buf: &mut EpochBuf<S::Psr>) {
        let EpochBuf { values, shards, .. } = buf;
        let values: &[u64] = values;
        parallel::for_each_pair_mut(self.threads, self.shards, shards, |i, shard, state| {
            let _ = i;
            Self::produce_shard(self.scheme, self.flat, epoch, shard, values, state);
        });
    }

    fn produce_shard(
        scheme: &S,
        flat: &FlatTopology,
        epoch: Epoch,
        shard: &Shard,
        values: &[u64],
        st: &mut ShardState<S::Psr>,
    ) {
        let _shard_span = tel::span!("pipeline.shard");
        st.err = None;
        st.out.clear();
        st.stack.clear();
        st.jobs.clear();
        let post = &flat.post_order()[shard.range.clone()];
        for &id in post {
            if let Some(sid) = flat.source_id(id as usize) {
                st.jobs.push((sid, values[sid as usize]));
            }
        }

        let t0 = Instant::now();
        scheme.batch_source_init_into(epoch, &st.jobs, &mut st.inits);
        st.source_ns = now_ns(t0);
        debug_assert_eq!(st.inits.len(), st.jobs.len(), "one result per job");

        let t1 = Instant::now();
        let mut next_init = 0usize;
        for &id in post {
            let id = id as usize;
            if flat.is_source(id) {
                match &st.inits[next_init] {
                    Ok(psr) => st.stack.push(psr.clone()),
                    Err(e) => {
                        st.err = Some(e.clone());
                        st.merge_ns = now_ns(t1);
                        return;
                    }
                }
                next_init += 1;
            } else {
                let k = flat.children(id).len();
                debug_assert!(st.stack.len() >= k, "stack underflow at node {id}");
                let base = st.stack.len() - k;
                // Post-order visits subtrees last-child-first, so the
                // children's results sit on the stack in reverse child
                // order; restore child order so the scheme merges the
                // exact input sequence the serial engine produces.
                st.stack[base..].reverse();
                match scheme.try_merge(&st.stack[base..]) {
                    Ok(merged) => {
                        st.stack.truncate(base);
                        st.stack.push(merged);
                    }
                    Err(e) => {
                        st.err = Some(e);
                        st.merge_ns = now_ns(t1);
                        return;
                    }
                }
            }
        }
        st.merge_ns = now_ns(t1);
        st.out.append(&mut st.stack);
    }

    /// Sink merge + finalize + evaluation for one produced epoch.
    /// `last_final` mirrors the engine's replay cache: set *before*
    /// evaluation, left stale on early aborts.
    fn consume<F>(
        &self,
        epoch: Epoch,
        buf: &mut EpochBuf<S::Psr>,
        last_final: &mut Option<S::Psr>,
        sink: &mut F,
    ) where
        F: FnMut(&EpochReport, Option<&S::Psr>, &Result<EvaluatedSum, SchemeError>, &[SourceId]),
    {
        let _consume_span = tel::span!("pipeline.consume");
        let EpochBuf {
            shards,
            root_inputs,
            ..
        } = buf;
        let mut report = EpochReport {
            epoch,
            ..EpochReport::default()
        };
        for st in shards.iter() {
            report.source_cpu_ns += st.source_ns;
            report.merge_cpu_ns += st.merge_ns;
        }
        // The first error in shard order is the first the serial walk
        // would have hit (shards partition the post-order in order).
        for st in shards.iter_mut() {
            if let Some(e) = st.err.take() {
                sink(&report, last_final.as_ref(), &Err(e), self.contributors);
                return;
            }
        }

        root_inputs.clear();
        for st in shards.iter_mut() {
            root_inputs.append(&mut st.out);
        }
        // Shard remnants arrive in post order = reverse child order;
        // the sink's merge expects child order (engine gather loop).
        root_inputs.reverse();

        let t0 = Instant::now();
        let merged = match self.scheme.try_merge(root_inputs) {
            Ok(m) => m,
            Err(e) => {
                report.merge_cpu_ns += now_ns(t0);
                sink(&report, last_final.as_ref(), &Err(e), self.contributors);
                return;
            }
        };
        let final_psr = self.scheme.sink_finalize(merged);
        report.merge_cpu_ns += now_ns(t0);
        *last_final = Some(final_psr);

        let t1 = Instant::now();
        let result = self.scheme.evaluate_par(
            last_final.as_ref().expect("just set"),
            epoch,
            self.contributors,
            self.threads,
        );
        report.querier_cpu_ns = now_ns(t1);
        sink(&report, last_final.as_ref(), &result, self.contributors);
    }
}

/// Splits the sink's child subtrees (contiguous post-order segments)
/// into at most `threads` contiguous, size-balanced shards.
fn plan_shards(flat: &FlatTopology, threads: usize) -> Vec<Shard> {
    let root = flat.root();
    let mut segments: Vec<Range<usize>> = flat
        .children(root)
        .iter()
        .map(|&c| flat.subtree_range(c as usize))
        .collect();
    segments.sort_by_key(|r| r.start);
    if segments.is_empty() {
        return Vec::new();
    }
    let total: usize = segments.iter().map(Range::len).sum();
    let workers = threads.max(1).min(segments.len());
    let mut ranges: Vec<Range<usize>> = Vec::with_capacity(workers);
    let mut iter = segments.into_iter();
    let mut consumed = 0usize;
    for w in 0..workers {
        let goal = total * (w + 1) / workers;
        let Some(first) = iter.next() else { break };
        let mut range = first;
        consumed += range.len();
        while consumed < goal {
            let Some(next) = iter.next() else { break };
            debug_assert_eq!(next.start, range.end, "segments must be contiguous");
            consumed += next.len();
            range.end = next.end;
        }
        ranges.push(range);
    }
    // Rounding leftovers join the last shard.
    if let (Some(last), rest) = (ranges.last_mut(), iter) {
        for next in rest {
            last.end = next.end;
        }
    }
    ranges
        .into_iter()
        .map(|range| {
            let sources = flat.post_order()[range.clone()]
                .iter()
                .filter(|&&id| flat.is_source(id as usize))
                .count();
            Shard { range, sources }
        })
        .collect()
}

/// The streamed clean-path epoch runner over a [`FlatTopology`] arena.
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use sies_core::{SystemParams, Threads};
/// use sies_net::deploy::SiesDeployment;
/// use sies_net::flat::FlatTopology;
/// use sies_net::pipeline::EpochPipeline;
/// use sies_net::topology::Topology;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let deployment = SiesDeployment::new(&mut rng, SystemParams::new(16).unwrap());
/// let topology = Topology::complete_tree(16, 4);
/// let flat = FlatTopology::from_topology(&topology);
/// let mut pipeline = EpochPipeline::new(&deployment, &flat, Threads::serial(), false);
/// let mut sums = Vec::new();
/// pipeline.run(0, 2, |_, values| values.fill(3), |_, _, result, _| {
///     sums.push(result.as_ref().unwrap().sum);
/// });
/// assert_eq!(sums, [48.0, 48.0]);
/// ```
pub struct EpochPipeline<'a, S: AggregationScheme> {
    scheme: &'a S,
    flat: &'a FlatTopology,
    threads: usize,
    streaming: bool,
    shards: Vec<Shard>,
    contributors: Vec<SourceId>,
    /// The two alternating epoch buffers ("front" and "back"); `None`
    /// only transiently inside [`run`](Self::run).
    bufs: Option<BufPair<S::Psr>>,
    last_final: Option<S::Psr>,
}

/// The pipeline's double buffer: one `EpochBuf` per in-flight epoch.
type BufPair<P> = (EpochBuf<P>, EpochBuf<P>);

impl<'a, S: AggregationScheme> EpochPipeline<'a, S> {
    /// Builds a pipeline over `flat` with the given worker count.
    /// `streaming` overlaps epoch `t+1`'s source phase with epoch `t`'s
    /// merge/evaluate on a dedicated producer thread.
    pub fn new(scheme: &'a S, flat: &'a FlatTopology, threads: Threads, streaming: bool) -> Self {
        let threads = threads.resolve();
        let shards = plan_shards(flat, threads);
        let n_sources = flat.num_sources() as usize;
        let root_children = flat.children(flat.root()).len();
        let mk_buf = |shards: &[Shard]| EpochBuf {
            values: vec![0u64; n_sources],
            shards: shards.iter().map(ShardState::with_capacity).collect(),
            root_inputs: Vec::with_capacity(root_children),
        };
        let bufs = Some((mk_buf(&shards), mk_buf(&shards)));
        EpochPipeline {
            scheme,
            flat,
            threads,
            streaming,
            shards,
            contributors: (0..n_sources as SourceId).collect(),
            bufs,
            last_final: None,
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether epoch streaming is enabled.
    pub fn streaming(&self) -> bool {
        self.streaming
    }

    /// How many subtree shards the tree was split into (≤ threads).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The final PSR of the most recent completed epoch (what the
    /// querier saw) — the engine's `last_final_psr` counterpart.
    pub fn last_final_psr(&self) -> Option<&S::Psr> {
        self.last_final.as_ref()
    }

    /// Heap bytes held by the pipeline's reusable epoch state (both
    /// buffers plus shard bookkeeping), the pipeline's share of the
    /// bytes-per-node budget. Excludes the arena — add
    /// [`FlatTopology::bytes`] — and the scheme's key material.
    pub fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        let bufs = match &self.bufs {
            Some((a, b)) => a.bytes() + b.bytes(),
            None => 0,
        };
        bufs + self.shards.capacity() * size_of::<Shard>()
            + self.contributors.capacity() * size_of::<SourceId>()
    }

    /// Runs `epochs` consecutive epochs starting at `first_epoch`.
    ///
    /// Per epoch, `fill(epoch, values)` populates the readings (one slot
    /// per source), then `sink(report, final_psr, result, contributors)`
    /// observes the outcome — `final_psr` follows the engine's replay
    /// cache semantics (set before evaluation, stale on early aborts).
    /// Both callbacks run on the calling thread, in epoch order, even
    /// when streaming.
    pub fn run<F, G>(&mut self, first_epoch: Epoch, epochs: u64, mut fill: F, mut sink: G)
    where
        F: FnMut(Epoch, &mut [u64]),
        G: FnMut(&EpochReport, Option<&S::Psr>, &Result<EvaluatedSum, SchemeError>, &[SourceId]),
    {
        if epochs == 0 {
            return;
        }
        let (front, back) = self.bufs.take().expect("buffers present between runs");
        let mut last_final = self.last_final.take();
        let exec = Exec {
            scheme: self.scheme,
            flat: self.flat,
            shards: &self.shards,
            contributors: &self.contributors,
            threads: self.threads,
        };
        let last = first_epoch + epochs - 1;

        let prewarm = self.scheme.prewarm_enabled();
        let gate = WarmGate::new();

        if !self.streaming {
            let mut front = front;
            if prewarm {
                // The scoped warmer (and the scope itself) only exist
                // when the scheme opted in — the prewarm-off serial path
                // must stay allocation-free per epoch.
                std::thread::scope(|scope| {
                    let (scheme, g) = (self.scheme, &gate);
                    scope.spawn(move || warm_loop(scheme, g, first_epoch, last));
                    let _close = WarmGateGuard(&gate);
                    for epoch in first_epoch..=last {
                        fill(epoch, &mut front.values);
                        exec.produce(epoch, &mut front);
                        exec.consume(epoch, &mut front, &mut last_final, &mut sink);
                        gate.advance(epoch);
                    }
                });
            } else {
                for epoch in first_epoch..=last {
                    fill(epoch, &mut front.values);
                    exec.produce(epoch, &mut front);
                    exec.consume(epoch, &mut front, &mut last_final, &mut sink);
                }
            }
            self.bufs = Some((front, back));
            self.last_final = last_final;
            return;
        }

        // Streaming: a scoped producer runs `produce` for epoch t+1
        // while this thread consumes epoch t. `pool` holds idle buffers;
        // the mailboxes move them by value (three Vec pointers).
        let mut pool: Vec<EpochBuf<S::Psr>> = Vec::with_capacity(2);
        let to_producer: Mailbox<(Epoch, EpochBuf<S::Psr>)> = Mailbox::new();
        let to_consumer: Mailbox<(Epoch, EpochBuf<S::Psr>)> = Mailbox::new();
        std::thread::scope(|scope| {
            let exec = &exec;
            let tp = &to_producer;
            let tc = &to_consumer;
            scope.spawn(move || {
                // Closing on exit (or panic) unblocks the consumer.
                let _close = CloseOnDrop(tc);
                while let Some((epoch, mut buf)) = tp.recv() {
                    exec.produce(epoch, &mut buf);
                    tc.send((epoch, buf));
                }
            });
            if prewarm {
                let (scheme, g) = (self.scheme, &gate);
                scope.spawn(move || warm_loop(scheme, g, first_epoch, last));
            }
            // Symmetric guards: a panicking consumer unblocks the
            // producer and the warmer.
            let _close = CloseOnDrop(tp);
            let _close_gate = WarmGateGuard(&gate);

            let mut front = front;
            fill(first_epoch, &mut front.values);
            tp.send((first_epoch, front));
            pool.push(back);
            for epoch in first_epoch..=last {
                if epoch < last {
                    let mut next = pool.pop().expect("a spare buffer is always free");
                    fill(epoch + 1, &mut next.values);
                    tp.send((epoch + 1, next));
                }
                let (produced_epoch, mut buf) = tc
                    .recv()
                    .expect("producer terminated before the last epoch");
                debug_assert_eq!(produced_epoch, epoch, "epochs hand off in order");
                exec.consume(epoch, &mut buf, &mut last_final, &mut sink);
                gate.advance(epoch);
                pool.push(buf);
            }
            tp.close();
        });
        let b = pool.pop().expect("both buffers return to the pool");
        let a = pool.pop().expect("both buffers return to the pool");
        self.bufs = Some((a, b));
        self.last_final = last_final;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::topology::Topology;

    /// A transparent scheme (plain sum + contribution count) mirroring
    /// the engine's test scheme, so pipeline behaviour is observable
    /// without cryptography.
    struct PlainSum;

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct PlainPsr {
        sum: u64,
        count: u64,
    }

    impl AggregationScheme for PlainSum {
        type Psr = PlainPsr;

        fn name(&self) -> &'static str {
            "PLAIN"
        }

        fn source_init(&self, _source: SourceId, _epoch: Epoch, value: u64) -> PlainPsr {
            PlainPsr {
                sum: value,
                count: 1,
            }
        }

        fn merge(&self, psrs: &[PlainPsr]) -> PlainPsr {
            PlainPsr {
                sum: psrs.iter().map(|p| p.sum).sum(),
                count: psrs.iter().map(|p| p.count).sum(),
            }
        }

        fn evaluate(
            &self,
            final_psr: &PlainPsr,
            _epoch: Epoch,
            contributors: &[SourceId],
        ) -> Result<EvaluatedSum, SchemeError> {
            if final_psr.count != contributors.len() as u64 {
                return Err(SchemeError::VerificationFailed(format!(
                    "count {} != contributors {}",
                    final_psr.count,
                    contributors.len()
                )));
            }
            Ok(EvaluatedSum {
                sum: final_psr.sum as f64,
                integrity_checked: true,
            })
        }

        fn psr_wire_size(&self, _psr: &PlainPsr) -> usize {
            16
        }

        fn tamper(&self, psr: &mut PlainPsr) {
            psr.sum += 1;
        }
    }

    fn run_collect(
        topo: &Topology,
        threads: usize,
        streaming: bool,
        epochs: u64,
    ) -> Vec<(Option<PlainPsr>, Result<EvaluatedSum, SchemeError>)> {
        let flat = FlatTopology::from_topology(topo);
        let mut pipeline = EpochPipeline::new(&PlainSum, &flat, Threads::fixed(threads), streaming);
        let mut seen = Vec::new();
        pipeline.run(
            0,
            epochs,
            |epoch, values| {
                for (i, v) in values.iter_mut().enumerate() {
                    *v = epoch * 1000 + i as u64;
                }
            },
            |_, final_psr, result, _| {
                seen.push((final_psr.copied(), result.clone()));
            },
        );
        seen
    }

    #[test]
    fn matches_engine_for_every_config() {
        let topo = Topology::complete_tree(64, 4);
        let mut engine = Engine::new(&PlainSum, &topo);
        let mut expected = Vec::new();
        for epoch in 0..4u64 {
            let values: Vec<u64> = (0..64).map(|i| epoch * 1000 + i).collect();
            let out = engine.run_epoch(epoch, &values);
            expected.push((engine.last_final_psr().copied(), out.result));
        }
        for threads in [1, 2, 3, 8] {
            for streaming in [false, true] {
                let got = run_collect(&topo, threads, streaming, 4);
                assert_eq!(got, expected, "threads={threads} streaming={streaming}");
            }
        }
    }

    #[test]
    fn uneven_trees_shard_correctly() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = Topology::random_tree(&mut rng, 37 + seed * 11, 5);
            let serial = run_collect(&topo, 1, false, 3);
            for threads in [2, 4, 16] {
                for streaming in [false, true] {
                    let got = run_collect(&topo, threads, streaming, 3);
                    assert_eq!(got, serial, "seed={seed} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn single_source_tree() {
        let topo = Topology::complete_tree(1, 2);
        let seen = run_collect(&topo, 4, true, 2);
        assert_eq!(seen[0].1.as_ref().unwrap().sum, 0.0);
        assert_eq!(seen[1].1.as_ref().unwrap().sum, 1000.0);
    }

    #[test]
    fn buffers_survive_across_runs() {
        let topo = Topology::complete_tree(16, 4);
        let flat = FlatTopology::from_topology(&topo);
        let mut pipeline = EpochPipeline::new(&PlainSum, &flat, Threads::serial(), true);
        let mut count = 0usize;
        pipeline.run(0, 3, |_, v| v.fill(1), |_, _, _, _| count += 1);
        let bytes = pipeline.state_bytes();
        assert!(bytes > 0);
        pipeline.run(3, 3, |_, v| v.fill(2), |_, _, _, _| count += 1);
        assert_eq!(count, 6);
        // Warm buffers: a second run must not have grown the state.
        assert_eq!(pipeline.state_bytes(), bytes);
        assert_eq!(
            pipeline.last_final_psr(),
            Some(&PlainPsr { sum: 32, count: 16 })
        );
    }

    #[test]
    fn prewarm_pipeline_digests_match_cold() {
        use crate::deploy::SiesDeployment;
        use crate::prewarm::PrewarmPolicy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sies_core::SystemParams;

        let topo = Topology::complete_tree(32, 4);
        let flat = FlatTopology::from_topology(&topo);
        let run = |policy: Option<PrewarmPolicy>, threads: usize, streaming: bool| {
            let mut rng = StdRng::seed_from_u64(5);
            let dep = SiesDeployment::new(&mut rng, SystemParams::new(32).unwrap());
            if let Some(p) = policy {
                dep.set_prewarm_policy(p);
            }
            let mut pipeline = EpochPipeline::new(&dep, &flat, Threads::fixed(threads), streaming);
            let mut outs = Vec::new();
            pipeline.run(
                0,
                6,
                |epoch, values| {
                    for (i, v) in values.iter_mut().enumerate() {
                        *v = epoch * 3 + i as u64;
                    }
                },
                |_, final_psr, result, _| {
                    outs.push((final_psr.map(|p| p.to_bytes()), result.clone()));
                },
            );
            (outs, dep.prewarm_stats())
        };
        let (cold, cold_stats) = run(None, 1, false);
        assert_eq!(cold_stats.derived, 0, "disabled pool stays inert");
        for threads in [1, 2, 8] {
            for streaming in [false, true] {
                let (warm, stats) = run(Some(PrewarmPolicy::default()), threads, streaming);
                assert_eq!(
                    warm, cold,
                    "prewarm changed results at threads={threads} streaming={streaming}"
                );
                // The warmer's initial fill-ahead (epochs 1 and 2) runs
                // unconditionally before the gate can close; later
                // derivations race the main loop and may or may not land.
                assert!(
                    stats.derived >= 2,
                    "warmer never derived (threads={threads} streaming={streaming}): {stats:?}"
                );
            }
        }
    }

    #[test]
    fn stale_last_final_on_abort_matches_engine() {
        // count mismatch via a scheme error: use merge of zero inputs —
        // instead drive a verification failure by lying about epochs.
        struct Rejecting;
        impl AggregationScheme for Rejecting {
            type Psr = u64;
            fn name(&self) -> &'static str {
                "REJ"
            }
            fn source_init(&self, _s: SourceId, _e: Epoch, v: u64) -> u64 {
                v
            }
            fn try_source_init(
                &self,
                _s: SourceId,
                epoch: Epoch,
                v: u64,
            ) -> Result<u64, SchemeError> {
                if epoch == 1 {
                    Err(SchemeError::Malformed("reading rejected".into()))
                } else {
                    Ok(v)
                }
            }
            fn merge(&self, psrs: &[u64]) -> u64 {
                psrs.iter().sum()
            }
            fn evaluate(
                &self,
                f: &u64,
                _e: Epoch,
                _c: &[SourceId],
            ) -> Result<EvaluatedSum, SchemeError> {
                Ok(EvaluatedSum {
                    sum: *f as f64,
                    integrity_checked: false,
                })
            }
            fn psr_wire_size(&self, _p: &u64) -> usize {
                8
            }
            fn tamper(&self, p: &mut u64) {
                *p += 1;
            }
        }
        let topo = Topology::complete_tree(8, 2);
        let flat = FlatTopology::from_topology(&topo);
        let mut pipeline = EpochPipeline::new(&Rejecting, &flat, Threads::serial(), false);
        let mut finals = Vec::new();
        pipeline.run(
            0,
            3,
            |_, v| v.fill(5),
            |report, final_psr, result, _| {
                finals.push((report.epoch, final_psr.copied(), result.is_ok()));
            },
        );
        // Epoch 1 aborts early: the final PSR stays epoch 0's (stale),
        // exactly like the engine's prev_final cache.
        assert_eq!(finals[0], (0, Some(40), true));
        assert_eq!(finals[1], (1, Some(40), false));
        assert_eq!(finals[2], (2, Some(40), true));
    }
}
