//! Seeded chaos harness: thousands of epochs mixing honest loss, node
//! churn, and covert attacks, with exact classification of every
//! outcome.
//!
//! The harness drives [`crate::engine::Engine::run_epoch_recovering`]
//! and classifies each epoch against the engine's ground truth
//! (`aggregate_corrupted`):
//!
//! | result                    | corrupted | classification        |
//! |---------------------------|-----------|-----------------------|
//! | `Ok`                      | yes       | **false accept**      |
//! | `Ok`, wrong verified sum  | no        | **sum mismatch**      |
//! | `Ok`, correct sum         | no        | clean epoch           |
//! | `Err(VerificationFailed)` | yes       | detection (correct)   |
//! | `Err(VerificationFailed)` | no        | **false reject**      |
//! | `Err(Malformed)`          | any       | availability loss     |
//!
//! For a verifying scheme (SIES, SECOA) the bold rows must be zero over
//! any seed — that is what the reliability experiment and the
//! integration property tests assert. For the plain baseline, false
//! accepts are the *expected* outcome of attacks; the harness reports,
//! the caller decides what to assert.
//!
//! Every run is a pure function of [`ChaosConfig`] (including the seed):
//! crash sets, attack choices, readings, and per-frame loss all come
//! from one `StdRng`, so a failing seed replays exactly.
//!
//! Each epoch's outcome is captured as a signed-journal
//! [`EpochReceipt`]; metrics ([`absorb`]) and the result digest
//! ([`fold_receipt`]) are both derived from the receipt alone. That is
//! what makes [`run_chaos_with_restarts`] honest: when a seeded kill
//! point tears down the querier mid-run, the restarted querier rebuilds
//! its counters and digest by replaying the journal — and lands, by
//! construction, on exactly the state the uninterrupted run had.

use crate::engine::{Attack, Engine};
use crate::journal::{fold_receipt, JournalConfig, ReceiptJournal};
use crate::radio::LossyRadio;
use crate::recovery::RecoveryConfig;
use crate::scheme::AggregationScheme;
use crate::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sies_core::Threads;
use sies_crypto::sha256::Sha256;
use sies_crypto::HashFunction;
use sies_receipts::{EpochReceipt, ReceiptError, Verdict};
use sies_telemetry as tel;
use sies_telemetry::EventKind;
use std::collections::HashSet;
use std::path::PathBuf;

/// Fault-injection mix for one chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the single RNG that drives readings, crashes, attacks,
    /// and frame loss. Same seed + same config ⇒ identical run.
    pub seed: u64,
    /// Epochs to execute.
    pub epochs: u64,
    /// Per-frame loss probability for the lossy radio.
    pub loss_rate: f64,
    /// Link-layer retransmission budget per phase.
    pub max_retries: u32,
    /// Per-epoch probability that some non-root node crashes for the
    /// epoch (a crashed aggregator's live children re-attach to a
    /// backup parent; a crashed source just sits the epoch out).
    pub crash_prob: f64,
    /// Per-epoch probability that a covert attack is injected.
    pub attack_prob: f64,
    /// Largest sensor reading generated (inclusive).
    pub max_value: u64,
    /// Recovery-protocol policy.
    pub recovery: RecoveryConfig,
    /// Worker pool for the sharded source phase. Metrics are identical
    /// for every setting (the engine's determinism guarantee); only
    /// wall-clock time changes.
    pub threads: Threads,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            epochs: 1000,
            loss_rate: 0.1,
            max_retries: 3,
            crash_prob: 0.2,
            attack_prob: 0.2,
            max_value: 1000,
            recovery: RecoveryConfig::default(),
            threads: Threads::serial(),
        }
    }
}

/// Aggregate outcome of a chaos run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosMetrics {
    /// Seed the run used (recorded so results are replayable).
    pub seed: u64,
    /// Epochs executed.
    pub epochs: u64,
    /// Epochs that returned a verified (or unverified-by-design) sum.
    pub ok_epochs: u64,
    /// Epochs lost to availability (no PSR reached the querier).
    pub unavailable_epochs: u64,
    /// Epochs whose aggregate a covert attack actually corrupted.
    pub corrupted_epochs: u64,
    /// Corrupted epochs the scheme rejected — the detection count.
    pub detected_corruptions: u64,
    /// Corrupted epochs the scheme *accepted*: must be zero for SIES.
    pub false_accepts: u64,
    /// Clean epochs the scheme rejected: must be zero for every scheme.
    pub false_rejects: u64,
    /// Accepted epochs whose sum differed from the ground-truth sum over
    /// the reported contributors: must be zero for exact schemes.
    pub sum_mismatches: u64,
    /// Epochs in which at least one node crashed.
    pub crash_epochs: u64,
    /// Epochs in which a covert attack was injected (it may still have
    /// missed, e.g. its target subtree was honestly lost first).
    pub attack_epochs: u64,
    /// Orphans re-homed to backup parents across the run.
    pub adoptions: u64,
    /// Uplink transfers delivered under the recovery protocol.
    pub delivered_links: u64,
    /// Uplink transfers lost after all re-solicitation rounds.
    pub lost_links: u64,
    /// Transfers that only succeeded in a re-solicited phase.
    pub recovered_by_resolicit: u64,
    /// Re-solicitation rounds run.
    pub resolicitations: u64,
    /// Sources excluded by a fallible `source_init`.
    pub init_failures: u64,
    /// Subtrees excluded by a fallible `merge`.
    pub merge_failures: u64,
    /// First-copy data bytes (Table V classes).
    pub data_bytes: u64,
    /// Bytes spent on retransmitted data frames.
    pub retransmit_bytes: u64,
    /// Bytes spent on ACK/NACK/re-solicit/re-attach/failure reports.
    pub control_bytes: u64,
    /// Modeled backoff delay the recovery protocol accumulated across
    /// all uplinks (milliseconds, jitter included).
    pub backoff_ms: u64,
    /// Hex SHA-256 over every epoch's verdict, sum bits, corruption
    /// flag, and contributor set — the run's result fingerprint. Byte
    /// identical across thread counts and telemetry on/off (it hashes
    /// only engine outputs), so harnesses can assert determinism with
    /// one string compare.
    pub result_digest: String,
}

impl ChaosMetrics {
    /// Fraction of epochs that produced an accepted sum.
    pub fn availability(&self) -> f64 {
        if self.epochs == 0 {
            1.0
        } else {
            self.ok_epochs as f64 / self.epochs as f64
        }
    }

    /// Fraction of actually-corrupted epochs the scheme rejected.
    pub fn detection_rate(&self) -> f64 {
        if self.corrupted_epochs == 0 {
            1.0
        } else {
            self.detected_corruptions as f64 / self.corrupted_epochs as f64
        }
    }

    /// (data + retransmit + control) / data — the bandwidth price of
    /// reliability.
    pub fn overhead_factor(&self) -> f64 {
        if self.data_bytes == 0 {
            1.0
        } else {
            (self.data_bytes + self.retransmit_bytes + self.control_bytes) as f64
                / self.data_bytes as f64
        }
    }

    /// True when no corrupted aggregate was accepted and no clean epoch
    /// was rejected — the property the reliability experiment asserts.
    pub fn sound(&self) -> bool {
        self.false_accepts == 0 && self.false_rejects == 0 && self.sum_mismatches == 0
    }
}

/// Folds one epoch receipt into the run metrics: the classification
/// table from the module docs, applied to the receipt's verdict and
/// ground-truth flags, plus every recovery-protocol counter. Replaying a
/// journal through this function rebuilds exactly the counters the live
/// run accumulated — [`crate::engine::RecoveredEpoch::receipt`] puts
/// everything the table needs into the receipt for precisely this
/// reason.
pub fn absorb(m: &mut ChaosMetrics, r: &EpochReceipt) {
    m.crash_epochs += r.crash_injected as u64;
    m.attack_epochs += r.attack_injected as u64;
    m.corrupted_epochs += r.corrupted as u64;
    match r.verdict {
        Verdict::Accepted => {
            m.ok_epochs += 1;
            if r.corrupted {
                m.false_accepts += 1;
            } else if r.sum_mismatch {
                m.sum_mismatches += 1;
            }
        }
        Verdict::Rejected => {
            if r.corrupted {
                m.detected_corruptions += 1;
            } else {
                m.false_rejects += 1;
            }
        }
        Verdict::Lost => m.unavailable_epochs += 1,
    }
    m.adoptions += r.adoptions;
    m.delivered_links += r.delivered_links;
    m.lost_links += r.lost_links;
    m.recovered_by_resolicit += r.recovered_by_resolicit;
    m.resolicitations += r.resolicitations;
    m.init_failures += r.init_failures;
    m.merge_failures += r.merge_failures;
    m.data_bytes += r.data_bytes;
    m.retransmit_bytes += r.retransmit_bytes;
    m.control_bytes += r.control_bytes;
    m.backoff_ms += r.backoff_ms;
}

/// The network half of a chaos run — everything that *survives* a
/// querier crash: the engine (network + scheme state), the seeded fault
/// stream, and the lossy radio. One [`ChaosDriver::step`] runs one epoch
/// and returns its receipt; metrics, digests, and the journal are all
/// derived from that receipt, never from the driver directly.
struct ChaosDriver<'a, S: AggregationScheme> {
    engine: Engine<'a, S>,
    rng: StdRng,
    radio: LossyRadio,
    candidates: Vec<NodeId>,
    num_sources: usize,
    cfg: ChaosConfig,
}

impl<'a, S: AggregationScheme> ChaosDriver<'a, S> {
    fn new(scheme: &'a S, topology: &'a Topology, cfg: &ChaosConfig) -> Self {
        // Non-root nodes are fair game for crashes and attacks; the sink
        // staying up keeps availability attributable to the protocol
        // under test (sink crash is covered by unit tests). Drawn from
        // the engine's struct-of-arrays arena (dense ids, same numbering
        // as the legacy node list).
        let engine = Engine::new(scheme, topology).with_threads(cfg.threads);
        let root = engine.flat().root();
        let candidates: Vec<NodeId> = (0..engine.flat().num_nodes())
            .filter(|&id| id != root)
            .collect();
        ChaosDriver {
            engine,
            rng: StdRng::seed_from_u64(cfg.seed),
            radio: LossyRadio::new(cfg.loss_rate, cfg.max_retries),
            candidates,
            num_sources: topology.num_sources() as usize,
            cfg: *cfg,
        }
    }

    fn step(&mut self, epoch: u64) -> EpochReceipt {
        let _step_span = tel::span!("chaos.step");
        let values: Vec<u64> = (0..self.num_sources)
            .map(|_| self.rng.random_range(0..=self.cfg.max_value))
            .collect();

        let mut crashed: HashSet<NodeId> = HashSet::new();
        if self.rng.random_range(0.0..1.0) < self.cfg.crash_prob {
            // 1–3 simultaneous crashes stress multi-orphan repair.
            let n = self.rng.random_range(1..=3usize);
            for _ in 0..n {
                crashed.insert(self.candidates[self.rng.random_range(0..self.candidates.len())]);
            }
            tel::count!("chaos.crashes_injected", crashed.len() as u64);
            tel::event(epoch, EventKind::CrashInjected, crashed.len() as u64, 0);
        }

        let mut attacks: Vec<Attack> = Vec::new();
        if self.rng.random_range(0.0..1.0) < self.cfg.attack_prob {
            let live: Vec<NodeId> = self
                .candidates
                .iter()
                .copied()
                .filter(|id| !crashed.contains(id))
                .collect();
            let attack = match self.rng.random_range(0..4u32) {
                0 => Attack::TamperAtNode(live[self.rng.random_range(0..live.len())]),
                1 => Attack::DropAtNode(live[self.rng.random_range(0..live.len())]),
                2 => Attack::DuplicateAtNode(live[self.rng.random_range(0..live.len())]),
                _ => Attack::ReplayFinal,
            };
            let (kind, target) = match attack {
                Attack::TamperAtNode(n) => (0u64, n as u64),
                Attack::DropAtNode(n) => (1, n as u64),
                Attack::DuplicateAtNode(n) => (2, n as u64),
                Attack::ReplayFinal => (3, 0),
            };
            tel::count!("chaos.attacks_injected");
            tel::event(epoch, EventKind::AttackInjected, kind, target);
            attacks.push(attack);
        }

        let run = self.engine.run_epoch_recovering(
            epoch,
            &values,
            &crashed,
            &attacks,
            &self.radio,
            &self.cfg.recovery,
            &mut self.rng,
        );
        run.receipt(epoch, &values, !crashed.is_empty(), !attacks.is_empty())
    }
}

fn hex_digest(digest: Sha256) -> String {
    digest
        .finalize()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

/// Runs `cfg.epochs` fault-injected epochs of `scheme` over `topology`
/// and classifies every outcome. Panics only if the engine itself
/// panics — which the run is designed to prove it never does.
pub fn run_chaos<S: AggregationScheme>(
    scheme: &S,
    topology: &Topology,
    cfg: &ChaosConfig,
) -> ChaosMetrics {
    let mut driver = ChaosDriver::new(scheme, topology, cfg);
    let mut m = ChaosMetrics {
        seed: cfg.seed,
        ..ChaosMetrics::default()
    };
    let mut digest = Sha256::new();
    for epoch in 0..cfg.epochs {
        let receipt = driver.step(epoch);
        fold_receipt(&mut digest, &receipt);
        absorb(&mut m, &receipt);
    }
    m.epochs = cfg.epochs;
    m.result_digest = hex_digest(digest);
    m
}

/// Kill-restart schedule for [`run_chaos_with_restarts`].
#[derive(Debug, Clone)]
pub struct RestartConfig {
    /// Journal file backing the querier's durable state.
    pub journal_path: PathBuf,
    /// Journal session config (HMAC key, μTesla seed, fsync policy).
    pub journal: JournalConfig,
    /// Epochs at whose *start* the querier is killed — its journal
    /// handle, metric counters, running digest, and μTesla receiver all
    /// dropped — and restarted from the journal alone.
    pub kill_epochs: Vec<u64>,
}

impl RestartConfig {
    /// Draws `kills` distinct kill epochs in `1..epochs` from a
    /// dedicated RNG. The seed is deliberately separate from
    /// [`ChaosConfig::seed`]: the fault stream of a restarted run must
    /// stay byte-identical to the uninterrupted run it is compared
    /// against.
    pub fn seeded_kills(seed: u64, epochs: u64, kills: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < kills.min(epochs.saturating_sub(1) as usize) {
            set.insert(rng.random_range(1..epochs));
        }
        set.into_iter().collect()
    }
}

/// Outcome of a kill-restart chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartOutcome {
    /// The run metrics — byte-identical (including `result_digest`) to
    /// the same config's uninterrupted [`run_chaos`], or the recovery
    /// path is broken.
    pub metrics: ChaosMetrics,
    /// Querier kill-restart cycles executed.
    pub restarts: u64,
    /// Receipts replayed from the journal across all restarts.
    pub replayed_receipts: u64,
    /// Restarts that found (and tolerated) a torn final record.
    pub torn_tails: u64,
}

/// [`run_chaos`] with seeded querier kill-restart events: every receipt
/// is journaled as the run goes, and at each kill epoch the querier's
/// volatile state is torn down and rebuilt *only* from the journal
/// ([`ReceiptJournal::resume`] → [`absorb`] + the replayed digest). The
/// network keeps running across kills — exactly the SIES deployment
/// story, where the querier is the restartable component and the sensor
/// network is not.
pub fn run_chaos_with_restarts<S: AggregationScheme>(
    scheme: &S,
    topology: &Topology,
    cfg: &ChaosConfig,
    rcfg: &RestartConfig,
) -> Result<RestartOutcome, ReceiptError> {
    let mut driver = ChaosDriver::new(scheme, topology, cfg);
    let kill_set: HashSet<u64> = rcfg.kill_epochs.iter().copied().collect();
    let mut journal = Some(ReceiptJournal::create(&rcfg.journal_path, &rcfg.journal)?);
    let mut m = ChaosMetrics {
        seed: cfg.seed,
        ..ChaosMetrics::default()
    };
    let mut digest = Sha256::new();
    let mut restarts = 0u64;
    let mut replayed_receipts = 0u64;
    let mut torn_tails = 0u64;

    for epoch in 0..cfg.epochs {
        if kill_set.contains(&epoch) {
            // The querier dies at the epoch boundary: journal handle
            // (without a final sync), counters, and digest are all lost.
            // Only the file and the session secrets survive.
            drop(journal.take());
            let (j, state) = ReceiptJournal::resume(&rcfg.journal_path, &rcfg.journal)?;
            m = ChaosMetrics {
                seed: cfg.seed,
                ..ChaosMetrics::default()
            };
            for r in &state.summary.receipts {
                absorb(&mut m, r);
            }
            digest = state.digest.clone();
            replayed_receipts += state.summary.receipts.len() as u64;
            torn_tails += state.summary.torn_tail.is_some() as u64;
            restarts += 1;
            journal = Some(j);
            tel::count!("chaos.restarts");
        }

        let mut receipt = driver.step(epoch);
        if let Some(j) = journal.as_mut() {
            j.record(&mut receipt);
        }
        fold_receipt(&mut digest, &receipt);
        absorb(&mut m, &receipt);
    }
    m.epochs = cfg.epochs;
    m.result_digest = hex_digest(digest);
    if let Some(mut j) = journal.take() {
        j.finish().map_err(ReceiptError::from)?;
    }
    Ok(RestartOutcome {
        metrics: m,
        restarts,
        replayed_receipts,
        torn_tails,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::SiesDeployment;
    use sies_core::SystemParams;

    fn sies(n: u64) -> SiesDeployment {
        let mut rng = StdRng::seed_from_u64(7);
        SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap())
    }

    #[test]
    fn sies_chaos_run_is_sound() {
        let dep = sies(16);
        let topo = Topology::complete_tree(16, 4);
        let cfg = ChaosConfig {
            seed: 42,
            epochs: 300,
            ..ChaosConfig::default()
        };
        let m = run_chaos(&dep, &topo, &cfg);
        assert_eq!(m.epochs, 300);
        assert!(
            m.sound(),
            "false_accepts={} false_rejects={} mismatches={}",
            m.false_accepts,
            m.false_rejects,
            m.sum_mismatches
        );
        assert!(
            m.corrupted_epochs > 0,
            "chaos mix never corrupted an aggregate"
        );
        assert_eq!(m.detected_corruptions, m.corrupted_epochs);
        assert!(m.ok_epochs > 0);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let dep = sies(8);
        let topo = Topology::complete_tree(8, 2);
        let cfg = ChaosConfig {
            seed: 9,
            epochs: 60,
            ..ChaosConfig::default()
        };
        let a = run_chaos(&dep, &topo, &cfg);
        let b = run_chaos(&dep, &topo, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn chaos_metrics_are_thread_count_invariant() {
        let dep = sies(16);
        let topo = Topology::complete_tree(16, 4);
        let base_cfg = ChaosConfig {
            seed: 77,
            epochs: 50,
            ..ChaosConfig::default()
        };
        let base = run_chaos(&dep, &topo, &base_cfg);
        for threads in [2usize, 4, 8] {
            let cfg = ChaosConfig {
                threads: Threads::fixed(threads),
                ..base_cfg
            };
            assert_eq!(run_chaos(&dep, &topo, &cfg), base, "threads = {threads}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let dep = sies(8);
        let topo = Topology::complete_tree(8, 2);
        let a = run_chaos(
            &dep,
            &topo,
            &ChaosConfig {
                seed: 1,
                epochs: 50,
                ..Default::default()
            },
        );
        let b = run_chaos(
            &dep,
            &topo,
            &ChaosConfig {
                seed: 2,
                epochs: 50,
                ..Default::default()
            },
        );
        assert_ne!(a, b, "seeds 1 and 2 produced identical runs");
    }

    #[test]
    fn calm_run_has_full_availability() {
        let dep = sies(8);
        let topo = Topology::complete_tree(8, 2);
        let cfg = ChaosConfig {
            seed: 3,
            epochs: 40,
            loss_rate: 0.0,
            crash_prob: 0.0,
            attack_prob: 0.0,
            ..ChaosConfig::default()
        };
        let m = run_chaos(&dep, &topo, &cfg);
        assert_eq!(m.ok_epochs, 40);
        assert_eq!(m.availability(), 1.0);
        assert_eq!(
            m.overhead_factor(),
            (m.data_bytes + m.control_bytes) as f64 / m.data_bytes as f64
        );
        assert_eq!(m.retransmit_bytes, 0);
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sies-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn restarted_run_matches_uninterrupted_run_exactly() {
        let dep = sies(16);
        let topo = Topology::complete_tree(16, 4);
        let cfg = ChaosConfig {
            seed: 42,
            epochs: 200,
            ..ChaosConfig::default()
        };
        let baseline = run_chaos(&dep, &topo, &cfg);

        let kills = RestartConfig::seeded_kills(7, cfg.epochs, 3);
        assert_eq!(kills.len(), 3);
        let rcfg = RestartConfig {
            journal_path: tmp("restart-identity.journal"),
            journal: JournalConfig::default(),
            kill_epochs: kills,
        };
        let out = run_chaos_with_restarts(&dep, &topo, &cfg, &rcfg).unwrap();
        assert_eq!(out.restarts, 3);
        assert!(out.replayed_receipts > 0);
        assert_eq!(
            out.metrics, baseline,
            "journal-only recovery must land on the uninterrupted run's state"
        );
        assert!(out.metrics.sound());
        std::fs::remove_file(&rcfg.journal_path).unwrap();
    }

    #[test]
    fn restarted_run_is_thread_count_invariant() {
        let dep = sies(16);
        let topo = Topology::complete_tree(16, 4);
        let base_cfg = ChaosConfig {
            seed: 13,
            epochs: 60,
            ..ChaosConfig::default()
        };
        let rcfg = RestartConfig {
            journal_path: tmp("restart-threads.journal"),
            journal: JournalConfig::default(),
            kill_epochs: RestartConfig::seeded_kills(5, base_cfg.epochs, 2),
        };
        let base = run_chaos_with_restarts(&dep, &topo, &base_cfg, &rcfg).unwrap();
        for threads in [2usize, 8] {
            let cfg = ChaosConfig {
                threads: Threads::fixed(threads),
                ..base_cfg
            };
            let out = run_chaos_with_restarts(&dep, &topo, &cfg, &rcfg).unwrap();
            assert_eq!(out, base, "threads = {threads}");
        }
        std::fs::remove_file(&rcfg.journal_path).unwrap();
    }

    #[test]
    fn seeded_kills_are_deterministic_distinct_and_in_range() {
        let a = RestartConfig::seeded_kills(3, 100, 5);
        let b = RestartConfig::seeded_kills(3, 100, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(a.iter().all(|&e| (1..100).contains(&e)));
        // Asking for more kills than restartable epochs saturates.
        assert_eq!(RestartConfig::seeded_kills(3, 4, 10).len(), 3);
    }

    #[test]
    fn recovery_beats_no_recovery_at_heavy_loss() {
        // With zero re-solicitation rounds and no retries the same seed
        // loses strictly more links than the full protocol.
        let dep = sies(16);
        let topo = Topology::complete_tree(16, 4);
        let weak = ChaosConfig {
            seed: 11,
            epochs: 80,
            loss_rate: 0.4,
            max_retries: 0,
            crash_prob: 0.0,
            attack_prob: 0.0,
            recovery: RecoveryConfig::new(0, 0.5),
            ..ChaosConfig::default()
        };
        let strong = ChaosConfig {
            max_retries: 3,
            recovery: RecoveryConfig::new(2, 0.5),
            ..weak
        };
        let mw = run_chaos(&dep, &topo, &weak);
        let ms = run_chaos(&dep, &topo, &strong);
        assert!(
            ms.lost_links < mw.lost_links,
            "recovery {} lost vs bare {} lost",
            ms.lost_links,
            mw.lost_links
        );
        assert!(ms.sound() && mw.sound());
    }
}
